"""Bench E11 (extension): importance-aware admission reservation."""

from repro.experiments import e11_importance


def test_e11_importance_gate(run_experiment):
    result = run_experiment(e11_importance)
    by_key = {(row[0], row[1]): row for row in result.rows}
    top_rate = max(row[0] for row in result.rows)
    off = by_key[(top_rate, "off")]
    on = by_key[(top_rate, "on")]
    # The gate sheds low-importance work: raw goodput drops, rejects
    # rise, and importance-weighted goodput holds or improves.
    assert on[2] < off[2]            # goodput
    assert on[4] > off[4]            # reject rate
    assert on[3] >= off[3] - 0.02    # value goodput not sacrificed

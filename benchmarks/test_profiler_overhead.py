"""Profiler + sampler overhead on the scalability_1000 golden rung.

Two invariants from the self-observation work:

* **Disabled is free and exact** — with no profiler, sampler, or
  telemetry attached, the scalability_1000 trajectory is byte-identical
  to the pre-profiler seed: 190,173 kernel events and 25,671 messages.
  The profile hook lives in a separate kernel loop variant, so the
  disabled path must not drift by even one event.
* **Enabled is cheap** — with ``--profile --sample`` at the default 2%
  budget, events/sec on the same rung degrades by less than 5% versus
  the profiler disabled (same ``--sample`` run, no profiler attached:
  the sampler's own cost predates the profiler and is bounded
  separately in ``test_telemetry_overhead.py``).

The overhead comparison interleaves the two arms (off, on, off, on,
...) and scores the *median of per-pair ratios*: slow process drift
(allocator growth, background load) moves both members of a pair, so
the pairwise ratio isolates the profiler's marginal cost where a
best-of comparison would just race the drift.
"""

import statistics
import time

from repro.benchmarking.scenarios import select
from repro.profiling import profile_wall

#: The pinned scalability_1000 trajectory (full params, seed 7).
GOLDEN_EVENTS = 190_173
GOLDEN_MESSAGES = 25_671

#: Max tolerated events/sec drop with --profile --sample attached.
MAX_DEGRADATION = 0.05

#: Interleaved off/on pairs scored by their median ratio.
PAIRS = 3


def _spec():
    return [s for s in select() if s.name == "scalability_1000"][0]


def test_disabled_golden_trajectory():
    out = _spec().build()()
    assert out["events"] == GOLDEN_EVENTS
    assert out["metrics"]["messages"] == GOLDEN_MESSAGES


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out["events"] / (time.perf_counter() - t0)


def test_profile_sample_overhead_within_budget():
    sampled_fn = _spec().build(sample=True)

    ratios = []
    last_record = None
    # Warm once (imports, allocator) before recording.
    sampled_fn()
    for _ in range(PAIRS):
        off = _timed(sampled_fn)
        sess = profile_wall(budget=0.02)
        try:
            on = _timed(sampled_fn)
        finally:
            sess.stop()
        last_record = sess.record(top_n=5)
        ratios.append(on / off)

    degradation = 1.0 - statistics.median(ratios)
    assert degradation < MAX_DEGRADATION, (
        f"--profile cost {degradation:.1%} events/sec on the sampled "
        f"rung (pair ratios: {[round(r, 3) for r in ratios]})"
    )

    # The profiler actually observed the run, and the budgeter either
    # kept measured overhead near the target or visibly reacted to it.
    assert last_record is not None and last_record["samples"] > 0
    budget = last_record["budget"]
    assert (
        budget["overhead_cumulative"] <= 2 * budget["target"]
        or budget["backoffs"] > 0
    )

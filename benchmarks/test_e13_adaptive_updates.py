"""Bench E13 (extension): QoS-adaptive update frequency."""

from repro.experiments import e13_adaptive_updates


def test_e13_adaptive_updates(run_experiment):
    result = run_experiment(e13_adaptive_updates)
    rows = {row[0]: row for row in result.rows}
    # Message overhead ordering: fast > adaptive > slow.
    assert rows["fast"][1] > rows["adaptive"][1] > rows["slow"][1]
    # Adaptivity saves a large fraction of fast-mode messages...
    assert rows["adaptive"][1] < 0.6 * rows["fast"][1]
    # ...while goodput stays within noise across all modes (staleness
    # is not the binding constraint at this load — see E7).
    goodputs = [rows[m][2] for m in ("fast", "adaptive", "slow")]
    assert max(goodputs) - min(goodputs) < 0.08

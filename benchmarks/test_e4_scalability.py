"""Bench E4: scalability with the number of peers."""

from repro.experiments import e4_scalability


def test_e4_scalability(run_experiment):
    result = run_experiment(e4_scalability)
    dec = [row for row in result.rows if row[1] == "domains"]
    cen = [row for row in result.rows if row[1] == "central"]
    peers = [row[0] for row in dec]
    goodput = [row[3] for row in dec]
    ctrl = [row[5] for row in dec]
    domains = [row[2] for row in dec]
    # Goodput stays high as the system grows (the §6 claim).
    assert all(g > 0.85 for g in goodput), goodput
    # Per-peer control overhead stays bounded (decentralization): the
    # largest system costs at most ~3x the smallest per peer, not O(n).
    assert ctrl[-1] <= 3.0 * max(ctrl[0], 0.1)
    # Domains split as the population exceeds the RM capacity; the
    # centralized strawman never splits.
    assert domains[-1] > domains[0]
    assert all(row[2] == 1.0 for row in cen)
    assert peers == sorted(peers)
    # Centralization cost: at the largest size the single central RM
    # terminates far more traffic than any one domain RM.
    central_hot = cen[-1][6]
    domain_hot = dec[-1][6]
    assert central_hot > 1.5 * domain_hot, (central_hot, domain_hot)

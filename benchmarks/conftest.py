"""Benchmark harness settings.

Every benchmark regenerates one experiment of DESIGN.md §4 (quick
mode: shrunken durations, single replication) and asserts the *shape*
of the result — who wins, roughly by how much — matching the claims
quoted in EXPERIMENTS.md.  pytest-benchmark measures the wall cost of
regenerating it.

Run:  pytest benchmarks/ --benchmark-only
"""

import pytest


@pytest.fixture
def run_experiment(benchmark):
    """Run an experiment module once under the benchmark timer."""

    def runner(module, quick=True):
        return benchmark.pedantic(
            lambda: module.run(quick=quick), rounds=1, iterations=1
        )

    return runner

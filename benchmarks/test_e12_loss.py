"""Bench E12 (extension): graceful degradation under message loss."""

from repro.experiments import e12_loss


def test_e12_loss_degradation(run_experiment):
    result = run_experiment(e12_loss)
    losses = result.column("loss_rate")
    goodput = result.column("goodput")
    assert losses == sorted(losses)
    # Clean network is near-perfect; lossy degrades but keeps working.
    assert goodput[0] > 0.95
    assert goodput[-1] < goodput[0]
    assert goodput[-1] > 0.2  # graceful, not collapsed
    # Accounting: dropped messages were actually observed.
    assert result.column("dropped_msgs")[-1] > 0

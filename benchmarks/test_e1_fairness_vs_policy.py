"""Bench E1: fairness of the load distribution per allocation policy."""

from repro.experiments import e1_fairness


def test_e1_fairness_vs_policy(run_experiment):
    result = run_experiment(e1_fairness)
    # Regroup rows by rate: {policy: fairness}.
    by_rate = {}
    for rate, policy, fairness, _good, _miss in result.rows:
        by_rate.setdefault(rate, {})[policy] = fairness
    for rate, per_policy in by_rate.items():
        # The paper's claim: fairness-max yields the fairest loads.
        best = max(per_policy, key=per_policy.get)
        assert best == "fairness", (rate, per_policy)
        # And clearly beats the fairness-blind first-feasible rule.
        assert per_policy["fairness"] > per_policy["first"]

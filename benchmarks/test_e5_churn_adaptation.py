"""Bench E5: churn with and without adaptive repair."""

from repro.experiments import e5_churn


def test_e5_churn_adaptation(run_experiment):
    result = run_experiment(e5_churn)
    by_key = {(row[0], row[1]): row for row in result.rows}
    lifetimes = sorted({row[0] for row in result.rows})
    for lifetime in lifetimes:
        adapt = by_key[(lifetime, "yes")]
        blind = by_key[(lifetime, "no")]
        # Adaptation strictly reduces lost tasks and wins on goodput.
        assert adapt[2] > blind[2], (lifetime, adapt, blind)   # goodput
        assert adapt[3] <= blind[3]                            # failed
        assert adapt[4] > 0                                    # repairs ran
        assert blind[4] == 0

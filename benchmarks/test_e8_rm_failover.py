"""Bench E8: backup-RM takeover after a primary crash (§4.1)."""

from repro.experiments import e8_failover


def test_e8_rm_failover(run_experiment):
    result = run_experiment(e8_failover)
    rows = {row[0]: row for row in result.rows}
    with_backup = rows["yes"]
    without = rows["no"]
    # The backup takes over and the domain stays alive.
    assert with_backup[1] == 1.0          # took_over
    assert with_backup[2] > 0             # detection delay measured
    assert with_backup[5] == 1.0          # an active RM at the end
    assert without[1] == 0.0 and without[5] == 0.0
    # Far fewer queries are lost with a backup.
    assert with_backup[3] < without[3]

"""Bench E3: LLS vs EDF vs FIFO vs SJF vs VALUE local scheduling."""

from repro.experiments import e3_scheduling


def test_e3_local_scheduling(run_experiment):
    result = run_experiment(e3_scheduling)
    by_sched = {}
    for _rate, sched, goodput, task_miss, job_miss, _resp in result.rows:
        agg = by_sched.setdefault(sched, [])
        agg.append((goodput, task_miss, job_miss))
    mean_good = {
        s: sum(g for g, _t, _j in rows) / len(rows)
        for s, rows in by_sched.items()
    }
    # EDF — the clean deadline-aware policy — holds its own against
    # FIFO at every load (and wins under contention; see EXPERIMENTS.md
    # E3 for the full sweep).
    assert mean_good["EDF"] >= mean_good["FIFO"] - 0.02
    # Quantized LLS pays a measured preemption-churn cost but stays in
    # the same family as EDF (the E3 deviation documented in
    # EXPERIMENTS.md: a paper-faithful LLS is not better than EDF here).
    assert mean_good["LLS"] >= mean_good["EDF"] - 0.05
    # All schedulers complete the workload (sanity).
    assert all(g > 0.5 for g in mean_good.values())

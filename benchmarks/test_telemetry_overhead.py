"""Telemetry overhead microbenchmarks.

The instrumentation contract is that a run which never activates
telemetry pays one module-global read plus an ``enabled`` branch per
call site.  These benchmarks pin that down — the disabled guard against
an uninstrumented baseline loop — and measure the enabled-path cost of
the span and counter primitives for scale planning.
"""

from repro import telemetry
from repro.telemetry import Telemetry


def test_disabled_guard(benchmark):
    """The per-call-site cost when telemetry is off (the default)."""
    telemetry.deactivate()

    def guarded(n=1000):
        hits = 0
        for _ in range(n):
            tel = telemetry.current()
            if tel.enabled:  # pragma: no cover - never taken
                hits += 1
        return hits

    assert benchmark(guarded) == 0


def test_enabled_span_cycle(benchmark):
    """Open + close one span with the real tracer (enabled cost)."""
    tel = Telemetry.wall()

    def cycle():
        span = tel.tracer.start_span(
            "stream", kind=telemetry.MESSAGE, node="P1", trace_id="task:t1"
        )
        tel.tracer.end_span(span)

    benchmark(cycle)
    tel.tracer.clear()


def test_enabled_counter_inc(benchmark):
    tel = Telemetry.wall()
    counter = tel.metrics.counter("net_messages_sent_total")
    benchmark(counter.inc)
    assert counter.value > 0

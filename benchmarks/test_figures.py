"""Benches F1-F3: the paper's three figures as executable artifacts."""

from repro.experiments import (
    f1_graph_example,
    f2_walkthrough,
    f3_allocation_algorithm,
)


def test_f1_graph_example(run_experiment):
    result = run_experiment(f1_graph_example)
    # The three candidate paths of §4.3, in BFS order.
    assert result.column("path") == [
        "{e1,e2}", "{e1,e3}", "{e1,e4,e5,e8}",
    ]
    # Exactly one path is chosen, by max fairness.
    chosen = [r for r in result.rows if r[-1].strip()]
    assert len(chosen) == 1
    fairness = result.column("fairness")
    assert max(fairness) == chosen[0][3]


def test_f2_walkthrough(run_experiment):
    result = run_experiment(f2_walkthrough)
    stages = result.column("stage")
    # A -> B -> C in order: query, assignment, streaming.
    assert stages[0] == "A"
    assert "B" in stages and "C" in stages
    assert stages.index("B") < len(stages) - stages[::-1].index("C")
    times = result.column("t_sim_s")
    assert times == sorted(times)
    assert result.extra["task"].outcome.value == "met"


def test_f3_allocation_algorithm(run_experiment):
    result = run_experiment(f3_allocation_algorithm)
    gaps = result.column("fairness_gap")
    # The paper BFS is near-optimal: small positive gap.
    assert all(0.0 <= g < 0.2 for g in gaps)
    # And far cheaper than exhaustive enumeration on larger graphs.
    paper_cost = result.column("examined_paper")
    exh_cost = result.column("examined_exh")
    assert exh_cost[-1] > 2 * paper_cost[-1]

"""Bench E2: deadline performance vs offered load per policy."""

from repro.experiments import e2_missrate


def test_e2_missrate_vs_load(run_experiment):
    result = run_experiment(e2_missrate)
    rates = sorted(set(result.column("rate/s")))
    by_key = {
        (row[0], row[1]): row for row in result.rows
    }
    # At light load everyone is fine (goodput ~1).
    light = rates[0]
    for policy in ("fairness", "least_loaded", "random", "first"):
        assert by_key[(light, policy)][2] > 0.9
    # Load-aware allocation sustains goodput at least as well as blind
    # random selection at the heaviest rate.
    heavy = rates[-1]
    good = {p: by_key[(heavy, p)][2] for p in
            ("fairness", "least_loaded", "random", "first")}
    assert max(good["fairness"], good["least_loaded"]) >= good["random"] - 0.05

"""Bench E7: the Profiler update-period tradeoff (§4.4)."""

from repro.experiments import e7_update_period


def test_e7_update_period(run_experiment):
    result = run_experiment(e7_update_period)
    periods = result.column("period_s")
    updates = result.column("updates/peer/s")
    staleness = result.column("mean_staleness_s")
    assert periods == sorted(periods)
    # Overhead falls as the period grows (~1/period).
    assert updates[0] > updates[-1] * 2
    # Staleness grows with the period.
    assert staleness[-1] > staleness[0]
    # The system still works across the sweep (soft degradation only).
    assert all(g > 0.5 for g in result.column("goodput"))

"""Microbenchmarks for the hot primitives under the experiments.

These are conventional pytest-benchmark measurements (many rounds) for
the pieces whose cost dominates large runs: the event kernel, the
incremental fairness evaluation, path search, and the allocation
algorithm on the Figure-1 graph.
"""

import numpy as np

from repro.core.allocation import Allocator
from repro.core.fairness import LoadVector, jain_fairness
from repro.graphs.search import iter_paths
from repro.sim import Environment
from tests.test_estimate_allocation import make_domain, make_task


def test_event_kernel_throughput(benchmark):
    """Cost of scheduling + processing 10k timeout events."""

    def run():
        env = Environment()

        def ticker():
            for _ in range(10_000):
                yield env.timeout(0.001)

        env.run(env.process(ticker()))
        return env.now

    result = benchmark(run)
    assert result > 0


def test_jain_fairness_vectorized(benchmark):
    loads = np.random.default_rng(0).uniform(0, 10, size=1000)
    result = benchmark(jain_fairness, loads)
    assert 0 < result <= 1


def test_incremental_fairness_what_if(benchmark):
    """The allocator's inner loop: O(k) what-if over a big domain."""
    vec = LoadVector({f"p{i}": float(i % 7) for i in range(1000)})
    deltas = {"p1": 0.5, "p2": 1.0, "p3": 0.25}
    result = benchmark(vec.fairness_with, deltas)
    assert 0 < result <= 1


def test_fig1_path_search(benchmark):
    info, _net, sc = make_domain()

    def search():
        return list(
            iter_paths(info.resource_graph, sc.v_init, sc.v_sol, "paper")
        )

    paths = benchmark(search)
    assert len(paths) == 3


def test_fig1_allocation(benchmark):
    info, net, sc = make_domain(loads={"P1": 2.0, "P2": 5.0})
    task = make_task(scenario=sc)
    allocator = Allocator()

    def allocate():
        return allocator.allocate(
            info, net, task, sc.v_init, sc.v_sol,
            "P1", "P4", sc.source_object.size_bytes, 0.0,
        )

    result = benchmark(allocate)
    assert result.n_candidates == 3


def test_batch_fairness_what_if(benchmark):
    """Vectorized candidate evaluation vs the scalar loop."""
    vec = LoadVector({f"p{i}": float(i % 7) for i in range(200)})
    rng = np.random.default_rng(0)
    candidates = [
        {f"p{int(j)}": 0.5 for j in rng.integers(0, 200, size=3)}
        for _ in range(256)
    ]
    batch = benchmark(vec.fairness_with_batch, candidates)
    assert len(batch) == 256
    assert all(0 < f <= 1 for f in batch)

"""Bench E9: gossip convergence of inter-domain summaries (§4.4)."""

from repro.experiments import e9_gossip


def test_e9_gossip_convergence(run_experiment):
    result = run_experiment(e9_gossip)
    # Every configuration converges.
    assert all(c == 1.0 for c in result.column("converged"))
    rows = result.rows
    # Higher fanout never converges slower at equal domain count.
    by_domains = {}
    for domains, fanout, _conv, time_s, _rounds in rows:
        by_domains.setdefault(domains, {})[fanout] = time_s
    for domains, per_fanout in by_domains.items():
        fanouts = sorted(per_fanout)
        if len(fanouts) >= 2:
            assert per_fanout[fanouts[-1]] <= per_fanout[fanouts[0]] + 1e-9

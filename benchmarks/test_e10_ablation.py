"""Bench E10: ablations of fairness-max selection and visited-set BFS."""

from repro.experiments import e10_ablation


def test_e10_ablation(run_experiment):
    result = run_experiment(e10_ablation)
    by_key = {(row[0], row[1], row[2]): row for row in result.rows}
    cvs = sorted({row[0] for row in result.rows})
    for cv in cvs:
        fair = by_key[(cv, "fairness", "paper")]
        first = by_key[(cv, "first", "paper")]
        # Fairness-max keeps its fairness advantage at every
        # heterogeneity level (the design choice under test).
        assert fair[3] > first[3], (cv, fair, first)
    # Exhaustive search does not meaningfully improve goodput over the
    # Fig-3 BFS (validating the cheap search).
    for cv in cvs:
        paper = by_key[(cv, "fairness", "paper")]
        exhaustive = by_key[(cv, "fairness", "exhaustive")]
        assert exhaustive[4] <= paper[4] + 0.1

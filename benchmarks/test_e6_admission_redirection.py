"""Bench E6: admission control and cross-domain redirection."""

from repro.experiments import e6_admission


def test_e6_admission_redirection(run_experiment):
    result = run_experiment(e6_admission)
    # Multiple domains formed; redirection happens between them.
    assert all(d >= 2 for d in result.column("domains"))
    assert any(r > 0 for r in result.column("redirect"))
    # Accounting closes: admit + reject ~ 1 of submissions per row
    # (redirected tasks are eventually admitted or rejected elsewhere).
    for row in result.rows:
        admit, reject = row[3], row[5]
        assert admit + reject <= 1.05
        assert admit > 0.5

#!/usr/bin/env python
"""Tele-medicine sensor pipelines on the same middleware.

§1 motivates the architecture with applications beyond media —
including tele-medicine.  This example runs the identical resource-
management stack (Resource Managers, Fig-3 allocation, Profilers,
repair) on a completely different application domain: physiological
sensor recordings (ECG/EEG/SpO2) that must be filtered, downsampled,
compressed or scanned for events by services hosted at peers before
delivery to a clinician's device.

No line of `repro.core` changes: only the catalog (what the states and
services *are*) is swapped — the proof that the middleware is
application-neutral.

Run:  python examples/telemedicine_pipelines.py
"""

import numpy as np

from repro.common.util import fmt_table
from repro.core.manager import RMConfig
from repro.results import MetricsCollector
from repro.net import DomainAwareLatency, Network
from repro.overlay import OverlayNetwork
from repro.pipelines import DataForm, PipelineCatalog, SensorRecording
from repro.sim import Environment, RandomStreams
from repro.workloads.arrivals import TaskArrivalProcess, WorkloadConfig
from repro.workloads.population import PopulationConfig, generate_specs


def main() -> None:
    streams = RandomStreams(2026)
    env = Environment()
    network = Network(env, bandwidth=2.5e5)  # sensor links are slow
    metrics = MetricsCollector(env)
    overlay = OverlayNetwork(
        env, network,
        rm_config=RMConfig(max_peers=10, canonical_duration=60.0),
        on_task_event=metrics.on_task_event,
        streams=streams,
    )
    network.latency = DomainAwareLatency(
        overlay.domain_of.get, intra=0.008, inter=0.060,
        rng=streams.get("latency"),
    )

    # --- the pipeline domain: catalog + recordings -----------------------
    catalog = PipelineCatalog()
    rng = streams.get("population")
    recordings = [
        SensorRecording(f"patient{i}-{kind}", form, duration_s=60.0)
        for i, (kind, form) in enumerate(
            (f.kind, f) for f in catalog.source_formats() for _ in range(3)
        )
    ]
    pop = PopulationConfig(
        n_peers=18, n_objects=len(recordings), replication=2,
        services_per_peer=8,
    )
    # The generic population generator runs on the pipeline catalog
    # thanks to the shared catalog protocol.
    specs = generate_specs(
        catalog, pop, rng,
        objects=recordings, id_prefix="node",
    )
    for spec in specs:
        overlay.join(spec)
    print(f"overlay: {overlay.n_peers} nodes in {overlay.n_domains} "
          f"domains; {len(recordings)} recordings; "
          f"{len(catalog.stages())} pipeline-stage types")

    # --- clinicians request processed signals -----------------------------
    workload = TaskArrivalProcess(
        overlay, catalog, recordings,
        config=WorkloadConfig(rate=0.6, deadline_slack=4.0),
        rng=streams.get("arrivals"),
    )
    metrics.start_sampling(overlay, period=1.0)
    env.run(until=400.0)
    workload.stop()
    env.run(until=460.0)

    summary = metrics.summary(net_stats=network.stats)
    print()
    print(fmt_table(
        ["metric", "value"],
        [[k, v if not isinstance(v, float) else f"{v:.3f}"]
         for k, v in summary.row().items()],
    ))

    # Show one concrete allocation: what pipeline did a task get?
    done = [
        t for t in metrics.tasks.values()
        if t.outcome is not None and t.outcome.value == "met"
        and len(t.allocation) >= 2
    ]
    if done:
        task = done[0]
        print(f"\nexample pipeline for {task.name!r} "
              f"(goal {task.goal_state}):")
        for service_id, peer in task.allocation:
            print(f"  {service_id}  @ {peer}")
    assert summary.goodput > 0.7, "pipeline domain should mostly work"
    print("\nsame middleware, different application domain — no core "
          "changes required")


if __name__ == "__main__":
    main()

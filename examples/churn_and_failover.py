#!/usr/bin/env python
"""Dynamic environments: churn, service-graph repair, RM failover.

Demonstrates §4.1/§4.5 adaptation end to end:

1. a 20-peer overlay runs a steady transcoding workload;
2. peers churn (exponential lifetimes) — the RM senses withdrawn
   connections, prunes its resource graph, and *repairs* interrupted
   service graphs by re-running the allocation from wherever the
   stream's data had reached;
3. halfway through, the primary Resource Manager itself is crashed —
   the backup RM detects the silent primary, restores the replicated
   information base, and takes over the domain.

Run:  python examples/churn_and_failover.py
"""

from repro.overlay import ChurnConfig
from repro.overlay.failover import FailoverConfig
from repro.workloads import (
    PopulationConfig,
    ScenarioConfig,
    WorkloadConfig,
    build_scenario,
)


def main() -> None:
    config = ScenarioConfig(
        seed=7,
        population=PopulationConfig(
            n_peers=20, n_objects=8, replication=3
        ),
        workload=WorkloadConfig(rate=0.4),
        churn=ChurnConfig(
            mean_lifetime=150.0, mean_offtime=10.0, graceful_prob=0.5
        ),
        failover=FailoverConfig(sync_period=3.0, dead_after_periods=2.0),
    )
    scenario = build_scenario(config)
    domain = next(iter(scenario.overlay.domains.values()))
    primary, backup = domain.rm, domain.backup
    print(f"primary RM: {primary.node_id}   backup RM: "
          f"{backup.node_id if backup else '(none)'}")

    crash_at = 250.0

    def crash_the_rm():
        yield scenario.env.timeout(crash_at)
        print(f"t={scenario.env.now:6.1f}s  !!! crashing primary RM "
              f"{primary.node_id}")
        scenario.overlay.fail_peer(primary.node_id)

    scenario.env.process(crash_the_rm())
    summary = scenario.run(duration=500.0, drain=60.0)

    domain = next(iter(scenario.overlay.domains.values()))
    print(f"\nafter the run, domain leader is {domain.rm.node_id} "
          f"(active={domain.rm.active})")
    assert backup is not None and domain.rm.node_id == backup.node_id

    churn = scenario.churn
    print(f"churn: {churn.departures} departures "
          f"({churn.crashes} crashes), {churn.rejoins} replacements joined")
    print(f"service-graph repairs performed: {summary.n_repairs}")
    print(f"queries lost while leaderless: "
          f"{scenario.workload.n_submit_failures}")
    print(f"\ngoodput despite churn + RM crash: {summary.goodput:.1%} "
          f"({summary.n_met}/{summary.n_submitted} met their deadline)")
    print(f"tasks lost to unrepairable failures: {summary.n_failed}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""A transcoding farm under load: many users, heterogeneous peers.

The paper's motivating workload (§1): media streaming and transcoding
for heterogeneous receivers — "transcoded to different formats or
presentations (e.g., lower resolution) to bring the data to different
devices".  This example builds a 24-peer domain-structured overlay with
a full format catalog, drives it with Poisson user queries for an
on-demand library of movies, and reports what the resource-management
layer did: allocations, fairness over time, deadline performance, and
the message overhead it cost.

Run:  python examples/media_streaming_farm.py
"""

from repro.common.util import fmt_table
from repro.core.manager import RMConfig
from repro.workloads import (
    PopulationConfig,
    ScenarioConfig,
    WorkloadConfig,
    build_scenario,
)


def main() -> None:
    config = ScenarioConfig(
        seed=2005,
        allocation_policy="fairness",
        population=PopulationConfig(
            n_peers=24,
            n_objects=12,          # the movie library
            replication=2,
            power_cv=0.6,          # strongly heterogeneous CPUs
            services_per_peer=6,
        ),
        workload=WorkloadConfig(rate=0.8, deadline_slack=3.0),
        rm=RMConfig(max_peers=12),  # forces a two-domain overlay
    )
    scenario = build_scenario(config)
    print(
        f"overlay: {scenario.overlay.n_peers} peers in "
        f"{scenario.overlay.n_domains} domains; "
        f"{len(scenario.objects)} movies; "
        f"{sum(len(s.services) for s in scenario.overlay.specs.values())} "
        "transcoder instances"
    )

    summary = scenario.run(duration=600.0, drain=60.0)

    print("\n-- streaming service report ------------------------------")
    rows = [
        ["user queries", summary.n_submitted],
        ["admitted", summary.n_admitted],
        ["redirected across domains", summary.n_redirected],
        ["met deadline", summary.n_met],
        ["missed deadline", summary.n_missed],
        ["rejected (admission control)", summary.n_rejected],
        ["lost", summary.n_failed],
    ]
    print(fmt_table(["event", "count"], rows))
    print(f"\ngoodput: {summary.goodput:.1%}")
    print(f"mean / p95 response: {summary.mean_response:.2f}s "
          f"/ {summary.p95_response:.2f}s")
    print(f"mean fairness index of measured loads: "
          f"{summary.mean_fairness:.3f}")
    print(f"control+data messages: {summary.messages} "
          f"({summary.bytes_sent / 1e9:.2f} GB on the wire)")

    print("\n-- per-domain view ------------------------------------------")
    rows = []
    for domain in scenario.overlay.domains.values():
        rm = domain.rm
        rows.append([
            domain.domain_id,
            rm.node_id,
            rm.info.n_peers,
            rm.stats["admitted"],
            rm.stats["redirected_out"],
            f"{rm.domain_fairness():.3f}",
        ])
    print(fmt_table(
        ["domain", "rm", "peers", "admitted", "redirected", "fairness"],
        rows,
    ))


if __name__ == "__main__":
    main()

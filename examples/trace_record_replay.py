#!/usr/bin/env python
"""Record a workload to a trace file, then replay it bit-identically.

Useful for regression-testing policy changes on a frozen request
sequence, or as the interchange format a production request log would
be converted into.  The replay here runs on an identical system, so the
outcomes must match the original run exactly — which this script
asserts.

Run:  python examples/trace_record_replay.py
"""

import io

from repro.workloads import (
    PopulationConfig,
    ScenarioConfig,
    WorkloadConfig,
    build_scenario,
)
from repro.workloads.trace import (
    TraceRecorder,
    TraceReplayProcess,
    load_trace,
    save_trace,
)


def build():
    return build_scenario(ScenarioConfig(
        seed=13,
        population=PopulationConfig(n_peers=10, n_objects=5),
        workload=WorkloadConfig(rate=0.8),
    ))


def main() -> None:
    # --- 1. run and record ------------------------------------------------
    original = build()
    recorder = TraceRecorder()
    original.workload.on_generate = recorder.record
    summary1 = original.run(duration=120.0, drain=40.0)
    print(f"original run : {summary1.n_met} met / "
          f"{summary1.n_missed} missed / {summary1.n_rejected} rejected "
          f"({len(recorder.entries)} requests)")

    # --- 2. freeze to CSV ----------------------------------------------------
    buf = io.StringIO()
    save_trace(recorder.entries, buf)
    text = buf.getvalue()
    print(f"trace        : {len(text.splitlines()) - 1} rows, "
          f"{len(text)} bytes of CSV")
    print("first rows   :")
    for line in text.splitlines()[:4]:
        print(f"  {line}")

    # --- 3. replay on a fresh identical system ------------------------------
    entries = load_trace(text)
    replayed = build()
    replayed.workload.stop()          # no generated arrivals
    TraceReplayProcess(replayed.overlay, entries)
    replayed.env.run(until=replayed.env.now + 160.0)
    summary2 = replayed.summary()
    print(f"replayed run : {summary2.n_met} met / "
          f"{summary2.n_missed} missed / {summary2.n_rejected} rejected")

    assert summary2.n_met == summary1.n_met
    assert summary2.n_missed == summary1.n_missed
    assert summary2.n_rejected == summary1.n_rejected
    print("replay reproduced the original outcomes exactly")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Compare allocation policies head-to-head on an identical workload.

Uses the named-substream RNG design: every policy sees byte-identical
arrivals, peers and latencies, so the differences in the table are the
policy, not the noise.  This is experiment E1/E2 in miniature, as
library-user code.

Run:  python examples/policy_comparison.py
"""

from repro.common.util import fmt_table
from repro.workloads import (
    PopulationConfig,
    ScenarioConfig,
    WorkloadConfig,
    build_scenario,
)

POLICIES = ["fairness", "least_loaded", "round_robin", "random", "first"]


def run_policy(policy: str) -> dict:
    config = ScenarioConfig(
        seed=99,                      # identical across policies
        allocation_policy=policy,
        population=PopulationConfig(
            n_peers=16, n_objects=8, replication=2, power_cv=0.6
        ),
        workload=WorkloadConfig(rate=1.0, deadline_slack=2.5),
    )
    scenario = build_scenario(config)
    summary = scenario.run(duration=400.0, drain=40.0)
    return {
        "policy": policy,
        "fairness": summary.mean_fairness,
        "goodput": summary.goodput,
        "miss_rate": summary.miss_rate,
        "mean_resp": summary.mean_response,
        "p95_resp": summary.p95_response,
    }


def main() -> None:
    rows = []
    for policy in POLICIES:
        r = run_policy(policy)
        rows.append([
            r["policy"], f"{r['fairness']:.3f}", f"{r['goodput']:.3f}",
            f"{r['miss_rate']:.3f}", f"{r['mean_resp']:.2f}",
            f"{r['p95_resp']:.2f}",
        ])
        print(f"ran {policy}")
    print()
    print(fmt_table(
        ["policy", "fairness", "goodput", "miss_rate", "mean_resp_s",
         "p95_resp_s"],
        rows,
    ))
    print("\nfairness = time-weighted mean Jain index of measured peer "
          "loads (eq. 1 of the paper); the paper's policy is 'fairness'")


if __name__ == "__main__":
    main()

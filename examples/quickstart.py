#!/usr/bin/env python
"""Quickstart: build a peer-to-peer domain, stream one transcoded video.

This is the Figure-2 story in ~60 lines of user code: a domain of peers
led by a Resource Manager, a media object stored at a peer, a user
query ("give me that video as 640x480 MPEG-4 at 64 kbps within 60
seconds"), the RM's fairness-maximizing allocation, and the resulting
transcoding session.

Run:  python examples/quickstart.py
"""

from repro.core import Peer, PeerConfig, ResourceManager
from repro.core.info_base import PeerRecord
from repro.media.fig1 import build_fig1_graph
from repro.net import ConstantLatency, Network
from repro.sim import Environment


def main() -> None:
    env = Environment()
    network = Network(env, ConstantLatency(0.010), bandwidth=1.25e6)

    # --- one domain: a Resource Manager and four peers -----------------
    rm = ResourceManager(env, network, "rm0", "domain0")
    scenario = build_fig1_graph(duration_s=60.0)  # the paper's example
    peers = {}
    for peer_id in scenario.peers:
        peers[peer_id] = Peer(
            env, network, peer_id, PeerConfig(power=10.0), rm_id="rm0"
        )
        rm.admit_peer(
            PeerRecord(peer_id=peer_id, power=10.0, bandwidth=1.25e6)
        )

    # --- the domain's resource graph: who offers which transcoder ------
    for edge in scenario.graph.edges():
        rm.info.register_service_instance(
            edge.src, edge.dst, edge.service_id, edge.peer_id,
            edge.work, edge.out_bytes, edge_id=edge.edge_id,
        )

    # --- a media object stored at P1 ------------------------------------
    movie = scenario.source_object
    peers["P1"].store_object(movie)
    rm.object_catalog[movie.name] = movie
    rm.info.peer("P1").objects.add(movie.name)
    print(f"stored {movie} at P1 ({movie.size_bytes / 1e6:.1f} MB)")

    # --- a user at P4 asks for it in the Figure-1 target format ---------
    def user():
        reply = yield from peers["P4"].submit_task(
            movie.name, scenario.v_sol, deadline=60.0
        )
        print(f"t={env.now:6.2f}s  RM answered: {reply.payload}")

    env.process(user())
    env.run(until=60.0)

    # --- what happened ---------------------------------------------------
    task = next(iter(rm.tasks.values()))
    print(f"allocation: {' -> '.join(f'{s}@{p}' for s, p in task.allocation)}")
    print(
        f"outcome: {task.outcome.value} "
        f"(response {task.response_time:.2f}s, deadline "
        f"{task.qos.deadline:.0f}s)"
    )
    print(f"domain fairness after run: {rm.domain_fairness():.3f}")
    assert task.outcome is not None and task.outcome.value == "met"


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Live demo: the quickstart story over real localhost UDP sockets.

Same protocol, no simulator network: every node is a process-like
asyncio endpoint with its own UDP socket and wall-clock event kernel.
A bootstrap service seeds the domain and runs the §4.1 RM
qualification election; the winner (the well-provisioned candidate
``M0``) becomes the Resource Manager and the Figure-1 peers P1..P4
serve the transcoding graph.  A task submitted at P4 travels
``TASK_REQUEST -> TASK_ACK -> COMPOSE -> START_STREAM -> STREAM ->
STEP_DONE -> TASK_DONE`` — each hop a real datagram with ack/retry.

Run:  python examples/live_domain.py
"""

import asyncio

from repro.runtime import LiveCluster, LiveClusterConfig


async def main() -> None:
    config = LiveClusterConfig(n_peers=4, object_duration_s=3.0)
    async with LiveCluster(config) as cluster:
        rm = cluster.rm_node
        print(f"domain up: {rm.node_id} elected RM "
              f"@ {rm.transport.host}:{rm.transport.port}")
        for peer in sorted(cluster.peers(), key=lambda n: n.node_id):
            print(f"  peer {peer.node_id} "
                  f"@ {peer.transport.host}:{peer.transport.port}")

        # A user at P4 asks for the movie in the Figure-1 target format.
        ack = await cluster.submit("P4", name="movie", deadline=20.0)
        print(f"RM answered: {ack}")
        task_id = ack["task_id"]

        # Wait for the TASK_DONE to land (real wall-clock execution).
        await cluster.wait_task_event(task_id, "completed", timeout=15.0)
        task = cluster.task(task_id)
        print(f"allocation: "
              f"{' -> '.join(f'{s}@{p}' for s, p in task.allocation)}")
        print(f"outcome: {task.state.name}")

        agg = cluster.aggregate_summary()
        print(f"datagrams: sent={agg['sent']} delivered={agg['delivered']} "
              f"dropped={agg['dropped']}")
        print("by kind: " + ", ".join(
            f"{kind}={n}" for kind, n in sorted(agg["by_kind"].items())
        ))
        assert task.state.name == "DONE"


if __name__ == "__main__":
    asyncio.run(main())

"""The repro-bench harness: measurement, report schema, regression gate."""

import json

import pytest

from repro.benchmarking import cli
from repro.benchmarking.harness import (
    SCHEMA_VERSION,
    BenchRecord,
    PhaseTimer,
    Regression,
    find_regressions,
    load_report,
    report_document,
    run_benchmark,
    write_report,
)
from repro.benchmarking.scenarios import BENCHES, select


def _toy_bench(counter):
    def fn():
        counter["calls"] += 1
        return {
            "events": 1000,
            "phases": {"build": 0.001, "run": 0.002},
            "metrics": {"widgets": 7},
        }

    return fn


class TestRunBenchmark:
    def test_warmup_and_repeat_accounting(self):
        counter = {"calls": 0}
        rec = run_benchmark("toy", _toy_bench(counter), warmup=2, repeat=3)
        assert counter["calls"] == 5
        assert rec.warmup == 2
        assert rec.repeat == 3

    def test_statistics_shape(self):
        rec = run_benchmark("toy", _toy_bench({"calls": 0}), warmup=0,
                            repeat=3)
        assert rec.events == 1000
        assert set(rec.wall_s) == {"mean", "min", "max", "stdev"}
        assert rec.wall_s["min"] <= rec.wall_s["mean"] <= rec.wall_s["max"]
        # Throughput uses the best (minimum) wall sample.
        assert rec.events_per_sec == pytest.approx(
            rec.events / rec.wall_s["min"]
        )
        assert rec.peak_rss_kb > 0
        assert rec.metrics == {"widgets": 7}
        assert rec.phases == {"build": 0.001, "run": 0.002}

    def test_repeat_must_be_positive(self):
        with pytest.raises(ValueError):
            run_benchmark("toy", _toy_bench({"calls": 0}), repeat=0)

    def test_single_repeat_has_zero_stdev(self):
        rec = run_benchmark("toy", _toy_bench({"calls": 0}), warmup=0,
                            repeat=1)
        assert rec.wall_s["stdev"] == 0.0


class TestPhaseTimer:
    def test_phases_accumulate(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            pass
        with timer.phase("a"):
            pass
        with timer.phase("b"):
            pass
        assert set(timer.phases) == {"a", "b"}
        assert timer.phases["a"] >= 0.0


class TestReportRoundTrip:
    def _record(self, name="toy", eps=123.0):
        return BenchRecord(
            name=name, params={"n": 1}, warmup=1, repeat=2,
            wall_s={"mean": 1.0, "min": 1.0, "max": 1.0, "stdev": 0.0},
            events=123, events_per_sec=eps, peak_rss_kb=100,
        )

    def test_write_then_load(self, tmp_path):
        doc = report_document([self._record()], mode="full",
                              bench_id="BENCH_T")
        path = tmp_path / "bench.json"
        write_report(str(path), doc)
        loaded = load_report(str(path))
        assert loaded["schema_version"] == SCHEMA_VERSION
        assert loaded["bench_id"] == "BENCH_T"
        assert loaded["mode"] == "full"
        assert loaded["results"][0]["name"] == "toy"
        assert loaded["results"][0]["events_per_sec"] == 123.0

    def test_unsupported_schema_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": 999, "results": []}))
        with pytest.raises(ValueError, match="schema_version"):
            load_report(str(path))

    def test_regression_gate(self):
        baseline = {
            "schema_version": SCHEMA_VERSION,
            "results": [
                {"name": "fast", "events_per_sec": 1000.0},
                {"name": "steady", "events_per_sec": 1000.0},
                {"name": "gone", "events_per_sec": 1000.0},
            ],
        }
        current = [
            self._record("fast", eps=500.0),     # 50% slower -> flagged
            self._record("steady", eps=900.0),   # 10% slower -> ok
            self._record("new", eps=1.0),        # not in baseline -> skip
        ]
        regs = find_regressions(baseline, current, gate_pct=25.0)
        assert [r.name for r in regs] == ["fast"]
        assert regs[0].slowdown_pct == pytest.approx(50.0)

    def test_regression_slowdown_pct_guards_zero_baseline(self):
        assert Regression("x", 0.0, 10.0).slowdown_pct == 0.0


class TestSelect:
    def test_default_returns_all(self):
        assert [s.name for s in select()] == [s.name for s in BENCHES]

    def test_quick_skips_heavy_rungs(self):
        names = {s.name for s in select(quick=True)}
        assert "scalability_2500" not in names
        assert "scalability_250" in names

    def test_only_filters_in_registry_order(self):
        names = [
            s.name
            for s in select(only=["micro_mailbox", "scalability_250"])
        ]
        assert names == ["scalability_250", "micro_mailbox"]

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="no_such_bench"):
            select(only=["no_such_bench"])

    def test_quick_params_change_effective_params(self):
        spec = next(s for s in BENCHES if s.name == "micro_mailbox")
        full = spec.effective_params(quick=False)
        quick = spec.effective_params(quick=True)
        assert quick["n_items"] < full["n_items"]


class TestCli:
    def test_list_exits_zero(self, capsys):
        assert cli.main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "scalability_1000" in out

    def test_unknown_bench_exits_two(self, capsys):
        assert cli.main(["--only", "nope", "--out", "-"]) == 2

    def test_micro_quick_run_writes_report(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        rc = cli.main([
            "--quick", "--only", "micro_mailbox", "--out", str(out),
            "--warmup", "0", "--repeat", "1", "--bench-id", "BENCH_T",
        ])
        assert rc == 0
        doc = load_report(str(out))
        assert doc["bench_id"] == "BENCH_T"
        assert doc["mode"] == "quick"
        (rec,) = doc["results"]
        assert rec["name"] == "micro_mailbox"
        assert rec["events"] > 0
        assert rec["events_per_sec"] > 0

    def test_baseline_gate_fails_on_regression(self, tmp_path, capsys):
        # A baseline with an absurdly high events/sec forces the gate
        # to trip without a second (slow) benchmark run.
        base = {
            "schema_version": SCHEMA_VERSION,
            "bench_id": "BENCH_T",
            "mode": "quick",
            "results": [
                {"name": "micro_mailbox", "events_per_sec": 1e15},
            ],
        }
        base_path = tmp_path / "base.json"
        base_path.write_text(json.dumps(base))
        rc = cli.main([
            "--quick", "--only", "micro_mailbox", "--out", "-",
            "--warmup", "0", "--repeat", "1",
            "--baseline", str(base_path),
        ])
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_missing_baseline_is_a_clean_error(self, tmp_path, capsys):
        rc = cli.main([
            "--quick", "--only", "micro_mailbox", "--out", "-",
            "--warmup", "0", "--repeat", "1",
            "--baseline", str(tmp_path / "does_not_exist.json"),
        ])
        assert rc == 2
        assert "baseline file not found" in capsys.readouterr().err

"""The decomposed RM control plane (repro.core.control).

Covers the refactor's contract: the task registry's snapshot/restore
round-trip keeps in-flight tasks across a backup takeover (no lost or
duplicated state), redirect targeting honors the summary staleness
bound, the placement-policy registry resolves names and custom
policies, and the repro.metrics -> repro.results rename shim keeps old
imports working.
"""

import sys
import warnings

import pytest

from repro.core import ResourceManager
from repro.core.control.placement import (
    CallablePolicy,
    PlacementPolicy,
    _POLICY_FACTORIES,
    make_placement_policy,
    policy_names,
    register_policy,
)
from repro.core.manager import RMConfig
from repro.media import MediaFormat
from repro.net import ConstantLatency, Network
from repro.overlay.failover import FailoverAgent, FailoverConfig
from repro.sim import Environment
from repro.summaries.domain_summary import DomainSummary
from repro.tasks.qos import QoSRequirements
from repro.tasks.task import ApplicationTask, TaskState

SRC = MediaFormat("MPEG-2", 640, 480, 256.0)
DST = MediaFormat("MPEG-4", 640, 480, 64.0)


def _with_backup(d):
    """Pair the live domain's RM with a passive backup."""
    backup = ResourceManager(
        d.env, d.net, "rmb", "d0", active=False,
        on_task_event=lambda t, e: d.events.append(
            (d.env.now, t.task_id, e)
        ),
    )
    agent = FailoverAgent(
        d.rm, backup,
        FailoverConfig(sync_period=1.0, dead_after_periods=2.0),
    )
    return backup, agent


class TestTakeoverRoundTrip:
    """TaskRegistry snapshot/restore through a backup-RM takeover."""

    def test_inflight_task_survives_takeover_exactly_once(self, live_domain):
        d = live_domain
        backup, agent = _with_backup(d)
        acks = d.submit(deadline=120.0)
        d.env.run(until=3.0)
        assert acks[0]["disposition"] == "accepted"
        task_id = acks[0]["task_id"]
        # In flight on the primary, replicated by at least one sync.
        assert task_id in d.rm.sessions
        assert agent.last_snapshot is not None
        assert task_id in agent.last_snapshot["tasks"]
        primary_tasks = set(d.rm.tasks)

        d.rm.fail()
        d.env.run(until=150.0)

        assert agent.took_over and backup.active
        # Round trip: every replicated task restored, none invented.
        assert set(backup.tasks) == primary_tasks
        # The in-flight task finished under the new RM, exactly once.
        assert backup.tasks[task_id].state is TaskState.DONE
        assert backup.stats["completed"] == 1
        assert d.rm.stats["completed"] == 0
        done = [1 for _, tid, e in d.events
                if tid == task_id and e == "completed"]
        assert len(done) == 1

    def test_restored_sessions_are_live_not_copies(self, live_domain):
        d = live_domain
        backup, agent = _with_backup(d)
        d.submit(deadline=120.0)
        d.env.run(until=3.0)
        d.rm.fail()
        d.env.run(until=8.0)  # takeover, task still running
        assert backup.active
        assert backup.sessions, "session state must survive the restore"
        for session in backup.sessions.values():
            assert backup.info.service_graphs[session.task_id]

    def test_snapshot_round_trips_summary_stamps(self, live_domain):
        d = live_domain
        backup, _agent = _with_backup(d)
        summary = DomainSummary("dX", "rmX").rebuild(
            ["movie"], [], 2, 0.25, geometry=(256, 3)
        )
        d.rm.known_rms["rmX"] = "dX"
        d.rm.info.note_summary("rmX", summary, now=7.5)
        backup.restore_state(d.rm.snapshot_state())
        assert backup.info.remote_summaries["rmX"] is summary
        assert backup.info.summary_received_at["rmX"] == 7.5

    def test_restore_tolerates_snapshot_without_stamps(self, live_domain):
        """Snapshots from pre-staleness primaries restore cleanly."""
        d = live_domain
        backup, _agent = _with_backup(d)
        snapshot = d.rm.snapshot_state()
        del snapshot["summary_received_at"]
        backup.restore_state(snapshot)
        assert backup.info.summary_received_at == {}


def _task(name="movie"):
    return ApplicationTask(
        name=name, qos=QoSRequirements(deadline=60.0),
        initial_state=SRC, goal_state=DST,
        origin_peer="a1", submitted_at=0.0,
    )


def _summary(rm_id, domain, objects, mean_util):
    return DomainSummary(domain, rm_id).rebuild(
        objects, [], 2, mean_util, geometry=(256, 3)
    )


class TestRedirectStaleness:
    """pick_redirect_target under RMConfig.redirect_summary_max_age."""

    def build(self, max_age):
        env = Environment()
        net = Network(env, ConstantLatency(0.01), bandwidth=1e7)
        rm = ResourceManager(
            env, net, "rmA", "dA",
            rm_config=RMConfig(redirect_summary_max_age=max_age),
        )
        return rm

    def test_fresh_summary_targets_owning_domain(self):
        rm = self.build(max_age=5.0)
        rm.known_rms["rmB"] = "dB"
        rm.info.note_summary(
            "rmB", _summary("rmB", "dB", ["movie"], 0.2), now=-1.0
        )
        assert rm.admission.pick_redirect_target(_task()) == "rmB"

    def test_stale_summary_demoted_to_fallback(self):
        rm = self.build(max_age=5.0)
        rm.known_rms["rmB"] = "dB"
        rm.known_rms["rmC"] = "dC"
        # rmB's summary claims the object but is long stale; rmC is
        # fresh, busier, and also claims it: fresh wins.
        rm.info.note_summary(
            "rmB", _summary("rmB", "dB", ["movie"], 0.1), now=-50.0
        )
        rm.info.note_summary(
            "rmC", _summary("rmC", "dC", ["movie"], 0.8), now=-1.0
        )
        assert rm.admission.pick_redirect_target(_task()) == "rmC"

    def test_all_stale_still_forwards_blind(self):
        """Demotion is not rejection: a stale-only roster still tries."""
        rm = self.build(max_age=5.0)
        rm.known_rms["rmB"] = "dB"
        rm.info.note_summary(
            "rmB", _summary("rmB", "dB", ["movie"], 0.1), now=-50.0
        )
        assert rm.admission.pick_redirect_target(_task()) == "rmB"

    def test_default_trusts_any_age(self):
        rm = self.build(max_age=None)
        rm.known_rms["rmB"] = "dB"
        rm.info.note_summary(
            "rmB", _summary("rmB", "dB", ["movie"], 0.1), now=-1e6
        )
        assert rm.admission.pick_redirect_target(_task()) == "rmB"

    def test_unstamped_summary_counts_as_fresh(self):
        """Hand-installed summaries (no gossip receipt) are trusted."""
        rm = self.build(max_age=5.0)
        rm.known_rms["rmB"] = "dB"
        rm.info.remote_summaries["rmB"] = _summary(
            "rmB", "dB", ["movie"], 0.2
        )
        assert rm.admission.pick_redirect_target(_task()) == "rmB"


class TestPolicyRegistry:
    def test_builtin_names(self):
        for name in ("paper", "fairness", "first", "random",
                     "least_loaded", "round_robin"):
            assert name in policy_names()

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown placement policy"):
            make_placement_policy("nope")

    def test_fairness_aliases_paper(self):
        assert make_placement_policy("fairness").name == "paper"

    def test_custom_policy_plugs_into_rm(self):
        class LastPolicy(PlacementPolicy):
            name = "last"

            def select(self, candidates):
                return candidates[-1]

        register_policy("last", lambda rng: LastPolicy())
        try:
            env = Environment()
            net = Network(env, ConstantLatency(0.01), bandwidth=1e7)
            rm = ResourceManager(
                env, net, "rm0", "d0",
                rm_config=RMConfig(placement_policy="last"),
            )
            assert rm.policy_name == "last"
        finally:
            del _POLICY_FACTORIES["last"]

    def test_explicit_allocator_selector_is_the_policy(self):
        """Pre-built allocators keep their selector (parity path)."""
        from repro.baselines.selectors import make_allocator

        env = Environment()
        net = Network(env, ConstantLatency(0.01), bandwidth=1e7)
        rm = ResourceManager(
            env, net, "rm0", "d0",
            allocator=make_allocator("least_loaded"),
        )
        assert rm.policy_name == "least_loaded"

    def test_policy_name_overrides_allocator_selector(self):
        from repro.baselines.selectors import make_allocator

        env = Environment()
        net = Network(env, ConstantLatency(0.01), bandwidth=1e7)
        rm = ResourceManager(
            env, net, "rm0", "d0",
            allocator=make_allocator("least_loaded"),
            policy="paper",
        )
        assert rm.policy_name == "paper"

    def test_callable_policy_derives_names(self):
        from repro.baselines.selectors import RandomSelector, select_first

        assert CallablePolicy(select_first).name == "first"
        assert CallablePolicy(RandomSelector()).name == "random"


class TestResultsRenameShim:
    def test_repro_metrics_warns_and_aliases(self):
        for mod in [m for m in sys.modules if m.startswith("repro.metrics")]:
            sys.modules.pop(mod)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            import repro.metrics  # noqa: F401
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )

    def test_shim_exports_are_the_real_objects(self):
        from repro.metrics import MetricsCollector as shimmed
        from repro.metrics.collector import MetricsCollector as submodule
        from repro.results.collector import MetricsCollector as real

        assert shimmed is real
        assert submodule is real

    def test_timeseries_submodule_alias(self):
        from repro.metrics.timeseries import TimeSeries as shimmed
        from repro.results.timeseries import TimeSeries as real

        assert shimmed is real

"""Final coverage batch: tracing, CLI export, churn mutator, misc."""

import json

import numpy as np

from repro.core import protocol
from repro.experiments.cli import main as cli_main
from repro.workloads import (
    PopulationConfig,
    ScenarioConfig,
    WorkloadConfig,
    build_scenario,
)


class TestTracingScenario:
    def test_tracer_records_when_enabled(self):
        cfg = ScenarioConfig(
            seed=6,
            population=PopulationConfig(n_peers=6, n_objects=3),
            workload=WorkloadConfig(rate=0.5),
            tracing=True,
        )
        scenario = build_scenario(cfg)
        scenario.run(duration=40.0, drain=20.0)
        assert scenario.tracer is not None
        assert scenario.tracer.count("net.send") > 0
        assert scenario.tracer.count("cpu.complete") > 0
        kinds = {r.kind for r in scenario.tracer.records}
        assert "task.admitted" in kinds

    def test_no_tracer_by_default(self):
        cfg = ScenarioConfig(
            seed=6,
            population=PopulationConfig(n_peers=4, n_objects=2),
        )
        assert build_scenario(cfg).tracer is None


class TestCliExport:
    def test_json_and_csv_written(self, tmp_path, capsys):
        jdir = tmp_path / "json"
        cdir = tmp_path / "csv"
        assert cli_main([
            "f1", "--quick", "--json", str(jdir), "--csv", str(cdir),
        ]) == 0
        doc = json.loads((jdir / "f1.json").read_text())
        assert doc["experiment_id"] == "f1"
        assert len(doc["rows"]) == 3
        csv_text = (cdir / "f1.csv").read_text()
        assert csv_text.splitlines()[0].startswith("path,")


class TestChurnMutator:
    def test_replacement_spec_rewritten(self):
        from repro.core.manager import RMConfig
        from repro.net import ConstantLatency, Network
        from repro.overlay import (
            ChurnConfig,
            ChurnProcess,
            OverlayNetwork,
            PeerSpec,
        )
        from repro.sim import Environment

        env = Environment()
        net = Network(env, ConstantLatency(0.005))
        overlay = OverlayNetwork(env, net,
                                 rm_config=RMConfig(max_peers=20),
                                 enable_gossip=False)
        for i in range(6):
            overlay.join(PeerSpec(peer_id=f"p{i}", power=10.0,
                                  bandwidth=2e6, uptime=0.9))

        def upgrade(spec, old_id):
            spec.power = 99.0  # replacements arrive beefier
            return spec

        churn = ChurnProcess(
            overlay,
            ChurnConfig(mean_lifetime=3.0, mean_offtime=0.5),
            rng=np.random.default_rng(4),
            spec_mutator=upgrade,
        )
        churn.watch_all()
        env.run(until=60.0)
        assert churn.rejoins > 0
        upgraded = [
            s for pid, s in overlay.specs.items() if ".r" in pid
        ]
        assert upgraded and all(s.power == 99.0 for s in upgraded)


class TestSmallBits:
    def test_protocol_size_default(self):
        assert protocol.size_of("unknown-kind") == 256.0
        assert protocol.size_of(protocol.RM_SYNC) == 4096.0

    def test_environment_repr(self):
        from repro.sim import Environment

        env = Environment()
        env.timeout(1.0)
        text = repr(env)
        assert "now=0.0" in text and "queued=1" in text

    def test_network_hottest_destination(self):
        from repro.net import ConstantLatency, NetNode, Network
        from repro.sim import Environment

        env = Environment()
        net = Network(env, ConstantLatency(0.001))
        a = NetNode(env, net, "a")
        b = NetNode(env, net, "b")
        assert net.stats.hottest_destination() == ("", 0)
        a.send("x", "b")
        a.send("x", "b")
        b.send("x", "a")
        node, count = net.stats.hottest_destination()
        assert node == "b" and count == 2

    def test_scenario_summary_idempotent(self):
        cfg = ScenarioConfig(
            seed=6,
            population=PopulationConfig(n_peers=4, n_objects=2),
            workload=WorkloadConfig(rate=0.5),
        )
        scenario = build_scenario(cfg)
        scenario.run(duration=30.0, drain=10.0)
        s1 = scenario.summary()
        s2 = scenario.summary()
        assert s1.n_met == s2.n_met and s1.messages == s2.messages

"""The adversarial scenario DSL: spec validation, stressors, suite."""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.scenarios import (
    METRICS_SCHEMA_VERSION,
    AdversarySpec,
    ArrivalSpec,
    FaultScript,
    FaultSpec,
    MisbehavingPeer,
    ScenarioSpec,
    build_stressed_scenario,
    choose_liars,
    load_spec,
    make_workload_cls,
    parse_spec,
    peak_multiplier,
    rate_multiplier,
    run_spec,
)
from repro.scenarios import suite as scenario_suite
from repro.sim import Environment, RandomStreams
from repro.sim.rng import ambient_streams, fallback_rng, set_ambient_streams
from repro.workloads.configio import config_from_dict
from repro.workloads.scenario import build_scenario


@pytest.fixture(autouse=True)
def _clear_ambient():
    yield
    set_ambient_streams(None)


def small_doc(**extra):
    """A fast-but-real scenario document (12 peers, short run)."""
    doc = {
        "name": "t",
        "duration": 20.0,
        "drain": 10.0,
        "base": {
            "seed": 7,
            "population": {"n_peers": 12, "n_objects": 6},
            "workload": {"rate": 0.8},
        },
    }
    doc.update(extra)
    return doc


# ---------------------------------------------------------------------------
# Spec parsing and validation
# ---------------------------------------------------------------------------

class TestSpecValidation:
    def test_minimal_spec_gets_defaults(self):
        spec = ScenarioSpec.from_dict({"name": "x"})
        assert spec.name == "x"
        assert spec.duration == 120.0 and spec.drain == 30.0
        assert spec.arrivals is None and spec.cost is None
        assert spec.faults == [] and spec.adversaries is None
        assert spec.health is None

    def test_name_required(self):
        with pytest.raises(ValueError, match="needs a name"):
            ScenarioSpec.from_dict({"duration": 10})

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ValueError, match="unknown keys"):
            ScenarioSpec.from_dict({"name": "x", "turbo": True})

    def test_unknown_section_key_rejected(self):
        with pytest.raises(ValueError, match="arrivals.*unknown keys"):
            ScenarioSpec.from_dict(
                {"name": "x", "arrivals": {"shape": "diurnal", "boost": 2}}
            )

    def test_base_goes_through_config_parser(self):
        spec = ScenarioSpec.from_dict(small_doc())
        assert spec.base.seed == 7
        assert spec.base.population.n_peers == 12
        with pytest.raises(Exception):
            ScenarioSpec.from_dict(
                {"name": "x", "base": {"not_a_section": {}}}
            )

    def test_bad_arrival_shape(self):
        with pytest.raises(ValueError, match="arrivals.shape"):
            ArrivalSpec(shape="bursty")

    def test_flash_crowd_needs_window(self):
        with pytest.raises(ValueError, match="t_end"):
            ArrivalSpec(shape="flash_crowd", t_start=10.0, t_end=5.0)

    def test_amplitude_bounds(self):
        with pytest.raises(ValueError, match="amplitude"):
            ArrivalSpec(shape="diurnal", amplitude=1.5)

    def test_bad_fault_kind(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(at=1.0, kind="meteor")

    def test_fault_needs_at_and_kind(self):
        with pytest.raises(ValueError, match="'at' and 'kind'"):
            FaultSpec.from_dict({"kind": "heal"})

    def test_fault_split_bounds(self):
        with pytest.raises(ValueError, match="split"):
            FaultSpec(at=1.0, kind="partition", split=1.0)

    def test_adversary_bounds(self):
        with pytest.raises(ValueError, match="fraction"):
            AdversarySpec(fraction=0.0)
        with pytest.raises(ValueError, match="mode"):
            AdversarySpec(mode="chaotic")
        with pytest.raises(ValueError, match="inflate_factor"):
            AdversarySpec(inflate_factor=0.5)

    def test_health_bounds(self):
        with pytest.raises(ValueError, match="period"):
            ScenarioSpec.from_dict(
                {"name": "x", "health": {"period": 0.0}}
            )

    def test_parse_json(self):
        spec = parse_spec(json.dumps(small_doc()), fmt="json")
        assert spec.name == "t"

    def test_parse_unknown_format(self):
        with pytest.raises(ValueError, match="unknown scenario format"):
            parse_spec("{}", fmt="yaml")

    def test_load_spec_json_file(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(json.dumps(small_doc()))
        assert load_spec(str(path)).base.seed == 7

    def test_toml_gated_on_tomllib(self, tmp_path):
        text = 'name = "t"\nduration = 20.0\n'
        try:
            import tomllib  # noqa: F401
        except ImportError:
            with pytest.raises(ValueError, match="3.11"):
                parse_spec(text, fmt="toml")
        else:
            assert parse_spec(text, fmt="toml").name == "t"


# ---------------------------------------------------------------------------
# Shaped arrivals
# ---------------------------------------------------------------------------

class TestRateShaping:
    def test_flash_crowd_multiplier_window(self):
        shape = ArrivalSpec(shape="flash_crowd", t_start=10.0, t_end=20.0,
                            multiplier=6.0)
        assert rate_multiplier(shape, 9.9) == 1.0
        assert rate_multiplier(shape, 10.0) == 6.0
        assert rate_multiplier(shape, 19.99) == 6.0
        assert rate_multiplier(shape, 20.0) == 1.0
        assert peak_multiplier(shape) == 6.0

    def test_diurnal_stays_inside_envelope(self):
        shape = ArrivalSpec(shape="diurnal", period=100.0, amplitude=0.8)
        peak = peak_multiplier(shape)
        values = [rate_multiplier(shape, t / 10.0) for t in range(3000)]
        assert all(0.0 < v <= peak + 1e-12 for v in values)
        assert max(values) == pytest.approx(1.8, abs=1e-3)
        assert min(values) == pytest.approx(0.2, abs=1e-3)

    def test_constant_shape_is_flat(self):
        shape = ArrivalSpec(shape="constant")
        assert rate_multiplier(shape, 123.4) == 1.0
        assert peak_multiplier(shape) == 1.0

    def test_thinning_concentrates_arrivals_in_burst(self):
        """Mean gap during the flash window ~ multiplier x shorter."""
        shape = ArrivalSpec(shape="flash_crowd", t_start=0.0, t_end=1e9,
                            multiplier=5.0)
        cls = make_workload_cls(shape)
        wl = object.__new__(cls)
        wl.config = type("C", (), {"rate": 1.0})()
        wl.rng = np.random.default_rng(3)
        in_burst = [wl._next_gap(0.0) for _ in range(2000)]

        shape2 = ArrivalSpec(shape="flash_crowd", t_start=1e8, t_end=1e9,
                             multiplier=5.0)
        wl2 = object.__new__(make_workload_cls(shape2))
        wl2.config = wl.config
        wl2.rng = np.random.default_rng(3)
        outside = [wl2._next_gap(0.0) for _ in range(2000)]

        mean_in = sum(in_burst) / len(in_burst)
        mean_out = sum(outside) / len(outside)
        assert mean_in == pytest.approx(0.2, rel=0.1)
        assert mean_out == pytest.approx(1.0, rel=0.1)

    def test_make_workload_cls_binds_shape(self):
        shape = ArrivalSpec(shape="diurnal")
        cls = make_workload_cls(shape)
        assert cls.shape is shape
        assert "diurnal" in cls.__name__


# ---------------------------------------------------------------------------
# Heavy-tailed costs
# ---------------------------------------------------------------------------

class TestHeavyTailCosts:
    def test_pareto_multiplier_mean_near_one(self):
        from repro.workloads.population import (
            PopulationConfig, _duration_multiplier,
        )

        cfg = PopulationConfig(duration_dist="pareto",
                               duration_pareto_alpha=2.5,
                               duration_cap=100.0)
        rng = np.random.default_rng(11)
        draws = [_duration_multiplier(cfg, rng) for _ in range(20000)]
        assert sum(draws) / len(draws) == pytest.approx(1.0, abs=0.05)
        assert max(draws) <= 100.0

    def test_cap_is_enforced(self):
        from repro.workloads.population import (
            PopulationConfig, _duration_multiplier,
        )

        cfg = PopulationConfig(duration_dist="lognormal",
                               duration_sigma=2.0, duration_cap=3.0)
        rng = np.random.default_rng(1)
        assert all(
            _duration_multiplier(cfg, rng) <= 3.0 for _ in range(5000)
        )

    def test_fixed_draws_nothing_extra(self):
        """The default path consumes the same RNG sequence as ever."""
        from repro.workloads.catalog import MediaCatalog
        from repro.workloads.population import (
            PopulationConfig, make_objects,
        )

        catalog = MediaCatalog()
        fixed = make_objects(
            catalog, PopulationConfig(n_objects=8),
            np.random.default_rng(5),
        )
        rng = np.random.default_rng(5)
        heavy = make_objects(
            catalog,
            PopulationConfig(n_objects=8, duration_dist="pareto"),
            rng,
        )
        # Same formats chosen when dists agree on the draw budget...
        assert [o.duration_s for o in fixed] == [
            PopulationConfig().object_duration
        ] * 8
        # ...heavy-tailed objects spread around the canonical duration.
        assert len({round(o.duration_s, 9) for o in heavy}) > 1

    def test_population_validation(self):
        from repro.workloads.population import PopulationConfig

        with pytest.raises(ValueError):
            PopulationConfig(duration_dist="weibull")
        with pytest.raises(ValueError):
            PopulationConfig(duration_dist="pareto",
                             duration_pareto_alpha=1.0)
        with pytest.raises(ValueError):
            PopulationConfig(duration_cap=0.0)


# ---------------------------------------------------------------------------
# Fault scripts
# ---------------------------------------------------------------------------

def build_small(seed=7, n_peers=12, rate=0.8):
    cfg = config_from_dict({
        "seed": seed,
        "population": {"n_peers": n_peers, "n_objects": 6},
        "workload": {"rate": rate},
    })
    return build_scenario(cfg)


class TestFaultScript:
    def test_fail_peers_kills_exact_count(self):
        scenario = build_small()
        script = FaultScript(
            scenario.overlay, scenario.network,
            [FaultSpec(at=2.0, kind="fail_peers", count=3)],
            rng=scenario.streams.get("faults"),
        )
        alive_before = sum(
            1 for n in scenario.overlay.peers.values() if n.alive
        )
        scenario.env.run(until=5.0)
        alive_after = sum(
            1 for n in scenario.overlay.peers.values() if n.alive
        )
        assert alive_before - alive_after >= 3
        assert script.n_failed == 3
        assert script.counters()["peers_failed"] == 3
        assert [kind for _, kind, _ in script.log] == ["fail_peers"]

    def test_fail_domain_spares_rm_by_default(self):
        scenario = build_small(n_peers=16)
        script = FaultScript(
            scenario.overlay, scenario.network,
            [FaultSpec(at=2.0, kind="fail_domain", fraction=1.0)],
            rng=scenario.streams.get("faults"),
        )
        rm_ids = {rm.node_id for rm in scenario.overlay.rms()}
        scenario.env.run(until=5.0)
        _, _, detail = script.log[0]
        assert detail["failed"]
        assert not set(detail["failed"]) & rm_ids

    def test_partition_and_heal_round_trip(self):
        scenario = build_small()
        script = FaultScript(
            scenario.overlay, scenario.network,
            [
                FaultSpec(at=2.0, kind="partition", split=0.5),
                FaultSpec(at=8.0, kind="heal"),
            ],
            rng=scenario.streams.get("faults"),
        )
        scenario.env.run(until=5.0)
        assert scenario.network.partitioned
        scenario.env.run(until=12.0)
        assert not scenario.network.partitioned
        assert script.n_partitions == 1 and script.n_heals == 1
        assert scenario.network.stats.partition_drops > 0

    def test_events_replay_in_time_order(self):
        scenario = build_small()
        script = FaultScript(
            scenario.overlay, scenario.network,
            [
                FaultSpec(at=6.0, kind="heal"),
                FaultSpec(at=3.0, kind="partition", split=0.4),
            ],
            rng=scenario.streams.get("faults"),
        )
        scenario.env.run(until=10.0)
        times = [t for t, _, _ in script.log]
        assert times == sorted(times)
        assert [k for _, k, _ in script.log] == ["partition", "heal"]


# ---------------------------------------------------------------------------
# Adversaries
# ---------------------------------------------------------------------------

def _report(peer_id="p1", power=10.0, u=0.9, t=0.0):
    from repro.monitoring.profiler import LoadReport

    return LoadReport(
        peer_id=peer_id, time=t, power=power, utilization=u,
        load=power * u, bw_used=0.0, queue_work=5.0, queue_length=3,
    )


class _FakePeer:
    def __init__(self):
        self.node_id = "p1"
        self.processor = type("P", (), {"power": 40.0})()
        self.config = type("C", (), {"power": 40.0})()
        self.sent = []
        self.profiler = type(
            "Pr", (), {"report_fn": self.sent.append}
        )()


class TestAdversary:
    def test_choose_liars_is_seed_deterministic(self):
        ids = [f"p{i}" for i in range(20)]
        a = choose_liars(ids, 0.25, RandomStreams(9).get("adversary"))
        b = choose_liars(ids, 0.25, RandomStreams(9).get("adversary"))
        assert a == b and len(a) == 5
        assert set(a) <= set(ids)

    def test_choose_liars_at_least_one(self):
        assert len(choose_liars(["a", "b"], 0.01,
                                np.random.default_rng(0))) == 1

    def test_constant_liar_claims_idle(self):
        peer = _FakePeer()
        liar = MisbehavingPeer(
            peer, AdversarySpec(mode="constant", claimed_utilization=0.0),
            true_power=10.0,
        )
        # Join-claim inflation undone: the peer executes at true power.
        assert peer.processor.power == 10.0 and peer.config.power == 10.0
        peer.profiler.report_fn(_report())
        assert len(peer.sent) == 1
        rpt = peer.sent[0]
        assert rpt.utilization == 0.0 and rpt.load == 0.0
        assert rpt.queue_work == 0.0 and rpt.queue_length == 0
        assert liar.n_lies == liar.n_reports == 1

    def test_inflate_liar_overstates_power(self):
        peer = _FakePeer()
        MisbehavingPeer(
            peer, AdversarySpec(mode="inflate", inflate_factor=4.0),
            true_power=10.0,
        )
        peer.profiler.report_fn(_report(power=10.0, u=0.8))
        rpt = peer.sent[0]
        assert rpt.power == 40.0
        assert rpt.utilization == pytest.approx(0.2)
        assert rpt.load == pytest.approx(2.0)

    def test_intermittent_liar_follows_duty_cycle(self):
        peer = _FakePeer()
        liar = MisbehavingPeer(
            peer,
            AdversarySpec(mode="intermittent", period=10.0, duty=0.5,
                          claimed_utilization=0.0),
            true_power=10.0,
        )
        peer.profiler.report_fn(_report(u=0.9, t=2.0))   # first half: lies
        peer.profiler.report_fn(_report(u=0.9, t=7.0))   # second half: truth
        assert peer.sent[0].utilization == 0.0
        assert peer.sent[1].utilization == 0.9
        assert liar.n_reports == 2 and liar.n_lies == 1

    def test_detach_restores_report_fn(self):
        peer = _FakePeer()
        original = peer.profiler.report_fn
        liar = MisbehavingPeer(
            peer, AdversarySpec(mode="constant", claimed_utilization=0.0),
            true_power=10.0,
        )
        assert peer.profiler.report_fn is not original
        liar.detach()
        assert peer.profiler.report_fn is original
        # Reports now flow through unmolested.
        peer.profiler.report_fn(_report(u=0.9))
        assert peer.sent[0].utilization == 0.9
        assert liar.n_lies == 0

    def test_detach_is_idempotent_and_wrap_safe(self):
        peer = _FakePeer()
        original = peer.profiler.report_fn
        liar = MisbehavingPeer(
            peer, AdversarySpec(mode="constant", claimed_utilization=0.0),
            true_power=10.0,
        )
        liar.detach()
        liar.detach()  # second call is a no-op
        assert peer.profiler.report_fn is original
        # If something else re-wrapped the hook, detach must not clobber.
        sentinel = peer.sent.append
        liar2 = MisbehavingPeer(
            peer, AdversarySpec(mode="constant", claimed_utilization=0.0),
            true_power=10.0,
        )
        peer.profiler.report_fn = sentinel
        liar2.detach()
        assert peer.profiler.report_fn is sentinel

    def test_builder_detaches_liars_after_run(self, tmp_path):
        spec = ScenarioSpec.from_dict(small_doc(
            adversaries={"fraction": 0.25, "mode": "constant",
                         "claimed_utilization": 0.0},
        ))
        stressed = build_stressed_scenario(spec, out_dir=str(tmp_path))
        stressed.run()
        assert stressed.liars
        for liar in stressed.liars:
            assert liar.peer.profiler.report_fn is liar._forward


# ---------------------------------------------------------------------------
# Builder + end-to-end runs
# ---------------------------------------------------------------------------

FULL_DOC = {
    "name": "kitchen_sink",
    "duration": 25.0,
    "drain": 10.0,
    "base": {
        "seed": 7,
        "population": {"n_peers": 16, "n_objects": 8},
        "workload": {"rate": 1.0},
    },
    "arrivals": {"shape": "flash_crowd", "t_start": 8.0, "t_end": 16.0,
                 "multiplier": 5.0},
    "cost": {"dist": "pareto", "alpha": 1.6, "cap": 8.0},
    "faults": [
        {"at": 10.0, "kind": "partition", "split": 0.5},
        {"at": 18.0, "kind": "heal"},
    ],
    "adversaries": {"fraction": 0.25, "mode": "constant",
                    "claim_factor": 2.0},
    "health": {"period": 1.0, "flight_recorder": False},
}


class TestBuilder:
    def test_metrics_document_schema(self, tmp_path):
        spec = ScenarioSpec.from_dict(FULL_DOC)
        doc = run_spec(spec, out_dir=str(tmp_path))
        assert doc["schema_version"] == METRICS_SCHEMA_VERSION
        assert doc["scenario"] == "kitchen_sink"
        assert doc["seed"] == 7
        assert doc["events"] > 0 and doc["messages"] > 0
        assert doc["partition_drops"] <= doc["dropped"]
        assert doc["faults"]["partitions"] == 1
        assert doc["faults"]["heals"] == 1
        assert doc["adversary"]["liars"]
        assert doc["adversary"]["lies"] > 0
        assert doc["health"]  # sampled series made it into the doc
        assert isinstance(doc["summary"], dict)
        assert "tasks" in doc["summary"] or doc["summary"]

    def test_builder_installs_ambient_streams(self):
        spec = ScenarioSpec.from_dict(small_doc())
        stressed = build_stressed_scenario(spec)
        assert ambient_streams() is stressed.scenario.streams

    def test_spec_reusable_across_builds(self, tmp_path):
        """One loaded spec can be built repeatedly (bench repeat)."""
        spec = ScenarioSpec.from_dict(FULL_DOC)
        base_duration = spec.base.population.object_duration
        run_spec(spec, out_dir=str(tmp_path))
        assert spec.base.population.object_duration == base_duration
        assert spec.base.population.duration_dist == "fixed"
        run_spec(spec, out_dir=str(tmp_path))

    def test_liars_attract_work_and_degrade_service(self, tmp_path):
        """The shipped liar_peers/liar_control pair shows degradation."""
        root = os.path.dirname(os.path.dirname(repro.__file__))
        repo = os.path.dirname(root)
        pair = {}
        for name in ("liar_control", "liar_peers"):
            spec = load_spec(os.path.join(
                repo, "benchmarks", "scenarios", f"{name}.json"
            ))
            spec.duration = 45.0
            spec.drain = 15.0
            pair[name] = run_spec(spec, out_dir=str(tmp_path))
        control = pair["liar_control"]["summary"]
        liars = pair["liar_peers"]["summary"]
        assert pair["liar_peers"]["adversary"]["lies"] > 0
        # Misreporting must measurably hurt the RM's decisions.
        assert liars["miss_rate"] > control["miss_rate"]
        assert pair["liar_peers"]["value_goodput"] < (
            pair["liar_control"]["value_goodput"]
        )


class TestDeterminism:
    def test_same_spec_same_trajectory_across_processes(self, tmp_path):
        """Bit-for-bit reproducibility: fresh interpreters, same counts."""
        spec_path = tmp_path / "det.json"
        doc = dict(FULL_DOC)
        doc["duration"] = 15.0
        doc["drain"] = 8.0
        spec_path.write_text(json.dumps(doc))
        script = (
            "import json, sys\n"
            "from repro.scenarios import load_spec, run_spec\n"
            "d = run_spec(load_spec(sys.argv[1]), out_dir=sys.argv[2])\n"
            "print(json.dumps({k: d[k] for k in ("
            "'events', 'messages', 'dropped', 'partition_drops')}"
            " | {'lies': d['adversary'].get('lies', 0)}))\n"
        )
        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(repro.__file__))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        outs = []
        for run in range(2):
            proc = subprocess.run(
                [sys.executable, "-c", script, str(spec_path),
                 str(tmp_path)],
                capture_output=True, text=True, env=env, check=True,
            )
            outs.append(json.loads(proc.stdout.strip().splitlines()[-1]))
        assert outs[0] == outs[1]
        assert outs[0]["events"] > 0 and outs[0]["lies"] > 0

    def test_ambient_fallback_derives_from_scenario_seed(self):
        set_ambient_streams(RandomStreams(5))
        a = fallback_rng("latency").random(4)
        set_ambient_streams(RandomStreams(5))
        b = fallback_rng("latency").random(4)
        assert np.array_equal(a, b)
        # Distinct from the explicitly plumbed stream of the same name.
        c = RandomStreams(5).get("latency").random(4)
        assert not np.array_equal(a, c)

    def test_no_ambient_falls_back_to_entropy(self):
        set_ambient_streams(None)
        a = fallback_rng("latency").random(4)
        b = fallback_rng("latency").random(4)
        assert not np.array_equal(a, b)


# ---------------------------------------------------------------------------
# Health coupling (flash-crowd miss spike, flight recorder trigger)
# ---------------------------------------------------------------------------

class TestHealthCoupling:
    def test_flash_crowd_spikes_per_qos_miss_series(self, tmp_path):
        doc = {
            "name": "burst",
            "duration": 40.0,
            "drain": 15.0,
            "base": {
                "seed": 7,
                "population": {"n_peers": 16, "n_objects": 8},
                "workload": {"rate": 1.0, "deadline_slack": 2.0},
            },
            "arrivals": {"shape": "flash_crowd", "t_start": 15.0,
                         "t_end": 30.0, "multiplier": 8.0},
            "health": {"period": 1.0, "flight_recorder": False},
        }
        spec = ScenarioSpec.from_dict(doc)
        stressed = build_stressed_scenario(spec, out_dir=str(tmp_path))
        stressed.run()
        rings = [
            r for r in stressed.sampler.all_series()
            if r.name == "repro_sched_miss_ratio"
        ]
        assert rings, "per-QoS miss series were not sampled"
        assert all("qos" in r.labels for r in rings)
        spiked = False
        for ring in rings:
            times, values = ring.times(), ring.values()
            before = [v for t, v in zip(times, values) if t < 15.0]
            after = [v for t, v in zip(times, values) if t >= 15.0]
            if after and max(after) > (max(before) if before else 0.0):
                spiked = True
        assert spiked, "no QoS class's miss ratio rose under the burst"

    def test_deadline_miss_burst_fires_once_per_cooldown(self, tmp_path):
        from repro import telemetry
        from repro.telemetry.flight_recorder import FlightRecorder

        tel = telemetry.Telemetry.sim(Environment())
        recorder = FlightRecorder(
            tel, out_dir=str(tmp_path), miss_burst=3, miss_window=5.0,
            cooldown=30.0,
        )

        class Rec:
            def __init__(self, t):
                self.t = t

            def as_dict(self):
                return {"name": "job.missed", "time": self.t}

        def miss(t):
            recorder._on_record("event", Rec(t))

        # 4 misses in 1s: the 4th crosses burst=3 -> one dump.
        for t in (0.0, 0.2, 0.4, 0.6):
            miss(t)
        assert len(recorder.dumps) == 1
        # A sustained storm inside the cooldown stays at one dump.
        for t in (1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 29.0):
            miss(t)
        assert len(recorder.dumps) == 1
        # Past the cooldown, a fresh burst fires exactly once more.
        for t in (31.0, 31.2, 31.4, 31.6, 32.0):
            miss(t)
        assert len(recorder.dumps) == 2
        assert recorder.n_triggers == 2
        for path in recorder.dumps:
            assert os.path.exists(path)
            meta = json.loads(open(path).readline())
            assert meta["reason"] == "deadline_miss_burst"
        recorder.close()

    def test_scenario_flight_dump_lands_in_out_dir(self, tmp_path):
        doc = {
            "name": "storm",
            "duration": 30.0,
            "drain": 10.0,
            "base": {
                "seed": 11,
                "population": {"n_peers": 12, "n_objects": 6},
                "workload": {"rate": 3.0, "deadline_slack": 1.5},
            },
            "health": {"period": 1.0, "flight_recorder": True,
                       "miss_burst": 2, "miss_window": 30.0,
                       "cooldown": 1000.0},
        }
        spec = ScenarioSpec.from_dict(doc)
        stressed = build_stressed_scenario(spec, out_dir=str(tmp_path))
        stressed.run()
        metrics = stressed.metrics_document()
        assert metrics["flight_dumps"] == stressed.recorder.dumps
        for path in stressed.recorder.dumps:
            assert os.path.dirname(path) == str(tmp_path)
            assert os.path.exists(path)


# ---------------------------------------------------------------------------
# Suite + CLI surfaces
# ---------------------------------------------------------------------------

class TestSuite:
    def write_config(self, tmp_path, name="mini", **extra):
        doc = small_doc(**extra)
        doc["name"] = name
        path = tmp_path / f"{name}.json"
        path.write_text(json.dumps(doc))
        return path

    def test_discover_sorts_and_validates(self, tmp_path):
        self.write_config(tmp_path, "bbb")
        self.write_config(tmp_path, "aaa")
        (tmp_path / "notes.txt").write_text("ignored")
        paths = scenario_suite.discover(str(tmp_path))
        assert [os.path.basename(p) for p in paths] == [
            "aaa.json", "bbb.json",
        ]

    def test_discover_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            scenario_suite.discover(str(tmp_path / "nope"))
        with pytest.raises(FileNotFoundError):
            scenario_suite.discover(str(tmp_path))  # empty

    def test_run_suite_produces_gate_compatible_records(self, tmp_path):
        from repro.benchmarking import harness

        self.write_config(tmp_path)
        records = scenario_suite.run_suite(
            str(tmp_path), quick=True, out_dir=str(tmp_path)
        )
        assert len(records) == 1
        rec = records[0]
        assert rec.events > 0 and rec.events_per_sec > 0
        assert rec.metrics["schema_version"] == METRICS_SCHEMA_VERSION
        doc = harness.report_document([rec], mode="quick",
                                      bench_id="TEST")
        assert doc["results"][0]["name"] == "mini"
        assert harness.find_regressions(doc, records, gate_pct=25.0) == []

    def test_run_suite_quick_caps_duration(self, tmp_path):
        self.write_config(tmp_path, duration=500.0, drain=100.0)
        records = scenario_suite.run_suite(
            str(tmp_path), quick=True, out_dir=str(tmp_path)
        )
        assert records[0].metrics["duration"] == scenario_suite.QUICK_DURATION

    def test_run_suite_unknown_only_raises(self, tmp_path):
        self.write_config(tmp_path)
        with pytest.raises(KeyError, match="unknown scenario"):
            scenario_suite.run_suite(str(tmp_path), only=["ghost"])

    def test_shipped_suite_is_discoverable_and_valid(self):
        root = os.path.dirname(os.path.dirname(repro.__file__))
        repo = os.path.dirname(root)
        paths = scenario_suite.discover(
            os.path.join(repo, "benchmarks", "scenarios")
        )
        assert len(paths) >= 6
        names = set()
        for path in paths:
            spec = load_spec(path)
            assert spec.name == os.path.splitext(
                os.path.basename(path)
            )[0]
            names.add(spec.name)
        assert {"flash_crowd", "liar_peers", "liar_control",
                "partition_heal", "domain_failure"} <= names


class TestCli:
    def write_config(self, tmp_path):
        path = tmp_path / "mini.json"
        path.write_text(json.dumps(small_doc()))
        return path

    def test_repro_run_scenario_writes_metrics(self, tmp_path, capsys):
        from repro.workloads import cli

        spec_path = self.write_config(tmp_path)
        out = tmp_path / "metrics.json"
        rc = cli.main(["--scenario", str(spec_path),
                       "--metrics-out", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema_version"] == METRICS_SCHEMA_VERSION
        assert doc["events"] > 0
        assert "scenario 't'" in capsys.readouterr().out

    def test_repro_run_scenario_seed_override(self, tmp_path, capsys):
        from repro.workloads import cli

        spec_path = self.write_config(tmp_path)
        rc = cli.main(["--scenario", str(spec_path), "--seed", "99"])
        assert rc == 0
        assert "seed=99" in capsys.readouterr().out

    def test_repro_run_rejects_config_plus_scenario(self, tmp_path):
        from repro.workloads import cli

        spec_path = self.write_config(tmp_path)
        with pytest.raises(SystemExit):
            cli.main([str(spec_path), "--scenario", str(spec_path)])

    def test_repro_run_metrics_out_requires_scenario(self, tmp_path):
        from repro.workloads import cli

        with pytest.raises(SystemExit):
            cli.main(["--metrics-out", str(tmp_path / "m.json")])

    def test_repro_bench_adversarial_list(self, tmp_path, capsys):
        from repro.benchmarking import cli

        self.write_config(tmp_path)
        rc = cli.main(["--suite", "adversarial",
                       "--scenario-dir", str(tmp_path), "--list"])
        assert rc == 0
        assert "mini.json" in capsys.readouterr().out

    def test_repro_bench_adversarial_runs_and_reports(self, tmp_path,
                                                      capsys):
        from repro.benchmarking import cli

        self.write_config(tmp_path)
        out = tmp_path / "report.json"
        rc = cli.main([
            "--suite", "adversarial", "--scenario-dir", str(tmp_path),
            "--quick", "--out", str(out), "--bench-id", "SCEN_TEST",
        ])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["bench_id"] == "SCEN_TEST"
        assert report["results"][0]["name"] == "mini"
        assert report["results"][0]["metrics"]["schema_version"] == (
            METRICS_SCHEMA_VERSION
        )

    def test_repro_bench_adversarial_missing_dir_exits_2(self, tmp_path):
        from repro.benchmarking import cli

        rc = cli.main(["--suite", "adversarial",
                       "--scenario-dir", str(tmp_path / "none")])
        assert rc == 2

"""Event lifecycle and composition primitives."""

import pytest

from repro.sim import Environment
from repro.sim.events import AllOf, AnyOf, Timeout


@pytest.fixture
def env():
    return Environment()


class TestEventLifecycle:
    def test_fresh_event_is_pending(self, env):
        ev = env.event()
        assert not ev.triggered
        assert not ev.processed

    def test_value_before_trigger_raises(self, env):
        ev = env.event()
        with pytest.raises(RuntimeError):
            _ = ev.value

    def test_succeed_sets_value(self, env):
        ev = env.event()
        ev.succeed(41)
        assert ev.triggered
        assert ev.ok
        assert ev.value == 41

    def test_double_succeed_raises(self, env):
        ev = env.event().succeed()
        with pytest.raises(RuntimeError):
            ev.succeed()

    def test_fail_then_succeed_raises(self, env):
        ev = env.event()
        ev.fail(ValueError("x"))
        with pytest.raises(RuntimeError):
            ev.succeed()

    def test_fail_requires_exception(self, env):
        ev = env.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_callbacks_run_on_processing(self, env):
        ev = env.event()
        seen = []
        ev.callbacks.append(lambda e: seen.append(e.value))
        ev.succeed("v")
        env.run()
        assert seen == ["v"]
        assert ev.processed

    def test_trigger_from_copies_outcome(self, env):
        src = env.event().succeed(7)
        dst = env.event()
        dst.trigger_from(src)
        assert dst.value == 7 and dst.ok

    def test_trigger_from_untriggered_raises(self, env):
        with pytest.raises(RuntimeError):
            env.event().trigger_from(env.event())


class TestTimeout:
    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            Timeout(env, -1.0)

    def test_timeout_fires_at_delay(self, env):
        fired = []
        t = env.timeout(2.5, value="done")
        t.callbacks.append(lambda e: fired.append((env.now, e.value)))
        env.run()
        assert fired == [(2.5, "done")]

    def test_zero_delay_fires_immediately(self, env):
        t = env.timeout(0)
        env.run()
        assert t.processed and env.now == 0.0


class TestConditions:
    def test_all_of_waits_for_all(self, env):
        a, b = env.timeout(1, "a"), env.timeout(3, "b")
        got = {}

        def waiter():
            result = yield env.all_of([a, b])
            got.update({"t": env.now, "n": len(result)})

        env.process(waiter())
        env.run()
        assert got == {"t": 3.0, "n": 2}

    def test_any_of_fires_on_first(self, env):
        a, b = env.timeout(1, "a"), env.timeout(3, "b")
        got = {}

        def waiter():
            result = yield env.any_of([a, b])
            got["t"] = env.now
            got["has_a"] = a in result
            got["has_b"] = b in result

        env.process(waiter())
        env.run()
        assert got["t"] == 1.0 and got["has_a"] and not got["has_b"]

    def test_and_operator(self, env):
        cond = env.timeout(1) & env.timeout(2)
        assert isinstance(cond, AllOf)

    def test_or_operator(self, env):
        cond = env.timeout(1) | env.timeout(2)
        assert isinstance(cond, AnyOf)

    def test_empty_all_of_fires_immediately(self, env):
        cond = env.all_of([])
        assert cond.triggered

    def test_condition_propagates_failure(self, env):
        bad = env.event()

        def failer():
            yield env.timeout(1)
            bad.fail(RuntimeError("boom"))

        caught = []

        def waiter():
            try:
                yield env.all_of([bad, env.timeout(5)])
            except RuntimeError as exc:
                caught.append(str(exc))

        env.process(failer())
        env.process(waiter())
        env.run()
        assert caught == ["boom"]

    def test_cross_environment_mix_rejected(self, env):
        other = Environment()
        with pytest.raises(ValueError):
            AllOf(env, [env.timeout(1), other.timeout(1)])

    def test_all_of_with_already_processed_event(self, env):
        a = env.timeout(0, "x")
        env.run()
        assert a.processed
        done = []

        def waiter():
            result = yield env.all_of([a, env.timeout(1)])
            done.append((env.now, result[a]))

        env.process(waiter())
        env.run()
        assert done == [(1.0, "x")]

"""ASCII charts and result export."""

import csv
import io
import json

import pytest

from repro.experiments.base import ExperimentResult
from repro.reporting import (
    histogram,
    result_to_csv,
    result_to_json,
    sparkline,
)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_constant_series_is_flat(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert len(set(line)) == 1

    def test_extremes_use_extreme_blocks(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == "▁" and line[1] == "█"

    def test_downsampling_width(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10

    def test_monotone_series_monotone_blocks(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert list(line) == sorted(line)


class TestHistogram:
    def test_empty(self):
        assert histogram([]) == "(empty)"

    def test_bins_validation(self):
        with pytest.raises(ValueError):
            histogram([1.0], bins=0)

    def test_counts_sum_to_n(self):
        out = histogram([1, 2, 2, 3, 3, 3], bins=3)
        counts = [int(line.rsplit(" ", 1)[1]) for line in out.splitlines()]
        assert sum(counts) == 6

    def test_constant_input_single_bar(self):
        out = histogram([2.0, 2.0, 2.0])
        assert out.count("\n") == 0 and out.endswith("3")


@pytest.fixture
def result():
    r = ExperimentResult(
        experiment_id="eX",
        title="demo",
        headers=["a", "b"],
    )
    r.add_row(1, 2.5)
    r.add_row(3, 4.5)
    r.notes.append("a note")
    return r


class TestExport:
    def test_csv_round_trip(self, result):
        text = result_to_csv(result)
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["1", "2.5"]
        assert len(rows) == 3

    def test_json_structure(self, result):
        doc = json.loads(result_to_json(result))
        assert doc["experiment_id"] == "eX"
        assert doc["headers"] == ["a", "b"]
        assert doc["rows"] == [[1, 2.5], [3, 4.5]]
        assert doc["notes"] == ["a note"]

    def test_json_handles_numpy_scalars(self):
        import numpy as np

        r = ExperimentResult("eY", "np", ["x"])
        r.add_row(np.float64(1.25))
        doc = json.loads(result_to_json(r))
        assert doc["rows"] == [[1.25]]


class TestExperimentResult:
    def test_add_row_width_checked(self, result):
        with pytest.raises(ValueError):
            result.add_row(1)

    def test_column(self, result):
        assert result.column("b") == [2.5, 4.5]
        with pytest.raises(ValueError):
            result.column("nope")

    def test_render_contains_title_and_notes(self, result):
        text = result.render()
        assert "demo" in text and "a note" in text

"""The Profiler: load measurement and periodic reporting."""

import pytest

from repro.monitoring import LoadReport, Profiler, ServiceObservation
from repro.scheduling import Job, Processor, make_policy
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def cpu(env):
    return Processor(env, "p1", power=4.0, policy=make_policy("EDF"))


class TestServiceObservation:
    def test_means(self):
        obs = ServiceObservation("svc")
        obs.observe(2.0, 8.0)
        obs.observe(4.0, 8.0)
        assert obs.mean_time == pytest.approx(3.0)
        assert obs.mean_rate == pytest.approx(16.0 / 6.0)

    def test_empty_means_zero(self):
        obs = ServiceObservation("svc")
        assert obs.mean_time == 0.0 and obs.mean_rate == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ServiceObservation("svc").observe(-1.0, 1.0)


class TestLoadReport:
    def test_payload_round_trip(self):
        report = LoadReport(
            peer_id="p", time=1.0, power=4.0, utilization=0.5,
            load=2.0, bw_used=100.0, queue_work=3.0, queue_length=2,
            services={"s": 1.5},
        )
        again = LoadReport.from_payload(report.as_payload())
        assert again == report


class TestProfiler:
    def test_period_validation(self, env, cpu):
        with pytest.raises(ValueError):
            Profiler(env, cpu, update_period=0)

    def test_idle_processor_reports_zero_load(self, env, cpu):
        prof = Profiler(env, cpu, sample_period=0.5)
        env.run(until=10.0)
        assert prof.utilization == pytest.approx(0.0)
        assert prof.load == pytest.approx(0.0)

    def test_busy_processor_converges_to_full_load(self, env, cpu):
        prof = Profiler(env, cpu, sample_period=0.5, alpha=0.5)

        def feeder():
            while True:
                done = cpu.submit(
                    Job(work=40.0, abs_deadline=env.now + 100,
                        release=env.now)
                )
                yield done

        env.process(feeder())
        env.run(until=30.0)
        assert prof.utilization == pytest.approx(1.0, abs=0.01)
        # The paper's l_i = power x utilization.
        assert prof.load == pytest.approx(4.0, abs=0.05)

    def test_half_busy(self, env, cpu):
        # A tiny alpha averages over many busy/idle cycles, so the
        # estimate converges to the duty cycle regardless of phase.
        prof = Profiler(env, cpu, sample_period=0.5, alpha=0.02)

        def feeder():
            while True:
                # work=4 at power 4 => 1 s busy, then 1 s idle: 50% duty.
                done = cpu.submit(
                    Job(work=4.0, abs_deadline=env.now + 100,
                        release=env.now)
                )
                yield done
                yield env.timeout(1.0)

        env.process(feeder())
        env.run(until=400.0)
        assert prof.utilization == pytest.approx(0.5, abs=0.05)

    def test_reports_flow_at_update_period(self, env, cpu):
        reports = []
        prof = Profiler(
            env, cpu, report_fn=reports.append,
            update_period=2.0, sample_period=0.5,
        )
        env.run(until=10.5)
        assert len(reports) == 5
        assert reports[0].time == pytest.approx(2.0)
        assert all(r.peer_id == "p1" for r in reports)
        assert prof.reports_sent == 5

    def test_observe_service_included_in_report(self, env, cpu):
        reports = []
        prof = Profiler(env, cpu, report_fn=reports.append,
                        update_period=1.0)
        prof.observe_service("svcA", exec_time=2.0, work=8.0)
        env.run(until=1.5)
        assert reports[0].services == {"svcA": 2.0}

    def test_bytes_out_rate(self, env, cpu):
        prof = Profiler(env, cpu, sample_period=1.0, alpha=1.0)

        def sender():
            while True:
                prof.note_bytes_out(1000.0)
                yield env.timeout(1.0)

        env.process(sender())
        env.run(until=20.0)
        assert prof.bw_used == pytest.approx(1000.0, rel=0.1)

    def test_stop_halts_reporting(self, env, cpu):
        reports = []
        prof = Profiler(env, cpu, report_fn=reports.append,
                        update_period=1.0)
        env.run(until=3.5)
        prof.stop()
        n = len(reports)
        env.run(until=10.0)
        assert len(reports) == n

    def test_current_report_snapshot(self, env, cpu):
        prof = Profiler(env, cpu)
        cpu.submit(Job(work=8.0, abs_deadline=100, release=0))
        env.run(until=1.0)
        report = prof.current_report()
        assert report.queue_length == 1
        assert report.queue_work == pytest.approx(4.0)
        assert report.power == 4.0


class TestAdaptiveReporting:
    """§4.4: 'The application QoS requirements determine the
    appropriate update frequency.'"""

    def test_busy_peer_reports_faster(self, env, cpu):
        from repro.scheduling import Job

        reports = []
        Profiler(env, cpu, report_fn=reports.append,
                 update_period=2.0, adaptive=True)
        # Keep the CPU busy the whole time.
        cpu.submit(Job(work=4000.0, abs_deadline=1e9, release=0.0))
        env.run(until=20.0)
        busy_reports = len(reports)
        # Busy factor 0.5 => period 1.0 => ~20 reports in 20s.
        assert busy_reports == 20

    def test_idle_peer_reports_slower(self, env, cpu):
        reports = []
        Profiler(env, cpu, report_fn=reports.append,
                 update_period=2.0, adaptive=True)
        env.run(until=20.0)
        # Idle factor 2.0 => period 4.0 => ~5 reports in 20s.
        assert len(reports) == 5

    def test_non_adaptive_fixed_rate(self, env, cpu):
        reports = []
        Profiler(env, cpu, report_fn=reports.append,
                 update_period=2.0, adaptive=False)
        env.run(until=20.0)
        assert len(reports) == 10

    def test_factor_validation(self, env, cpu):
        with pytest.raises(ValueError):
            Profiler(env, cpu, adaptive=True, adaptive_busy_factor=0.0)

    def test_current_period_switches_with_queue(self, env, cpu):
        from repro.scheduling import Job

        prof = Profiler(env, cpu, update_period=2.0, adaptive=True)
        assert prof.current_period() == 4.0  # idle
        cpu.submit(Job(work=400.0, abs_deadline=1e9, release=0.0))
        assert prof.current_period() == 1.0  # busy

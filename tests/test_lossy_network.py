"""Lossy links: the protocol degrades gracefully, never deadlocks."""

import numpy as np
import pytest

from repro.net import ConstantLatency, NetNode, Network, RPCTimeout
from repro.sim import Environment
from repro.workloads import (
    PopulationConfig,
    ScenarioConfig,
    WorkloadConfig,
    build_scenario,
)


class TestLossSeedPlumbing:
    """Regression: the loss pattern must follow the run seed."""

    @staticmethod
    def _drop_pattern(seed: int) -> tuple:
        from repro.sim import RandomStreams

        env = Environment()
        net = Network(
            env, ConstantLatency(0.001), bandwidth=1e9,
            loss_rate=0.4, loss_rng=RandomStreams(seed).get("loss"),
        )
        a, b = NetNode(env, net, "a"), NetNode(env, net, "b")
        arrived = []
        b.on("m", lambda msg: arrived.append(msg.payload["i"]))
        for i in range(300):
            a.send("m", "b", {"i": i})
        env.run()
        return tuple(arrived)

    def test_two_seeds_produce_different_loss_patterns(self):
        assert self._drop_pattern(1) != self._drop_pattern(2)

    def test_same_seed_reproduces_the_loss_pattern(self):
        assert self._drop_pattern(1) == self._drop_pattern(1)

    def test_build_scenario_plumbs_seeded_loss_stream(self):
        def first_draws(seed):
            cfg = ScenarioConfig(
                seed=seed, loss_rate=0.05,
                population=PopulationConfig(n_peers=6, n_objects=4),
                workload=WorkloadConfig(rate=0.2),
            )
            scenario = build_scenario(cfg)
            assert scenario.network.loss_rate == pytest.approx(0.05)
            assert scenario.network._loss_rng is not None
            return scenario.network._loss_rng.random(8).tolist()

        assert first_draws(1) == first_draws(1)
        assert first_draws(1) != first_draws(2)


class TestLossModel:
    def test_loss_rate_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Network(env, loss_rate=1.0)
        with pytest.raises(ValueError):
            Network(env, loss_rate=-0.1)

    def test_zero_loss_by_default(self):
        env = Environment()
        net = Network(env, ConstantLatency(0.001), bandwidth=1e9)
        a, b = NetNode(env, net, "a"), NetNode(env, net, "b")
        got = []
        b.on("m", lambda msg: got.append(1))
        for _ in range(200):
            a.send("m", "b")
        env.run()
        assert len(got) == 200

    def test_loss_rate_approximately_honored(self):
        env = Environment()
        net = Network(
            env, ConstantLatency(0.001), bandwidth=1e9,
            loss_rate=0.3, loss_rng=np.random.default_rng(7),
        )
        a, b = NetNode(env, net, "a"), NetNode(env, net, "b")
        got = []
        b.on("m", lambda msg: got.append(1))
        n = 3000
        for _ in range(n):
            a.send("m", "b")
        env.run()
        assert len(got) == pytest.approx(n * 0.7, rel=0.08)
        assert net.stats.dropped == n - len(got)

    def test_rpc_times_out_on_lost_request(self):
        env = Environment()
        net = Network(
            env, ConstantLatency(0.001), bandwidth=1e9,
            loss_rate=0.999999,  # effectively everything lost
            loss_rng=np.random.default_rng(0),
        )
        a, b = NetNode(env, net, "a"), NetNode(env, net, "b")
        b.on("ping", lambda msg: b.reply(msg, "pong"))

        def client():
            with pytest.raises(RPCTimeout):
                yield from a.rpc("ping", "b", timeout=0.5)

        env.run(env.process(client()))


class TestSystemUnderLoss:
    def run_with_loss(self, loss):
        cfg = ScenarioConfig(
            seed=5,
            population=PopulationConfig(n_peers=10, n_objects=5,
                                        replication=2),
            workload=WorkloadConfig(rate=0.4),
        )
        scenario = build_scenario(cfg)
        scenario.network.loss_rate = loss
        scenario.network._loss_rng = np.random.default_rng(123)
        return scenario.run(duration=150.0, drain=60.0)

    def test_mild_loss_mostly_survivable(self):
        summary = self.run_with_loss(0.01)
        # 1% loss: most tasks still complete; some may be lost when a
        # stream chunk vanishes (no retransmission by design).
        assert summary.goodput > 0.6
        assert summary.n_submitted > 20

    def test_heavy_loss_degrades_but_never_hangs(self):
        summary = self.run_with_loss(0.20)
        # The run terminates (no deadlock) and accounting stays sane.
        total = (summary.n_met + summary.n_missed + summary.n_rejected
                 + summary.n_failed)
        assert total <= summary.n_submitted
        assert summary.goodput < 1.0

    def test_loss_monotonically_hurts(self):
        clean = self.run_with_loss(0.0)
        lossy = self.run_with_loss(0.10)
        assert lossy.goodput <= clean.goodput

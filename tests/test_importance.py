"""Importance-aware admission (§3.3 Importance_t) and value metrics."""

import pytest

from repro.core.manager import RMConfig
from repro.results import MetricsCollector
from repro.sim import Environment
from repro.tasks import ApplicationTask, QoSRequirements
from tests.conftest import build_live_domain


def saturate(domain, util=1.0):
    """Pin every peer's reported load high so the gate is active."""
    from repro.monitoring.profiler import LoadReport

    for pid, rec in domain.rm.info.peers.items():
        rec.last_report = LoadReport(
            peer_id=pid, time=domain.env.now, power=rec.power,
            utilization=util, load=rec.power * util, bw_used=0.0,
            queue_work=0.0, queue_length=0,
        )
        rec.reported_at = domain.env.now


class TestImportanceAdmission:
    def make(self, enabled=True):
        return build_live_domain(
            rm_config=RMConfig(
                importance_admission=enabled,
                importance_admission_util=0.5,
                # keep the estimator permissive: loads are faked high
            )
        )

    def test_gate_inactive_when_domain_idle(self):
        d = self.make()
        # First task runs (no sessions yet -> gate skipped), importance 1.
        d.submit(deadline=60.0, importance=1.0)
        d.env.run(until=1.0)
        assert d.rm.stats["admitted"] == 1

    def test_low_importance_sees_reduced_cap_under_load(self):
        """At util 0.65, the strict cap (0.7) leaves ~no headroom for a
        below-average-importance task, while the normal cap (1.0)
        would still admit it."""
        d = self.make()
        d.submit(deadline=200.0, importance=5.0)
        d.env.run(until=1.0)  # one important session running
        saturate(d, util=0.65)
        # A 30 s deadline demands ~0.5 load units per step: that fits
        # under the full cap (util 0.65 -> 1.0) but not the strict one
        # (0.65 + 0.05 > 0.7).
        acks = d.submit(deadline=30.0, importance=1.0)
        d.env.run(until=3.0)
        assert acks[0]["disposition"] == "rejected"
        assert any(
            t.meta.get("reject_reason") == "qos"
            for t in d.rm.tasks.values()
        )

    def test_high_importance_keeps_full_cap_under_load(self):
        d = self.make()
        d.submit(deadline=200.0, importance=2.0)
        d.env.run(until=1.0)
        saturate(d, util=0.65)
        acks = d.submit(deadline=30.0, importance=5.0)
        d.env.run(until=3.0)
        assert acks[0]["disposition"] == "accepted"

    def test_gate_off_admits_low_importance_at_same_load(self):
        d = self.make(enabled=False)
        d.submit(deadline=200.0, importance=5.0)
        d.env.run(until=1.0)
        saturate(d, util=0.65)
        acks = d.submit(deadline=30.0, importance=1.0)
        d.env.run(until=3.0)
        # No gate: same load, same task, but the full cap admits it.
        assert acks[0]["disposition"] == "accepted"

    def test_gate_inert_below_threshold(self):
        d = self.make()
        d.submit(deadline=200.0, importance=5.0)
        d.env.run(until=1.0)
        saturate(d, util=0.3)  # below importance_admission_util=0.5
        acks = d.submit(deadline=30.0, importance=1.0)
        d.env.run(until=3.0)
        assert acks[0]["disposition"] == "accepted"


class TestValueGoodput:
    def test_weighted_by_importance(self):
        env = Environment()
        collector = MetricsCollector(env)

        def task(importance):
            return ApplicationTask(
                name="m", qos=QoSRequirements(deadline=10.0,
                                              importance=importance),
                initial_state="a", goal_state="b", origin_peer="p",
                submitted_at=0.0,
            )

        important = task(9.0)
        important.mark_allocated([], 1.0, "d")
        important.mark_done(5.0)           # met, value 9
        trivial = task(1.0)
        trivial.mark_rejected(1.0)         # lost, value 1
        for t in (important, trivial):
            collector.on_task_event(t, "submitted")
        summary = collector.summary()
        assert summary.value_goodput == pytest.approx(0.9)
        # Plain goodput treats them equally.
        assert summary.goodput == pytest.approx(0.5)

    def test_zero_when_no_terminal_tasks(self):
        env = Environment()
        assert MetricsCollector(env).summary().value_goodput == 0.0

"""Systematic fault injection: kill each role at each phase.

For every (role, phase) combination the system must uphold three
invariants:

1. the simulation never crashes or deadlocks,
2. every task reaches a terminal state within deadline + grace,
3. no RM session bookkeeping leaks (sessions map drains).

Phases for the Fig-1 chain (P1 source+step0, P2 step1, P4 sink):
``t=1`` (during the first CPU step at P1), ``t=4`` (step 1 at P2),
``t=5.2`` (final transfer toward the sink).
"""

import pytest

from repro.core.manager import RMConfig
from tests.conftest import build_live_domain

ROLES = {
    "source": "P1",
    "transcoder": "P2",
    "sink": "P4",
}
PHASES = {
    "during_step0": 1.0,
    "during_step1": 4.0,
    "during_final_transfer": 5.2,
}


def run_kill(victim: str, at: float, graceful: bool):
    d = build_live_domain(
        rm_config=RMConfig(task_loss_grace=15.0)
    )
    d.submit(origin="P4", deadline=90.0)

    def killer():
        yield d.env.timeout(at)
        if graceful:
            d.peers[victim].leave()
        else:
            d.peers[victim].fail()

    d.env.process(killer())
    d.env.run(until=200.0)
    return d


@pytest.mark.parametrize("role", sorted(ROLES))
@pytest.mark.parametrize("phase", sorted(PHASES))
@pytest.mark.parametrize("graceful", [False, True])
def test_kill_role_at_phase(role, phase, graceful):
    d = run_kill(ROLES[role], PHASES[phase], graceful)
    task = d.task()
    # Invariant 2: terminal state reached.
    assert task.outcome is not None, (role, phase, graceful, task)
    # Invariant 3: no leaked session bookkeeping.
    assert task.task_id not in d.rm.sessions
    assert task.task_id not in d.rm.info.service_graphs
    # Role-specific expectations:
    if role == "sink":
        if task.outcome.value == "met":
            # The stream may have been delivered before the kill took
            # effect (only possible at the latest phase).
            assert phase == "during_final_transfer"
        else:
            assert task.outcome.value == "failed"
    elif role == "transcoder":
        # P2's step is repairable via the parallel e3@P3 instance
        # unless the task had already passed it.
        assert task.outcome.value in ("met", "missed")
    else:  # source: only matters before its step finished
        assert task.outcome.value in ("met", "missed", "failed")


def test_double_failure_source_and_transcoder():
    d = build_live_domain(rm_config=RMConfig(task_loss_grace=15.0))
    d.submit(origin="P4", deadline=120.0)

    def killers():
        yield d.env.timeout(4.0)
        d.peers["P2"].fail()
        yield d.env.timeout(10.0)
        d.peers["P3"].fail()  # the repair target dies too

    d.env.process(killers())
    d.env.run(until=300.0)
    task = d.task()
    assert task.outcome is not None
    assert task.task_id not in d.rm.sessions


def test_everyone_but_rm_dies():
    d = build_live_domain(rm_config=RMConfig(task_loss_grace=10.0))
    d.submit(origin="P4", deadline=60.0)

    def apocalypse():
        yield d.env.timeout(2.0)
        for pid in ("P1", "P2", "P3", "P4"):
            d.peers[pid].fail()

    d.env.process(apocalypse())
    d.env.run(until=200.0)
    task = d.task()
    assert task.outcome is not None and task.outcome.value == "failed"
    assert d.rm.info.n_peers == 0
    # The RM's catalog reflects that the object is gone.
    assert "movie" not in d.rm.object_catalog


def test_rapid_flapping_does_not_wedge():
    """A peer that crashes and is replaced repeatedly must not wedge
    the RM's monitor loop or leak sessions."""
    d = build_live_domain(rm_config=RMConfig(task_loss_grace=10.0))
    for origin in ("P3", "P4"):
        d.submit(origin=origin, deadline=150.0)

    def flapper():
        yield d.env.timeout(3.0)
        d.peers["P2"].fail()

    d.env.process(flapper())
    d.env.run(until=300.0)
    for task in d.rm.tasks.values():
        assert task.outcome is not None
    assert not d.rm.sessions

"""Resource graph, service graph, and path search."""

import pytest

from repro.graphs import (
    PathSearch,
    ResourceGraph,
    ServiceGraph,
    iter_paths,
)
from repro.graphs.resource_graph import ServiceEdge


def diamond() -> ResourceGraph:
    """s -> (a | b) -> t with an extra a->b cross edge."""
    g = ResourceGraph()
    g.add_service("s", "a", "sv1", "p1", 1.0, edge_id="sa")
    g.add_service("s", "b", "sv2", "p2", 1.0, edge_id="sb")
    g.add_service("a", "t", "sv3", "p3", 1.0, edge_id="at")
    g.add_service("b", "t", "sv4", "p4", 1.0, edge_id="bt")
    g.add_service("a", "b", "sv5", "p5", 1.0, edge_id="ab")
    return g


class TestResourceGraph:
    def test_add_state_idempotent(self):
        g = ResourceGraph()
        g.add_state("x")
        g.add_state("x")
        assert g.states == ["x"] and g.n_states == 1

    def test_add_service_creates_endpoints(self):
        g = ResourceGraph()
        e = g.add_service("u", "v", "svc", "p", 2.0, 100.0)
        assert g.has_state("u") and g.has_state("v")
        assert g.out_edges("u") == [e] and g.in_edges("v") == [e]

    def test_parallel_edges_allowed(self):
        g = ResourceGraph()
        g.add_service("u", "v", "svc1", "p1", 1.0)
        g.add_service("u", "v", "svc2", "p2", 1.0)
        assert len(g.out_edges("u")) == 2

    def test_duplicate_edge_id_rejected(self):
        g = ResourceGraph()
        g.add_service("u", "v", "s", "p", 1.0, edge_id="e1")
        with pytest.raises(ValueError):
            g.add_service("u", "v", "s", "p", 1.0, edge_id="e1")

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            ServiceEdge("u", "v", "s", "p", work=-1.0)

    def test_remove_edge(self):
        g = diamond()
        g.remove_edge("ab")
        assert not g.has_edge("ab")
        assert all(e.edge_id != "ab" for e in g.out_edges("a"))
        g.remove_edge("ghost")  # idempotent

    def test_remove_peer_prunes_all_its_edges(self):
        g = ResourceGraph()
        g.add_service("u", "v", "s1", "pX", 1.0)
        g.add_service("v", "w", "s2", "pX", 1.0)
        g.add_service("u", "w", "s3", "pY", 1.0)
        removed = g.remove_peer("pX")
        assert len(removed) == 2
        assert g.n_edges == 1 and g.peers() == ["pY"]

    def test_edges_at_peer(self):
        g = diamond()
        assert [e.edge_id for e in g.edges_at_peer("p1")] == ["sa"]

    def test_copy_is_independent(self):
        g = diamond()
        dup = g.copy()
        dup.remove_peer("p1")
        assert g.has_edge("sa") and not dup.has_edge("sa")

    def test_peers_order(self):
        g = diamond()
        assert g.peers() == ["p1", "p2", "p3", "p4", "p5"]


class TestSearch:
    def test_paper_bfs_on_diamond(self):
        g = diamond()
        paths = [
            [e.edge_id for e in p]
            for p in iter_paths(g, "s", "t", "paper")
        ]
        # 'b' is expanded once (via sb, BFS order); the a->b->t route is
        # pruned by the visited set, but both direct goal edges survive.
        assert ["sa", "at"] in paths
        assert ["sb", "bt"] in paths
        assert ["sa", "ab", "bt"] not in paths

    def test_exhaustive_finds_all_simple_paths(self):
        g = diamond()
        paths = sorted(
            tuple(e.edge_id for e in p)
            for p in iter_paths(g, "s", "t", "exhaustive")
        )
        assert paths == sorted([
            ("sa", "at"), ("sb", "bt"), ("sa", "ab", "bt"),
        ])

    def test_exhaustive_no_repeated_vertices(self):
        g = diamond()
        g.add_service("b", "a", "back", "p6", 1.0, edge_id="ba")
        for p in iter_paths(g, "s", "t", "exhaustive"):
            visited = ["s"] + [e.dst for e in p]
            assert len(visited) == len(set(visited))

    def test_same_init_and_goal_yields_empty_path(self):
        g = diamond()
        for policy in ("paper", "exhaustive"):
            assert list(iter_paths(g, "s", "s", policy)) == [[]]

    def test_missing_vertices_yield_nothing(self):
        g = diamond()
        assert list(iter_paths(g, "ghost", "t")) == []
        assert list(iter_paths(g, "s", "ghost")) == []

    def test_feasible_prunes_prefixes(self):
        g = diamond()
        # Forbid anything through 'a'.
        ok = lambda path: all(e.dst != "a" for e in path)
        paths = [
            [e.edge_id for e in p]
            for p in iter_paths(g, "s", "t", "paper", feasible=ok)
        ]
        assert paths == [["sb", "bt"]]

    def test_max_expansions_bounds_search(self):
        g = ResourceGraph()
        # A long chain.
        for i in range(100):
            g.add_service(i, i + 1, f"s{i}", "p", 1.0)
        got = list(iter_paths(g, 0, 100, "paper", max_expansions=5))
        assert got == []

    def test_unknown_policy_rejected(self):
        g = diamond()
        with pytest.raises(ValueError):
            list(iter_paths(g, "s", "t", "bogus"))
        with pytest.raises(ValueError):
            PathSearch(g, "bogus")

    def test_parallel_goal_edges_all_yielded(self):
        g = ResourceGraph()
        g.add_service("s", "t", "s1", "p1", 1.0, edge_id="a")
        g.add_service("s", "t", "s2", "p2", 1.0, edge_id="b")
        paths = [
            [e.edge_id for e in p]
            for p in iter_paths(g, "s", "t", "paper")
        ]
        assert paths == [["a"], ["b"]]

    def test_path_search_wrapper(self):
        search = PathSearch(diamond(), "exhaustive")
        assert len(search.paths("s", "t")) == 3


class TestServiceGraph:
    def make_edges(self):
        g = diamond()
        return [g.edge("sa"), g.edge("at")]

    def test_from_edges(self):
        sg = ServiceGraph.from_edges("t1", self.make_edges(), "src", "sink")
        assert len(sg) == 2
        assert sg.steps[0].peer_id == "p1"
        assert sg.allocation_pairs() == [("sv1", "p1"), ("sv3", "p3")]

    def test_from_edges_work_scale(self):
        sg = ServiceGraph.from_edges(
            "t1", self.make_edges(), "src", "sink", work_scale=2.0
        )
        assert sg.steps[0].work == pytest.approx(2.0)
        assert sg.total_work() == pytest.approx(4.0)

    def test_index_offset(self):
        sg = ServiceGraph.from_edges(
            "t1", self.make_edges(), "src", "sink", index_offset=3
        )
        assert [s.index for s in sg.steps] == [3, 4]

    def test_peers_includes_endpoints(self):
        sg = ServiceGraph.from_edges("t1", self.make_edges(), "src", "sink")
        assert sg.peers() == ["src", "p1", "p3", "sink"]
        assert sg.uses_peer("p3") and not sg.uses_peer("ghost")

    def test_steps_on_peer(self):
        sg = ServiceGraph.from_edges("t1", self.make_edges(), "src", "sink")
        assert len(sg.steps_on_peer("p1")) == 1

    def test_replace_step(self):
        sg = ServiceGraph.from_edges("t1", self.make_edges(), "src", "sink")
        new = sg.steps[1].with_peer("p9")
        sg.replace_step(1, new)
        assert sg.steps[1].peer_id == "p9"

    def test_replace_step_index_mismatch(self):
        sg = ServiceGraph.from_edges("t1", self.make_edges(), "src", "sink")
        with pytest.raises(ValueError):
            sg.replace_step(0, sg.steps[1])
        with pytest.raises(IndexError):
            sg.replace_step(9, sg.steps[1].with_peer("x"))

    def test_record_timing_validation(self):
        sg = ServiceGraph.from_edges("t1", self.make_edges(), "src", "sink")
        sg.record_timing(0, 1.0, 2.0)
        assert sg.timings[0] == (1.0, 2.0)
        with pytest.raises(ValueError):
            sg.record_timing(1, 2.0, 1.0)

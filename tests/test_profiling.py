"""The self-observing runtime: profiler, overhead budgeter, SLO burn.

Covers the tentpole surfaces — sim/wall sampling profilers (with the
trajectory-identity guarantee for the sim hook), folded-stack
aggregation, the overhead budgeter's staged backoff/recovery, and
multi-window SLO burn-rate alerting into the flight recorder — plus the
satellites: SeriesRing rollup edge cases, the recorder's cooldown
gauge/skip counter, and the liar_peers/liar_control SLO distinction.
"""

from __future__ import annotations

import os
from time import perf_counter, sleep

import pytest

import repro
from repro import telemetry
from repro.profiling import (
    Actuator,
    BurnRateMonitor,
    OverheadBudgeter,
    SLO,
    SimEventProfiler,
    StackAggregator,
    WallStackProfiler,
    profile_sim,
    profile_wall,
)
from repro.profiling.budget import ACTION_CODES
from repro.profiling.stacks import OTHER_KEY
from repro.scenarios import build_stressed_scenario, load_spec
from repro.sim import Environment
from repro.telemetry import FlightRecorder, HealthSampler, Telemetry
from repro.telemetry.timeseries import SeriesRing


@pytest.fixture(autouse=True)
def _isolate_global_handle():
    telemetry.deactivate()
    yield
    telemetry.deactivate()


def toy_sim(n_workers: int = 4, ticks: int = 100) -> Environment:
    env = Environment()

    def worker():
        for _ in range(ticks):
            yield env.timeout(1.0)

    for _ in range(n_workers):
        env.process(worker())
    return env


class _Clock:
    def __init__(self):
        self.t = 0.0
        self.label = "sim_seconds"

    def now(self):
        return self.t


class _FakeTel:
    """Just enough Telemetry surface for a sampler + monitor."""

    def __init__(self):
        self.clock = _Clock()


# -- stack aggregation -------------------------------------------------------

class TestStackAggregator:
    def test_top_orders_by_count_then_stack(self):
        agg = StackAggregator()
        agg.add("a;b", count=3)
        agg.add("a;c", count=1)
        agg.add("z", count=3)
        top = agg.top(2)
        assert [s for s, _, _ in top] == ["a;b", "z"]

    def test_overflow_folds_into_other(self):
        agg = StackAggregator(max_stacks=2)
        agg.add("a")
        agg.add("b")
        agg.add("c")
        agg.add("d")
        assert agg.truncated == 2
        assert dict((s, c) for s, c, _ in agg.top(10))[OTHER_KEY] == 2.0
        # Existing stacks keep accumulating after the table is full.
        agg.add("a")
        assert dict((s, c) for s, c, _ in agg.top(10))["a"] == 2.0

    def test_folded_output_format(self, tmp_path):
        agg = StackAggregator()
        agg.add("main;hot_loop", count=41)
        agg.add("main;idle", count=1)
        path = agg.write_folded(str(tmp_path / "out.folded"))
        lines = open(path).read().splitlines()
        assert "main;hot_loop 41" in lines
        assert "main;idle 1" in lines

    def test_record_and_publish(self):
        agg = StackAggregator()
        agg.add("a;b", count=9)
        agg.add("c", count=1)
        rec = agg.record(top_n=1)
        # n_samples counts add() calls; shares weight by count.
        assert rec["samples"] == 2 and rec["unique_stacks"] == 2
        assert rec["top"][0] == {
            "stack": "a;b", "count": 9.0, "seconds": 0.0, "share": 0.9,
        }
        tel = Telemetry.wall()
        agg.publish(tel.metrics, top_n=1)
        assert tel.metrics.value("repro_prof_samples") == 2.0
        assert tel.metrics.value(
            "repro_prof_hot_share", rank="1", stack="a;b"
        ) == 0.9


# -- the sim profiler --------------------------------------------------------

class TestSimEventProfiler:
    def test_trajectory_identical_with_profiler_attached(self):
        base = toy_sim()
        base.run()

        env = toy_sim()
        prof = SimEventProfiler(env, stride=8)
        prof.attach()
        env.run()
        prof.detach()
        assert env.n_processed == base.n_processed
        assert env.now == base.now
        assert prof.agg.n_samples > 0

    def test_stride_controls_sample_count(self):
        env = toy_sim()
        prof = SimEventProfiler(env, stride=10)
        prof.attach()
        env.run()
        expected = env.n_processed // 10
        assert abs(prof.agg.n_samples - expected) <= 1

    def test_stacks_attribute_dispatch_targets(self):
        env = toy_sim()
        prof = SimEventProfiler(env, stride=4)
        prof.attach()
        env.run()
        stacks = [s for s, _, _ in prof.agg.top(10)]
        assert stacks and all(s.startswith("sim.dispatch;") for s in stacks)
        assert any(s.endswith(":worker") for s in stacks)

    def test_detach_stops_sampling(self):
        env = toy_sim(ticks=10)
        prof = SimEventProfiler(env, stride=1)
        prof.attach()
        prof.detach()
        env.run()
        assert prof.agg.n_samples == 0

    def test_rate_setting_is_live(self):
        env = toy_sim()
        prof = SimEventProfiler(env, stride=4)
        prof.set_rate_setting(400.0)
        assert prof.stride == 400
        assert prof.get_rate_setting() == 400.0
        # Never finer than one sample per event.
        prof.set_rate_setting(0.2)
        assert prof.stride == 1


# -- the wall profiler -------------------------------------------------------

class TestWallStackProfiler:
    def test_samples_other_threads_not_itself(self):
        prof = WallStackProfiler(period=0.005)
        prof.start()
        deadline = perf_counter() + 2.0
        while prof.agg.n_samples < 3 and perf_counter() < deadline:
            sleep(0.01)
        prof.stop()
        assert prof.agg.n_samples >= 3
        assert all(
            "sampler.py:_loop" not in s for s, _, _ in prof.agg.top(50)
        )

    def test_stop_is_idempotent_and_final(self):
        prof = WallStackProfiler(period=0.005)
        prof.start()
        prof.stop()
        n = prof.agg.n_samples
        prof.stop()
        sleep(0.02)
        assert prof.agg.n_samples == n


# -- the overhead budgeter ---------------------------------------------------

class _SyntheticLoad:
    """A cost source whose rate is inversely proportional to a knob."""

    def __init__(self, rate: float):
        self.rate = rate  # overhead ratio contributed at setting=1
        self.setting = 1.0
        self.cost = 0.0
        self._last = perf_counter()

    def tick(self):
        now = perf_counter()
        self.cost += (self.rate / self.setting) * (now - self._last)
        self._last = now

    def get(self):
        return self.setting

    def set(self, v):
        self.setting = v


class TestOverheadBudgeter:
    def test_converges_under_synthetic_load_and_recovers(self):
        load = _SyntheticLoad(rate=0.08)
        budgeter = OverheadBudgeter(budget=0.02, min_interval=0.0)
        budgeter.add_source("load", lambda: load.cost)
        budgeter.add_actuator(
            Actuator("knob", load.get, load.set, lo=1.0, hi=64.0)
        )
        for _ in range(8):
            sleep(0.002)
            load.tick()
            budgeter.evaluate()
        # 8% load / knob settles around the 2% budget: the knob lands
        # in [4, 8] (timing jitter may overshoot one doubling, then
        # hysteresis holds or walks it back).
        assert 4.0 <= load.setting <= 8.0
        assert budgeter.n_backoffs >= 2
        assert budgeter.overhead_ratio <= 0.08 / 4.0 + 0.005
        # Load vanishes -> recovery walks the knob back to full
        # resolution (lo), never past it.
        load.rate = 0.0
        for _ in range(12):
            sleep(0.002)
            load.tick()
            budgeter.evaluate()
        assert load.setting == 1.0
        assert budgeter.n_recovers >= 2

    def test_severe_overshoot_backs_off_every_knob(self):
        budgeter = OverheadBudgeter(budget=0.02, min_interval=0.0)
        a = _SyntheticLoad(rate=0.0)
        b = _SyntheticLoad(rate=0.0)
        budgeter.add_actuator(Actuator("a", a.get, a.set, lo=1.0, hi=8.0))
        budgeter.add_actuator(Actuator("b", b.get, b.set, lo=1.0, hi=8.0))
        burst = _SyntheticLoad(rate=0.5)  # >> 2x budget: severe
        budgeter.add_source("burst", lambda: burst.cost)
        sleep(0.002)
        burst.tick()
        budgeter.evaluate()
        assert a.setting == 2.0 and b.setting == 2.0

    def test_mild_overshoot_moves_one_knob_in_order(self):
        budgeter = OverheadBudgeter(budget=0.02, min_interval=0.0)
        a = _SyntheticLoad(rate=0.0)
        b = _SyntheticLoad(rate=0.0)
        budgeter.add_actuator(Actuator("a", a.get, a.set, lo=1.0, hi=8.0))
        budgeter.add_actuator(Actuator("b", b.get, b.set, lo=1.0, hi=8.0))
        mild = _SyntheticLoad(rate=0.03)  # over budget, under 2x
        budgeter.add_source("mild", lambda: mild.cost)
        sleep(0.002)
        mild.tick()
        budgeter.evaluate()
        assert a.setting == 2.0 and b.setting == 1.0

    def test_decisions_are_recorded_with_settings(self):
        load = _SyntheticLoad(rate=0.5)
        budgeter = OverheadBudgeter(budget=0.02, min_interval=0.0)
        budgeter.add_source("load", lambda: load.cost)
        budgeter.add_actuator(
            Actuator("knob", load.get, load.set, lo=1.0, hi=64.0)
        )
        sleep(0.002)
        load.tick()
        decision = budgeter.evaluate()
        assert decision["action"] == "backoff"
        assert decision["settings"] == {"knob": 2.0}
        assert budgeter.decisions[-1] is decision
        assert set(ACTION_CODES) == {"backoff", "hold", "recover"}

    def test_min_interval_rate_limits(self):
        budgeter = OverheadBudgeter(budget=0.02, min_interval=60.0)
        budgeter.evaluate()
        assert budgeter.maybe_evaluate() is None


# -- SLO burn-rate alerting --------------------------------------------------

def miss_rate_slo(threshold: float = 0.1) -> SLO:
    return SLO("miss_rate", "repro_sched_miss_ratio", threshold,
               objective=0.99)


def drive(sampler, monitor, points):
    """Feed scripted (t, value) samples through the probe pipeline."""
    script = iter(points)

    def signal_probe(s):
        s.observe("repro_sched_miss_ratio", s._pending)  # noqa: SLF001

    sampler._probes.insert(0, signal_probe)
    for t, v in script:
        sampler.tel.clock.t = t
        sampler._pending = v
        sampler.sample()


class TestBurnRateMonitor:
    def make(self, **kwargs):
        tel = _FakeTel()
        sampler = HealthSampler(tel, period=1.0)
        kwargs.setdefault("fast_window", 10.0)
        kwargs.setdefault("slow_window", 100.0)
        kwargs.setdefault("min_samples", 3)
        monitor = BurnRateMonitor(
            sampler, slos=(miss_rate_slo(),), **kwargs
        )
        sampler.add_probe(monitor.as_probe())
        return sampler, monitor

    def test_fast_burn_fires_once_edge_triggered(self):
        sampler, monitor = self.make()
        points = [(float(t), 0.0) for t in range(6)]
        points += [(float(t), 0.5) for t in range(6, 16)]
        drive(sampler, monitor, points)
        fast = [a for a in monitor.alerts if a.window == "fast"]
        assert len(fast) == 1
        alert = fast[0]
        assert alert.slo == "miss_rate"
        assert alert.burn > 10.0
        assert alert.bad_fraction > 0.1

    def test_warmup_suppresses_early_alert(self):
        sampler, monitor = self.make(warmup=0.5)
        # All-bad samples, but only 3s watched < 0.5 * 10s window.
        drive(sampler, monitor, [(0.0, 1.0), (1.0, 1.0), (2.0, 1.0),
                                 (3.0, 1.0)])
        assert monitor.alerts == []

    def test_hysteresis_clears_then_refires(self):
        sampler, monitor = self.make(warmup=0.0, hysteresis=0.8)
        bad = [(float(t), 1.0) for t in range(5)]
        good = [(float(t), 0.0) for t in range(5, 30)]
        bad2 = [(float(t), 1.0) for t in range(30, 35)]
        drive(sampler, monitor, bad + good + bad2)
        fast = [a for a in monitor.alerts if a.window == "fast"]
        assert len(fast) == 2

    def test_rolled_up_points_judged_by_worst_side(self):
        # A short excursion merged into a low-mean point must still
        # count as bad: the monitor judges ">"-SLOs by the point max.
        ring = SeriesRing("repro_sched_miss_ratio", capacity=4,
                          rollup=True)
        for t, v in [(0, 0.0), (1, 0.9), (2, 0.0), (3, 0.0), (4, 0.0)]:
            ring.append(float(t), v)
        merged = [p for p in ring.points() if p[4] > 1]
        assert merged and all(p[1] < 0.5 for p in merged)
        frac, n = BurnRateMonitor._worst_bad_fraction(
            [ring], 0.0, miss_rate_slo()
        )
        # The bad sample merged with a good neighbour: the whole
        # 2-count point counts bad (conservative over-count, never an
        # excursion hidden by the mean).
        assert n == 5 and frac == pytest.approx(2 / 5)

    def test_burn_series_and_eval_stride_knob(self):
        sampler, monitor = self.make(warmup=0.0)
        monitor.set_rate_setting(2.4)
        assert monitor.eval_stride == 2
        drive(sampler, monitor, [(float(t), 0.0) for t in range(8)])
        ring = sampler.series(
            "repro_slo_burn_rate", slo="miss_rate", window="fast"
        )
        # Every 2nd tick evaluates -> 4 burn points, all zero.
        assert ring is not None and len(ring) == 4
        assert set(ring.values()) == {0.0}


class TestSLOAlertsIntoRecorder:
    def test_alert_triggers_flight_dump_with_cooldown(self, tmp_path):
        env = Environment()
        tel = telemetry.activate(Telemetry.sim(env))
        sampler = HealthSampler(tel, period=1.0)
        recorder = FlightRecorder(
            tel, out_dir=str(tmp_path), sampler=sampler, cooldown=60.0,
        )
        sampler.add_probe(
            lambda s: s.observe("repro_sched_miss_ratio", 1.0)
        )
        monitor = BurnRateMonitor(
            sampler, slos=(miss_rate_slo(),), tel=tel,
            recorder=recorder, fast_window=10.0, min_samples=3,
            warmup=0.0,
        )
        sampler.add_probe(monitor.as_probe())
        sampler.attach_sim(env)
        env.run(until=20.0)
        fast = [a for a in monitor.alerts if a.window == "fast"]
        assert len(fast) == 1
        assert fast[0].dump is not None and os.path.exists(fast[0].dump)
        assert os.path.basename(fast[0].dump).endswith(
            "slo_burn_fast.jsonl"
        )
        assert tel.metrics.value(
            "repro_slo_alerts_total", slo="miss_rate", window="fast"
        ) == 1.0
        assert any(
            ev.name == "slo.burn" for ev in tel.tracer.events
        )


# -- flight recorder cooldown metrics ----------------------------------------

class TestRecorderCooldownMetrics:
    def test_skip_counter_and_gauge_lifecycle(self, tmp_path):
        env = Environment()
        tel = telemetry.activate(Telemetry.sim(env))
        rec = FlightRecorder(tel, out_dir=str(tmp_path), cooldown=30.0)
        assert rec.trigger("slo_burn_fast", now=10.0) is not None
        # Within the cooldown: suppressed, counted, gauge raised.
        assert rec.trigger("slo_burn_fast", now=20.0) is None
        assert rec.skipped == {"slo_burn_fast": 1}
        assert tel.metrics.value(
            "repro_flightrecorder_dump_skipped_total",
            reason="slo_burn_fast",
        ) == 1.0
        assert tel.metrics.value(
            "repro_flightrecorder_cooldown_active",
            reason="slo_burn_fast",
        ) == 1.0
        # Another reason is an independent cooldown domain.
        assert rec.trigger("slo_burn_slow", now=20.0) is not None
        rec.refresh_cooldowns(now=25.0)
        assert tel.metrics.value(
            "repro_flightrecorder_cooldown_active",
            reason="slo_burn_fast",
        ) == 1.0
        rec.refresh_cooldowns(now=45.0)
        assert tel.metrics.value(
            "repro_flightrecorder_cooldown_active",
            reason="slo_burn_fast",
        ) == 0.0
        # Expired: the next trigger dumps again.
        assert rec.trigger("slo_burn_fast", now=45.0) is not None
        rec.close()


# -- SeriesRing rollup edge cases --------------------------------------------

class TestSeriesRingRollup:
    def test_empty_ring(self):
        ring = SeriesRing("x", rollup=True)
        assert len(ring) == 0 and ring.last is None
        assert ring.points() == [] and ring.points_since(0.0) == []
        assert ring.counts() == []
        assert ring.quantile(0.5) == 0.0
        assert ring.as_record()["n"] == []

    def test_exactly_at_capacity_does_not_downsample(self):
        ring = SeriesRing("x", capacity=8, rollup=True)
        for t in range(8):
            ring.append(float(t), float(t))
        assert len(ring) == 8
        assert ring.counts() == [1] * 8
        assert ring.values() == [float(t) for t in range(8)]

    def test_crossing_capacity_merges_oldest_half(self):
        ring = SeriesRing("x", capacity=8, rollup=True)
        for t in range(9):
            ring.append(float(t), float(t))
        # Oldest half (4 points) pairwise-merged to 2; recent 4 raw;
        # the 9th appended after the compact.
        assert len(ring) == 7
        assert sum(ring.counts()) == 9
        points = ring.points()
        assert points[0] == (0.5, 0.5, 0.0, 1.0, 2)
        assert points[-1] == (8.0, 8.0, 8.0, 8.0, 1)
        # Whole-ring extremes survive the merge.
        assert min(p[2] for p in points) == 0.0
        assert max(p[3] for p in points) == 8.0

    def test_odd_half_carries_unpaired_point(self):
        ring = SeriesRing("x", capacity=7, rollup=True)
        for t in range(8):
            ring.append(float(t), float(t))
        assert sum(ring.counts()) == 8
        # half=3: one merged pair + the unpaired point carried as-is.
        assert ring.counts()[:2] == [2, 1]

    def test_quantiles_weight_by_sample_count(self):
        # Stationary signal: count-weighting keeps quantiles anchored
        # to sample mass, so the median survives heavy downsampling.
        ring = SeriesRing("x", capacity=32, rollup=True)
        stationary = [float(1 + (i % 10)) for i in range(100)]
        for t, v in enumerate(stationary):
            ring.append(float(t), v)
        assert sum(ring.counts()) == 100
        assert ring.quantile(0.5) == pytest.approx(5.5, abs=1.0)
        assert ring.quantile(0.0) == 1.0
        assert ring.quantile(1.0) == 10.0

    def test_quantiles_track_mass_not_point_count(self):
        # A monotonic ramp: the oldest bucket absorbs over half the
        # samples.  The count-weighted median lands in that bucket (its
        # stored mean); an unweighted median over the stored points
        # would escape into the raw tail (~88) and be far wrong.
        ring = SeriesRing("x", capacity=32, rollup=True)
        for t, v in enumerate(range(1, 101)):
            ring.append(float(t), float(v))
        points = ring.points()
        running = 0
        for _, mean, mn, mx, cnt in points:
            running += cnt
            if running >= 50:
                median_bucket = (mean, mn, mx)
                break
        assert ring.quantile(0.5) == median_bucket[0]
        assert median_bucket[1] <= 50.0 <= median_bucket[2]
        # The recent raw region keeps its quantiles exact.
        assert ring.quantile(0.9) == 90.0
        assert ring.quantile(1.0) == 100.0

    def test_points_since_stops_at_window_edge(self):
        ring = SeriesRing("x", capacity=64, rollup=True)
        for t in range(50):
            ring.append(float(t), float(t))
        window = ring.points_since(40.0)
        assert [p[0] for p in window] == [float(t) for t in range(40, 50)]

    def test_record_round_trip_keeps_counts(self):
        ring = SeriesRing("x", capacity=4, rollup=True)
        for t in range(6):
            ring.append(float(t), float(t))
        rec = ring.as_record()
        back = SeriesRing.from_record(rec)
        assert back.rollup
        assert back.counts() == ring.counts()
        assert back.values() == pytest.approx(ring.values())

    def test_default_ring_still_drops_oldest(self):
        ring = SeriesRing("x", capacity=4)
        for t in range(6):
            ring.append(float(t), float(t))
        assert ring.values() == [2.0, 3.0, 4.0, 5.0]
        assert ring.counts() == [1, 1, 1, 1]


# -- session wiring ----------------------------------------------------------

class TestProfileSessions:
    def test_profile_sim_preserves_scenario_trajectory(self, tmp_path):
        docs = []
        for profiled in (False, True):
            spec = load_spec(os.path.join(
                repo_root(), "benchmarks", "scenarios",
                "liar_control.json",
            ))
            spec.duration = 20.0
            spec.drain = 10.0
            stressed = build_stressed_scenario(spec,
                                               out_dir=str(tmp_path))
            if profiled:
                stressed.attach_profiling(out_dir=str(tmp_path))
            stressed.run()
            docs.append(stressed.metrics_document())
        plain, profiled = docs
        assert profiled["events"] == plain["events"]
        assert profiled["messages"] == plain["messages"]
        assert "profile" in profiled and "profile" not in plain
        assert profiled["profile"]["samples"] > 0

    def test_profile_wall_session_lifecycle(self, tmp_path):
        tel = telemetry.activate(Telemetry.wall())
        sess = profile_wall(tel=tel, period=0.005)
        deadline = perf_counter() + 2.0
        while (sess.profiler.agg.n_samples < 2
               and perf_counter() < deadline):
            sleep(0.01)
        sess.stop()
        rec = sess.record()
        assert rec["runtime"] == "wall" and rec["samples"] >= 2
        assert "budget" in rec and "slo" not in rec
        path = sess.write_folded(str(tmp_path / "w.folded"))
        assert path and os.path.getsize(path) > 0
        sess.publish(tel.metrics)
        assert tel.metrics.value("repro_prof_budget_target") == 0.02

    def test_liar_pair_slo_distinction(self, tmp_path):
        """liar_peers burns the miss-rate SLO; liar_control must not."""
        alerts = {}
        for name in ("liar_control", "liar_peers"):
            spec = load_spec(os.path.join(
                repo_root(), "benchmarks", "scenarios", f"{name}.json"
            ))
            out = tmp_path / name
            out.mkdir()
            stressed = build_stressed_scenario(spec, out_dir=str(out))
            sess = stressed.attach_profiling(out_dir=str(out))
            stressed.run()
            alerts[name] = [
                a for a in sess.alerts if a.slo == "miss_rate"
            ]
        assert alerts["liar_control"] == []
        assert len(alerts["liar_peers"]) >= 1
        alert = alerts["liar_peers"][0]
        assert alert.window == "fast"
        assert alert.dump is not None and os.path.exists(alert.dump)


def repo_root() -> str:
    src = os.path.dirname(os.path.dirname(repro.__file__))
    return os.path.dirname(src)


# -- CLI integration ---------------------------------------------------------

class TestCLI:
    def test_repro_run_scenario_profile(self, tmp_path, capsys):
        from repro.workloads.cli import main

        spec = os.path.join(
            repo_root(), "benchmarks", "scenarios", "liar_control.json"
        )
        rc = main([
            "--scenario", spec, "--profile",
            "--profile-folded", str(tmp_path / "hot.folded"),
            "--metrics-out", str(tmp_path / "m.json"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "profiler:" in out and "samples" in out
        assert os.path.getsize(tmp_path / "hot.folded") > 0
        import json
        doc = json.load(open(tmp_path / "m.json"))
        assert doc["profile"]["runtime"] == "sim"
        assert doc["profile"]["budget"]["target"] == 0.02

    def test_repro_run_trace_profile_record(self, tmp_path, capsys):
        from repro.telemetry.export import read_jsonl
        from repro.workloads.cli import main
        from repro.workloads.configio import config_to_json
        from repro.workloads.scenario import ScenarioConfig

        cfg = tmp_path / "cfg.json"
        cfg.write_text(config_to_json(ScenarioConfig()))
        trace = tmp_path / "t.jsonl"
        rc = main([
            str(cfg), "--duration", "30", "--drain", "10",
            "--trace", str(trace), "--sample", "--profile",
        ])
        assert rc == 0
        data = read_jsonl(str(trace))
        assert data.profile is not None
        assert data.profile["runtime"] == "sim"
        assert data.profile["slo"]["slos"][0]["name"] == "miss_rate"

    def test_profile_flags_require_profile(self, tmp_path):
        from repro.workloads.cli import main

        with pytest.raises(SystemExit):
            main(["x.json", "--profile-budget", "0.05"])
        with pytest.raises(SystemExit):
            main(["x.json", "--profile-folded", "f.folded"])

    def test_repro_bench_profile_refuses_baseline(self):
        from repro.benchmarking.cli import main

        with pytest.raises(SystemExit):
            main(["--profile", "--baseline", "b.json"])

    def test_repro_bench_profile_hot_paths(self, tmp_path, capsys):
        from repro.benchmarking.cli import main

        rc = main([
            "--quick", "--only", "micro_event_kernel",
            "--repeat", "1", "--profile",
            "--out", str(tmp_path / "b.json"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "micro_event_kernel:" in out
        import json
        doc = json.load(open(tmp_path / "b.json"))
        prof = doc["results"][0]["profile"]
        assert prof["runtime"] == "wall"
        assert prof["budget"]["target"] == 0.02

    def test_dash_renders_profiler_and_slo_panels(self, tmp_path,
                                                  capsys):
        from repro.telemetry.dash import main as dash_main
        from repro.workloads.cli import main as run_main
        from repro.workloads.configio import config_to_json
        from repro.workloads.scenario import ScenarioConfig

        cfg = tmp_path / "cfg.json"
        cfg.write_text(config_to_json(ScenarioConfig()))
        trace = tmp_path / "t.jsonl"
        rc = run_main([
            str(cfg), "--duration", "30", "--drain", "10",
            "--trace", str(trace), "--sample", "--profile",
        ])
        assert rc == 0
        capsys.readouterr()
        assert dash_main([str(trace)]) == 0
        out = capsys.readouterr().out
        assert "profiler" in out and "slo burn" in out
        assert "partition_drops=" in out

"""Placement parity and per-policy smoke for the control-plane refactor.

The golden file pins the exact placements a seeded scenario produced
under the paper's fairness policy before the ResourceManager was
decomposed into the pluggable control plane.  The parity test replays
the same scenario and demands byte-identical decisions — proof that the
refactor moved code without changing behavior.  The smoke tests run the
same scenario under every built-in baseline policy and only demand
liveness (placements differ by design).

Regenerate the golden (only after an *intentional* behavior change)::

    PYTHONPATH=src python -m tests.test_policy_parity > \
        tests/data/placement_parity_golden.json
"""

import json
import sys
from pathlib import Path

import pytest

from repro.core.control.placement import policy_names
from repro.workloads.scenario import ScenarioConfig, build_scenario

GOLDEN = Path(__file__).parent / "data" / "placement_parity_golden.json"

pytestmark = pytest.mark.slow


def run_scenario(policy: str = "fairness", seed: int = 42):
    cfg = ScenarioConfig(seed=seed, allocation_policy=policy)
    cfg.workload.rate = 0.4
    scenario = build_scenario(cfg)
    scenario.run(duration=120.0, drain=60.0)
    return scenario


def placement_records(scenario) -> list:
    """Canonical per-task records, ordered by submission.

    ``task_id`` is excluded: the id counter is module-global, so the
    ids shift with test execution order while the placements don't.
    """
    tasks = scenario.overlay.all_tasks()
    tasks.sort(key=lambda t: (t.submitted_at, int(t.task_id[1:])))
    return [
        {
            "name": t.name,
            "origin": t.origin_peer,
            "submitted_at": round(t.submitted_at, 9),
            "state": t.state.value,
            "outcome": t.outcome.value if t.outcome else None,
            "allocation": [list(p) for p in (t.allocation or [])],
        }
        for t in tasks
    ]


class TestPaperPolicyParity:
    def test_placements_match_pre_refactor_golden(self):
        golden = json.loads(GOLDEN.read_text())
        scenario = run_scenario("fairness", seed=golden["seed"])
        records = placement_records(scenario)
        assert len(records) == golden["n_tasks"]
        assert records == golden["tasks"]

    def test_paper_name_is_the_same_policy(self):
        """The registry name 'paper' routes to the identical selector."""
        a = placement_records(run_scenario("fairness"))
        b = placement_records(run_scenario("paper"))
        assert a == b


class TestPolicySmoke:
    @pytest.mark.parametrize(
        "policy", [n for n in policy_names() if n != "fairness"]
    )
    def test_policy_completes_tasks(self, policy):
        scenario = run_scenario(policy)
        completed = sum(
            rm.stats["completed"] for rm in scenario.overlay.rms()
        )
        assert completed > 0, f"policy {policy!r} completed nothing"
        for rm in scenario.overlay.rms():
            assert rm.policy_name == ("paper" if policy == "fairness"
                                      else policy)


if __name__ == "__main__":  # pragma: no cover — golden regeneration
    doc = {"seed": 42, "policy": "fairness/paper"}
    records = placement_records(run_scenario("fairness", seed=42))
    doc["n_tasks"] = len(records)
    doc["tasks"] = records
    json.dump(doc, sys.stdout, indent=1, sort_keys=True)
    sys.stdout.write("\n")

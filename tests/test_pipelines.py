"""The sensor-pipeline application domain (architecture generality)."""

import pytest

from repro.pipelines import (
    DataForm,
    PipelineCatalog,
    PipelineCostModel,
    SensorRecording,
    StageSpec,
)


ECG_RAW = DataForm("ecg", "raw", 500.0)
ECG_FILT = DataForm("ecg", "filtered", 500.0)
ECG_COMP = DataForm("ecg", "compressed", 500.0)


class TestDataForm:
    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError):
            DataForm("ecg", "holographic", 500.0)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            DataForm("ecg", "raw", 0.0)

    def test_bytes_per_second_by_stage(self):
        assert ECG_RAW.bytes_per_second() == pytest.approx(2000.0)
        assert ECG_COMP.bytes_per_second() == pytest.approx(250.0)

    def test_compression_shrinks_volume(self):
        assert ECG_COMP.bytes_per_second() < ECG_RAW.bytes_per_second()

    def test_hashable_state(self):
        assert DataForm("ecg", "raw", 500.0) == ECG_RAW
        assert len({ECG_RAW, DataForm("ecg", "raw", 500.0)}) == 1


class TestStageSpec:
    def test_identity_rejected(self):
        with pytest.raises(ValueError):
            StageSpec(ECG_RAW, ECG_RAW, "bandpass_filter")

    def test_cross_kind_rejected(self):
        eeg = DataForm("eeg", "raw", 256.0)
        with pytest.raises(ValueError):
            StageSpec(ECG_RAW, eeg, "bandpass_filter")

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            StageSpec(ECG_RAW, ECG_FILT, "quantum_filter")

    def test_service_id_descriptive(self):
        spec = StageSpec(ECG_RAW, ECG_FILT, "bandpass_filter")
        assert "bandpass_filter" in spec.service_id
        assert "ecg" in spec.service_id


class TestCostModel:
    def test_work_scales_with_rate_and_duration(self):
        m = PipelineCostModel()
        slow = DataForm("spo2", "raw", 25.0)
        assert m.work("bandpass_filter", ECG_RAW, 60.0) > \
            m.work("bandpass_filter", slow, 60.0)
        assert m.work("bandpass_filter", ECG_RAW, 120.0) == pytest.approx(
            2 * m.work("bandpass_filter", ECG_RAW, 60.0)
        )

    def test_compression_costs_more_than_filtering(self):
        m = PipelineCostModel()
        assert m.work("wavelet_compress", ECG_FILT, 60.0) > \
            m.work("bandpass_filter", ECG_RAW, 60.0)

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            PipelineCostModel().work("sorcery", ECG_RAW, 60.0)


class TestCatalog:
    def test_stage_pool_well_formed(self):
        cat = PipelineCatalog()
        for stage in cat.stages():
            assert stage.src.kind == stage.dst.kind
            assert stage.dst.rate_hz <= stage.src.rate_hz

    def test_no_upsampling(self):
        cat = PipelineCatalog()
        assert all(
            b.rate_hz <= a.rate_hz for a, b in cat.conversions()
        )

    def test_work_of_known_stage(self):
        cat = PipelineCatalog()
        a, b = cat.conversions()[0]
        assert cat.work_of(a, b) > 0

    def test_work_of_unknown_stage(self):
        cat = PipelineCatalog()
        with pytest.raises(ValueError):
            cat.work_of(ECG_RAW, DataForm("eeg", "raw", 256.0))

    def test_reachability(self):
        cat = PipelineCatalog()
        reach = cat.reachable_from(ECG_RAW, max_hops=3)
        assert ECG_FILT in reach
        assert DataForm("ecg", "compressed", 500.0) in reach
        # Other signal kinds are unreachable from an ECG source.
        assert all(f.kind == "ecg" for f in reach)

    def test_source_formats_are_raw(self):
        cat = PipelineCatalog()
        assert all(f.stage == "raw" for f in cat.source_formats())
        assert len(cat.source_formats()) == 3


class TestSensorRecording:
    def test_size(self):
        rec = SensorRecording("r", ECG_RAW, duration_s=10.0)
        assert rec.size_bytes == pytest.approx(20_000.0)

    def test_media_object_protocol(self):
        """The attributes the RM/workload machinery relies on."""
        rec = SensorRecording("r", ECG_RAW)
        for attr in ("name", "fmt", "duration_s", "size_bytes"):
            assert hasattr(rec, attr)
        assert rec.content_hash and len(rec.content_hash) == 16


@pytest.mark.integration
class TestEndToEndPipelines:
    def test_full_system_on_pipeline_domain(self):
        """The unchanged core completes pipeline tasks end to end."""
        from repro.core.manager import RMConfig
        from repro.results import MetricsCollector
        from repro.net import Network
        from repro.overlay import OverlayNetwork
        from repro.sim import Environment, RandomStreams
        from repro.workloads.arrivals import (
            TaskArrivalProcess,
            WorkloadConfig,
        )
        from repro.workloads.population import (
            PopulationConfig,
            generate_specs,
        )

        streams = RandomStreams(11)
        env = Environment()
        net = Network(env, bandwidth=2.5e5)
        metrics = MetricsCollector(env)
        overlay = OverlayNetwork(
            env, net, rm_config=RMConfig(max_peers=16),
            on_task_event=metrics.on_task_event, streams=streams,
        )
        catalog = PipelineCatalog()
        recordings = [
            SensorRecording(f"rec{i}", form)
            for i, form in enumerate(catalog.source_formats() * 2)
        ]
        specs = generate_specs(
            catalog,
            PopulationConfig(n_peers=10, n_objects=len(recordings),
                             replication=2, services_per_peer=8),
            streams.get("population"),
            objects=recordings,
        )
        for spec in specs:
            overlay.join(spec)
        TaskArrivalProcess(
            overlay, catalog, recordings,
            config=WorkloadConfig(rate=0.5, deadline_slack=4.0,
                                  stop_at=100.0),
            rng=streams.get("arrivals"),
        )
        env.run(until=160.0)
        summary = metrics.summary(net_stats=net.stats)
        assert summary.n_submitted > 10
        assert summary.goodput > 0.8
        # At least one task used a genuine multi-stage pipeline.
        assert any(
            len(t.allocation) >= 2 for t in metrics.tasks.values()
        )

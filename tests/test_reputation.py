"""Reputation-gated load reports: the RM's misreporting defense.

Three layers, mirroring the implementation:

* :class:`ReputationEngine` unit tests — the signals, the asymmetric
  EWMA, the quarantine/probation state machine and the load penalty.
* :class:`DomainInfoBase` integration — the single ``effective_load``
  hook, roster forgetting and the read-only projection helper.
* End-to-end gates over the pinned adversarial scenarios — the
  defended run recovers the liar-induced miss-rate gap, quarantines
  exactly the liars, and leaves the honest control trajectory
  byte-identical.
"""

import os

import pytest

import repro
from repro.core.control.reputation import (
    PROBATION,
    QUARANTINED,
    SUSPECT,
    TRUSTED,
    ReputationConfig,
    ReputationEngine,
)
from repro.core.info_base import DomainInfoBase, PeerRecord
from repro.monitoring.profiler import LoadReport
from repro.scenarios import ScenarioSpec, load_spec, run_spec


def report(pid="p1", load=0.0, power=10.0, t=0.0):
    return LoadReport(
        peer_id=pid, time=t, power=power, utilization=load / power,
        load=load, bw_used=0.0, queue_work=0.0, queue_length=0,
    )


def record(pid="p1", power=10.0):
    return PeerRecord(peer_id=pid, power=power, bandwidth=1e6)


def make_engine(**overrides):
    return ReputationEngine(ReputationConfig(**overrides))


def feed(engine, rec, n, load=0.0, power=None, projected=0.0, t0=0.0):
    """Send *n* reports, one per second, returning the last time."""
    power = rec.power if power is None else power
    now = t0
    for i in range(n):
        now = t0 + float(i)
        rpt = report(rec.peer_id, load=load, power=power, t=now)
        rec.last_report = rpt  # what DomainInfoBase.update_from_report does
        engine.observe_report(rpt, rec, projected, now)
    return now


class TestSignals:
    def test_honest_reports_keep_full_trust(self):
        eng = make_engine()
        rec = record()
        eng.note_join(rec)
        feed(eng, rec, 20, load=4.0)
        st = eng.state_of("p1")
        assert st.state == TRUSTED and st.score == pytest.approx(1.0)
        assert eng.load_penalty("p1", rec, now=20.0) == 0.0
        assert st.signals == {}

    def test_warmup_reports_never_scored(self):
        eng = make_engine(warmup_reports=2)
        rec = record(power=30.0)  # inflated join claim
        eng.note_join(rec)
        # True power 10 vs claim 30: a lie, but inside the warmup.
        feed(eng, rec, 2, power=10.0)
        assert eng.state_of("p1").signals == {}

    def test_power_mismatch_fires_without_streak_gate(self):
        eng = make_engine(warmup_reports=0)
        rec = record(power=30.0)  # join claim inflated 3x
        eng.note_join(rec)
        eng.observe_report(report(power=10.0, t=0.0), rec, 0.0, 0.0)
        st = eng.state_of("p1")
        assert st.signals == {"power_mismatch": 1}
        assert st.score < 1.0

    def test_power_mismatch_quarantines_chronic_liar(self):
        eng = make_engine(warmup_reports=0)
        rec = record(power=30.0)
        eng.note_join(rec)
        feed(eng, rec, 5, power=10.0)
        st = eng.state_of("p1")
        assert st.state == QUARANTINED and st.quarantines == 1
        assert eng.is_quarantined("p1", now=5.0)

    def test_power_within_tolerance_is_consistent(self):
        eng = make_engine(warmup_reports=0, power_tolerance=1.3)
        rec = record(power=10.0)
        eng.note_join(rec)
        feed(eng, rec, 10, power=12.0)  # 1.2x drift: fine
        assert eng.state_of("p1").signals == {}

    def test_under_report_needs_streak(self):
        eng = make_engine(warmup_reports=0, timing_streak=3)
        rec = record(power=10.0)
        eng.note_join(rec)
        # Claims idle while the RM projects 8 units of assigned work.
        for i in range(2):
            eng.observe_report(
                report(load=0.0, t=float(i)), rec, 8.0, float(i)
            )
        assert eng.state_of("p1").signals == {}
        eng.observe_report(report(load=0.0, t=2.0), rec, 8.0, 2.0)
        assert eng.state_of("p1").signals == {"under_report": 1}

    def test_consistent_report_resets_under_report_streak(self):
        eng = make_engine(warmup_reports=0, timing_streak=3)
        rec = record(power=10.0)
        eng.note_join(rec)
        for i in range(2):
            eng.observe_report(
                report(load=0.0, t=float(i)), rec, 8.0, float(i)
            )
        # One honest-looking report in between resets the streak.
        eng.observe_report(report(load=6.0, t=2.0), rec, 8.0, 2.0)
        eng.observe_report(report(load=0.0, t=3.0), rec, 8.0, 3.0)
        assert eng.state_of("p1").signals == {}

    def test_tiny_projection_never_judged(self):
        eng = make_engine(warmup_reports=0)
        rec = record(power=10.0)
        eng.note_join(rec)
        # 1 unit projected on a 10-power peer: proves nothing.
        feed(eng, rec, 10, load=0.0, projected=1.0)
        assert eng.state_of("p1").signals == {}

    def test_isolated_timing_ding_leaves_peer_trusted(self):
        """Half-weight timing penalty: one ding cannot reach suspect."""
        eng = make_engine(warmup_reports=0, timing_streak=1)
        rec = record(power=10.0)
        eng.note_join(rec)
        eng.observe_report(report(load=0.0, t=0.0), rec, 8.0, 0.0)
        st = eng.state_of("p1")
        assert st.signals == {"under_report": 1}
        assert st.state == TRUSTED
        assert eng.load_penalty("p1", rec, now=0.0) == 0.0

    def test_slow_completion_streak(self):
        eng = make_engine(warmup_reports=0, timing_streak=3)
        rec = record(power=10.0)
        eng.note_join(rec)
        feed(eng, rec, 1, load=0.0)  # claims idle
        # 1 unit of work in 10 s on a peer claiming ~10 free power.
        for i in range(3):
            eng.observe_step("p1", rec, work=1.0, elapsed=10.0,
                             now=float(i))
        assert eng.state_of("p1").signals == {"slow_completion": 1}

    def test_step_ignored_when_peer_admits_busy(self):
        eng = make_engine(warmup_reports=0, idle_claim_util=0.5)
        rec = record(power=10.0)
        eng.note_join(rec)
        feed(eng, rec, 1, load=8.0)  # utilization 0.8: admits busy
        for i in range(5):
            eng.observe_step("p1", rec, work=1.0, elapsed=10.0,
                             now=float(i))
        assert eng.state_of("p1").signals == {}

    def test_fast_step_resets_streak(self):
        eng = make_engine(warmup_reports=0, timing_streak=3)
        rec = record(power=10.0)
        eng.note_join(rec)
        feed(eng, rec, 1, load=0.0)
        eng.observe_step("p1", rec, work=1.0, elapsed=10.0, now=0.0)
        eng.observe_step("p1", rec, work=9.0, elapsed=1.0, now=1.0)
        eng.observe_step("p1", rec, work=1.0, elapsed=10.0, now=2.0)
        assert eng.state_of("p1").signals == {}


class TestStateMachine:
    def quarantined_engine(self):
        eng = make_engine(warmup_reports=0)
        rec = record(power=30.0)
        eng.note_join(rec)
        feed(eng, rec, 6, power=10.0)
        assert eng.state_of("p1").state == QUARANTINED
        return eng, rec

    def test_quarantine_penalty_is_infeasible_load(self):
        eng, rec = self.quarantined_engine()
        assert eng.load_penalty("p1", rec, now=10.0) == pytest.approx(
            rec.power * eng.config.quarantine_penalty
        )

    def test_quarantine_expires_into_probation(self):
        eng, rec = self.quarantined_engine()
        until = eng.state_of("p1").quarantined_until
        assert not eng.is_quarantined("p1", now=until + 1.0)
        st = eng.state_of("p1")
        assert st.state == PROBATION
        assert st.score >= eng.config.quarantine_threshold
        # Probation: reduced capacity, not exile.
        penalty = eng.load_penalty("p1", rec, now=until + 1.0)
        assert penalty == pytest.approx(
            rec.power * (1.0 - eng.config.probation_capacity)
        )

    def test_probationer_recovers_to_trusted(self):
        eng, rec = self.quarantined_engine()
        until = eng.state_of("p1").quarantined_until
        eng.is_quarantined("p1", now=until + 1.0)  # expire
        # Power claim fixed, reports consistent: trust climbs back.
        feed(eng, rec, 30, power=30.0, t0=until + 2.0)
        st = eng.state_of("p1")
        assert st.state == TRUSTED
        assert eng.load_penalty("p1", rec, now=until + 40.0) == 0.0

    def test_relapse_escalates_quarantine_period(self):
        eng, rec = self.quarantined_engine()
        st = eng.state_of("p1")
        first = st.quarantined_until  # now=5 + 30 s base period
        eng.is_quarantined("p1", now=first + 1.0)  # -> probation
        # From probation the first lying report re-quarantines.
        feed(eng, rec, 6, power=10.0, t0=first + 2.0)
        assert st.state == QUARANTINED and st.quarantines == 2
        second_period = st.quarantined_until - (first + 2.0)
        assert second_period == pytest.approx(
            eng.config.quarantine_period * eng.config.quarantine_escalation
        )

    def test_quarantine_period_capped(self):
        eng = make_engine(warmup_reports=0, quarantine_period=30.0,
                          quarantine_escalation=2.0,
                          max_quarantine_period=240.0)
        rec = record(power=30.0)
        eng.note_join(rec)
        st = None
        now = 0.0
        for _ in range(6):  # 30, 60, 120, 240, 240, 240
            feed(eng, rec, 6, power=10.0, t0=now)
            st = eng.state_of("p1")
            assert st.state == QUARANTINED
            now = st.quarantined_until + 1.0
            eng.is_quarantined("p1", now=now)
        assert st.quarantined_until - now <= 240.0 + 6.0

    def test_suspect_discount_scales_with_score(self):
        eng = make_engine(warmup_reports=0)
        rec = record(power=30.0)
        eng.note_join(rec)
        feed(eng, rec, 2, power=10.0)
        st = eng.state_of("p1")
        assert st.state == SUSPECT
        assert eng.load_penalty("p1", rec, now=2.0) == pytest.approx(
            rec.power * (1.0 - st.score)
        )

    def test_forget_and_unknown_peer(self):
        eng, rec = self.quarantined_engine()
        eng.forget("p1")
        assert eng.state_of("p1") is None
        assert eng.load_penalty("p1", rec, now=0.0) == 0.0
        assert not eng.is_quarantined("p1", now=0.0)

    def test_snapshot_shape(self):
        eng, _rec = self.quarantined_engine()
        honest = record("p2", power=10.0)
        eng.note_join(honest)
        feed(eng, honest, 5, load=2.0)
        snap = eng.snapshot(now=5.0)
        assert snap["quarantined"] == ["p1"]
        assert snap["ever_quarantined"] == ["p1"]
        assert snap["quarantines_total"] == 1
        assert snap["peers"]["p2"]["state"] == TRUSTED
        assert snap["signals"]["power_mismatch"] > 0
        assert eng.quarantined_ids(now=5.0) == ["p1"]


class TestInfoBaseHook:
    @pytest.fixture
    def info(self):
        base = DomainInfoBase("d0", "rm0")
        for pid in ("p1", "p2"):
            base.add_peer(record(pid))
        return base

    def test_no_engine_no_penalty(self, info):
        info.update_from_report(report("p1", load=4.0))
        assert info.effective_load("p1", now=0.0) == 4.0

    def test_attached_engine_penalty_added(self, info):
        eng = ReputationEngine()
        info.reputation = eng
        eng.note_join(info.peer("p1"))
        st = eng.state_of("p1")
        st.state = QUARANTINED
        st.quarantined_until = 1e9
        info.update_from_report(report("p1", load=4.0))
        expected = 4.0 + 10.0 * eng.config.quarantine_penalty
        assert info.effective_load("p1", now=0.0) == pytest.approx(expected)
        # The untouched peer pays nothing.
        assert info.effective_load("p2", now=0.0) == 0.0

    def test_remove_peer_forgets_trust_state(self, info):
        eng = ReputationEngine()
        info.reputation = eng
        eng.note_join(info.peer("p1"))
        info.remove_peer("p1")
        assert eng.state_of("p1") is None

    def test_projected_load_reads_live_deltas(self, info):
        info.project_allocation("t1", {"p1": 2.0}, expires_at=50.0)
        info.project_allocation("t2", {"p1": 3.0}, expires_at=50.0)
        assert info.projected_load("p1", now=0.0) == pytest.approx(5.0)
        assert info.projected_load("p1", now=51.0) == 0.0
        assert info.projected_load("ghost", now=0.0) == 0.0


def _repo_root():
    src = os.path.dirname(os.path.dirname(repro.__file__))
    return os.path.dirname(src)


def _scenario(name):
    return load_spec(os.path.join(
        _repo_root(), "benchmarks", "scenarios", f"{name}.json"
    ))


INTERMITTENT_DOC = {
    "name": "liar_intermittent_gate",
    "duration": 90.0,
    "drain": 30.0,
    "base": {
        "seed": 29,
        "population": {"n_peers": 24, "n_objects": 12, "replication": 2},
        "workload": {"rate": 3.0, "deadline_slack": 2.0},
        "rm": {"max_peers": 12},
    },
    "adversaries": {
        "fraction": 0.25,
        "mode": "intermittent",
        "claimed_utilization": 0.0,
        "claim_factor": 3.0,
        "period": 20.0,
        "duty": 0.5,
    },
    "health": {"period": 1.0, "flight_recorder": False},
}


@pytest.mark.integration
class TestDefenseGate:
    """The headline bugfix gate: defense recovers the liar damage."""

    def test_defense_recovers_liar_gap(self, tmp_path):
        undefended = run_spec(_scenario("liar_peers"),
                              out_dir=str(tmp_path))
        defended = run_spec(_scenario("liar_defended"),
                            out_dir=str(tmp_path))
        liars = sorted(undefended["adversary"]["liars"])
        assert sorted(defended["adversary"]["liars"]) == liars

        # The liars inflicted real damage without the defense...
        assert undefended["summary"]["miss_rate"] > 0.15
        assert "reputation" not in undefended
        # ...and the defense claws it back under the issue's bar.
        assert defended["summary"]["miss_rate"] <= 0.08
        assert defended["summary"]["miss_rate"] < (
            undefended["summary"]["miss_rate"] / 2
        )

        rep = defended["reputation"]
        # Quarantine names the actual liars — all of them, only them.
        assert sorted(rep["ever_quarantined"]) == liars
        assert rep["quarantines_total"] >= len(liars)
        assert rep["signals"].get("power_mismatch", 0) > 0
        # No honest peer was ever quarantined, and none ends the run
        # distrusted.
        honest = {
            pid: score for pid, score in rep["trust"].items()
            if pid not in set(liars)
        }
        assert honest
        for pid, score in honest.items():
            assert score > 0.9, pid

    def test_defense_is_noise_free_on_honest_population(self, tmp_path):
        """liar_control with the defense armed: same trajectory.

        The strongest possible "within noise": with no liars to catch,
        isolated dings never leave the trusted state, the load penalty
        stays zero, and the event trajectory is *identical*.
        """
        plain = run_spec(_scenario("liar_control"), out_dir=str(tmp_path))
        armed_spec = _scenario("liar_control")
        armed_spec.base.rm.enable_defense = True
        armed = run_spec(armed_spec, out_dir=str(tmp_path))
        assert armed["events"] == plain["events"]
        assert armed["messages"] == plain["messages"]
        assert armed["summary"]["miss_rate"] == (
            plain["summary"]["miss_rate"]
        )
        rep = armed["reputation"]
        assert rep["ever_quarantined"] == []
        # Isolated dings may dent a score, but never past suspect.
        assert min(rep["trust"].values()) > 0.7

    def test_defense_catches_intermittent_liars(self, tmp_path):
        """Duty-cycled liars sink too: asymmetric EWMA at work."""
        undefended = run_spec(ScenarioSpec.from_dict(INTERMITTENT_DOC),
                              out_dir=str(tmp_path))
        armed_spec = ScenarioSpec.from_dict(INTERMITTENT_DOC)
        armed_spec.base.rm.enable_defense = True
        defended = run_spec(armed_spec, out_dir=str(tmp_path))
        liars = sorted(undefended["adversary"]["liars"])

        assert undefended["summary"]["miss_rate"] > 0.1
        assert defended["summary"]["miss_rate"] <= 0.08
        rep = defended["reputation"]
        # All duty-cycled liars caught; no honest peer ever quarantined.
        assert sorted(rep["ever_quarantined"]) == liars

    def test_defended_scenario_is_deterministic(self, tmp_path):
        a = run_spec(_scenario("liar_defended"), out_dir=str(tmp_path))
        b = run_spec(_scenario("liar_defended"), out_dir=str(tmp_path))
        assert a["events"] == b["events"]
        assert a["messages"] == b["messages"]
        assert a["reputation"] == b["reputation"]

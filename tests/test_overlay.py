"""Overlay: qualification, join protocol, domains, backups."""

import pytest

from repro.core.manager import RMConfig, ResourceManager
from repro.net import ConstantLatency, Network
from repro.overlay import OverlayNetwork, PeerSpec, QualificationPolicy
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def overlay(env):
    net = Network(env, ConstantLatency(0.005), bandwidth=1e7)
    return OverlayNetwork(
        env, net,
        rm_config=RMConfig(max_peers=4),
        enable_gossip=False,
    )


def spec(pid, power=10.0, bandwidth=2e6, uptime=0.9):
    return PeerSpec(peer_id=pid, power=power, bandwidth=bandwidth,
                    uptime=uptime)


class TestQualification:
    def test_thresholds(self):
        q = QualificationPolicy(min_power=5, min_bandwidth=1e6,
                                min_uptime=0.7)
        assert q.qualifies(5, 1e6, 0.7)
        assert not q.qualifies(4.9, 1e6, 0.7)
        assert not q.qualifies(5, 9e5, 0.7)
        assert not q.qualifies(5, 1e6, 0.69)

    def test_unqualified_score_is_zero(self):
        q = QualificationPolicy()
        assert q.score(1.0, 1.0, 0.1) == 0.0

    def test_score_grows_with_resources(self):
        q = QualificationPolicy()
        assert q.score(20, 2e6, 0.9) > q.score(10, 2e6, 0.9)

    def test_rank_excludes_unqualified_and_is_deterministic(self):
        q = QualificationPolicy()
        candidates = [
            ("weak", 1.0, 1e3, 0.1),
            ("strong", 50.0, 1e7, 0.99),
            ("mid", 10.0, 2e6, 0.8),
        ]
        assert q.rank(candidates) == ["strong", "mid"]
        assert q.rank(candidates) == q.rank(list(candidates))


class TestJoin:
    def test_first_qualifying_peer_creates_domain(self, overlay):
        node = overlay.join(spec("p0"))
        assert node is not None
        assert overlay.n_domains == 1
        assert isinstance(node, ResourceManager) and node.active

    def test_first_unqualified_peer_rejected(self, overlay):
        assert overlay.join(spec("p0", power=0.1)) is None
        assert overlay.stats["join_rejects"] == 1

    def test_members_join_existing_domain(self, overlay):
        overlay.join(spec("p0"))
        node = overlay.join(spec("p1"))
        assert overlay.n_domains == 1
        assert node.rm_id == "p0"
        rm = overlay.domains[overlay.domain_of["p0"]].rm
        assert rm.info.has_peer("p1")

    def test_duplicate_join_rejected(self, overlay):
        overlay.join(spec("p0"))
        with pytest.raises(ValueError):
            overlay.join(spec("p0"))

    def test_domain_splits_when_full(self, overlay):
        for i in range(4):  # fills domain 0 (max_peers=4)
            overlay.join(spec(f"p{i}"))
        assert overlay.n_domains == 1
        overlay.join(spec("p4"))  # qualified: promoted to new domain
        assert overlay.n_domains == 2
        assert overlay.stats["promotions"] == 2  # bootstrap + split

    def test_unqualified_peer_rejected_when_all_full(self, overlay):
        for i in range(4):
            overlay.join(spec(f"p{i}"))
        weak = overlay.join(spec("weak", power=1.0))
        assert weak is None

    def test_unqualified_peer_accepted_when_room(self, overlay):
        overlay.join(spec("p0"))
        weak = overlay.join(spec("weak", power=1.0))
        assert weak is not None
        assert not isinstance(weak, ResourceManager)

    def test_second_qualifying_member_becomes_backup(self, overlay):
        overlay.join(spec("p0"))
        backup = overlay.join(spec("p1"))
        domain = next(iter(overlay.domains.values()))
        assert domain.backup is backup
        assert isinstance(backup, ResourceManager) and not backup.active
        assert domain.rm.backup_id == "p1"
        assert domain.failover is not None

    def test_backups_disabled(self, env):
        net = Network(env, ConstantLatency(0.005))
        overlay = OverlayNetwork(
            env, net, rm_config=RMConfig(max_peers=4),
            enable_backups=False, enable_gossip=False,
        )
        overlay.join(spec("p0"))
        overlay.join(spec("p1"))
        domain = next(iter(overlay.domains.values()))
        assert domain.backup is None

    def test_objects_and_services_enrolled(self, overlay):
        from repro.media import MediaFormat, MediaObject
        from repro.overlay.network import ServiceInstanceSpec

        fmt_a = MediaFormat("MPEG-2", 640, 480, 256.0)
        fmt_b = MediaFormat("MPEG-4", 640, 480, 64.0)
        obj = MediaObject("film", fmt_a)
        s = PeerSpec(
            peer_id="p0", power=10.0, bandwidth=2e6, uptime=0.9,
            objects={"film": obj},
            services=[ServiceInstanceSpec(fmt_a, fmt_b, "tc1", 10.0, 1e5)],
        )
        overlay.join(s)
        rm = next(iter(overlay.domains.values())).rm
        assert rm.object_catalog["film"] is obj
        assert rm.info.peers_with_object("film") == ["p0"]
        assert rm.info.resource_graph.n_edges == 1

    def test_new_rms_know_each_other(self, overlay):
        for i in range(5):  # forces a second domain
            overlay.join(spec(f"p{i}"))
        rms = overlay.rms()
        assert len(rms) == 2
        a, b = rms
        assert b.node_id in a.known_rms
        assert a.node_id in b.known_rms


class TestDepartures:
    def test_fail_peer_cleans_registry(self, overlay):
        overlay.join(spec("p0"))
        overlay.join(spec("p1"))
        overlay.join(spec("p2"))
        overlay.fail_peer("p2")
        assert "p2" not in overlay.peers
        assert "p2" not in overlay.domain_of

    def test_backup_departure_clears_designation(self, overlay):
        overlay.join(spec("p0"))
        overlay.join(spec("p1"))  # backup
        domain = next(iter(overlay.domains.values()))
        assert domain.backup is not None
        overlay.fail_peer("p1")
        assert domain.backup is None
        assert domain.failover is None
        assert domain.rm.backup_id is None

    def test_leave_peer_is_graceful(self, overlay, env):
        overlay.join(spec("p0"))
        overlay.join(spec("p1"))
        overlay.join(spec("p2"))
        rm = next(iter(overlay.domains.values())).rm
        overlay.leave_peer("p2")
        env.run(until=1.0)
        assert not rm.info.has_peer("p2")

"""Metrics: time series, collector, run summaries."""

import pytest

from repro.results import MetricsCollector, RunSummary, TimeSeries
from repro.sim import Environment
from repro.tasks import ApplicationTask, QoSRequirements


class TestTimeSeries:
    def test_monotonic_timestamps_enforced(self):
        ts = TimeSeries()
        ts.add(1.0, 5.0)
        with pytest.raises(ValueError):
            ts.add(0.5, 1.0)

    def test_mean(self):
        ts = TimeSeries()
        for t, v in [(0, 1.0), (1, 2.0), (2, 6.0)]:
            ts.add(t, v)
        assert ts.mean() == pytest.approx(3.0)

    def test_time_weighted_mean(self):
        ts = TimeSeries()
        ts.add(0.0, 10.0)   # held for 1s
        ts.add(1.0, 0.0)    # held for 9s
        ts.add(10.0, 99.0)  # terminal sample, weight 0
        assert ts.time_weighted_mean() == pytest.approx(1.0)

    def test_single_sample(self):
        ts = TimeSeries()
        ts.add(5.0, 3.0)
        assert ts.time_weighted_mean() == 3.0
        assert ts.min() == ts.max() == ts.last() == 3.0

    def test_empty_rejects_stats(self):
        ts = TimeSeries()
        for fn in (ts.mean, ts.time_weighted_mean, ts.min, ts.max, ts.last):
            with pytest.raises(ValueError):
                fn()

    def test_as_arrays(self):
        ts = TimeSeries()
        ts.add(0.0, 1.0)
        t, v = ts.as_arrays()
        assert t.tolist() == [0.0] and v.tolist() == [1.0]


def make_task(deadline=10.0):
    return ApplicationTask(
        name="m", qos=QoSRequirements(deadline=deadline),
        initial_state="a", goal_state="b", origin_peer="p0",
        submitted_at=0.0,
    )


class TestCollector:
    def test_counts_events(self):
        env = Environment()
        collector = MetricsCollector(env)
        t = make_task()
        collector.on_task_event(t, "submitted")
        collector.on_task_event(t, "admitted")
        assert collector.counts == {"submitted": 1, "admitted": 1}

    def test_summary_outcomes(self):
        env = Environment()
        collector = MetricsCollector(env)
        met = make_task()
        met.mark_allocated([], 1.0, "d0")
        met.mark_done(5.0)
        missed = make_task()
        missed.mark_allocated([], 1.0, "d0")
        missed.mark_done(15.0)
        rejected = make_task()
        rejected.mark_rejected(1.0)
        failed = make_task()
        failed.mark_failed(2.0)
        for task in (met, missed, rejected, failed):
            collector.on_task_event(task, "submitted")
        summary = collector.summary()
        assert summary.n_met == 1
        assert summary.n_missed == 1
        assert summary.n_rejected == 1
        assert summary.n_failed == 1
        assert summary.n_completed == 2
        assert summary.mean_response == pytest.approx(10.0)
        assert summary.goodput == pytest.approx(0.25)
        assert summary.miss_rate == pytest.approx(2 / 3)


class TestRunSummary:
    def make(self, **kw):
        defaults = dict(
            duration=100.0, n_submitted=10, n_admitted=9, n_completed=8,
            n_met=6, n_missed=2, n_rejected=1, n_failed=1,
            n_redirected=0, n_repairs=0, n_reassignments=0,
            mean_response=5.0, p95_response=9.0, mean_fairness=0.8,
            min_fairness=0.5, messages=100, bytes_sent=1e6,
        )
        defaults.update(kw)
        return RunSummary(**defaults)

    def test_rates(self):
        s = self.make()
        assert s.goodput == pytest.approx(0.6)
        assert s.miss_rate == pytest.approx(3 / 9)
        assert s.rejection_rate == pytest.approx(0.1)

    def test_zero_division_guards(self):
        s = self.make(n_submitted=0, n_completed=0, n_failed=0,
                      n_missed=0, n_met=0, n_rejected=0)
        assert s.goodput == 0.0
        assert s.miss_rate == 0.0
        assert s.rejection_rate == 0.0

    def test_row_keys(self):
        row = self.make().row()
        assert {"goodput", "miss_rate", "fairness"} <= row.keys()

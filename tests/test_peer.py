"""Peer-side session execution: streams, epochs, cancellation."""

from repro.core import protocol
from repro.core.session import ComposeOrder
from repro.graphs.service_graph import ServiceStep


def make_order(d, task_id="tX", epoch=0, steps_peers=("P2",),
               rm_id="rm0", resume_from=0):
    steps = [
        ServiceStep(index=i, service_id=f"svc{i}", peer_id=p,
                    work=5.0, out_bytes=1000.0, src_state=i,
                    dst_state=i + 1)
        for i, p in enumerate(steps_peers)
    ]
    return ComposeOrder(
        task_id=task_id, rm_id=rm_id, source_peer="P1",
        sink_peer="P4", steps=steps, abs_deadline=d.env.now + 100.0,
        importance=1.0, in_bytes=1000.0, resume_from=resume_from,
        epoch=epoch,
    )


class TestComposeOrder:
    def test_next_peer_after(self, live_domain):
        order = make_order(live_domain, steps_peers=("P2", "P3"))
        assert order.next_peer_after(0) == "P3"
        assert order.next_peer_after(1) == "P4"

    def test_bytes_into(self, live_domain):
        order = make_order(live_domain, steps_peers=("P2", "P3"))
        assert order.bytes_into(0) == 1000.0
        assert order.bytes_into(1) == order.steps[0].out_bytes


class TestStreamHandling:
    def test_stale_epoch_dropped(self, live_domain):
        d = live_domain
        peer = d.peers["P2"]
        new = make_order(d, epoch=2)
        peer._handle_compose_msg = None  # noqa - direct injection below
        peer._orders["tX"] = new
        # A stale stream from epoch 0 must not start a job.
        result = peer._process_stream(
            {"task_id": "tX", "step_index": 0, "epoch": 0}
        )
        assert result is None
        assert peer.processor.queue_length == 0

    def test_unknown_task_dropped(self, live_domain):
        peer = live_domain.peers["P2"]
        assert peer._process_stream(
            {"task_id": "ghost", "step_index": 0, "epoch": 0}
        ) is None

    def test_misdelivered_step_dropped(self, live_domain):
        d = live_domain
        peer = d.peers["P3"]  # order says step 0 runs at P2
        peer._orders["tX"] = make_order(d)
        assert peer._process_stream(
            {"task_id": "tX", "step_index": 0, "epoch": 0}
        ) is None

    def test_older_compose_does_not_replace_newer(self, live_domain):
        d = live_domain
        peer = d.peers["P2"]
        newer = make_order(d, epoch=3)
        peer._orders["tX"] = newer
        from repro.net.message import Message

        older = make_order(d, epoch=1)
        peer._handle_compose(Message(
            kind=protocol.COMPOSE, src="rm0", dst="P2",
            payload={"order": older},
        ))
        assert peer._orders["tX"] is newer

    def test_cancel_task_cancels_jobs(self, live_domain):
        d = live_domain
        d.submit(deadline=90.0)
        d.env.run(until=4.0)  # step 1 queued/running at P2
        peer = d.peers["P2"]
        task_id = d.task().task_id
        from repro.net.message import Message

        peer._handle_cancel_task(Message(
            kind=protocol.CANCEL_TASK, src="rm0", dst="P2",
            payload={"task_id": task_id},
        ))
        assert task_id not in peer._orders
        d.env.run(until=6.0)
        assert peer.processor.n_cancelled >= 0  # no crash; jobs resolved


class TestFailureAPI:
    def test_fail_is_idempotent(self, live_domain):
        peer = live_domain.peers["P2"]
        peer.fail()
        peer.fail()
        assert not peer.alive
        assert not live_domain.net.is_up("P2")

    def test_leave_notifies_rm(self, live_domain):
        d = live_domain
        d.peers["P2"].leave()
        d.env.run(until=1.0)
        assert not d.rm.info.has_peer("P2")

    def test_dead_peer_sends_nothing(self, live_domain):
        d = live_domain
        d.peers["P2"].fail()
        d.env.run(until=10.0)
        # Profiler was stopped: no more load updates from P2.
        updates_from_p2 = [
            r for r in d.tracer.of_kind("net.send")
            if r["src"] == "P2" and r["msg_kind"] == protocol.LOAD_UPDATE
        ]
        assert all(r.time <= 0.0 for r in updates_from_p2)

    def test_rm_takeover_repoints(self, live_domain):
        d = live_domain
        peer = d.peers["P2"]
        from repro.net.message import Message

        peer._handle_rm_takeover(Message(
            kind=protocol.RM_TAKEOVER, src="b0", dst="P2",
            payload={"rm_id": "b0"},
        ))
        assert peer.rm_id == "b0"


class TestLocalChainExecution:
    def test_consecutive_steps_on_same_peer(self, live_domain):
        """Two chain steps hosted at one peer need no network hop."""
        d = live_domain
        order = make_order(d, steps_peers=("P2", "P2"))
        d.peers["P2"]._orders["tX"] = order
        d.peers["P4"]._orders["tX"] = order
        d.rm._orders["tX"] = order  # rm receives TASK_DONE anyway
        d.peers["P1"]._orders["tX"] = order
        d.peers["P1"]._handle_start_stream(
            type("M", (), {"payload": {"task_id": "tX", "from_step": 0}})()
        )
        d.env.run(until=20.0)
        # Both jobs executed on P2.
        assert d.peers["P2"].processor.n_completed == 2

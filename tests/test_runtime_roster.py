"""Unit tests for the decentralized roster CRDT-ish replica.

The properties the sharded runtime leans on: LWW merge convergence
regardless of gossip order, tombstones that survive stale ``up`` copies
but lose to genuine re-joins, stable ring ordering across replicas and
processes, deterministic coordinator choice, and anti-entropy paging
that covers the whole roster including departures.
"""

from __future__ import annotations

import random

from repro.runtime.roster import (
    KIND_AGENT,
    KIND_NODE,
    RING_SIZE,
    Roster,
    RosterEntry,
    ring_position,
)


def entry(member_id, kind=KIND_NODE, version=1, port=1000, **kw):
    return RosterEntry(
        member_id=member_id, host="127.0.0.1", port=port,
        kind=kind, version=version, **kw,
    )


def test_ring_position_is_stable_and_bounded():
    # sha1-derived: identical across processes, PYTHONHASHSEED-free.
    assert ring_position("P1") == ring_position("P1")
    assert 0 <= ring_position("P1") < RING_SIZE
    assert ring_position("P1") != ring_position("P2")


def test_wire_round_trip():
    e = entry("P1", kind=KIND_AGENT, version=3, shard="s1",
              power=10.0, bandwidth=1.25e6, uptime=0.9)
    back = RosterEntry.from_wire(e.to_wire())
    assert back == e


def test_upsert_bumps_above_anything_seen():
    r = Roster()
    first = r.upsert(entry("P1"))
    assert first.version == 1
    r.tombstone("P1")
    assert r.version_of("P1") == 2
    rejoin = r.upsert(entry("P1", port=2000))
    # The re-join outranks the tombstone: it must propagate everywhere.
    assert rejoin.version == 3 and rejoin.up
    assert r.get("P1").port == 2000


def test_merge_lww_and_tombstone_tie_break():
    r = Roster()
    r.merge([entry("P1", version=2).to_wire()])
    # A stale lower-version copy never lands.
    assert not r.merge_one(entry("P1", version=1, port=9))
    assert r.get("P1").port == 1000
    # Same version, departure wins the tie (never resurrect).
    left = entry("P1", version=2)
    left.status = "left"
    assert r.merge_one(left)
    assert not r.get("P1").up
    # ...but an up-copy at the same version does NOT shadow the stone.
    assert not r.merge_one(entry("P1", version=2))
    assert not r.get("P1").up
    # A genuine re-join (higher version) beats the tombstone.
    assert r.merge_one(entry("P1", version=3))
    assert r.get("P1").up


def test_merge_converges_regardless_of_delivery_order():
    """Replicas fed the same updates in different orders agree —
    the property that lets any shard answer a join."""
    updates = []
    for i in range(8):
        mid = f"P{i % 4}"
        e = entry(mid, version=i // 4 + 1, port=1000 + i)
        if i % 3 == 0:
            e.status = "left"
        updates.append(e.to_wire())
    rng = random.Random(7)
    replicas = []
    for _ in range(6):
        order = list(updates)
        rng.shuffle(order)
        r = Roster()
        for doc in order:
            r.merge([doc])
        replicas.append(r)
    snapshots = [
        sorted(
            (e.member_id, e.version, e.status, e.port)
            for e in r.entries()
        )
        for r in replicas
    ]
    assert all(s == snapshots[0] for s in snapshots)


def test_ring_order_and_successor():
    r = Roster()
    for mid in ("P1", "P2", "P3", "P4"):
        r.upsert(entry(mid))
    ring = r.ring_ids()
    assert ring == sorted(ring, key=lambda m: (ring_position(m), m))
    # successor owns the first position at/after the key, wrapping.
    owner = r.successor("some-task-key")
    assert owner in ring
    pos = ring_position("some-task-key")
    eligible = [m for m in ring if ring_position(m) >= pos]
    assert owner == (eligible[0] if eligible else ring[0])


def test_coordinator_is_ring_lowest_live_agent():
    r = Roster()
    for i in range(3):
        r.upsert(entry(f"roster@s{i}", kind=KIND_AGENT))
    r.upsert(entry("P1"))  # nodes never coordinate
    agents = r.ring_ids(kind=KIND_AGENT)
    assert r.coordinator() == agents[0]
    # The coordinator crashing promotes the next ring position — every
    # replica computes the same answer with no election messages.
    r.tombstone(agents[0])
    assert r.coordinator() == agents[1]
    for a in agents[1:]:
        r.tombstone(a)
    assert r.coordinator() is None


def test_paging_covers_everything_including_tombstones():
    r = Roster()
    for i in range(10):
        r.upsert(entry(f"P{i}"))
    r.tombstone("P3")
    seen = []
    cursor = 0
    while cursor is not None:
        window, cursor = r.page(cursor, limit=3)
        seen.extend(e.member_id for e in window)
    assert sorted(seen) == sorted(f"P{i}" for i in range(10))
    assert "P3" in seen  # departures ride anti-entropy too


def test_rotation_cycles_the_whole_roster():
    r = Roster()
    for i in range(7):
        r.upsert(entry(f"P{i}"))
    seen = set()
    cursor = 0
    for _ in range(4):  # ceil(7/2) rounds would do; extra is harmless
        window, cursor = r.rotation(cursor, limit=2)
        seen.update(e.member_id for e in window)
    assert seen == {f"P{i}" for i in range(7)}


def test_counts_snapshot():
    r = Roster()
    r.upsert(entry("P1"))
    r.upsert(entry("roster@s0", kind=KIND_AGENT))
    r.upsert(entry("P2"))
    r.tombstone("P2")
    assert r.counts() == {
        "nodes_up": 1, "agents_up": 1, "left": 1, "total": 3,
    }

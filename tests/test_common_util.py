"""EWMA, clamp, percentile, table formatting."""

import pytest

from repro.common.util import EWMA, clamp, fmt_table, percentile


class TestClamp:
    def test_inside(self):
        assert clamp(5, 0, 10) == 5

    def test_below(self):
        assert clamp(-1, 0, 10) == 0

    def test_above(self):
        assert clamp(11, 0, 10) == 10

    def test_empty_interval(self):
        with pytest.raises(ValueError):
            clamp(1, 5, 2)


class TestEWMA:
    def test_alpha_validation(self):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                EWMA(alpha=bad)

    def test_first_sample_seeds(self):
        e = EWMA(alpha=0.5)
        assert e.update(10.0) == 10.0

    def test_get_default_before_samples(self):
        assert EWMA().get(42.0) == 42.0

    def test_smoothing_math(self):
        e = EWMA(alpha=0.5, initial=0.0)
        assert e.update(10.0) == 5.0
        assert e.update(10.0) == 7.5

    def test_alpha_one_tracks_exactly(self):
        e = EWMA(alpha=1.0, initial=3.0)
        assert e.update(8.0) == 8.0

    def test_converges_to_constant_input(self):
        e = EWMA(alpha=0.3)
        for _ in range(100):
            e.update(7.0)
        assert abs(e.get() - 7.0) < 1e-9


class TestPercentile:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_bad_q_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 120)

    def test_single_value(self):
        assert percentile([3.0], 99) == 3.0

    def test_median_odd(self):
        assert percentile([3, 1, 2], 50) == 2.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25) == 2.5

    def test_extremes(self):
        data = [5, 1, 9, 3]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 9.0

    def test_unsorted_input_ok(self):
        assert percentile([9, 1, 5], 50) == 5.0


class TestFmtTable:
    def test_basic_alignment(self):
        out = fmt_table(["a", "bb"], [[1, 2.5]])
        lines = out.splitlines()
        assert len(lines) == 3
        assert "2.500" in lines[2]

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            fmt_table(["a"], [[1, 2]])

    def test_floatfmt(self):
        out = fmt_table(["x"], [[1.23456]], floatfmt=".1f")
        assert "1.2" in out and "1.23" not in out

    def test_header_wider_than_cells(self):
        out = fmt_table(["very_long_header"], [["x"]])
        width = len(out.splitlines()[0])
        assert all(len(line) == width for line in out.splitlines())

"""Cross-cutting property-based tests (Hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimate import CompletionTimeEstimator
from repro.core.info_base import DomainInfoBase, PeerRecord
from repro.graphs import ResourceGraph, iter_paths
from repro.monitoring.profiler import LoadReport
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.sim.core import Environment


# ---------------------------------------------------------------- graphs
@st.composite
def random_graph(draw):
    """A random digraph with a designated init/goal pair."""
    n = draw(st.integers(min_value=2, max_value=8))
    n_edges = draw(st.integers(min_value=1, max_value=20))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = np.random.default_rng(seed)
    g = ResourceGraph()
    for i in range(n):
        g.add_state(i)
    for k in range(n_edges):
        a, b = rng.integers(n, size=2)
        if a == b:
            continue
        g.add_service(
            int(a), int(b), f"svc{k}", f"p{int(rng.integers(4))}",
            work=float(rng.uniform(1, 10)),
            out_bytes=float(rng.uniform(0, 1e5)),
        )
    return g, 0, n - 1


class TestSearchProperties:
    @given(random_graph())
    @settings(max_examples=80, deadline=None)
    def test_paths_are_connected_and_start_end_correctly(self, case):
        g, v_init, v_sol = case
        for policy in ("paper", "exhaustive"):
            for path in iter_paths(g, v_init, v_sol, policy,
                                   max_expansions=3000):
                if not path:
                    assert v_init == v_sol
                    continue
                assert path[0].src == v_init
                assert path[-1].dst == v_sol
                for a, b in zip(path, path[1:]):
                    assert a.dst == b.src

    @given(random_graph())
    @settings(max_examples=60, deadline=None)
    def test_paper_paths_subset_of_exhaustive(self, case):
        g, v_init, v_sol = case
        exhaustive = {
            tuple(e.edge_id for e in p)
            for p in iter_paths(g, v_init, v_sol, "exhaustive",
                                max_expansions=5000)
        }
        for p in iter_paths(g, v_init, v_sol, "paper",
                            max_expansions=5000):
            ids = tuple(e.edge_id for e in p)
            # Paper BFS paths may revisit no vertex except via parallel
            # goal edges, so each is a simple path found by exhaustive.
            assert ids in exhaustive

    @given(random_graph())
    @settings(max_examples=60, deadline=None)
    def test_exhaustive_paths_unique(self, case):
        g, v_init, v_sol = case
        seen = set()
        for p in iter_paths(g, v_init, v_sol, "exhaustive",
                            max_expansions=5000):
            ids = tuple(e.edge_id for e in p)
            assert ids not in seen
            seen.add(ids)


# ---------------------------------------------------------------- estimator
def small_domain(loads):
    env = Environment()
    net = Network(env, ConstantLatency(0.01), bandwidth=1e6)
    info = DomainInfoBase("d", "rm")
    for pid, load in loads.items():
        rec = PeerRecord(peer_id=pid, power=10.0, bandwidth=1e6)
        info.add_peer(rec)
        rec.last_report = LoadReport(
            peer_id=pid, time=0.0, power=10.0, utilization=load / 10.0,
            load=load, bw_used=0.0, queue_work=0.0, queue_length=0,
        )
        rec.reported_at = 0.0
    return info, net


class TestEstimatorProperties:
    @given(
        st.floats(min_value=0.0, max_value=9.0),
        st.floats(min_value=0.1, max_value=50.0),
    )
    @settings(max_examples=60)
    def test_service_time_monotone_in_load(self, load, work):
        info, _net = small_domain({"p0": load})
        edge = info.register_service_instance("a", "b", "s", "p0", work)
        est = CompletionTimeEstimator()
        base = est.service_time(info, edge, 0.0)
        info2, _ = small_domain({"p0": min(load + 1.0, 9.9)})
        edge2 = info2.register_service_instance("a", "b", "s", "p0", work)
        assert est.service_time(info2, edge2, 0.0) >= base

    @given(
        st.floats(min_value=0.5, max_value=4.0),
        st.floats(min_value=0.1, max_value=50.0),
    )
    @settings(max_examples=60)
    def test_estimate_scales_superlinearly_never_less_than_work(
        self, scale, work
    ):
        info, net = small_domain({"p0": 0.0})
        edge = info.register_service_instance("a", "b", "s", "p0", work)
        est = CompletionTimeEstimator()
        t1 = est.estimate_path(info, net, [edge], 0.0, "p0", "p0", 0.0)
        ts = est.estimate_path(
            info, net, [edge], 0.0, "p0", "p0", 0.0, work_scale=scale
        )
        assert ts == pytest.approx(t1 * scale)

    @given(st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=40)
    def test_tighter_deadline_never_more_feasible(self, deadline):
        info, net = small_domain({"p0": 5.0})
        edge = info.register_service_instance("a", "b", "s", "p0", 20.0)
        est = CompletionTimeEstimator()
        loose = est.feasible(
            info, net, [edge], deadline * 2, 0.0, "p0", "p0", 0.0
        )
        tight = est.feasible(
            info, net, [edge], deadline, 0.0, "p0", "p0", 0.0
        )
        assert loose or not tight


# ---------------------------------------------------------------- kernel
class TestKernelProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=1, max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_timeouts_fire_in_sorted_order(self, delays):
        env = Environment()
        fired = []
        for d in delays:
            ev = env.timeout(d, d)
            ev.callbacks.append(lambda e: fired.append(e.value))
        env.run()
        assert fired == sorted(delays)
        assert env.now == max(delays)

    @given(st.integers(min_value=1, max_value=30),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_fifo_store_preserves_order(self, n, seed):
        from repro.sim import Store

        env = Environment()
        st_ = Store(env)
        rng = np.random.default_rng(seed)
        delays = rng.uniform(0, 5, size=n)
        got = []

        def producer():
            for i, d in enumerate(delays):
                yield env.timeout(float(d))
                yield st_.put(i)

        def consumer():
            for _ in range(n):
                item = yield st_.get()
                got.append(item)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert got == list(range(n))

"""Inter-domain redirection (§4.5) with hand-built domains.

Two domains: the requested object lives only in domain B.  A query
submitted in domain A must be redirected — and with gossiped Bloom
summaries the redirect is *targeted* at B rather than blind.
"""

from repro.core import Peer, PeerConfig, ResourceManager
from repro.core.info_base import PeerRecord
from repro.core.manager import RMConfig
from repro.gossip import GossipAgent, GossipConfig
from repro.media import MediaFormat, MediaObject
from repro.net import ConstantLatency, Network
from repro.sim import Environment
from repro.tasks.task import TaskOutcome

SRC = MediaFormat("MPEG-2", 640, 480, 256.0)
DST = MediaFormat("MPEG-4", 640, 480, 64.0)


class TwoDomains:
    """Domain A (rmA + a1): no object. Domain B (rmB + b1): has it."""

    def __init__(self, max_redirects=3, with_gossip=True):
        self.env = Environment()
        self.net = Network(self.env, ConstantLatency(0.01), bandwidth=1e7)
        self.events = []
        cfg = RMConfig(max_redirects=max_redirects)
        self.rmA = ResourceManager(
            self.env, self.net, "rmA", "dA", rm_config=cfg,
            on_task_event=lambda t, e: self.events.append((t.task_id, e)),
        )
        self.rmB = ResourceManager(
            self.env, self.net, "rmB", "dB", rm_config=cfg,
            on_task_event=lambda t, e: self.events.append((t.task_id, e)),
        )
        self.rmA.known_rms["rmB"] = "dB"
        self.rmB.known_rms["rmA"] = "dA"

        self.a1 = Peer(self.env, self.net, "a1", PeerConfig(power=10.0),
                       rm_id="rmA")
        self.rmA.admit_peer(PeerRecord(peer_id="a1", power=10.0,
                                       bandwidth=1e7))
        self.b1 = Peer(self.env, self.net, "b1", PeerConfig(power=10.0),
                       rm_id="rmB")
        self.rmB.admit_peer(PeerRecord(peer_id="b1", power=10.0,
                                       bandwidth=1e7))

        self.movie = MediaObject("movie", SRC, duration_s=30.0)
        self.b1.store_object(self.movie)
        self.rmB.object_catalog["movie"] = self.movie
        self.rmB.info.peer("b1").objects.add("movie")
        self.rmB.info.register_service_instance(
            SRC, DST, "tc", "b1", work=10.0, out_bytes=2.4e5,
        )

        if with_gossip:
            self.gA = GossipAgent(self.rmA, GossipConfig(period=1.0))
            self.gB = GossipAgent(self.rmB, GossipConfig(period=1.0))

    def submit_in_a(self, deadline=60.0):
        acks = []

        def client():
            reply = yield from self.a1.submit_task(
                "movie", DST, deadline
            )
            acks.append(reply.payload)

        self.env.process(client())
        return acks


class TestTargetedRedirect:
    def test_redirect_lands_in_owning_domain(self):
        sys = TwoDomains()
        sys.env.run(until=10.0)  # let gossip converge
        assert "rmB" in sys.rmA.info.remote_summaries
        acks = sys.submit_in_a()
        sys.env.run(until=60.0)
        assert acks[0]["disposition"] == "redirected"
        task = next(iter(sys.rmB.tasks.values()))
        assert task.outcome is TaskOutcome.MET_DEADLINE
        assert task.admitted_domain == "dB"
        assert sys.rmA.stats["redirected_out"] == 1
        assert sys.rmB.stats["redirected_in"] == 1

    def test_sink_is_original_origin_across_domains(self):
        sys = TwoDomains()
        sys.env.run(until=10.0)
        sys.submit_in_a()
        sys.env.run(until=60.0)
        task = next(iter(sys.rmB.tasks.values()))
        assert task.origin_peer == "a1"
        # The final stream crossed the domain boundary back to a1.
        session_done = [e for _t, e in sys.events if e == "completed"]
        assert session_done

    def test_redirect_without_summary_uses_fallback(self):
        sys = TwoDomains(with_gossip=False)
        acks = sys.submit_in_a()
        sys.env.run(until=60.0)
        # rmA knows rmB exists (bootstrap roster) but has no summary:
        # the blind fallback still forwards rather than rejecting.
        assert acks[0]["disposition"] == "redirected"
        task = next(iter(sys.rmB.tasks.values()))
        assert task.outcome is TaskOutcome.MET_DEADLINE

    def test_no_other_domain_rejects(self):
        sys = TwoDomains()
        sys.rmA.known_rms.clear()
        acks = sys.submit_in_a()
        sys.env.run(until=10.0)
        assert acks[0]["disposition"] == "rejected"

    def test_max_redirects_bounds_forwarding(self):
        """A task nobody can serve dies after max_redirects hops."""
        sys = TwoDomains(max_redirects=2)
        # Remove the object everywhere: both RMs will keep forwarding.
        sys.rmB.object_catalog.clear()
        sys.rmB.info.peer("b1").objects.clear()
        sys.env.run(until=5.0)
        sys.submit_in_a()
        sys.env.run(until=60.0)
        total_out = (
            sys.rmA.stats["redirected_out"]
            + sys.rmB.stats["redirected_out"]
        )
        assert total_out <= 2
        rejected = [e for _t, e in sys.events if e == "rejected"]
        assert rejected

    def test_redirected_task_deadline_keeps_running(self):
        """The redirect consumes budget: the target sees less slack."""
        sys = TwoDomains()
        sys.env.run(until=10.0)
        sys.submit_in_a(deadline=60.0)
        sys.env.run(until=60.0)
        task = next(iter(sys.rmB.tasks.values()))
        # Submitted at rmA's receive time, not rmB's.
        assert task.submitted_at < 11.0
        assert task.redirects == 1

"""Reliability and parity tests for the live UDP transport.

Packet loss is injected with the transport's ``drop_fn`` shim (drop the
first N transmissions of a message); the ack/backoff retry loop must
still deliver exactly once, well inside a 5-second wall-clock budget.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.net.message import Message, reset_message_ids
from repro.net.network import ConstantLatency, Network
from repro.runtime.transport import PeerDirectory, SimTransport, UdpTransport
from repro.sim.core import Environment


def run(coro):
    return asyncio.run(coro)


def make_pair(drop_fn=None, **kwargs):
    """Two endpoints A and B on one directory; B records deliveries."""
    directory = PeerDirectory()
    inbox = []
    a = UdpTransport("A", directory, lambda m: None,
                     drop_fn=drop_fn, **kwargs)
    b = UdpTransport("B", directory, inbox.append, **kwargs)
    return directory, a, b, inbox


async def start_all(*transports):
    for t in transports:
        await t.start()


def close_all(*transports):
    for t in transports:
        t.close()


def drop_first(n):
    """A DropFn swallowing the first *n* transmissions of each message."""
    def fn(msg, attempt):
        return attempt < n
    return fn


async def wait_for(predicate, timeout=5.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return predicate()


def test_clean_delivery():
    async def main():
        _, a, b, inbox = make_pair()
        await start_all(a, b)
        try:
            msg = Message(kind="load_update", src="A", dst="B",
                          payload={"x": 1}, size=256.0)
            a.send(msg)
            assert await wait_for(lambda: len(inbox) == 1)
            assert inbox[0] == msg
            assert a.stats.sent == 1 and a.stats.dropped == 0
            assert b.stats.delivered == 1
            assert a.retransmits == 0 and b.duplicates == 0
        finally:
            close_all(a, b)
    run(main())


def test_retry_recovers_from_packet_loss():
    """Drop the first 2 datagrams of every message: the exponential
    backoff retry loop must still deliver, exactly once, quickly."""
    async def main():
        _, a, b, inbox = make_pair(
            drop_fn=drop_first(2), ack_timeout=0.02, backoff=2.0,
            max_retries=6,
        )
        await start_all(a, b)
        try:
            start = time.monotonic()
            msg = Message(kind="task_request", src="A", dst="B",
                          payload={"name": "movie"}, size=512.0)
            a.send(msg)
            assert await wait_for(lambda: len(inbox) == 1)
            elapsed = time.monotonic() - start
            # Two lost attempts cost ~0.02 + 0.04 s of backoff.
            assert elapsed < 5.0
            await a.flush()
            assert inbox[0] == msg
            assert a.retransmits >= 2
            assert a.stats.dropped == 0
            assert b.stats.delivered == 1
        finally:
            close_all(a, b)
    run(main())


def test_loss_beyond_retry_budget_is_a_drop():
    async def main():
        _, a, b, inbox = make_pair(
            drop_fn=drop_first(100), ack_timeout=0.01, backoff=1.5,
            max_retries=2,
        )
        await start_all(a, b)
        try:
            a.send(Message(kind="step_done", src="A", dst="B", size=96.0))
            await a.flush()
            assert inbox == []
            assert a.stats.dropped == 1
            assert a.retransmits == 2  # budget exhausted
        finally:
            close_all(a, b)
    run(main())


def test_duplicate_suppression():
    """A lost *ack* makes the sender retransmit a message the receiver
    already has: every copy is re-acked but delivered only once."""
    async def main():
        directory, a, b, inbox = make_pair(ack_timeout=0.02, max_retries=4)
        await start_all(a, b)
        try:
            msg = Message(kind="task_done", src="A", dst="B", size=128.0)
            frame_addr = directory.address("B")
            # Simulate retransmissions reaching B directly, bypassing
            # the retry loop: hand B the same datagram three times.
            from repro.runtime.codec import encode_message
            data = encode_message(msg)
            for _ in range(3):
                b.datagram_received(data, ("127.0.0.1", 9))
            assert frame_addr is not None
            assert len(inbox) == 1
            assert b.stats.delivered == 1
            assert b.duplicates == 2
            assert b.acks_sent == 3  # every copy re-acked
        finally:
            close_all(a, b)
    run(main())


def test_wall_clock_bound_under_loss():
    """A small burst under 1-in-2 loss completes well under 5 s."""
    async def main():
        def lossy(msg, attempt):
            return attempt == 0 and msg.msg_id % 2 == 0
        _, a, b, inbox = make_pair(
            drop_fn=lossy, ack_timeout=0.02, backoff=2.0, max_retries=5,
        )
        await start_all(a, b)
        try:
            start = time.monotonic()
            sent = [
                Message(kind="stream", src="A", dst="B",
                        payload={"seq": i}, size=64.0)
                for i in range(20)
            ]
            for m in sent:
                a.send(m)
            assert await wait_for(lambda: len(inbox) == len(sent))
            assert time.monotonic() - start < 5.0
            assert sorted(m.payload["seq"] for m in inbox) == list(range(20))
            assert b.duplicates == 0  # each delivered exactly once
        finally:
            close_all(a, b)
    run(main())


def test_malformed_datagram_counted_not_delivered():
    async def main():
        _, a, b, inbox = make_pair()
        await start_all(a, b)
        try:
            b.datagram_received(b"this is not a frame", ("127.0.0.1", 9))
            b.datagram_received(b'{"v": 99, "t": "msg"}', ("127.0.0.1", 9))
            assert inbox == []
            assert b.malformed == 2
            assert b.stats.delivered == 0
        finally:
            close_all(a, b)
    run(main())


def test_down_node_semantics():
    async def main():
        _, a, b, inbox = make_pair()
        await start_all(a, b)
        try:
            # Destination locally down: acked (transport alive) but not
            # delivered — mirrors the simulator's crashed-node drop.
            b.set_down("B")
            a.send(Message(kind="load_update", src="A", dst="B", size=256.0))
            await a.flush()
            assert inbox == [] and a.stats.dropped == 0
            # Source down: dropped at the send gate, like Network.send.
            a.set_down("A")
            a.send(Message(kind="load_update", src="A", dst="B", size=256.0))
            assert a.stats.dropped == 1
        finally:
            close_all(a, b)
    run(main())


def test_summary_parity_between_sim_and_udp():
    """Both transports expose the same NetworkStats.summary() shape, so
    live and simulated runs are directly comparable."""
    env = Environment()
    sim = SimTransport(Network(env, ConstantLatency(0.01)))

    async def live_counts():
        _, a, b, inbox = make_pair()
        await start_all(a, b)
        try:
            a.send(Message(kind="load_update", src="A", dst="B", size=256.0))
            await wait_for(lambda: len(inbox) == 1)
            return a.summary(), b.summary()
        finally:
            close_all(a, b)

    sender, receiver = run(live_counts())
    sim_keys = set(sim.summary())
    for live in (sender, receiver):
        assert sim_keys <= set(live)  # live adds counters, drops none
        assert {"retransmits", "duplicates", "malformed",
                "acks_sent"} <= set(live)
    assert {"sent", "delivered", "dropped", "bytes_sent", "by_kind",
            "hottest_dst", "hottest_dst_count"} <= sim_keys
    # Sender counts the send; the receiving endpoint counts delivery
    # (in the sim one Network object plays both roles).
    assert sender["sent"] == 1 and sender["by_kind"] == {"load_update": 1}
    assert receiver["delivered"] == 1 and sender["dropped"] == 0


def test_expected_delay_monotone_in_size():
    directory = PeerDirectory()
    t = UdpTransport("A", directory, lambda m: None,
                     est_latency=0.001, est_bandwidth=1e6)
    assert t.expected_delay("A", "B", 512.0) < t.expected_delay("A", "B", 2e6)
    assert t.expected_delay("A", "B", 0.0) == pytest.approx(0.001)


def test_aclose_reaps_pending_send_tasks():
    """Regression: retry tasks mid-backoff used to outlive ``close()``
    (cancellation was requested but never awaited), leaking ack waiters
    into the dying loop.  After ``aclose()`` the task set is empty and
    every task has actually unwound."""
    async def main():
        _, a, b, inbox = make_pair(
            drop_fn=lambda msg, attempt: True,  # black hole: no acks ever
            ack_timeout=5.0, max_retries=8,
        )
        await start_all(a, b)
        try:
            for i in range(10):
                a.send(Message(kind="stream", src="A", dst="B",
                               payload={"seq": i}, size=64.0))
            await asyncio.sleep(0.05)  # let the send tasks park on acks
            assert len(a._send_tasks) == 10  # all mid-retry, none done
        finally:
            await a.aclose()
            b.close()
        assert a._send_tasks == set()
        assert a._pending_acks == {}
        # Nothing of the transport's survives into the loop shutdown.
        leftover = [
            t for t in asyncio.all_tasks() if t is not asyncio.current_task()
        ]
        assert leftover == []
    run(main())


def test_flush_cancels_stragglers():
    """A send still unacked when ``flush`` times out is cancelled — a
    departing node must not leave retry loops running behind it."""
    async def main():
        _, a, b, inbox = make_pair(
            drop_fn=lambda msg, attempt: True,
            ack_timeout=30.0, max_retries=3,
        )
        await start_all(a, b)
        try:
            a.send(Message(kind="leave", src="A", dst="B", size=32.0))
            await asyncio.sleep(0)
            await a.flush(timeout=0.05)
            assert all(t.done() for t in a._send_tasks)
        finally:
            close_all(a, b)
    run(main())


def test_receiver_learns_sender_address():
    """A respawned process re-binds fresh ports under its old node id;
    the receiver must adopt the address datagrams actually come from,
    or every reply chases the dead socket."""
    async def main():
        directory, a, b, inbox = make_pair()
        await start_all(a, b)
        try:
            directory.add("A", "127.0.0.1", 1)  # stale: A's old life
            a.send(Message(kind="join", src="A", dst="B", size=64.0))
            assert await wait_for(lambda: len(inbox) == 1)
            assert directory.address("A") == (a.host, a.port)
        finally:
            close_all(a, b)
    run(main())


def test_message_id_reset_determinism():
    """Message.reset_ids rewinds the auto-id counter so repeated runs
    assign identical ids (trace comparability across in-process runs)."""
    Message.reset_ids()
    first = [Message(kind="stream", src="a", dst="b", size=1.0).msg_id
             for _ in range(3)]
    Message.reset_ids()
    second = [Message(kind="stream", src="a", dst="b", size=1.0).msg_id
              for _ in range(3)]
    assert first == second == [1, 2, 3]
    reset_message_ids(100)
    assert Message(kind="stream", src="a", dst="b", size=1.0).msg_id == 100
    Message.reset_ids()

"""QoS requirement sets and the task lifecycle."""

import pytest

from repro.tasks import ApplicationTask, QoSRequirements, TaskOutcome, TaskState


class TestQoS:
    def test_deadline_positive(self):
        with pytest.raises(ValueError):
            QoSRequirements(deadline=0.0)

    def test_importance_positive(self):
        with pytest.raises(ValueError):
            QoSRequirements(deadline=1.0, importance=0.0)

    def test_relax_scales_deadline(self):
        q = QoSRequirements(deadline=10.0, importance=2.0,
                            constraints={"k": 1})
        r = q.relax(1.5)
        assert r.deadline == 15.0
        assert r.importance == 2.0
        assert r.constraints == {"k": 1} and r.constraints is not q.constraints

    def test_relax_validation(self):
        with pytest.raises(ValueError):
            QoSRequirements(deadline=10.0).relax(0.0)

    def test_frozen(self):
        q = QoSRequirements(deadline=1.0)
        with pytest.raises(Exception):
            q.deadline = 2.0  # type: ignore[misc]


def make_task(**kw):
    defaults = dict(
        name="movie",
        qos=QoSRequirements(deadline=30.0),
        initial_state="A",
        goal_state="B",
        origin_peer="p0",
        submitted_at=100.0,
    )
    defaults.update(kw)
    return ApplicationTask(**defaults)


class TestLifecycle:
    def test_ids_unique(self):
        assert make_task().task_id != make_task().task_id

    def test_absolute_deadline(self):
        assert make_task().absolute_deadline == 130.0

    def test_response_time_none_until_finished(self):
        assert make_task().response_time is None

    def test_allocate_then_run_then_done_met(self):
        t = make_task()
        t.mark_allocated([("s1", "p1")], fairness=0.9, domain="d0")
        assert t.state is TaskState.ALLOCATED
        assert t.allocation_fairness == 0.9
        t.mark_running()
        t.mark_done(now=120.0)
        assert t.outcome is TaskOutcome.MET_DEADLINE
        assert t.response_time == 20.0

    def test_done_after_deadline_is_missed(self):
        t = make_task()
        t.mark_allocated([], 1.0, "d0")
        t.mark_running()
        t.mark_done(now=131.0)
        assert t.outcome is TaskOutcome.MISSED_DEADLINE

    def test_exactly_at_deadline_is_met(self):
        t = make_task()
        t.mark_allocated([], 1.0, "d0")
        t.mark_done(now=130.0)
        assert t.outcome is TaskOutcome.MET_DEADLINE

    def test_rejected(self):
        t = make_task()
        t.mark_rejected(now=101.0, reason="overload")
        assert t.state is TaskState.REJECTED
        assert t.outcome is TaskOutcome.REJECTED
        assert t.meta["reject_reason"] == "overload"

    def test_failed(self):
        t = make_task()
        t.mark_failed(now=105.0, reason="peer died")
        assert t.outcome is TaskOutcome.FAILED
        assert t.meta["fail_reason"] == "peer died"

    def test_cannot_allocate_done_task(self):
        t = make_task()
        t.mark_rejected(now=101.0)
        with pytest.raises(ValueError):
            t.mark_allocated([], 1.0, "d0")

    def test_reallocation_while_running_allowed(self):
        """Repair re-allocates a RUNNING task (§4.1)."""
        t = make_task()
        t.mark_allocated([("s1", "p1")], 0.5, "d0")
        t.mark_running()
        t.mark_allocated([("s1", "p2")], 0.7, "d0")
        assert t.allocation == [("s1", "p2")]

    def test_peers_used_deduplicates_in_order(self):
        t = make_task()
        t.mark_allocated(
            [("s1", "p2"), ("s2", "p1"), ("s3", "p2")], 1.0, "d0"
        )
        assert t.peers_used() == ["p2", "p1"]

"""Robustness odds-and-ends and a scale smoke test."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.manager import RMConfig
from repro.net import ConnectionManager, ConstantLatency, NetNode, Network
from repro.sim import Environment
from repro.workloads import (
    PopulationConfig,
    ScenarioConfig,
    WorkloadConfig,
    build_scenario,
)


class TestGossipRobustness:
    def test_gossip_survives_dead_rm(self):
        """Digests sent to a crashed RM are dropped; the survivors keep
        converging among themselves."""
        from repro.overlay import OverlayNetwork, PeerSpec
        from repro.gossip import GossipConfig

        env = Environment()
        net = Network(env, ConstantLatency(0.005), bandwidth=1e7)
        overlay = OverlayNetwork(
            env, net, rm_config=RMConfig(max_peers=2),
            gossip_config=GossipConfig(period=1.0, fanout=2),
            enable_backups=False,
        )
        for i in range(8):  # 4 domains of 2
            overlay.join(PeerSpec(peer_id=f"p{i}", power=10.0,
                                  bandwidth=2e6, uptime=0.9))
        assert overlay.n_domains == 4
        env.run(until=10.0)
        # Kill one RM outright (no backup: the domain goes dark).
        victim = overlay.rms()[0]
        overlay.fail_peer(victim.node_id)
        env.run(until=40.0)  # gossip keeps running; no exceptions
        survivors = [
            d.gossip for d in overlay.domains.values()
            if d.gossip is not None and d.rm.alive
        ]
        assert len(survivors) == 3
        # Survivors still hold each other's summaries.
        for agent in survivors:
            held = set(agent.summaries)
            for other in survivors:
                assert other.rm.node_id in held


class TestConnectionManagerProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=9),   # target node
                st.booleans(),                           # pin?
            ),
            min_size=1,
            max_size=60,
        ),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_invariants_under_random_ensure_sequences(self, ops, cap):
        env = Environment()
        net = Network(env, ConstantLatency(0.0001), bandwidth=1e9)
        owner = NetNode(env, net, "owner")
        for i in range(10):
            NetNode(env, net, f"t{i}")
        cm = ConnectionManager(owner, max_connections=cap)
        from repro.net import ConnectionCapacityError

        for target, pin in ops:
            try:
                cm.ensure(f"t{target}", pin=pin)
            except ConnectionCapacityError:
                # Only legal when every slot is pinned.
                assert len(cm._pinned & set(cm._last_used)) == cap
            # Invariants after every operation:
            assert cm.n_open <= cap
            assert cm._pinned <= set(cm._last_used) | set()
            env.run()  # drain handshakes


@pytest.mark.slow
class TestScale:
    def test_256_peers_run_completes_quickly(self):
        import time

        cfg = ScenarioConfig(
            seed=3,
            population=PopulationConfig(
                n_peers=256, n_objects=64, replication=3
            ),
            workload=WorkloadConfig(rate=5.0),
            rm=RMConfig(max_peers=24),
        )
        scenario = build_scenario(cfg)
        assert scenario.overlay.n_domains >= 8
        start = time.time()
        summary = scenario.run(duration=120.0, drain=30.0)
        wall = time.time() - start
        assert wall < 120.0, f"256-peer run too slow: {wall:.1f}s"
        assert summary.n_submitted > 400
        assert summary.goodput > 0.8
        # Control overhead stays decentralized.
        per_peer = summary.messages / 256 / summary.duration
        assert per_peer < 5.0

"""RandomStreams and Tracer."""

import numpy as np
import pytest

from repro.sim import RandomStreams, Tracer


class TestRandomStreams:
    def test_same_seed_same_streams(self):
        a = RandomStreams(7).get("arrivals").random(5)
        b = RandomStreams(7).get("arrivals").random(5)
        assert np.array_equal(a, b)

    def test_different_names_independent(self):
        streams = RandomStreams(7)
        a = streams.get("a").random(5)
        b = streams.get("b").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(1).get("x").random(5)
        b = RandomStreams(2).get("x").random(5)
        assert not np.array_equal(a, b)

    def test_get_is_cached(self):
        streams = RandomStreams(0)
        assert streams.get("x") is streams.get("x")

    def test_seed_type_checked(self):
        with pytest.raises(TypeError):
            RandomStreams("seed")  # type: ignore[arg-type]

    def test_spawn_children_deterministic_and_distinct(self):
        root = RandomStreams(3)
        c1 = root.spawn(0).get("x").random(4)
        c1_again = RandomStreams(3).spawn(0).get("x").random(4)
        c2 = root.spawn(1).get("x").random(4)
        assert np.array_equal(c1, c1_again)
        assert not np.array_equal(c1, c2)

    def test_unrelated_component_isolation(self):
        """Adding draws on one stream must not shift another stream."""
        s1 = RandomStreams(5)
        s1.get("noise").random(100)  # heavy use of an unrelated stream
        a = s1.get("signal").random(3)
        b = RandomStreams(5).get("signal").random(3)
        assert np.array_equal(a, b)


class TestTracer:
    def test_record_and_count(self):
        tr = Tracer()
        tr.record(1.0, "x", a=1)
        tr.record(2.0, "x", a=2)
        tr.record(3.0, "y")
        assert tr.count("x") == 2 and tr.count("y") == 1
        assert len(tr) == 3

    def test_of_kind_ordering(self):
        tr = Tracer()
        tr.record(1.0, "k", i=0)
        tr.record(2.0, "k", i=1)
        assert [r["i"] for r in tr.of_kind("k")] == [0, 1]

    def test_disabled_records_nothing(self):
        tr = Tracer(enabled=False)
        tr.record(1.0, "x")
        assert len(tr) == 0 and tr.count("x") == 0

    def test_kind_filter_still_counts(self):
        tr = Tracer(kinds={"keep"})
        tr.record(1.0, "keep")
        tr.record(1.0, "drop")
        assert len(tr) == 1
        assert tr.count("drop") == 1  # counted but not stored

    def test_where_predicate(self):
        tr = Tracer()
        tr.record(1.0, "a", n=1)
        tr.record(2.0, "a", n=5)
        hits = list(tr.where(lambda r: r.get("n", 0) > 2))
        assert len(hits) == 1 and hits[0]["n"] == 5

    def test_clear(self):
        tr = Tracer()
        tr.record(1.0, "x")
        tr.clear()
        assert len(tr) == 0 and tr.count("x") == 0

    def test_record_get_default(self):
        tr = Tracer()
        tr.record(1.0, "x", a=1)
        rec = tr.records[0]
        assert rec.get("missing", "d") == "d"
        assert rec["a"] == 1

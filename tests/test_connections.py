"""The Connection Manager (§2): bounded connections, LRU, pinning."""

import pytest

from repro.net import (
    ConnectionCapacityError,
    ConnectionManager,
    ConstantLatency,
    NetNode,
    Network,
)
from repro.net.connections import HANDSHAKE_KIND
from repro.sim import Environment
from tests.conftest import build_live_domain


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def nodes(env):
    net = Network(env, ConstantLatency(0.001), bandwidth=1e9)
    return net, [NetNode(env, net, f"n{i}") for i in range(8)]


class TestConnectionManager:
    def test_capacity_validation(self, nodes):
        _net, ns = nodes
        with pytest.raises(ValueError):
            ConnectionManager(ns[0], max_connections=0)

    def test_first_ensure_opens_and_handshakes(self, nodes, env):
        net, ns = nodes
        cm = ConnectionManager(ns[0], max_connections=4)
        assert cm.ensure("n1") is True
        assert cm.is_open("n1") and cm.n_open == 1
        env.run()
        assert net.stats.by_kind.get(HANDSHAKE_KIND) == 1

    def test_repeat_ensure_is_free(self, nodes, env):
        net, ns = nodes
        cm = ConnectionManager(ns[0], max_connections=4)
        cm.ensure("n1")
        assert cm.ensure("n1") is False
        env.run()
        assert net.stats.by_kind.get(HANDSHAKE_KIND) == 1

    def test_no_self_connection(self, nodes):
        _net, ns = nodes
        cm = ConnectionManager(ns[0], max_connections=4)
        assert cm.ensure("n0") is False
        assert cm.n_open == 0

    def test_lru_eviction_at_cap(self, nodes, env):
        _net, ns = nodes
        cm = ConnectionManager(ns[0], max_connections=2)
        cm.ensure("n1")
        env.run(until=1.0)
        cm.ensure("n2")
        env.run(until=2.0)
        cm.ensure("n1")  # touch n1: n2 becomes LRU
        env.run(until=3.0)
        cm.ensure("n3")
        assert cm.is_open("n1") and cm.is_open("n3")
        assert not cm.is_open("n2")
        assert cm.evicted == 1

    def test_pinned_connection_survives_eviction(self, nodes, env):
        _net, ns = nodes
        cm = ConnectionManager(ns[0], max_connections=2)
        cm.ensure("n1", pin=True)
        env.run(until=1.0)
        cm.ensure("n2")
        env.run(until=2.0)
        cm.ensure("n3")  # must evict n2, not pinned n1
        assert cm.is_open("n1")
        assert not cm.is_open("n2")

    def test_all_pinned_raises(self, nodes):
        _net, ns = nodes
        cm = ConnectionManager(ns[0], max_connections=2)
        cm.ensure("n1", pin=True)
        cm.ensure("n2", pin=True)
        with pytest.raises(ConnectionCapacityError):
            cm.ensure("n3")

    def test_unpin_then_evictable(self, nodes):
        _net, ns = nodes
        cm = ConnectionManager(ns[0], max_connections=2)
        cm.ensure("n1", pin=True)
        cm.ensure("n2", pin=True)
        cm.unpin("n1")
        cm.ensure("n3")
        assert not cm.is_open("n1") and cm.is_open("n3")

    def test_close_and_close_all(self, nodes):
        _net, ns = nodes
        cm = ConnectionManager(ns[0], max_connections=4)
        cm.ensure("n1", pin=True)
        cm.ensure("n2")
        cm.close("n1")
        assert not cm.is_open("n1")
        cm.close_all()
        assert cm.n_open == 0

    def test_connections_lru_order(self, nodes, env):
        _net, ns = nodes
        cm = ConnectionManager(ns[0], max_connections=4)
        cm.ensure("n1")
        env.run(until=1.0)
        cm.ensure("n2")
        env.run(until=2.0)
        cm.ensure("n1")
        assert cm.connections() == ["n2", "n1"]


class TestPeerIntegration:
    def test_streaming_opens_connections(self):
        d = build_live_domain()
        d.submit(origin="P4", deadline=60.0)
        d.env.run(until=30.0)
        # P1 streamed to P2, P2 to P4 (the e1,e2 chain).
        assert d.peers["P1"].connections.is_open("P2")
        assert d.peers["P2"].connections.is_open("P4")

    def test_failed_peer_drops_connections(self):
        d = build_live_domain()
        d.submit(origin="P4", deadline=60.0)
        d.env.run(until=4.0)
        d.peers["P1"].fail()
        assert d.peers["P1"].connections.n_open == 0

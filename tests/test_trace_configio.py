"""Trace-driven workloads and config serialization."""

import io

import pytest

from repro.media import MediaFormat
from repro.workloads import (
    PopulationConfig,
    ScenarioConfig,
    WorkloadConfig,
    build_scenario,
)
from repro.workloads.configio import (
    config_from_json,
    config_to_json,
)
from repro.workloads.trace import (
    TraceEntry,
    TraceRecorder,
    TraceReplayProcess,
    load_trace,
    save_trace,
)

GOAL = MediaFormat("MPEG-4", 640, 480, 64.0)


def entry(t=1.0, origin="p0", name="obj0", deadline=20.0, importance=2.0):
    return TraceEntry(
        time=t, origin=origin, object_name=name, goal=GOAL,
        deadline=deadline, importance=importance,
    )


class TestTraceFormat:
    def test_entry_validation(self):
        with pytest.raises(ValueError):
            entry(t=-1.0)
        with pytest.raises(ValueError):
            entry(deadline=0.0)

    def test_round_trip(self):
        entries = [entry(t=0.5), entry(t=2.0, name="obj1")]
        buf = io.StringIO()
        save_trace(entries, buf)
        loaded = load_trace(buf.getvalue())
        assert loaded == entries

    def test_load_sorts_by_time(self):
        entries = [entry(t=5.0), entry(t=1.0)]
        buf = io.StringIO()
        save_trace(entries, buf)
        loaded = load_trace(buf.getvalue())
        assert [e.time for e in loaded] == [1.0, 5.0]

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError):
            load_trace("a,b,c\n1,2,3\n")

    def test_bad_format_label_rejected(self):
        text = (
            "time,origin,object,goal,deadline,importance\n"
            "1.0,p0,obj0,not-a-format,5.0,1\n"
        )
        with pytest.raises(ValueError):
            load_trace(text)

    def test_format_label_round_trip(self):
        from repro.workloads.trace import _format_from_str

        assert _format_from_str(GOAL.label()) == GOAL


class TestRecordReplay:
    def build(self, seed=21):
        cfg = ScenarioConfig(
            seed=seed,
            population=PopulationConfig(n_peers=8, n_objects=4),
            workload=WorkloadConfig(rate=0.8),
        )
        return build_scenario(cfg)

    def test_recorder_captures_generated_requests(self):
        scenario = self.build()
        recorder = TraceRecorder()
        scenario.workload.on_generate = recorder.record
        scenario.run(duration=60.0, drain=20.0)
        assert len(recorder.entries) == scenario.workload.n_generated
        assert recorder.entries == sorted(
            recorder.entries, key=lambda e: e.time
        )
        # And the dump parses back.
        assert load_trace(recorder.dumps()) == recorder.entries

    def test_replay_reproduces_submissions(self):
        # 1. Record a run.
        scenario = self.build()
        recorder = TraceRecorder()
        scenario.workload.on_generate = recorder.record
        summary1 = scenario.run(duration=60.0, drain=30.0)

        # 2. Replay the trace on a fresh identical system (workload
        # process disabled).
        scenario2 = self.build()
        scenario2.workload.stop()
        replay = TraceReplayProcess(scenario2.overlay, recorder.entries)
        scenario2.env.run(until=scenario2.env.now + 90.0)
        assert replay.n_submitted == len(recorder.entries)
        summary2 = scenario2.summary()
        # Same peers, same requests, same policies: same outcomes.
        assert summary2.n_met == summary1.n_met
        assert summary2.n_missed == summary1.n_missed

    def test_replay_skips_unknown_origins(self):
        scenario = self.build()
        scenario.workload.stop()
        replay = TraceReplayProcess(
            scenario.overlay, [entry(origin="ghost-peer")]
        )
        scenario.env.run(until=10.0)
        assert replay.n_skipped == 1 and replay.n_submitted == 0


class TestConfigIO:
    def test_round_trip_preserves_values(self):
        cfg = ScenarioConfig(
            seed=77,
            allocation_policy="least_loaded",
            population=PopulationConfig(n_peers=13, power_cv=0.7),
            workload=WorkloadConfig(rate=1.5),
        )
        again = config_from_json(config_to_json(cfg))
        assert again.seed == 77
        assert again.allocation_policy == "least_loaded"
        assert again.population.n_peers == 13
        assert again.population.power_cv == 0.7
        assert again.workload.rate == 1.5
        # Untouched nested defaults survive.
        assert again.rm.max_peers == cfg.rm.max_peers

    def test_partial_config(self):
        cfg = config_from_json(
            '{"seed": 3, "population": {"n_peers": 5}}'
        )
        assert cfg.seed == 3
        assert cfg.population.n_peers == 5
        assert cfg.population.mean_power == PopulationConfig().mean_power

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ValueError):
            config_from_json('{"not_a_knob": 1}')

    def test_unknown_section_key_rejected(self):
        with pytest.raises(ValueError):
            config_from_json('{"population": {"n_cores": 4}}')

    def test_null_churn_section(self):
        cfg = config_from_json('{"churn": null}')
        assert cfg.churn is None

    def test_churn_section_builds(self):
        cfg = config_from_json('{"churn": {"mean_lifetime": 50.0}}')
        assert cfg.churn is not None
        assert cfg.churn.mean_lifetime == 50.0

    def test_bandwidth_tiers_tuple_restored(self):
        cfg0 = ScenarioConfig()
        text = config_to_json(cfg0)
        cfg = config_from_json(text)
        assert isinstance(cfg.population.bandwidth_tiers, tuple)

    def test_built_config_runs(self):
        cfg = config_from_json(
            '{"seed": 2, "population": {"n_peers": 6, "n_objects": 3},'
            ' "workload": {"rate": 0.5}}'
        )
        summary = build_scenario(cfg).run(duration=40.0, drain=20.0)
        assert summary.n_submitted >= 0

"""Shared fixtures: a live Figure-1 domain with an active RM."""

from dataclasses import dataclass, field
from typing import Dict, List

import pytest

from repro.core import Peer, PeerConfig, ResourceManager
from repro.core.info_base import PeerRecord
from repro.core.manager import RMConfig
from repro.media.fig1 import Fig1Scenario, build_fig1_graph
from repro.net import ConstantLatency, Network
from repro.sim import Environment, Tracer


@dataclass
class LiveDomain:
    """A ready-to-run single-domain system built on the Fig-1 graph."""

    env: Environment
    net: Network
    rm: ResourceManager
    peers: Dict[str, Peer]
    scenario: Fig1Scenario
    tracer: Tracer
    events: List[tuple] = field(default_factory=list)

    def submit(self, origin="P4", name="movie", goal=None, deadline=60.0,
               importance=1.0):
        """Spawn a client submission process; returns a result list."""
        goal = goal if goal is not None else self.scenario.v_sol
        acks = []

        def client():
            reply = yield from self.peers[origin].submit_task(
                name, goal, deadline, importance=importance
            )
            acks.append(reply.payload)

        self.env.process(client())
        return acks

    def task(self, index=0):
        return list(self.rm.tasks.values())[index]


def build_live_domain(
    rm_config=None, power=10.0, peer_policy="LLS", duration_s=60.0,
    peer_update_period=2.0,
) -> LiveDomain:
    env = Environment()
    tracer = Tracer()
    net = Network(env, ConstantLatency(0.010), bandwidth=1.25e6,
                  tracer=tracer)
    events: List[tuple] = []
    rm = ResourceManager(
        env, net, "rm0", "d0",
        rm_config=rm_config or RMConfig(),
        tracer=tracer,
        on_task_event=lambda t, e: events.append((env.now, t.task_id, e)),
    )
    scenario = build_fig1_graph(duration_s=duration_s)
    peers: Dict[str, Peer] = {}
    for pid in scenario.peers:
        peers[pid] = Peer(
            env, net, pid,
            PeerConfig(
                power=power,
                scheduling_policy=peer_policy,
                profiler_update_period=peer_update_period,
            ),
            rm_id="rm0", tracer=tracer,
        )
        rm.admit_peer(PeerRecord(peer_id=pid, power=power, bandwidth=1.25e6))
    for edge in scenario.graph.edges():
        rm.info.register_service_instance(
            edge.src, edge.dst, edge.service_id, edge.peer_id,
            edge.work, edge.out_bytes, edge_id=edge.edge_id,
        )
    peers["P1"].store_object(scenario.source_object)
    rm.object_catalog[scenario.source_object.name] = scenario.source_object
    rm.info.peer("P1").objects.add(scenario.source_object.name)
    domain = LiveDomain(
        env=env, net=net, rm=rm, peers=peers, scenario=scenario,
        tracer=tracer, events=events,
    )
    return domain


@pytest.fixture
def live_domain() -> LiveDomain:
    return build_live_domain()

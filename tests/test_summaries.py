"""Bloom filters and domain summaries."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.summaries import BloomFilter, DomainSummary


class TestBloomFilter:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            BloomFilter(n_bits=0)
        with pytest.raises(ValueError):
            BloomFilter(n_hashes=0)

    def test_added_items_found(self):
        bf = BloomFilter(1024, 4)
        bf.update(["a", "b", "c"])
        assert "a" in bf and "b" in bf and "c" in bf

    def test_fresh_filter_contains_nothing(self):
        bf = BloomFilter(1024, 4)
        assert "anything" not in bf

    @given(st.sets(st.text(min_size=1, max_size=20), max_size=50))
    @settings(max_examples=50)
    def test_no_false_negatives(self, items):
        bf = BloomFilter(4096, 5)
        bf.update(items)
        assert all(item in bf for item in items)

    def test_false_positive_rate_bounded(self):
        bf = BloomFilter.for_capacity(100, fp_rate=0.01)
        bf.update(f"item{i}" for i in range(100))
        false_hits = sum(
            1 for i in range(10_000) if f"absent{i}" in bf
        )
        assert false_hits / 10_000 < 0.05  # generous margin over 1%

    def test_for_capacity_validation(self):
        with pytest.raises(ValueError):
            BloomFilter.for_capacity(0)
        with pytest.raises(ValueError):
            BloomFilter.for_capacity(10, fp_rate=1.5)

    def test_union(self):
        a = BloomFilter(512, 3)
        b = BloomFilter(512, 3)
        a.add("only-a")
        b.add("only-b")
        merged = a.union(b)
        assert "only-a" in merged and "only-b" in merged

    def test_union_geometry_mismatch(self):
        with pytest.raises(ValueError):
            BloomFilter(512, 3).union(BloomFilter(1024, 3))

    def test_copy_independent(self):
        a = BloomFilter(512, 3)
        dup = a.copy()
        dup.add("x")
        assert "x" in dup and "x" not in a

    def test_deterministic_across_instances(self):
        a = BloomFilter(512, 3)
        b = BloomFilter(512, 3)
        a.add("item")
        b.add("item")
        assert (a.bits == b.bits).all()

    def test_fill_ratio_and_fp_estimate(self):
        bf = BloomFilter(64, 2)
        assert bf.fill_ratio == 0.0 and bf.estimated_fp_rate() == 0.0
        bf.update(f"i{n}" for n in range(40))
        assert 0 < bf.fill_ratio <= 1.0
        assert 0 < bf.estimated_fp_rate() <= 1.0


class TestDomainSummary:
    def test_rebuild_bumps_version(self):
        s = DomainSummary("d0", "rm0")
        s2 = s.rebuild(["o1"], ["svc1"], n_peers=4, mean_utilization=0.3)
        assert s2.version == 1
        assert s2.may_have_object("o1")
        assert s2.may_have_service("svc1")
        assert not s2.may_have_object("o2-definitely-absent")
        assert s2.n_peers == 4

    def test_newer_than(self):
        s0 = DomainSummary("d0", "rm0")
        s1 = s0.rebuild([], [], 1, 0.0)
        assert s1.newer_than(s0)
        assert not s0.newer_than(s1)
        assert s1.newer_than(None)

    def test_rebuild_custom_geometry(self):
        s = DomainSummary("d0", "rm0")
        s2 = s.rebuild(["o"], [], 1, 0.0, geometry=(4096, 7))
        assert s2.objects.n_bits == 4096 and s2.objects.n_hashes == 7

"""End-to-end integration scenarios across all subsystems."""

import pytest

from repro.core.manager import RMConfig
from repro.overlay import ChurnConfig
from repro.overlay.failover import FailoverConfig
from repro.tasks.task import TaskOutcome
from repro.workloads import (
    PopulationConfig,
    ScenarioConfig,
    WorkloadConfig,
    build_scenario,
)


@pytest.mark.integration
class TestSteadyState:
    def test_light_load_all_deadlines_met(self):
        cfg = ScenarioConfig(
            seed=42,
            population=PopulationConfig(n_peers=16, n_objects=6),
            workload=WorkloadConfig(rate=0.5),
        )
        scenario = build_scenario(cfg)
        summary = scenario.run(duration=200.0, drain=60.0)
        assert summary.n_submitted > 50
        assert summary.goodput > 0.95
        assert summary.n_failed == 0

    def test_saturating_load_triggers_defenses(self):
        cfg = ScenarioConfig(
            seed=8,
            population=PopulationConfig(n_peers=8, n_objects=4),
            workload=WorkloadConfig(rate=4.0, deadline_slack=1.5),
        )
        scenario = build_scenario(cfg)
        summary = scenario.run(duration=150.0, drain=60.0)
        # Saturation shows up as rejections and/or misses, not crashes.
        assert summary.n_rejected + summary.n_missed > 0
        assert summary.n_submitted > 200

    def test_load_updates_flow_to_rm(self):
        cfg = ScenarioConfig(
            seed=1,
            population=PopulationConfig(n_peers=8, n_objects=4),
            workload=WorkloadConfig(rate=0.5),
        )
        scenario = build_scenario(cfg)
        scenario.run(duration=60.0, drain=10.0)
        rm = scenario.overlay.rms()[0]
        reported = [
            pid for pid in rm.info.peers
            if rm.info.peer(pid).last_report is not None
        ]
        assert len(reported) == rm.info.n_peers


@pytest.mark.integration
class TestMultiDomain:
    def test_domains_split_and_redirect(self):
        cfg = ScenarioConfig(
            seed=11,
            population=PopulationConfig(n_peers=24, n_objects=8,
                                        replication=2),
            workload=WorkloadConfig(rate=0.6),
            rm=RMConfig(max_peers=8),
        )
        scenario = build_scenario(cfg)
        assert scenario.overlay.n_domains >= 2
        summary = scenario.run(duration=200.0, drain=60.0)
        assert summary.n_redirected > 0
        assert summary.goodput > 0.8

    def test_gossip_supports_redirection(self):
        cfg = ScenarioConfig(
            seed=11,
            population=PopulationConfig(n_peers=24, n_objects=8,
                                        replication=2),
            workload=WorkloadConfig(rate=0.6),
            rm=RMConfig(max_peers=8),
        )
        scenario = build_scenario(cfg)
        scenario.run(duration=120.0, drain=30.0)
        for rm in scenario.overlay.rms():
            assert len(rm.info.remote_summaries) >= 1


@pytest.mark.integration
class TestDynamics:
    def test_churn_with_repair_sustains_goodput(self):
        cfg = ScenarioConfig(
            seed=7,
            population=PopulationConfig(n_peers=20, n_objects=8,
                                        replication=3),
            workload=WorkloadConfig(rate=0.4),
            churn=ChurnConfig(mean_lifetime=100.0, mean_offtime=10.0),
        )
        scenario = build_scenario(cfg)
        summary = scenario.run(duration=300.0, drain=60.0)
        assert scenario.churn.departures > 5
        assert summary.goodput > 0.8
        assert summary.n_repairs > 0

    def test_rm_crash_recovers_via_backup(self):
        cfg = ScenarioConfig(
            seed=3,
            population=PopulationConfig(n_peers=12, n_objects=5,
                                        replication=3),
            workload=WorkloadConfig(rate=0.3),
            failover=FailoverConfig(sync_period=3.0,
                                    dead_after_periods=2.0),
        )
        scenario = build_scenario(cfg)
        domain = next(iter(scenario.overlay.domains.values()))
        primary_id = domain.rm.node_id
        backup_id = domain.backup.node_id

        def killer():
            yield scenario.env.timeout(60.0)
            scenario.overlay.fail_peer(primary_id)

        scenario.env.process(killer())
        scenario.run(duration=200.0, drain=60.0)
        domain = next(iter(scenario.overlay.domains.values()))
        assert domain.rm.node_id == backup_id
        assert domain.rm.active
        # Tasks admitted after the takeover completed successfully.
        late = [
            t for t in scenario.metrics.tasks.values()
            if t.submitted_at > 80.0
            and t.outcome is TaskOutcome.MET_DEADLINE
        ]
        assert late

    def test_run_is_deterministic_under_churn(self):
        def once():
            cfg = ScenarioConfig(
                seed=17,
                population=PopulationConfig(n_peers=12, n_objects=5,
                                            replication=2),
                workload=WorkloadConfig(rate=0.4),
                churn=ChurnConfig(mean_lifetime=60.0),
            )
            s = build_scenario(cfg).run(duration=120.0, drain=30.0)
            return (s.n_submitted, s.n_met, s.n_failed, s.messages)

        assert once() == once()

"""Network fabric: delivery, ordering, failures, stats."""

import pytest

from repro.common.errors import UnknownPeer
from repro.net import ConstantLatency, Message, NetNode, Network, UniformLatency
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def make_pair(env, latency=0.01, bandwidth=1e9):
    net = Network(env, ConstantLatency(latency), bandwidth=bandwidth)
    return net, NetNode(env, net, "a"), NetNode(env, net, "b")


class TestRegistration:
    def test_duplicate_id_rejected(self, env):
        net, a, _b = make_pair(env)
        with pytest.raises(ValueError):
            NetNode(env, net, "a")

    def test_unknown_lookup_raises(self, env):
        net, *_ = make_pair(env)
        with pytest.raises(UnknownPeer):
            net.node("ghost")

    def test_node_ids(self, env):
        net, *_ = make_pair(env)
        assert set(net.node_ids) == {"a", "b"}

    def test_unregister(self, env):
        net, a, b = make_pair(env)
        net.unregister("b")
        assert not net.knows("b")


class TestDelivery:
    def test_latency_plus_transmission(self, env):
        net, a, b = make_pair(env, latency=0.5, bandwidth=1000.0)
        got = []
        b.on("m", lambda msg: got.append(env.now))
        a.send("m", "b", size=500.0)  # 0.5s transmission
        env.run()
        assert got and abs(got[0] - 1.0) < 1e-9

    def test_fifo_per_link(self, env):
        """A later small message never overtakes an earlier big one."""
        net = Network(env, ConstantLatency(0.0), bandwidth=1000.0)
        a = NetNode(env, net, "a")
        b = NetNode(env, net, "b")
        got = []
        b.on("m", lambda msg: got.append(msg.payload["i"]))
        a.send("m", "b", {"i": 1}, size=10_000.0)  # 10s
        a.send("m", "b", {"i": 2}, size=1.0)       # tiny, would arrive first
        env.run()
        assert got == [1, 2]

    def test_message_size_validation(self):
        with pytest.raises(ValueError):
            Message(kind="x", src="a", dst="b", size=0)

    def test_stats_accounting(self, env):
        net, a, b = make_pair(env)
        b.on("m", lambda msg: None)
        a.send("m", "b", size=100.0)
        a.send("m", "b", size=200.0)
        env.run()
        assert net.stats.sent == 2
        assert net.stats.delivered == 2
        assert net.stats.bytes_sent == 300.0
        assert net.stats.by_kind["m"] == 2

    def test_unknown_destination_dropped(self, env):
        net, a, _b = make_pair(env)
        a.send("m", "ghost")
        env.run()
        assert net.stats.dropped == 1

    def test_bandwidth_validation(self, env):
        with pytest.raises(ValueError):
            Network(env, bandwidth=0)


class TestFailureInjection:
    def test_down_node_drops_inbound(self, env):
        net, a, b = make_pair(env)
        got = []
        b.on("m", lambda msg: got.append(1))
        net.set_down("b")
        a.send("m", "b")
        env.run()
        assert not got and net.stats.dropped == 1

    def test_down_node_drops_outbound(self, env):
        net, a, b = make_pair(env)
        got = []
        b.on("m", lambda msg: got.append(1))
        net.set_down("a")
        a.send("m", "b")
        env.run()
        assert not got

    def test_in_flight_message_lost_on_crash(self, env):
        net, a, b = make_pair(env, latency=1.0)
        got = []
        b.on("m", lambda msg: got.append(1))

        def crash():
            yield env.timeout(0.5)
            net.set_down("b")

        a.send("m", "b")
        env.process(crash())
        env.run()
        assert not got and net.stats.dropped == 1

    def test_set_up_restores(self, env):
        net, a, b = make_pair(env)
        got = []
        b.on("m", lambda msg: got.append(1))
        net.set_down("b")
        net.set_up("b")
        a.send("m", "b")
        env.run()
        assert got == [1]

    def test_set_down_unknown_raises(self, env):
        net, *_ = make_pair(env)
        with pytest.raises(UnknownPeer):
            net.set_down("ghost")


class TestPartitions:
    def make_quad(self, env):
        net = Network(env, ConstantLatency(0.01), bandwidth=1e9)
        nodes = {nid: NetNode(env, net, nid) for nid in "abcd"}
        got = {nid: [] for nid in "abcd"}
        for nid, node in nodes.items():
            node.on("m", lambda msg, nid=nid: got[nid].append(msg.src))
        return net, nodes, got

    def test_cross_group_send_dropped_and_attributed(self, env):
        net, nodes, got = self.make_quad(env)
        net.set_partition([["a", "b"], ["c", "d"]])
        nodes["a"].send("m", "c")
        env.run()
        assert got["c"] == []
        assert net.stats.dropped == 1
        assert net.stats.partition_drops == 1

    def test_same_group_delivery_unaffected(self, env):
        net, nodes, got = self.make_quad(env)
        net.set_partition([["a", "b"], ["c", "d"]])
        nodes["a"].send("m", "b")
        nodes["c"].send("m", "d")
        env.run()
        assert got["b"] == ["a"] and got["d"] == ["c"]
        assert net.stats.partition_drops == 0

    def test_unlisted_nodes_form_residual_group(self, env):
        # Only one group listed: c and d fall into the implicit
        # residual group — they reach each other but not the island.
        net, nodes, got = self.make_quad(env)
        net.set_partition([["a", "b"]])
        nodes["c"].send("m", "d")
        nodes["c"].send("m", "a")
        env.run()
        assert got["d"] == ["c"]
        assert got["a"] == []
        assert net.stats.partition_drops == 1

    def test_heal_resumes_delivery(self, env):
        net, nodes, got = self.make_quad(env)
        net.set_partition([["a", "b"]])
        nodes["a"].send("m", "c")
        env.run()
        assert got["c"] == [] and net.stats.partition_drops == 1
        net.heal_partition()
        assert not net.partitioned
        nodes["a"].send("m", "c")
        env.run()
        assert got["c"] == ["a"]
        assert net.stats.partition_drops == 1  # no new attribution

    def test_in_flight_message_survives_partition(self, env):
        # The drop happens at send time only: a message already in
        # flight when the partition forms is still delivered.
        net, nodes, got = self.make_quad(env)

        def split():
            yield env.timeout(0.001)
            net.set_partition([["a", "b"]])

        nodes["a"].send("m", "c")
        env.process(split())
        env.run()
        assert got["c"] == ["a"]
        assert net.stats.partition_drops == 0

    def test_reachable_and_partitioned_flags(self, env):
        net, _nodes, _got = self.make_quad(env)
        assert not net.partitioned
        assert net.reachable("a", "c")
        net.set_partition([["a", "b"], ["c"]])
        assert net.partitioned
        assert net.reachable("a", "b")
        assert not net.reachable("a", "c")
        assert not net.reachable("b", "d")  # listed vs residual
        assert net.reachable("d", "d")

    def test_empty_partition_is_noop(self, env):
        net, _nodes, _got = self.make_quad(env)
        net.set_partition([])
        assert not net.partitioned

    def test_repartition_replaces_wholesale(self, env):
        net, nodes, got = self.make_quad(env)
        net.set_partition([["a"]])
        net.set_partition([["a", "b", "c"]])
        nodes["a"].send("m", "b")
        env.run()
        assert got["b"] == ["a"]

    def test_partition_drops_are_subset_of_dropped(self, env):
        net, nodes, _got = self.make_quad(env)
        net.set_partition([["a", "b"]])
        nodes["a"].send("m", "c")   # partition drop
        nodes["a"].send("m", "ghost")  # unknown-destination drop
        env.run()
        assert net.stats.dropped == 2
        assert net.stats.partition_drops == 1

    def test_summary_schema_matches_live_aggregate(self, env):
        """Sim summary() and the live cluster aggregate share one shape."""
        from repro.runtime.cluster import LiveCluster

        net, nodes, _got = self.make_quad(env)
        net.set_partition([["a", "b"]])
        nodes["a"].send("m", "c")
        env.run()
        summary = net.stats.summary()
        assert summary["partition_drops"] == 1
        class FakeCluster:
            nodes: dict = {}
            bootstrap = None
            summaries = LiveCluster.summaries

        agg = LiveCluster.aggregate_summary(FakeCluster())
        # Every aggregated counter exists in the sim summary under the
        # same name (the aggregate skips the per-run hottest_dst pair).
        assert set(agg) <= set(summary)
        assert "partition_drops" in agg


class TestLatencyModels:
    def test_constant(self):
        m = ConstantLatency(0.2)
        assert m.sample("a", "b") == 0.2 == m.expected("a", "b")

    def test_constant_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1.0)

    def test_uniform_in_range(self):
        m = UniformLatency(0.1, 0.2)
        for _ in range(50):
            assert 0.1 <= m.sample("a", "b") <= 0.2
        assert m.expected("a", "b") == pytest.approx(0.15)

    def test_uniform_bad_range(self):
        with pytest.raises(ValueError):
            UniformLatency(0.5, 0.1)

    def test_domain_aware(self):
        from repro.net import DomainAwareLatency

        domains = {"a": "d0", "b": "d0", "c": "d1"}
        m = DomainAwareLatency(domains.get, intra=0.01, inter=0.1, jitter=0.0)
        assert m.sample("a", "b") == 0.01
        assert m.sample("a", "c") == 0.1
        assert m.expected("a", "c") == 0.1

    def test_domain_aware_unknown_is_inter(self):
        from repro.net import DomainAwareLatency

        m = DomainAwareLatency(lambda pid: None, intra=0.01, inter=0.1,
                               jitter=0.0)
        assert m.sample("x", "y") == 0.1

    def test_domain_aware_jitter_bounds(self):
        from repro.net import DomainAwareLatency

        m = DomainAwareLatency(lambda pid: "d", intra=0.01, inter=0.1,
                               jitter=0.5)
        for _ in range(100):
            assert 0.005 <= m.sample("a", "b") <= 0.015

    def test_domain_aware_validation(self):
        from repro.net import DomainAwareLatency

        with pytest.raises(ValueError):
            DomainAwareLatency(lambda p: "d", jitter=1.5)
        with pytest.raises(ValueError):
            DomainAwareLatency(lambda p: "d", intra=-1)


class TestExpectedDelay:
    def test_matches_model_plus_transmission(self, env):
        net = Network(env, ConstantLatency(0.1), bandwidth=1000.0)
        assert net.expected_delay("a", "b", size=100.0) == pytest.approx(0.2)


class TestFifoFloorPruning:
    """Regression: ``_last_arrival`` must not outlive its nodes."""

    def test_unregister_prunes_last_arrival(self, env):
        net, a, b = make_pair(env)
        b.on("m", lambda msg: None)
        a.send("m", "b")
        a.send("m", "a")  # self-send keeps an (a, a) entry alive
        env.run()
        assert ("a", "b") in net._last_arrival
        net.unregister("b")
        assert all("b" not in k for k in net._last_arrival)
        assert ("a", "a") in net._last_arrival  # unrelated pairs survive

    def test_rejoin_same_id_gets_fresh_fifo_floor(self, env):
        """A reused id must not inherit the departed peer's FIFO floor."""
        net = Network(env, ConstantLatency(0.0), bandwidth=1000.0)
        a = NetNode(env, net, "a")
        b = NetNode(env, net, "b")
        b.on("m", lambda msg: None)
        a.send("m", "b", size=100_000.0)  # arrival floored at t=100
        net.unregister("b")
        b2 = NetNode(env, net, "b")
        got = []
        b2.on("m", lambda msg: got.append(env.now))
        a.send("m", "b", size=1000.0)  # 1s transmission, no stale floor
        env.run()
        assert got and got[0] == pytest.approx(1.0)

    def test_churned_overlay_keeps_fabric_state_bounded(self):
        from repro.core.manager import RMConfig
        from repro.overlay import ChurnConfig, ChurnProcess, OverlayNetwork, PeerSpec
        from repro.sim import RandomStreams

        env = Environment()
        net = Network(env, ConstantLatency(0.005), bandwidth=1e7)
        overlay = OverlayNetwork(
            env, net, rm_config=RMConfig(max_peers=20),
            enable_gossip=False, streams=RandomStreams(0),
        )
        for i in range(10):
            overlay.join(PeerSpec(peer_id=f"p{i}", power=10.0,
                                  bandwidth=2e6, uptime=0.9))
        churn = ChurnProcess(
            overlay,
            ChurnConfig(mean_lifetime=5.0, mean_offtime=1.0),
            rng=__import__("numpy").random.default_rng(4),
        )
        churn.watch_all()
        env.run(until=120.0)
        assert churn.departures > 0
        # Every departed peer has left the fabric: node registry and the
        # FIFO floor map only reference currently registered ids.
        registered = set(net.node_ids)
        assert registered == set(overlay.peers)
        for src, dst in net._last_arrival:
            assert src in registered and dst in registered

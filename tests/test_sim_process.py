"""Process semantics: joining, interrupts, failures."""

import pytest

from repro.sim import Environment, Interrupt


@pytest.fixture
def env():
    return Environment()


class TestBasics:
    def test_process_requires_generator(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_process_is_alive_until_return(self, env):
        def proc():
            yield env.timeout(5)

        p = env.process(proc())
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_join_returns_value(self, env):
        def child():
            yield env.timeout(2)
            return 99

        got = []

        def parent():
            value = yield env.process(child())
            got.append((env.now, value))

        env.process(parent())
        env.run()
        assert got == [(2.0, 99)]

    def test_join_already_finished_process(self, env):
        def child():
            yield env.timeout(1)
            return "early"

        c = env.process(child())
        got = []

        def parent():
            yield env.timeout(5)
            value = yield c  # c finished long ago
            got.append((env.now, value))

        env.process(parent())
        env.run()
        assert got == [(5.0, "early")]

    def test_child_exception_propagates_to_joiner(self, env):
        def child():
            yield env.timeout(1)
            raise KeyError("oops")

        caught = []

        def parent():
            try:
                yield env.process(child())
            except KeyError as exc:
                caught.append(exc.args[0])

        env.process(parent())
        env.run()
        assert caught == ["oops"]

    def test_unjoined_exception_escapes_run(self, env):
        def proc():
            yield env.timeout(1)
            raise RuntimeError("nobody listening")

        env.process(proc())
        with pytest.raises(RuntimeError, match="nobody listening"):
            env.run()

    def test_yielding_non_event_is_type_error(self, env):
        def proc():
            try:
                yield 42
            except TypeError:
                return "caught"
            return "not caught"

        result = env.run(env.process(proc()))
        assert result == "caught"

    def test_immediate_return_process(self, env):
        def proc():
            return "now"
            yield  # pragma: no cover

        assert env.run(env.process(proc())) == "now"


class TestInterrupts:
    def test_interrupt_delivers_cause(self, env):
        got = []

        def victim():
            try:
                yield env.timeout(100)
            except Interrupt as i:
                got.append((env.now, i.cause))

        v = env.process(victim())

        def killer():
            yield env.timeout(3)
            v.interrupt({"reason": "test"})

        env.process(killer())
        env.run()
        assert got == [(3.0, {"reason": "test"})]

    def test_interrupted_process_can_continue(self, env):
        log = []

        def victim():
            try:
                yield env.timeout(100)
            except Interrupt:
                log.append("interrupted")
            yield env.timeout(5)
            log.append(env.now)

        v = env.process(victim())

        def killer():
            yield env.timeout(2)
            v.interrupt()

        env.process(killer())
        env.run()
        assert log == ["interrupted", 7.0]

    def test_interrupt_dead_process_raises(self, env):
        def quick():
            yield env.timeout(1)

        p = env.process(quick())
        env.run()
        with pytest.raises(RuntimeError):
            p.interrupt()

    def test_self_interrupt_rejected(self, env):
        def proc():
            me = env.active_process
            with pytest.raises(RuntimeError):
                me.interrupt()
            yield env.timeout(1)

        env.run(env.process(proc()))

    def test_interrupt_does_not_leak_to_waited_event(self, env):
        """The interrupted process detaches from its wait target."""
        def victim():
            try:
                yield env.timeout(10)
            except Interrupt:
                pass
            yield env.timeout(100)  # now waiting on something else

        v = env.process(victim())

        def killer():
            yield env.timeout(1)
            v.interrupt()

        env.process(killer())
        env.run(until=50.0)
        # The original timeout(10) fired at t=11 without resuming the
        # victim a second time; victim is still waiting on timeout(100).
        assert v.is_alive

    def test_interrupt_while_waiting_on_process(self, env):
        def slow():
            yield env.timeout(100)

        log = []

        def parent():
            child = env.process(slow())
            try:
                yield child
            except Interrupt:
                log.append("freed")
            assert child.is_alive  # the child keeps running

        p = env.process(parent())

        def killer():
            yield env.timeout(1)
            p.interrupt()

        env.process(killer())
        env.run()
        assert log == ["freed"]

"""SessionState bookkeeping and §4.5 overload reassignment."""

from repro.core.manager import RMConfig
from repro.core.session import SessionState, ComposeOrder
from repro.graphs.service_graph import ServiceGraph, ServiceStep
from repro.monitoring.profiler import LoadReport
from repro.tasks.task import TaskOutcome
from tests.conftest import build_live_domain


def make_session(peers=("P1", "P2"), source="P0", sink="P9"):
    steps = [
        ServiceStep(index=i, service_id=f"s{i}", peer_id=p, work=1.0,
                    out_bytes=10.0, src_state=i, dst_state=i + 1)
        for i, p in enumerate(peers)
    ]
    graph = ServiceGraph("t1", source, sink, steps)
    order = ComposeOrder(
        task_id="t1", rm_id="rm", source_peer=source, sink_peer=sink,
        steps=steps, abs_deadline=100.0, importance=1.0, in_bytes=10.0,
    )
    return SessionState(task_id="t1", graph=graph, order=order,
                        started_at=0.0)


class TestSessionState:
    def test_fresh_session_resumes_from_source(self):
        s = make_session()
        assert s.resume_point() == 0
        assert s.resume_source() == "P0"

    def test_progress_advances_resume_point(self):
        s = make_session()
        s.note_step_done(0, "P1")
        assert s.resume_point() == 1
        assert s.data_holder == "P1"
        assert s.resume_source() == "P1"

    def test_out_of_order_progress_keeps_max(self):
        s = make_session(peers=("P1", "P2", "P3"))
        s.note_step_done(1, "P2")
        s.note_step_done(0, "P1")  # late, lower index: ignored
        assert s.resume_point() == 2
        assert s.data_holder == "P2"


def saturate_reports(domain, loads):
    for pid, load in loads.items():
        rec = domain.rm.info.peers[pid]
        rec.last_report = LoadReport(
            peer_id=pid, time=domain.env.now, power=rec.power,
            utilization=load / rec.power, load=load, bw_used=0.0,
            queue_work=0.0, queue_length=0,
        )
        rec.reported_at = domain.env.now
        domain.rm.last_seen[pid] = domain.env.now


class TestOverloadReassignment:
    def build(self):
        return build_live_domain(
            rm_config=RMConfig(
                reassign_period=2.0,
                overload_utilization=0.85,
                reassign_min_gain=0.0,
            ),
            # Long profiler period: our injected reports stay in force.
            peer_update_period=10_000.0,
        )

    def test_hot_peer_future_steps_migrate(self):
        d = self.build()
        # Admit with a generous deadline; chain will be e1@P1 -> e?@P?.
        d.submit(deadline=300.0)
        d.env.run(until=0.5)
        task = d.task()
        hot = task.allocation[1][1]  # peer of the second (future) step
        # Everyone is hot, the second-step host hottest.
        loads = {pid: 8.6 for pid in d.rm.info.peers}
        loads[hot] = 9.9
        saturate_reports(d, loads)
        d.env.run(until=6.0)  # a reassign period elapses
        # §4.5: the overloaded domain migrated the not-yet-run suffix
        # off the hottest peer (deterministic for this fixture: the
        # parallel e3 instance at the cooler P3 exists).
        assert d.rm.stats["reassignments"] == 1
        session = d.rm.sessions.get(task.task_id)
        if session is not None:  # may already have finished
            future = session.graph.steps[session.resume_point():]
            assert all(s.peer_id != hot for s in future)
        assert all(p != hot for _s, p in task.allocation[1:])
        # And the migration did not break the task.
        d.env.run(until=200.0)
        assert task.outcome is not None

    def test_no_reassignment_when_cool(self):
        d = self.build()
        d.submit(deadline=300.0)
        d.env.run(until=0.5)
        saturate_reports(d, {pid: 2.0 for pid in d.rm.info.peers})
        d.env.run(until=10.0)
        assert d.rm.stats["reassignments"] == 0

    def test_reassignment_disabled_by_config(self):
        d = build_live_domain(
            rm_config=RMConfig(enable_reassignment=False),
            peer_update_period=10_000.0,
        )
        d.submit(deadline=300.0)
        d.env.run(until=0.5)
        saturate_reports(d, {pid: 9.5 for pid in d.rm.info.peers})
        d.env.run(until=30.0)
        assert d.rm.stats["reassignments"] == 0

    def test_migrated_task_still_completes(self):
        d = self.build()
        d.submit(deadline=300.0)
        d.env.run(until=0.5)
        task = d.task()
        hot = task.allocation[1][1]
        loads = {pid: 8.6 for pid in d.rm.info.peers}
        loads[hot] = 9.9
        saturate_reports(d, loads)
        d.env.run(until=250.0)
        assert task.outcome is TaskOutcome.MET_DEADLINE

"""Workload generation: catalog, population, arrivals, scenario."""

import numpy as np
import pytest

from repro.workloads import (
    MediaCatalog,
    PopulationConfig,
    ScenarioConfig,
    TaskArrivalProcess,
    WorkloadConfig,
    build_scenario,
    default_formats,
    generate_specs,
)
from repro.workloads.population import make_objects


class TestCatalog:
    def test_default_formats_valid(self):
        formats = default_formats()
        assert len(formats) >= 6
        assert len(set(formats)) == len(formats)

    def test_conversions_exclude_identity(self):
        cat = MediaCatalog()
        assert all(a != b for a, b in cat.conversions())

    def test_conversions_respect_upscale_cap(self):
        cat = MediaCatalog(max_upscale=1.0)
        for a, b in cat.conversions():
            assert b.pixel_rate <= a.pixel_rate

    def test_work_positive(self):
        cat = MediaCatalog()
        a, b = cat.conversions()[0]
        assert cat.work_of(a, b) > 0
        assert cat.out_bytes_of(b) > 0

    def test_reachability_grows_with_hops(self):
        cat = MediaCatalog()
        src = cat.source_formats()[0]
        r1 = set(cat.reachable_from(src, max_hops=1))
        r3 = set(cat.reachable_from(src, max_hops=3))
        assert r1 <= r3
        assert src not in r3

    def test_source_formats_are_high_end(self):
        cat = MediaCatalog()
        sources = cat.source_formats()
        rest = [f for f in cat.formats if f not in sources]
        value = lambda f: f.pixel_rate * f.bitrate_kbps
        assert min(map(value, sources)) >= max(map(value, rest))

    def test_needs_two_formats(self):
        with pytest.raises(ValueError):
            MediaCatalog(formats=[default_formats()[0]])


class TestPopulation:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            PopulationConfig(n_peers=0)
        with pytest.raises(ValueError):
            PopulationConfig(bandwidth_probs=(0.5, 0.5, 0.5))
        with pytest.raises(ValueError):
            PopulationConfig(replication=0)

    def test_spec_count_and_ids(self):
        cat = MediaCatalog()
        cfg = PopulationConfig(n_peers=12)
        specs = generate_specs(cat, cfg, np.random.default_rng(0))
        assert len(specs) == 12
        assert len({s.peer_id for s in specs}) == 12

    def test_homogeneous_power(self):
        cat = MediaCatalog()
        cfg = PopulationConfig(n_peers=8, power_cv=0.0, mean_power=7.0)
        specs = generate_specs(cat, cfg, np.random.default_rng(0))
        assert all(s.power == 7.0 for s in specs)

    def test_lognormal_power_mean(self):
        cat = MediaCatalog()
        cfg = PopulationConfig(n_peers=600, mean_power=10.0, power_cv=0.5)
        specs = generate_specs(cat, cfg, np.random.default_rng(0))
        mean = np.mean([s.power for s in specs])
        assert mean == pytest.approx(10.0, rel=0.15)

    def test_every_conversion_covered(self):
        """Seeding guarantees each conversion type has an instance."""
        cat = MediaCatalog()
        cfg = PopulationConfig(n_peers=16, services_per_peer=6)
        specs = generate_specs(cat, cfg, np.random.default_rng(3))
        hosted = {
            (s.src_state, s.dst_state)
            for spec in specs
            for s in spec.services
        }
        assert hosted >= set(cat.conversions())

    def test_replication_factor(self):
        cat = MediaCatalog()
        cfg = PopulationConfig(n_peers=10, n_objects=5, replication=3)
        rng = np.random.default_rng(0)
        objects = make_objects(cat, cfg, rng)
        specs = generate_specs(cat, cfg, rng, objects=objects)
        for obj in objects:
            holders = [s for s in specs if obj.name in s.objects]
            assert len(holders) == 3

    def test_replication_capped_by_population(self):
        cat = MediaCatalog()
        cfg = PopulationConfig(n_peers=2, n_objects=2, replication=5)
        specs = generate_specs(cat, cfg, np.random.default_rng(0))
        # No error; every object on at most n_peers peers.
        assert len(specs) == 2

    def test_bandwidth_tiers_sampled(self):
        cat = MediaCatalog()
        cfg = PopulationConfig(n_peers=300)
        specs = generate_specs(cat, cfg, np.random.default_rng(0))
        seen = {s.bandwidth for s in specs}
        assert seen <= set(cfg.bandwidth_tiers)
        assert len(seen) == 3


class TestWorkloadConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(rate=0)
        with pytest.raises(ValueError):
            WorkloadConfig(deadline_slack=0)


class TestScenario:
    def test_build_and_short_run(self):
        cfg = ScenarioConfig(
            seed=5,
            population=PopulationConfig(n_peers=8, n_objects=4),
            workload=WorkloadConfig(rate=0.5),
        )
        scenario = build_scenario(cfg)
        assert scenario.overlay.n_peers >= 7  # unqualified may be rejected
        summary = scenario.run(duration=60.0, drain=30.0)
        assert summary.n_submitted > 0
        assert summary.n_met + summary.n_missed + summary.n_rejected \
            + summary.n_failed <= summary.n_submitted + 1

    def test_same_seed_reproduces_summary(self):
        def once():
            cfg = ScenarioConfig(
                seed=9,
                population=PopulationConfig(n_peers=8, n_objects=4),
                workload=WorkloadConfig(rate=0.5),
            )
            s = build_scenario(cfg).run(duration=60.0, drain=20.0)
            return (s.n_submitted, s.n_met, s.n_missed, s.messages)

        assert once() == once()

    def test_different_seeds_differ(self):
        def once(seed):
            cfg = ScenarioConfig(
                seed=seed,
                population=PopulationConfig(n_peers=8, n_objects=4),
                workload=WorkloadConfig(rate=0.8),
            )
            s = build_scenario(cfg).run(duration=60.0, drain=20.0)
            return (s.n_submitted, s.messages)

        assert once(1) != once(2)

    def test_run_duration_validation(self):
        cfg = ScenarioConfig(
            population=PopulationConfig(n_peers=4, n_objects=2)
        )
        scenario = build_scenario(cfg)
        with pytest.raises(ValueError):
            scenario.run(duration=0.0)

    def test_arrival_rate_roughly_matches(self):
        cfg = ScenarioConfig(
            seed=3,
            population=PopulationConfig(n_peers=8, n_objects=4),
            workload=WorkloadConfig(rate=1.0),
        )
        scenario = build_scenario(cfg)
        scenario.run(duration=200.0, drain=10.0)
        assert scenario.workload.n_generated == pytest.approx(200, rel=0.25)

    def test_zipf_prefers_popular_objects(self):
        cfg = ScenarioConfig(
            seed=3,
            population=PopulationConfig(n_peers=8, n_objects=6),
            workload=WorkloadConfig(rate=2.0, zipf_s=1.2),
        )
        scenario = build_scenario(cfg)
        scenario.run(duration=200.0, drain=10.0)
        by_name = {}
        for task in scenario.metrics.tasks.values():
            by_name[task.name] = by_name.get(task.name, 0) + 1
        first = by_name.get(scenario.objects[0].name, 0)
        last = by_name.get(scenario.objects[-1].name, 0)
        assert first > last


class TestArrivalProcess:
    def test_requires_objects(self):
        cfg = ScenarioConfig(
            population=PopulationConfig(n_peers=4, n_objects=2)
        )
        scenario = build_scenario(cfg)
        with pytest.raises(ValueError):
            TaskArrivalProcess(scenario.overlay, scenario.catalog, [])

    def test_stop_halts_generation(self):
        cfg = ScenarioConfig(
            seed=1,
            population=PopulationConfig(n_peers=6, n_objects=3),
            workload=WorkloadConfig(rate=2.0),
        )
        scenario = build_scenario(cfg)
        scenario.env.run(until=20.0)
        scenario.workload.stop()
        n = scenario.workload.n_generated
        scenario.env.run(until=60.0)
        assert scenario.workload.n_generated == n

"""Gossip convergence, RM failover, and churn processes."""

import pytest

from repro.core.manager import RMConfig
from repro.gossip import GossipConfig
from repro.net import ConstantLatency, Network
from repro.overlay import (
    ChurnConfig,
    ChurnProcess,
    FailoverConfig,
    OverlayNetwork,
    PeerSpec,
)
from repro.sim import Environment, RandomStreams


def build_overlay(env, max_peers=3, enable_gossip=True,
                  gossip_config=None, failover_config=None,
                  enable_backups=True):
    net = Network(env, ConstantLatency(0.005), bandwidth=1e7)
    return OverlayNetwork(
        env, net,
        rm_config=RMConfig(max_peers=max_peers),
        gossip_config=gossip_config or GossipConfig(period=1.0, fanout=2),
        failover_config=failover_config or FailoverConfig(
            sync_period=1.0, dead_after_periods=2.0
        ),
        enable_gossip=enable_gossip,
        enable_backups=enable_backups,
        streams=RandomStreams(0),
    )


def spec(pid, **kw):
    defaults = dict(power=10.0, bandwidth=2e6, uptime=0.9)
    defaults.update(kw)
    return PeerSpec(peer_id=pid, **defaults)


class TestGossipConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            GossipConfig(period=0)
        with pytest.raises(ValueError):
            GossipConfig(fanout=0)


class TestGossipConvergence:
    def test_summaries_spread_to_all_rms(self):
        env = Environment()
        overlay = build_overlay(env, max_peers=3)
        for i in range(9):  # 3 domains of 3
            overlay.join(spec(f"p{i}"))
        assert overlay.n_domains == 3
        env.run(until=30.0)
        agents = [d.gossip for d in overlay.domains.values()]
        assert all(len(a.summaries) == 3 for a in agents)
        assert agents[0].converged_with(agents[1:])

    def test_remote_summaries_visible_to_rm(self):
        env = Environment()
        overlay = build_overlay(env, max_peers=2)
        for i in range(4):
            overlay.join(spec(f"p{i}"))
        env.run(until=30.0)
        for rm in overlay.rms():
            assert len(rm.info.remote_summaries) == overlay.n_domains - 1

    def test_version_bumps_on_membership_change(self):
        env = Environment()
        overlay = build_overlay(env, max_peers=4)
        overlay.join(spec("p0"))
        env.run(until=5.0)
        agent = next(iter(overlay.domains.values())).gossip
        v_before = agent.summaries["p0"].version
        overlay.join(spec("p1"))
        env.run(until=10.0)
        assert agent.summaries["p0"].version > v_before

    def test_unchanged_contents_do_not_bump_version(self):
        env = Environment()
        overlay = build_overlay(env, max_peers=4)
        overlay.join(spec("p0"))
        env.run(until=3.0)
        agent = next(iter(overlay.domains.values())).gossip
        v = agent.summaries["p0"].version
        env.run(until=20.0)
        assert agent.summaries["p0"].version == v


class TestGossipRosterAndParity:
    def test_digest_placeholder_domain_overwritten_by_summary(self):
        """Regression: an RM first seen in a digest is recorded under the
        "?" placeholder; the real domain id must replace it once that
        RM's summary arrives (redirect targeting reads this roster)."""
        from repro.core import protocol
        from repro.net import Message
        from repro.summaries.domain_summary import DomainSummary

        env = Environment()
        overlay = build_overlay(env, max_peers=4)
        overlay.join(spec("p0"))
        env.run(until=2.0)
        agent = next(iter(overlay.domains.values())).gossip
        digest = Message(
            kind=protocol.GOSSIP_DIGEST, src="rmX", dst="p0",
            payload={"digest": {"rmX": 3}}, size=64.0,
        )
        agent._handle_digest(digest)
        assert agent.rm.known_rms["rmX"] == "?"
        summaries = Message(
            kind=protocol.GOSSIP_SUMMARIES, src="rmX", dst="p0",
            payload={"summaries": [
                DomainSummary(domain_id="d9", rm_id="rmX", version=3)
            ]},
            size=64.0,
        )
        agent._handle_summaries(summaries)
        assert agent.rm.known_rms["rmX"] == "d9"
        assert "rmX" in agent.rm.info.remote_summaries

    def test_received_summary_is_a_copy(self):
        """Sim/live parity regression: the simulated fabric hands payload
        objects over by reference, while the UDP runtime serializes every
        hop.  A receiver must therefore hold a *copy*, or the publisher's
        in-place ``mean_utilization`` refresh time-travels current load
        to remote RMs without any gossip round."""
        env = Environment()
        overlay = build_overlay(env, max_peers=2)
        for i in range(4):  # 2 domains of 2
            overlay.join(spec(f"p{i}"))
        assert overlay.n_domains == 2
        env.run(until=30.0)
        agents = [d.gossip for d in overlay.domains.values()]
        a, b = agents
        a_id = a.rm.node_id
        held_by_b = b.summaries[a_id]
        assert held_by_b is not a.summaries[a_id]
        # The publisher's no-version-bump load refresh stays local.
        a.summaries[a_id].mean_utilization = 123.0
        assert held_by_b.mean_utilization != 123.0
        # The RM's redirect view is backed by the receiver's copy too.
        assert b.rm.info.remote_summaries[a_id] is held_by_b


class TestFailover:
    def build_domain_with_backup(self, env):
        overlay = build_overlay(env, max_peers=8, enable_gossip=False)
        for i in range(4):
            overlay.join(spec(f"p{i}"))
        domain = next(iter(overlay.domains.values()))
        assert domain.backup is not None
        return overlay, domain

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FailoverConfig(sync_period=0)
        with pytest.raises(ValueError):
            FailoverConfig(dead_after_periods=0.5)

    def test_backup_requires_passive(self):
        env = Environment()
        overlay, domain = self.build_domain_with_backup(env)
        from repro.overlay.failover import FailoverAgent

        with pytest.raises(ValueError):
            FailoverAgent(domain.rm, domain.rm)  # active as backup

    def test_no_takeover_while_primary_alive(self):
        env = Environment()
        overlay, domain = self.build_domain_with_backup(env)
        env.run(until=30.0)
        assert not domain.failover.took_over
        assert domain.rm.active

    def test_takeover_after_primary_crash(self):
        env = Environment()
        overlay, domain = self.build_domain_with_backup(env)
        primary, backup = domain.rm, domain.backup

        def killer():
            yield env.timeout(10.0)
            overlay.fail_peer(primary.node_id)

        env.process(killer())
        env.run(until=30.0)
        new_domain = next(iter(overlay.domains.values()))
        assert new_domain.rm is backup
        assert backup.active and backup.rm_id == backup.node_id
        # Members re-pointed to the new RM.
        for pid, node in overlay.peers.items():
            if node.alive and pid != backup.node_id:
                assert node.rm_id == backup.node_id
        # The dead primary was pruned from the restored roster.
        assert not backup.info.has_peer(primary.node_id)

    def test_takeover_restores_replicated_roster(self):
        env = Environment()
        overlay, domain = self.build_domain_with_backup(env)
        primary, backup = domain.rm, domain.backup
        members_before = set(primary.member_ids)

        def killer():
            yield env.timeout(10.0)
            overlay.fail_peer(primary.node_id)

        env.process(killer())
        env.run(until=30.0)
        expected = members_before - {primary.node_id}
        assert set(backup.member_ids) == expected

    def test_recovery_delay_reported(self):
        env = Environment()
        overlay, domain = self.build_domain_with_backup(env)
        agent = domain.failover

        def killer():
            yield env.timeout(10.0)
            overlay.fail_peer(domain.rm.node_id)

        env.process(killer())
        env.run(until=30.0)
        assert agent.recovery_delay is not None
        assert agent.recovery_delay > 0


class TestChurn:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ChurnConfig(mean_lifetime=0)
        with pytest.raises(ValueError):
            ChurnConfig(graceful_prob=1.5)

    def test_departures_and_rejoins(self):
        env = Environment()
        overlay = build_overlay(env, max_peers=20, enable_gossip=False)
        for i in range(10):
            overlay.join(spec(f"p{i}"))
        churn = ChurnProcess(
            overlay,
            ChurnConfig(mean_lifetime=5.0, mean_offtime=1.0,
                        graceful_prob=0.5),
            rng=__import__("numpy").random.default_rng(1),
        )
        churn.watch_all()
        env.run(until=60.0)
        assert churn.departures > 0
        assert churn.rejoins > 0
        # Population stays roughly stationary.
        assert overlay.n_peers >= 5

    def test_rms_exempt(self):
        env = Environment()
        overlay = build_overlay(env, max_peers=20, enable_gossip=False)
        for i in range(6):
            overlay.join(spec(f"p{i}"))
        domain = next(iter(overlay.domains.values()))
        churn = ChurnProcess(
            overlay,
            ChurnConfig(mean_lifetime=2.0, mean_offtime=0.5),
            rng=__import__("numpy").random.default_rng(2),
        )
        churn.watch_all()
        env.run(until=60.0)
        # Primary and designated backup never churned away.
        assert domain.rm.alive
        assert domain.backup is not None and domain.backup.alive

    def test_no_replacement_when_disabled(self):
        env = Environment()
        overlay = build_overlay(env, max_peers=20, enable_gossip=False)
        for i in range(6):
            overlay.join(spec(f"p{i}"))
        churn = ChurnProcess(
            overlay,
            ChurnConfig(mean_lifetime=3.0, replace=False),
            rng=__import__("numpy").random.default_rng(3),
        )
        churn.watch_all()
        env.run(until=100.0)
        assert churn.rejoins == 0
        assert overlay.n_peers < 6


class TestTrajectoryDeterminism:
    """A run must be a pure function of (config, seed) — in particular
    independent of PYTHONHASHSEED.  The repair fan-out used to iterate a
    ``set`` of peer ids, so the COMPOSE send order (and from there the
    whole trajectory) varied run to run under churn."""

    _SCRIPT = """
from repro.core.manager import RMConfig
from repro.overlay import ChurnConfig
from repro.workloads import (
    PopulationConfig, ScenarioConfig, WorkloadConfig, build_scenario,
)

cfg = ScenarioConfig(
    seed=11,
    population=PopulationConfig(n_peers=60, n_objects=30, replication=3),
    workload=WorkloadConfig(rate=1.5),
    rm=RMConfig(max_peers=16),
    churn=ChurnConfig(mean_lifetime=8.0, mean_offtime=2.0),
)
scenario = build_scenario(cfg)
scenario.env.run(until=scenario.env.now + 40.0)
print(scenario.env.n_processed, scenario.network.stats.sent,
      scenario.churn.departures, scenario.churn.rejoins)
"""

    def test_trajectory_independent_of_hash_seed(self):
        import os
        import subprocess
        import sys

        outputs = []
        for hash_seed in ("101", "202"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env.setdefault("PYTHONPATH", "src")
            proc = subprocess.run(
                [sys.executable, "-c", self._SCRIPT],
                capture_output=True, text=True, env=env, timeout=120,
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout.strip())
        events, messages, departures, _ = outputs[0].split()
        assert int(departures) > 0, "scenario never exercised churn/repair"
        assert outputs[0] == outputs[1], (
            f"trajectory depends on PYTHONHASHSEED: "
            f"{outputs[0]!r} != {outputs[1]!r}"
        )

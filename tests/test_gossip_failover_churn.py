"""Gossip convergence, RM failover, and churn processes."""

import pytest

from repro.core.manager import RMConfig
from repro.gossip import GossipConfig
from repro.net import ConstantLatency, Network
from repro.overlay import (
    ChurnConfig,
    ChurnProcess,
    FailoverConfig,
    OverlayNetwork,
    PeerSpec,
)
from repro.sim import Environment, RandomStreams


def build_overlay(env, max_peers=3, enable_gossip=True,
                  gossip_config=None, failover_config=None,
                  enable_backups=True):
    net = Network(env, ConstantLatency(0.005), bandwidth=1e7)
    return OverlayNetwork(
        env, net,
        rm_config=RMConfig(max_peers=max_peers),
        gossip_config=gossip_config or GossipConfig(period=1.0, fanout=2),
        failover_config=failover_config or FailoverConfig(
            sync_period=1.0, dead_after_periods=2.0
        ),
        enable_gossip=enable_gossip,
        enable_backups=enable_backups,
        streams=RandomStreams(0),
    )


def spec(pid, **kw):
    defaults = dict(power=10.0, bandwidth=2e6, uptime=0.9)
    defaults.update(kw)
    return PeerSpec(peer_id=pid, **defaults)


class TestGossipConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            GossipConfig(period=0)
        with pytest.raises(ValueError):
            GossipConfig(fanout=0)


class TestGossipConvergence:
    def test_summaries_spread_to_all_rms(self):
        env = Environment()
        overlay = build_overlay(env, max_peers=3)
        for i in range(9):  # 3 domains of 3
            overlay.join(spec(f"p{i}"))
        assert overlay.n_domains == 3
        env.run(until=30.0)
        agents = [d.gossip for d in overlay.domains.values()]
        assert all(len(a.summaries) == 3 for a in agents)
        assert agents[0].converged_with(agents[1:])

    def test_remote_summaries_visible_to_rm(self):
        env = Environment()
        overlay = build_overlay(env, max_peers=2)
        for i in range(4):
            overlay.join(spec(f"p{i}"))
        env.run(until=30.0)
        for rm in overlay.rms():
            assert len(rm.info.remote_summaries) == overlay.n_domains - 1

    def test_version_bumps_on_membership_change(self):
        env = Environment()
        overlay = build_overlay(env, max_peers=4)
        overlay.join(spec("p0"))
        env.run(until=5.0)
        agent = next(iter(overlay.domains.values())).gossip
        v_before = agent.summaries["p0"].version
        overlay.join(spec("p1"))
        env.run(until=10.0)
        assert agent.summaries["p0"].version > v_before

    def test_unchanged_contents_do_not_bump_version(self):
        env = Environment()
        overlay = build_overlay(env, max_peers=4)
        overlay.join(spec("p0"))
        env.run(until=3.0)
        agent = next(iter(overlay.domains.values())).gossip
        v = agent.summaries["p0"].version
        env.run(until=20.0)
        assert agent.summaries["p0"].version == v


class TestFailover:
    def build_domain_with_backup(self, env):
        overlay = build_overlay(env, max_peers=8, enable_gossip=False)
        for i in range(4):
            overlay.join(spec(f"p{i}"))
        domain = next(iter(overlay.domains.values()))
        assert domain.backup is not None
        return overlay, domain

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FailoverConfig(sync_period=0)
        with pytest.raises(ValueError):
            FailoverConfig(dead_after_periods=0.5)

    def test_backup_requires_passive(self):
        env = Environment()
        overlay, domain = self.build_domain_with_backup(env)
        from repro.overlay.failover import FailoverAgent

        with pytest.raises(ValueError):
            FailoverAgent(domain.rm, domain.rm)  # active as backup

    def test_no_takeover_while_primary_alive(self):
        env = Environment()
        overlay, domain = self.build_domain_with_backup(env)
        env.run(until=30.0)
        assert not domain.failover.took_over
        assert domain.rm.active

    def test_takeover_after_primary_crash(self):
        env = Environment()
        overlay, domain = self.build_domain_with_backup(env)
        primary, backup = domain.rm, domain.backup

        def killer():
            yield env.timeout(10.0)
            overlay.fail_peer(primary.node_id)

        env.process(killer())
        env.run(until=30.0)
        new_domain = next(iter(overlay.domains.values()))
        assert new_domain.rm is backup
        assert backup.active and backup.rm_id == backup.node_id
        # Members re-pointed to the new RM.
        for pid, node in overlay.peers.items():
            if node.alive and pid != backup.node_id:
                assert node.rm_id == backup.node_id
        # The dead primary was pruned from the restored roster.
        assert not backup.info.has_peer(primary.node_id)

    def test_takeover_restores_replicated_roster(self):
        env = Environment()
        overlay, domain = self.build_domain_with_backup(env)
        primary, backup = domain.rm, domain.backup
        members_before = set(primary.member_ids)

        def killer():
            yield env.timeout(10.0)
            overlay.fail_peer(primary.node_id)

        env.process(killer())
        env.run(until=30.0)
        expected = members_before - {primary.node_id}
        assert set(backup.member_ids) == expected

    def test_recovery_delay_reported(self):
        env = Environment()
        overlay, domain = self.build_domain_with_backup(env)
        agent = domain.failover

        def killer():
            yield env.timeout(10.0)
            overlay.fail_peer(domain.rm.node_id)

        env.process(killer())
        env.run(until=30.0)
        assert agent.recovery_delay is not None
        assert agent.recovery_delay > 0


class TestChurn:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ChurnConfig(mean_lifetime=0)
        with pytest.raises(ValueError):
            ChurnConfig(graceful_prob=1.5)

    def test_departures_and_rejoins(self):
        env = Environment()
        overlay = build_overlay(env, max_peers=20, enable_gossip=False)
        for i in range(10):
            overlay.join(spec(f"p{i}"))
        churn = ChurnProcess(
            overlay,
            ChurnConfig(mean_lifetime=5.0, mean_offtime=1.0,
                        graceful_prob=0.5),
            rng=__import__("numpy").random.default_rng(1),
        )
        churn.watch_all()
        env.run(until=60.0)
        assert churn.departures > 0
        assert churn.rejoins > 0
        # Population stays roughly stationary.
        assert overlay.n_peers >= 5

    def test_rms_exempt(self):
        env = Environment()
        overlay = build_overlay(env, max_peers=20, enable_gossip=False)
        for i in range(6):
            overlay.join(spec(f"p{i}"))
        domain = next(iter(overlay.domains.values()))
        churn = ChurnProcess(
            overlay,
            ChurnConfig(mean_lifetime=2.0, mean_offtime=0.5),
            rng=__import__("numpy").random.default_rng(2),
        )
        churn.watch_all()
        env.run(until=60.0)
        # Primary and designated backup never churned away.
        assert domain.rm.alive
        assert domain.backup is not None and domain.backup.alive

    def test_no_replacement_when_disabled(self):
        env = Environment()
        overlay = build_overlay(env, max_peers=20, enable_gossip=False)
        for i in range(6):
            overlay.join(spec(f"p{i}"))
        churn = ChurnProcess(
            overlay,
            ChurnConfig(mean_lifetime=3.0, replace=False),
            rng=__import__("numpy").random.default_rng(3),
        )
        churn.watch_all()
        env.run(until=100.0)
        assert churn.rejoins == 0
        assert overlay.n_peers < 6

"""Wire-format round-trips for the live runtime codec.

Every message kind in :mod:`repro.core.protocol` must survive
``encode_message -> decode_frame`` with its payload intact — including
the structured payload objects (media formats, QoS sets, compose
orders, load reports, application tasks) — and malformed datagrams
must be rejected with :class:`WireFormatError`, never delivered.
"""

from __future__ import annotations

import json

import pytest

from repro.core import protocol
from repro.core.session import ComposeOrder
from repro.graphs.service_graph import ServiceStep
from repro.media.fig1 import V1, V2, V3
from repro.media.objects import MediaObject
from repro.monitoring.profiler import LoadReport
from repro.net.message import Message
from repro.runtime.codec import (
    FRAME_ACK,
    FRAME_MSG,
    WIRE_VERSION,
    WireFormatError,
    decode_frame,
    encode_ack,
    encode_message,
)
from repro.tasks.qos import QoSRequirements
from repro.tasks.task import ApplicationTask, TaskOutcome, TaskState

# Every kind constant the protocol module defines (STREAM has no entry
# in MESSAGE_SIZES — its wire size is data-dependent — so enumerate the
# module's uppercase string constants rather than the size table).
ALL_KINDS = sorted(
    value
    for name, value in vars(protocol).items()
    if name.isupper() and isinstance(value, str)
)


def _steps():
    return [
        ServiceStep(0, "T-e1", "P1", 48.0, 1.2e6, V1, V2, edge_id="e1"),
        ServiceStep(1, "T-e2", "P2", 55.0, 4.8e5, V2, V3, edge_id="e2"),
    ]


def _order():
    return ComposeOrder(
        task_id="t1", rm_id="rm0", source_peer="P1", sink_peer="P4",
        steps=_steps(), abs_deadline=60.0, importance=2.0,
        in_bytes=3.84e6, resume_from=0, epoch=1,
    )


def _load_report():
    return LoadReport(
        peer_id="P2", time=12.5, power=10.0, utilization=0.4,
        load=4.0, bw_used=2.0e5, queue_work=7.5, queue_length=3,
        services={"T-e2": 0.3}, dependencies=2,
    )


def _task():
    return ApplicationTask(
        name="movie",
        qos=QoSRequirements(deadline=60.0, importance=2.0,
                            constraints={"codec": "MPEG-4"}),
        initial_state=V1, goal_state=V3, origin_peer="P4",
        task_id="t9", submitted_at=3.0, state=TaskState.DONE,
        allocation=[("T-e1", "P1"), ("T-e2", "P2")],
        allocation_fairness=0.91, admitted_domain="d0",
        redirects=1, repairs=0, finished_at=9.5,
        outcome=TaskOutcome.MET_DEADLINE, meta={"path": ("e1", "e2")},
    )


#: A representative payload per message kind, mirroring what the
#: protocol layer actually puts on the wire.
PAYLOADS = {
    protocol.LOAD_UPDATE: lambda: _load_report().as_payload(),
    protocol.TASK_REQUEST: lambda: {
        "name": "movie", "initial_state": None, "goal_state": V3,
        "qos": QoSRequirements(deadline=60.0), "origin": "P4",
    },
    protocol.STEP_DONE: lambda: {
        "task_id": "t1", "step_index": 0, "peer_id": "P1", "epoch": 1,
    },
    protocol.TASK_DONE: lambda: {"task_id": "t1", "sink": "P4"},
    protocol.PEER_LEAVE: lambda: {"peer_id": "P3"},
    protocol.QOS_UPDATE: lambda: {
        "task_id": "t1", "qos": QoSRequirements(deadline=90.0),
    },
    protocol.TASK_ACK: lambda: {
        "task_id": "t1", "disposition": "accepted",
    },
    protocol.COMPOSE: lambda: {"order": _order()},
    protocol.START_STREAM: lambda: {
        "task_id": "t1", "from_step": 0, "epoch": 1,
    },
    protocol.CANCEL_TASK: lambda: {"task_id": "t1", "reason": "reassigned"},
    protocol.STREAM: lambda: {
        "task_id": "t1", "step_index": 1, "bytes": 4.8e5, "epoch": 1,
    },
    protocol.TASK_REDIRECT: lambda: {"task": _task(), "from_domain": "d1"},
    protocol.GOSSIP_DIGEST: lambda: {
        "domains": {"d0": 4.0, "d1": 7.5}, "round": 3,
    },
    protocol.GOSSIP_SUMMARIES: lambda: {
        "summaries": [{"domain": "d1", "load": 7.5,
                       "states": {V1, V2, V3}}],
    },
    protocol.RM_SYNC: lambda: {
        "tasks": {"t9": _task()},
        "reports": {"P2": _load_report()},
    },
    protocol.RM_TAKEOVER: lambda: {"new_rm": "P2", "epoch": 2},
    protocol.JOIN_REQUEST: lambda: {
        "peer_id": "P5", "host": "127.0.0.1", "port": 40001,
        "power": 10.0, "bandwidth": 1.25e6, "uptime": 0.9,
        "objects": [MediaObject("movie", V1, duration_s=3.0)],
        "edges": [{"src": V1, "dst": V2, "service_id": "T-e1",
                   "work": 48.0, "out_bytes": 1.2e6, "edge_id": "e1"}],
    },
    protocol.JOIN_ACK: lambda: {
        "role": "peer", "rm_id": "M0", "domain_id": "d0",
        "roster": {"P1": {"host": "127.0.0.1", "port": 40002}},
    },
}


def test_payload_table_covers_every_protocol_kind():
    assert sorted(PAYLOADS) == ALL_KINDS


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_round_trip_every_kind(kind):
    msg = Message(
        kind=kind, src="P4", dst="M0", payload=PAYLOADS[kind](),
        size=protocol.size_of(kind), reply_to=7, sent_at=1.25,
    )
    frame = decode_frame(encode_message(msg))
    assert frame["t"] == FRAME_MSG
    out = frame["msg"]
    assert out == msg
    # Nominal size accounting is preserved verbatim — the JSON length
    # is an implementation detail, not the accounted wire size.
    assert out.size == protocol.size_of(kind)
    assert out.msg_id == msg.msg_id and out.reply_to == 7


def test_round_trip_preserves_payload_object_types():
    msg = Message(
        kind=protocol.COMPOSE, src="M0", dst="P1",
        payload={"order": _order()}, size=1024.0,
    )
    order = decode_frame(encode_message(msg))["msg"].payload["order"]
    assert isinstance(order, ComposeOrder)
    assert all(isinstance(s, ServiceStep) for s in order.steps)
    assert order.steps[0].src_state == V1
    assert order.steps[1].dst_state == V3

    msg = Message(
        kind=protocol.TASK_REDIRECT, src="rm1", dst="rm0",
        payload={"task": _task()}, size=768.0,
    )
    task = decode_frame(encode_message(msg))["msg"].payload["task"]
    assert isinstance(task, ApplicationTask)
    assert isinstance(task.qos, QoSRequirements)
    assert task.state is TaskState.DONE
    assert task.outcome is TaskOutcome.MET_DEADLINE
    assert task.meta["path"] == ("e1", "e2")  # tuple survives
    assert task.goal_state == V3


def test_round_trip_containers():
    payload = {
        "tuple": (1, "a", (2.5, None)),
        "set": {V1, V2},
        "intkeys": {3: "x", (1, 2): "y"},
        "nested": [{"deep": {"deeper": (True, False)}}],
    }
    msg = Message(kind="load_update", src="a", dst="b",
                  payload=payload, size=64.0)
    out = decode_frame(encode_message(msg))["msg"].payload
    assert out == payload
    assert isinstance(out["tuple"], tuple)
    assert isinstance(out["set"], set)


def test_ack_frame_round_trip():
    frame = decode_frame(encode_ack("P2", 41))
    assert frame == {"t": FRAME_ACK, "src": "P2", "id": 41}


def _msg_frame(**overrides):
    body = {
        "kind": "task_ack", "src": "M0", "dst": "P4",
        "payload": {}, "size": 256.0, "msg_id": 5,
        "reply_to": None, "sent_at": 0.0,
    }
    body.update(overrides)
    return json.dumps({"v": WIRE_VERSION, "t": FRAME_MSG, "msg": body})


@pytest.mark.parametrize("data", [
    b"\xff\xfe not utf-8 \x80",
    b"not json at all",
    b"[1, 2, 3]",
    b'{"t": "msg"}',                                    # missing version
    b'{"v": 99, "t": "msg", "msg": {}}',                # future version
    b'{"v": 1, "t": "bogus"}',                          # unknown frame
    b'{"v": 1, "t": "ack", "src": 7, "id": 1}',         # ack src not str
    b'{"v": 1, "t": "ack", "src": "a", "id": true}',    # bool id
    b'{"v": 1, "t": "msg", "msg": []}',                 # body not object
    b'{"v": 1, "t": "msg", "msg": {"kind": "x"}}',      # missing fields
    _msg_frame(msg_id="five").encode(),                 # ill-typed id
    _msg_frame(size=-1.0).encode(),                     # invalid size
    _msg_frame(payload=[1, 2]).encode(),                # payload not dict
    _msg_frame(payload={"__t__": "martian"}).encode(),  # unknown tag
    _msg_frame(kind=3).encode(),                        # kind not str
])
def test_malformed_datagrams_rejected(data):
    with pytest.raises(WireFormatError):
        decode_frame(data)

"""The cluster observability plane, unit-tested without processes.

Covers the supervisor-side pieces the sharded soak exercises end to
end in ``test_runtime_sharded.py``: cursor-based trace shipping (the
flush-before-trim regression), cross-shard merge + parentage stitching,
``.folded`` profile merge/diff, the cluster health rollup with SLO burn
over merged series, correlated flight bundles, the GIL-handoff cost
model, and the ``repro-trace merge`` / ``diff-profile`` / dash panel
surfaces.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro import telemetry
from repro.telemetry.export import TraceData, read_jsonl
from repro.telemetry.ship import TraceShipper
from repro.telemetry.tracer import (
    MESSAGE,
    SERVICE,
    TASK,
    Span,
    TraceEvent,
)


def make_tracer():
    return telemetry.Telemetry.wall().tracer


def finish_span(tracer, name, kind=SERVICE, trace_id=None, parent=None):
    span = tracer.start_span(
        name, kind, trace_id=trace_id,
        parent_id=parent.span_id if parent is not None else None,
    )
    return tracer.end_span(span)


# -- trace shipping (span-loss regression) ------------------------------------

class TestTraceShipper:
    def test_collect_hands_out_unshipped_suffix_once(self):
        tracer = make_tracer()
        for i in range(3):
            finish_span(tracer, f"a{i}")
        tracer.event("e0")
        ship = TraceShipper(tracer, shard="s0")
        recs = ship.collect()
        assert [r["type"] for r in recs] == ["span"] * 3 + ["event"]
        assert all(r["attrs"]["shard"] == "s0" for r in recs)
        assert ship.collect() == []  # nothing new
        finish_span(tracer, "a3")
        assert [r["name"] for r in ship.collect()] == ["a3"]
        assert ship.total_spans == 4 and ship.total_events == 1

    def test_collect_limit_leaves_remainder_pending(self):
        tracer = make_tracer()
        for i in range(5):
            finish_span(tracer, f"a{i}")
        ship = TraceShipper(tracer)
        assert len(ship.collect(limit=2)) == 2
        assert ship.pending() == 3
        assert len(ship.collect()) == 3

    def test_trim_never_drops_unshipped_records(self):
        """The span-loss window regression: a burst of spans arriving
        between flushes must survive any trim, no matter how far past
        the high-water mark the history grew."""
        tracer = make_tracer()
        ship = TraceShipper(tracer)
        finish_span(tracer, "shipped")
        ship.collect()
        # Burst: 50 spans arrive before the next flush.
        for i in range(50):
            finish_span(tracer, f"burst{i}")
        dropped = ship.trim(keep=2, high=10)
        # Only the already-shipped prefix (1 span) was droppable.
        assert dropped == 1
        names = [r["name"] for r in ship.collect()]
        assert names == [f"burst{i}" for i in range(50)]

    def test_trim_drops_shipped_prefix_down_to_keep(self):
        tracer = make_tracer()
        ship = TraceShipper(tracer)
        for i in range(20):
            finish_span(tracer, f"a{i}")
        ship.collect()
        dropped = ship.trim(keep=5, high=10)
        assert dropped == 15
        assert len(tracer.spans) == 5
        # Cursor followed the deletion: nothing re-ships.
        assert ship.collect() == []
        assert ship.total_spans == 20

    def test_trim_high_watermark_hysteresis(self):
        tracer = make_tracer()
        ship = TraceShipper(tracer)
        for i in range(8):
            finish_span(tracer, f"a{i}")
        ship.collect()
        assert ship.trim(keep=2, high=10) == 0  # under the mark
        assert len(tracer.spans) == 8


# -- merge + stitch -----------------------------------------------------------

def shard_part(shard, epoch, spans, events=()):
    data = TraceData()
    data.meta = {
        "clock": "wall", "version": 1, "shard": shard,
        "epoch_unix": epoch,
    }
    data.spans = list(spans)
    data.events = list(events)
    return data


def span(sid, name, kind, trace_id=None, parent=None, start=0.0,
         end=1.0, **attrs):
    return Span(
        span_id=sid, trace_id=trace_id, parent_id=parent, name=name,
        kind=kind, node="n", start=start, end=end, status="ok",
        attrs=attrs,
    )


class TestMergeTraces:
    def test_rekeys_ids_and_aligns_epochs(self):
        from repro.telemetry.cluster import merge_traces

        # Both shards used span ids 1/2; s1 started 10s later.
        a = shard_part("s0", 1000.0, [
            span(1, "task", TASK, trace_id="task:t1", start=0.0, end=5.0),
            span(2, "hop", SERVICE, trace_id="task:t1", parent=1,
                 start=1.0, end=2.0),
        ])
        b = shard_part("s1", 1010.0, [
            span(1, "other", TASK, trace_id="task:t2", start=0.0,
                 end=1.0),
            span(2, "hop2", SERVICE, trace_id="task:t2", parent=1,
                 start=0.2, end=0.8),
        ])
        merged = merge_traces([a, b])
        assert merged.meta["merged_from"] == 2
        assert merged.meta["epoch_unix"] == 1000.0
        ids = [s.span_id for s in merged.spans]
        assert sorted(ids) == [1, 2, 3, 4]  # one namespace, no dups
        by_name = {s.name: s for s in merged.spans}
        # s1's timestamps shifted onto s0's axis.
        assert by_name["other"].start == pytest.approx(10.0)
        assert by_name["hop2"].start == pytest.approx(10.2)
        # Parent links survived the re-key, per shard.
        assert by_name["hop"].parent_id == by_name["task"].span_id
        assert by_name["hop2"].parent_id == by_name["other"].span_id
        assert by_name["hop"].attrs["shard"] == "s0"
        assert by_name["hop2"].attrs["shard"] == "s1"

    def test_stitches_cross_shard_orphans_under_task_span(self):
        from repro.telemetry.cluster import (
            cross_shard_summary,
            merge_traces,
        )

        # Task admitted on s0; a service hop + message executed on s1
        # arrive parentless (their parent lived in another process).
        a = shard_part("s0", 1000.0, [
            span(1, "task", TASK, trace_id="task:t1", start=0.0,
                 end=5.0),
        ])
        b = shard_part("s1", 1000.0, [
            span(7, "hop", SERVICE, trace_id="task:t1", start=1.0,
                 end=2.0),
            span(8, "msg", MESSAGE, trace_id="task:t1", start=0.5,
                 end=0.6),
        ])
        merged = merge_traces([a, b])
        assert merged.meta["stitched_spans"] == 2
        task = next(s for s in merged.spans if s.kind == TASK)
        for s in merged.spans:
            if s is task:
                continue
            assert s.parent_id == task.span_id
            assert s.attrs.get("stitched") is True
        summary = cross_shard_summary(merged)
        assert summary["tasks"] == 1
        assert summary["cross_shard_tasks"] == 1
        assert summary["connected_tasks"] == 1
        assert summary["orphan_spans"] == 0

    def test_rootless_trace_is_not_connected(self):
        from repro.telemetry.cluster import (
            cross_shard_summary,
            merge_traces,
        )

        # No task span anywhere: nothing to stitch under, and the
        # summary must not claim connectivity.
        b = shard_part("s1", 1000.0, [
            span(7, "hop", SERVICE, trace_id="task:t1", start=1.0,
                 end=2.0),
        ])
        merged = merge_traces([b])
        summary = cross_shard_summary(merged)
        assert summary["tasks"] == 1
        assert summary["connected_tasks"] == 0

    def test_unstitched_merge_reports_orphans(self):
        from repro.telemetry.cluster import (
            cross_shard_summary,
            merge_traces,
        )

        a = shard_part("s0", 1000.0, [
            span(1, "task", TASK, trace_id="task:t1", start=0.0,
                 end=5.0),
        ])
        b = shard_part("s1", 1000.0, [
            span(7, "hop", SERVICE, trace_id="task:t1", start=1.0,
                 end=2.0),
        ])
        merged = merge_traces([a, b], stitch=False)
        summary = cross_shard_summary(merged)
        assert summary["orphan_spans"] == 1
        assert summary["connected_tasks"] == 0

    def test_events_and_series_carry_shard_provenance(self):
        from repro.telemetry.cluster import merge_traces

        a = shard_part(
            "s0", 1000.0,
            [span(1, "task", TASK, trace_id="task:t1")],
            [TraceEvent(time=1.0, name="ev", node="n",
                        trace_id="task:t1", span_id=1)],
        )
        a.series = [{"name": "repro_load_mean", "labels": {},
                     "t": [1.0], "v": [0.5]}]
        merged = merge_traces([a])
        assert merged.events[0].attrs["shard"] == "s0"
        assert merged.events[0].span_id == merged.spans[0].span_id
        assert merged.series[0]["labels"]["shard"] == "s0"

    def test_write_trace_data_roundtrips(self, tmp_path):
        from repro.telemetry.cluster import merge_traces, write_trace_data

        a = shard_part("s0", 1000.0, [
            span(1, "task", TASK, trace_id="task:t1", start=0.0,
                 end=5.0),
            span(2, "hop", SERVICE, trace_id="task:t1", parent=1,
                 start=1.0, end=2.0),
        ])
        merged = merge_traces([a])
        dest = tmp_path / "cluster.jsonl"
        n = write_trace_data(dest, merged)
        assert n == 3  # meta + 2 spans
        back = read_jsonl(dest)
        assert back.meta["merged_from"] == 1
        assert [s.name for s in back.spans] == ["task", "hop"]
        assert back.spans[1].parent_id == back.spans[0].span_id


# -- folded profiles ----------------------------------------------------------

class TestFolded:
    def test_parse_read_write_roundtrip(self, tmp_path):
        from repro.profiling.folded import (
            parse_folded,
            read_folded,
            write_folded,
        )

        text = "a;b 10\na;c 3\n# comment\n\na;b 2\n"
        counts = parse_folded(text)
        assert counts == {"a;b": 12.0, "a;c": 3.0}
        path = tmp_path / "p.folded"
        write_folded(path, counts)
        assert read_folded(path) == {"a;b": 12.0, "a;c": 3.0}
        # Hottest first in the artifact.
        assert (path.read_text().splitlines()[0]) == "a;b 12"

    def test_merge_sums_across_shards(self):
        from repro.profiling.folded import merge_folded

        merged = merge_folded([
            {"a;b": 5.0, "a;c": 1.0},
            {"a;b": 2.0, "a;d": 4.0},
        ])
        assert merged == {"a;b": 7.0, "a;c": 1.0, "a;d": 4.0}

    def test_diff_names_the_injected_hot_stack(self):
        from repro.profiling.folded import diff_folded, format_diff

        base = {"main;work": 90.0, "main;idle": 10.0}
        # The injected hotspot eats 50% of the new profile.
        new = {"main;work": 45.0, "main;idle": 5.0,
               "main;hotspot;spin": 50.0}
        diff = diff_folded(base, new)
        regressed = [r["stack"] for r in diff["regressed"]]
        assert regressed[0] == "main;hotspot;spin"
        top = diff["regressed"][0]
        assert top["base_share"] == 0.0
        assert top["new_share"] == pytest.approx(0.5)
        report = format_diff(diff)
        assert "main;hotspot;spin" in report
        assert "regressed (grew):" in report
        assert "improved (shrank):" in report

    def test_diff_drops_noise_below_min_delta(self):
        from repro.profiling.folded import diff_folded

        base = {"a": 1000.0, "b": 10.0}
        new = {"a": 1001.0, "b": 10.0}
        diff = diff_folded(base, new, min_delta=0.01)
        assert diff["regressed"] == [] and diff["improved"] == []


# -- cluster health rollup ----------------------------------------------------

def health(n, total, peak, finished=0, missed=0, admitted=0,
           redirected=0, inflight=0):
    return {
        "loads": {"n": n, "sum": total, "max": peak},
        "finished": {"normal": finished},
        "missed": {"normal": missed},
        "rm": {"admitted": admitted, "rejected": 0,
               "redirected_out": redirected},
        "inflight": inflight,
    }


class TestClusterHealth:
    def test_folds_shard_payloads_into_cluster_series(self):
        from repro.runtime.observe import ClusterHealth

        ch = ClusterHealth()
        ch.ingest("s0", health(4, 2.0, 0.9, finished=30, missed=3))
        ch.ingest("s1", health(4, 1.0, 0.5, finished=10, missed=1))
        ch.tick(now=1.0)
        s = ch.sampler
        # Mean over the merged population: 3.0 / 8 peers.
        assert s.series("repro_load_mean", scope="cluster").last \
            == pytest.approx(0.375)
        # Global peak over merged mean.
        assert s.series("repro_load_imbalance", scope="cluster").last \
            == pytest.approx(0.9 / 0.375)
        # Miss ratio over summed counters: 4 / 40.
        assert s.series(
            "repro_sched_miss_ratio", qos="normal", scope="cluster"
        ).last == pytest.approx(0.1)
        # Per-shard provenance series exist too.
        assert s.series("repro_shard_load_max", shard="s0").last \
            == pytest.approx(0.9)
        assert s.series("repro_shard_imbalance", shard="s1").last \
            == pytest.approx(0.5 / 0.25)

    def test_rm_rates_are_deltas_not_totals(self):
        from repro.runtime.observe import ClusterHealth

        ch = ClusterHealth()
        ch.ingest("s0", health(1, 0.5, 0.5, admitted=10))
        ch.tick(now=0.0)
        ch.ingest("s0", health(1, 0.5, 0.5, admitted=30))
        ch.tick(now=10.0)
        assert ch.sampler.series(
            "repro_rm_admission_rate", scope="cluster"
        ).last == pytest.approx(2.0)

    def test_maybe_tick_is_rate_limited(self):
        from repro.runtime.observe import ClusterHealth

        ch = ClusterHealth(tick_interval=1.0)
        ch.ingest("s0", health(1, 0.5, 0.5))
        assert ch.maybe_tick(now=0.0)
        assert not ch.maybe_tick(now=0.5)
        assert ch.maybe_tick(now=1.5)
        assert ch.n_ticks == 2

    def test_slo_burn_over_cluster_series_triggers_recorder(self):
        from repro.runtime.observe import ClusterHealth

        triggers = []

        class FakeRecorder:
            def trigger(self, reason, now=None, key=None):
                triggers.append((reason, key))
                return "bundle-dir"

        ch = ClusterHealth(
            recorder=FakeRecorder(),
            slo_kwargs={
                "fast_window": 5.0, "slow_window": 50.0,
                "min_samples": 3, "warmup": 0.2,
            },
        )
        # Sustained 50% miss ratio on the merged population: burn
        # 0.5 / 0.01 budget = 50x >> the fast threshold.
        for i in range(12):
            ch.ingest("s0", health(2, 1.0, 0.6, finished=10 * (i + 1),
                                   missed=5 * (i + 1)))
            ch.tick(now=float(i))
        assert ch.monitor.alerts, "cluster burn never fired"
        alert = ch.monitor.alerts[0]
        assert alert.slo == "miss_rate"
        assert alert.dump == "bundle-dir"
        assert any(r == "slo_burn_fast" for r, _ in triggers)

    def test_prometheus_lines_roll_up_cluster_gauges(self):
        from repro.runtime.observe import ClusterHealth

        ch = ClusterHealth()
        ch.ingest("s0", health(4, 2.0, 0.9, finished=10, missed=1))
        ch.tick(now=1.0)
        text = "\n".join(ch.prometheus_lines())
        assert 'repro_cluster_load_mean{scope="cluster"} 0.5' in text
        assert "repro_cluster_load_imbalance" in text
        assert 'repro_cluster_miss_ratio{qos="normal"' in text
        assert "# TYPE repro_cluster_load_mean gauge" in text

    def test_records_are_jsonl_ready_series(self):
        from repro.runtime.observe import ClusterHealth

        ch = ClusterHealth()
        ch.ingest("s0", health(1, 0.5, 0.5))
        ch.tick(now=1.0)
        recs = ch.records()
        assert all({"name", "labels", "t", "v"} <= set(r) for r in recs)
        names = {r["name"] for r in recs}
        assert "repro_load_mean" in names
        assert "repro_shard_load_mean" in names


# -- correlated bundles -------------------------------------------------------

class TestBundleCoordinator:
    def make(self, tmp_path, cooldown=30.0):
        from repro.runtime.observe import BundleCoordinator

        fanouts = []
        clock = {"t": 0.0}
        coord = BundleCoordinator(
            str(tmp_path / "correlated"),
            fanout=lambda reason, n, exclude: fanouts.append(
                (reason, n, exclude)
            ),
            cooldown=cooldown,
            clock=lambda: clock["t"],
        )
        return coord, fanouts, clock

    def test_trigger_opens_bundle_and_fans_out(self, tmp_path):
        coord, fanouts, _ = self.make(tmp_path)
        bundle_dir = coord.trigger("soak_checkpoint")
        assert bundle_dir is not None and os.path.isdir(bundle_dir)
        assert os.path.basename(bundle_dir) == "000-soak_checkpoint"
        assert fanouts == [("soak_checkpoint", 0, None)]
        manifest = json.loads(
            (tmp_path / "correlated" / "000-soak_checkpoint"
             / "manifest.json").read_text()
        )
        assert manifest["reason"] == "soak_checkpoint"
        assert manifest["source"] == "supervisor"

    def test_shard_dump_adopts_source_and_excludes_it(self, tmp_path):
        coord, fanouts, _ = self.make(tmp_path)
        dump = tmp_path / "flight-000-rm_failover.jsonl"
        dump.write_text('{"type":"meta"}\n')
        bundle_dir = coord.on_shard_dump("s1", "rm_failover", str(dump))
        assert bundle_dir is not None
        # The triggering shard's dump landed without a snapshot round
        # trip; the fan-out skipped it.
        assert fanouts == [("rm_failover", 0, "s1")]
        assert (tmp_path / "correlated" / "000-rm_failover"
                / "s1.jsonl").exists()
        assert coord.bundles[0]["shards"] == {"s1": "s1.jsonl"}

    def test_snapshot_done_collects_peer_dumps(self, tmp_path):
        coord, _, _ = self.make(tmp_path)
        coord.trigger("slo_burn_fast")
        peer = tmp_path / "snap-s2.jsonl"
        peer.write_text('{"type":"meta"}\n')
        coord.on_snapshot_done("s2", "slo_burn_fast", 0, str(peer))
        bundle = coord.bundles[0]
        assert bundle["shards"]["s2"] == "s2.jsonl"
        manifest = json.loads(
            (tmp_path / "correlated" / "000-slo_burn_fast"
             / "manifest.json").read_text()
        )
        assert manifest["shards"] == {"s2": "s2.jsonl"}
        # Stale/unknown bundle ids are ignored, not crashes.
        coord.on_snapshot_done("s2", "slo_burn_fast", 99, str(peer))

    def test_cooldown_coalesces_repeat_triggers(self, tmp_path):
        coord, fanouts, clock = self.make(tmp_path, cooldown=10.0)
        assert coord.trigger("hot") is not None
        clock["t"] = 5.0
        assert coord.trigger("hot") is None
        assert coord.skipped == {"hot": 1}
        clock["t"] = 15.0
        assert coord.trigger("hot") is not None
        assert len(coord.bundles) == 2 and len(fanouts) == 2

    def test_record_summarises_for_result_documents(self, tmp_path):
        coord, _, _ = self.make(tmp_path)
        coord.trigger("a")
        rec = coord.record()
        assert rec[0]["reason"] == "a"
        assert rec[0]["source"] == "supervisor"
        assert rec[0]["shards"] == []


# -- GIL-handoff cost model ---------------------------------------------------

class TestGilCostModel:
    def test_estimate_within_bounds_and_cached(self):
        from repro.profiling.sampler import (
            _GIL_COST_BOUNDS,
            estimate_gil_handoff_cost,
        )

        per = estimate_gil_handoff_cost(phase_s=0.02)
        assert _GIL_COST_BOUNDS[0] <= per <= _GIL_COST_BOUNDS[1]
        # Cached process-wide: the second call is instant and equal.
        t0 = time.perf_counter()
        assert estimate_gil_handoff_cost() == per
        assert time.perf_counter() - t0 < 0.01

    def test_estimated_cost_includes_per_sample_tax(self):
        from repro.profiling.sampler import WallStackProfiler

        prof = WallStackProfiler(
            period=0.01, gil_cost_per_sample=100e-6
        )
        prof.n_samples = 50
        prof.self_time_s = 0.002
        assert prof.gil_cost_s == pytest.approx(50 * 100e-6)
        assert prof.estimated_cost_s == pytest.approx(0.002 + 0.005)

    def test_zeroed_model_restores_measured_cost_only(self):
        from repro.profiling.sampler import WallStackProfiler

        prof = WallStackProfiler(period=0.01, gil_cost_per_sample=0.0)
        prof.n_samples = 1000
        prof.self_time_s = 0.003
        assert prof.estimated_cost_s == pytest.approx(0.003)

    def test_budgeter_meters_the_estimated_cost(self):
        from repro.profiling import profile_wall

        sess = profile_wall(period=0.01, start=False)
        sess.profiler.gil_cost_per_sample = 200e-6
        sess.profiler.n_samples = 100
        sess.profiler.self_time_s = 0.001
        src = dict(sess.budgeter._sources)["profiler"]
        assert src() == pytest.approx(0.001 + 0.02)
        rec = sess.record(top_n=1)
        assert rec["gil_per_sample_s"] == pytest.approx(200e-6)
        assert rec["gil_seconds"] == pytest.approx(0.02)
        assert rec["estimated_seconds"] == pytest.approx(0.021)

    def test_live_profiler_stays_under_budget_with_gil_model(self):
        """The budget acceptance check at unit scale: a short idle-ish
        run's estimated cost (measured + modelled GIL tax) stays well
        under 5% of wall time."""
        from repro.profiling import profile_wall

        sess = profile_wall(period=0.02)
        t0 = time.perf_counter()
        deadline = t0 + 0.5
        x = 0
        while time.perf_counter() < deadline:
            x += 1
        sess.stop()
        wall = time.perf_counter() - t0
        assert sess.profiler.agg.n_samples > 0
        assert sess.profiler.estimated_cost_s / wall < 0.05
        assert sess.profiler.estimated_cost_s \
            > sess.profiler.self_time_s  # the model added a real tax


# -- CLI surfaces -------------------------------------------------------------

class TestCli:
    def write_part(self, tmp_path, shard, epoch, spans):
        from repro.telemetry.cluster import write_trace_data

        part = shard_part(shard, epoch, spans)
        path = tmp_path / f"trace-{shard}-0.jsonl"
        write_trace_data(path, part)
        return str(path)

    def test_trace_merge_subcommand(self, tmp_path, capsys):
        from repro.telemetry.cli import main

        a = self.write_part(tmp_path, "s0", 1000.0, [
            span(1, "task", TASK, trace_id="task:t1", start=0.0,
                 end=5.0),
        ])
        b = self.write_part(tmp_path, "s1", 1002.0, [
            span(1, "hop", SERVICE, trace_id="task:t1", start=1.0,
                 end=2.0),
        ])
        out = tmp_path / "cluster.jsonl"
        assert main(["merge", a, b, "-o", str(out)]) == 0
        text = capsys.readouterr().out
        assert "merged 2 shard stream(s)" in text
        assert "1 cross-shard" in text
        data = read_jsonl(out)
        assert data.meta["stitched_spans"] == 1
        hop = next(s for s in data.spans if s.name == "hop")
        assert hop.start == pytest.approx(3.0)  # epoch-aligned

    def test_trace_merge_json_summary(self, tmp_path, capsys):
        from repro.telemetry.cli import main

        a = self.write_part(tmp_path, "s0", 1000.0, [
            span(1, "task", TASK, trace_id="task:t1"),
        ])
        assert main(["merge", a, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["tasks"] == 1 and doc["orphan_spans"] == 0

    def test_diff_profile_subcommand(self, tmp_path, capsys):
        from repro.profiling.folded import write_folded
        from repro.telemetry.cli import main

        base = tmp_path / "base.folded"
        new = tmp_path / "new.folded"
        write_folded(base, {"main;work": 90, "main;idle": 10})
        write_folded(new, {"main;work": 50, "main;hotspot": 50})
        assert main(["diff-profile", str(base), str(new)]) == 0
        text = capsys.readouterr().out
        assert "main;hotspot" in text and "regressed" in text

    def test_diff_profile_json(self, tmp_path, capsys):
        from repro.profiling.folded import write_folded
        from repro.telemetry.cli import main

        base = tmp_path / "base.folded"
        new = tmp_path / "new.folded"
        write_folded(base, {"a": 10})
        write_folded(new, {"b": 10})
        assert main(["diff-profile", str(base), str(new),
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["regressed"][0]["stack"] == "b"

    def test_diff_profile_missing_file_errors(self, tmp_path, capsys):
        from repro.telemetry.cli import main

        assert main(["diff-profile", str(tmp_path / "nope.folded"),
                     str(tmp_path / "nope2.folded")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_plain_report_path_still_works(self, tmp_path, capsys):
        from repro.telemetry.cli import main
        from repro.telemetry.cluster import write_trace_data

        part = shard_part("s0", 1000.0, [
            span(1, "task", TASK, trace_id="task:t1", start=0.0,
                 end=5.0),
        ])
        path = tmp_path / "out.jsonl"
        write_trace_data(path, part)
        assert main([str(path)]) == 0
        assert capsys.readouterr().out

    def test_bench_profile_flags_require_profile(self, capsys):
        from repro.benchmarking.cli import main

        with pytest.raises(SystemExit):
            main(["--quick", "--profile-baseline", "x.folded"])
        assert "--profile" in capsys.readouterr().err


# -- bench harness folded capture ---------------------------------------------

def test_run_benchmark_captures_folded_off_report():
    from repro.benchmarking import harness
    from repro.profiling.folded import parse_folded

    def busy():
        deadline = time.perf_counter() + 0.25
        x = 0
        while time.perf_counter() < deadline:
            x += 1
        return {"events": x}

    rec = harness.run_benchmark(
        "busy", busy, warmup=0, repeat=1, profile=True
    )
    assert rec.profile is not None and rec.profile["samples"] > 0
    assert rec.folded and parse_folded(rec.folded)
    # The raw stacks stay out of the JSON report document.
    assert "folded" not in rec.as_dict()


# -- dash cluster panel -------------------------------------------------------

def cluster_trace():
    data = TraceData()
    data.meta = {"clock": "wall", "merged_from": 2}
    data.series = [
        {"name": "repro_sched_miss_ratio",
         "labels": {"qos": "normal", "scope": "cluster"},
         "t": [1.0, 2.0], "v": [0.05, 0.12]},
        {"name": "repro_load_imbalance",
         "labels": {"scope": "cluster"},
         "t": [1.0, 2.0], "v": [1.5, 2.5]},
        {"name": "repro_shard_imbalance", "labels": {"shard": "s0"},
         "t": [1.0], "v": [1.2]},
        {"name": "repro_shard_imbalance", "labels": {"shard": "s1"},
         "t": [1.0], "v": [2.7]},
        {"name": "repro_slo_burn_rate",
         "labels": {"slo": "miss_rate", "window": "fast"},
         "t": [2.0], "v": [12.0]},
    ]
    return data


class TestDashClusterPanel:
    def test_summary_extracts_rollup(self):
        from repro.telemetry.dash import cluster_summary

        doc = cluster_summary(cluster_trace())
        assert doc["shards"] == ["s0", "s1"]
        assert doc["miss_ratio"]["normal"] == pytest.approx(0.12)
        assert doc["load_imbalance"] == pytest.approx(2.5)
        assert doc["shard_imbalance"] == {"s0": 1.2, "s1": 2.7}
        assert doc["slo_burn"]["miss_rate/fast"] == pytest.approx(12.0)

    def test_rendered_panel_shows_spread_and_burn_state(self):
        from repro.telemetry.dash import render_report

        text = render_report(cluster_trace())
        assert "cluster" in text
        assert "miss_ratio[normal]=12.0%" in text
        assert "spread 1.50" in text
        assert "BURNING" in text

    def test_single_process_trace_has_no_panel(self):
        from repro.telemetry.dash import cluster_summary, render_report

        data = TraceData()
        data.meta = {"clock": "wall"}
        data.series = [
            {"name": "repro_sched_miss_ratio",
             "labels": {"qos": "normal"}, "t": [1.0], "v": [0.0]},
        ]
        assert cluster_summary(data) is None
        assert "BURNING" not in render_report(data)

    def test_report_dict_includes_cluster_doc(self):
        from repro.telemetry.dash import report_dict

        doc = report_dict(cluster_trace())
        assert doc["cluster"]["shards"] == ["s0", "s1"]

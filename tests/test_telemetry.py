"""The unified telemetry layer: tracer, metrics, export, trace_id plumbing.

Covers the three pillars in isolation (span trees, registry semantics,
JSONL round-trips), the ``trace_id`` threading through messages and the
wire codec, the analysis/CLI surface, and — the one guarantee the whole
design leans on — that disabled telemetry stays cheap.
"""

from __future__ import annotations

import io
import json
import time

import pytest

from repro import telemetry
from repro.net.message import (
    Message,
    next_trace_id,
    reset_message_ids,
    trace_id_for_payload,
)
from repro.net.network import Network, NetworkStats
from repro.net.node import NetNode
from repro.runtime.codec import decode_frame, encode_message
from repro.sim.core import Environment
from repro.telemetry import MetricsRegistry, Telemetry
from repro.telemetry.analyze import (
    format_report,
    message_kind_counts,
    reliability_summary,
    task_traces,
)
from repro.telemetry.cli import main as trace_cli_main
from repro.telemetry.export import read_jsonl, write_jsonl


@pytest.fixture(autouse=True)
def _isolate_global_handle():
    """Every test starts and ends with the no-op default installed."""
    telemetry.deactivate()
    yield
    telemetry.deactivate()


def make_sim_telemetry():
    env = Environment()
    return env, Telemetry.sim(env)


# -- tracer ------------------------------------------------------------------

class TestTracer:
    def test_span_records_kind_trace_and_duration(self):
        env, tel = make_sim_telemetry()
        span = tel.tracer.start_span(
            "t1", kind=telemetry.TASK, node="rm0", trace_id="task:t1"
        )
        env.run(until=2.5)
        tel.tracer.end_span(span, status="completed")
        assert span.duration == pytest.approx(2.5)
        assert span.status == "completed"
        assert tel.tracer.spans_of_kind(telemetry.TASK) == [span]
        assert tel.tracer.trace("task:t1") == [span]

    def test_keyed_spans_close_without_holding_the_object(self):
        _, tel = make_sim_telemetry()
        tel.tracer.start_span(
            "t1", kind=telemetry.TASK, key="task:t1", trace_id="task:t1"
        )
        assert tel.tracer.open_span("task:t1") is not None
        closed = tel.tracer.end_span_key("task:t1", status="rejected")
        assert closed is not None and closed.status == "rejected"
        assert tel.tracer.open_span("task:t1") is None
        assert tel.tracer.end_span_key("task:t1") is None  # already gone

    def test_parent_links_form_a_tree(self):
        _, tel = make_sim_telemetry()
        parent = tel.tracer.start_span(
            "t1", kind=telemetry.TASK, key="task:t1", trace_id="task:t1"
        )
        child = tel.tracer.start_span(
            "svc", kind=telemetry.SERVICE, trace_id="task:t1",
            parent_id=tel.tracer.open_span("task:t1").span_id,
        )
        assert child.parent_id == parent.span_id

    def test_finish_open_closes_leftovers(self):
        _, tel = make_sim_telemetry()
        tel.tracer.start_span("t1", kind=telemetry.TASK, key="task:t1")
        assert tel.tracer.finish_open() == 1
        assert tel.tracer.spans[-1].status == "unfinished"

    def test_noop_tracer_is_inert(self):
        noop = telemetry.NOOP.tracer
        span = noop.start_span("x", kind=telemetry.TASK, key="k")
        noop.end_span(span)
        noop.event("e")
        assert len(noop) == 0 and noop.spans == []


# -- metrics -----------------------------------------------------------------

class TestMetrics:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("msgs_total").inc()
        reg.counter("msgs_total").inc(2)
        reg.gauge("depth", peer="P1").set(7)
        h = reg.histogram("lat_seconds")
        for v in (0.004, 0.04, 0.4):
            h.observe(v)
        assert reg.value("msgs_total") == 3
        assert reg.value("depth", peer="P1") == 7
        assert h.count == 3 and h.mean == pytest.approx(0.148)

    def test_labels_create_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("c", peer="P1").inc()
        reg.counter("c", peer="P2").inc(4)
        assert reg.value("c", peer="P1") == 1
        assert reg.total("c") == 5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        reg.counter("sent_total", help="messages sent").inc(5)
        reg.histogram("lat_seconds", buckets=[0.1, 1.0]).observe(0.05)
        text = reg.to_prometheus_text()
        assert "# TYPE sent_total counter" in text
        assert "sent_total 5" in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_count 1" in text


# -- JSONL export ------------------------------------------------------------

class TestExport:
    def build(self):
        env, tel = make_sim_telemetry()
        root = tel.tracer.start_span(
            "t1", kind=telemetry.TASK, node="rm0", trace_id="task:t1",
            key="task:t1",
        )
        env.run(until=1.0)
        tel.tracer.start_span(
            "svcA", kind=telemetry.SERVICE, node="p1", trace_id="task:t1",
            parent_id=root.span_id, key="hop",
        )
        env.run(until=2.0)
        tel.tracer.end_span_key("hop")
        tel.tracer.end_span_key("task:t1", status="completed")
        tel.tracer.event("rm.elected", node="boot", rm="rm0")
        tel.metrics.counter("repro_net_messages_sent_total").inc(3)
        return tel

    def test_span_tree_round_trips_through_jsonl(self, tmp_path):
        tel = self.build()
        path = tmp_path / "trace.jsonl"
        write_jsonl(path, tel.tracer, tel.metrics, meta={"seed": 7})
        data = read_jsonl(path)
        assert data.clock == "sim"
        assert data.meta["seed"] == 7
        assert [s.as_dict() for s in data.spans] == [
            s.as_dict() for s in sorted(
                tel.tracer.spans, key=lambda s: (s.start, s.span_id)
            )
        ]
        by_id = {s.span_id: s for s in data.spans}
        child = next(s for s in data.spans if s.kind == telemetry.SERVICE)
        assert by_id[child.parent_id].kind == telemetry.TASK
        assert data.events[0].name == "rm.elected"
        assert any(
            m["name"] == "repro_net_messages_sent_total"
            and m["value"] == 3
            for m in data.metrics
        )

    def test_reader_tolerates_unknown_record_types(self, tmp_path):
        tel = self.build()
        path = tmp_path / "trace.jsonl"
        write_jsonl(path, tel.tracer, tel.metrics)
        with open(path, "a", encoding="utf-8") as fp:
            fp.write(json.dumps({"type": "future-thing", "x": 1}) + "\n")
        data = read_jsonl(path)
        assert len(data.spans) == 2

    def test_write_accepts_file_object(self):
        tel = self.build()
        buf = io.StringIO()
        write_jsonl(buf, tel.tracer, tel.metrics)
        first = json.loads(buf.getvalue().splitlines()[0])
        assert first["type"] == "meta" and first["clock"] == "sim"


# -- trace_id threading ------------------------------------------------------

class TestTraceId:
    def setup_method(self):
        reset_message_ids()

    def test_task_payloads_derive_the_task_trace(self):
        assert trace_id_for_payload({"task_id": "t9"}) == "task:t9"

        class Order:
            task_id = "t3"

        assert trace_id_for_payload({"order": Order()}) == "task:t3"
        assert trace_id_for_payload({"x": 1}) is None

    def test_ensure_trace_id_is_deterministic_after_reset(self):
        a = Message(kind="ping", src="a", dst="b").ensure_trace_id()
        reset_message_ids()
        b = Message(kind="ping", src="a", dst="b").ensure_trace_id()
        assert a == b

    def test_ensure_trace_id_prefers_task_payload_and_sticks(self):
        msg = Message(kind="step_done", src="a", dst="b",
                      payload={"task_id": "t5"})
        assert msg.ensure_trace_id() == "task:t5"
        assert msg.ensure_trace_id() == "task:t5"  # idempotent

    def test_reset_rewinds_the_trace_counter(self):
        first = next_trace_id()
        reset_message_ids()
        assert next_trace_id() == first

    def test_network_send_stamps_and_reply_inherits(self):
        env = Environment()
        net = Network(env)
        a = NetNode(env, net, "a")
        b = NetNode(env, net, "b")

        got = {}
        b.on("ping", lambda m: got.setdefault("req", m))
        a.on("pong", lambda m: got.setdefault("rep", m))
        a.send("ping", "b", {"n": 1})
        env.run(until=1.0)
        b.reply(got["req"], "pong", {"n": 2})
        env.run(until=2.0)
        assert got["req"].trace_id is not None
        assert got["rep"].trace_id == got["req"].trace_id

    def test_task_payload_reply_joins_the_task_trace(self):
        env = Environment()
        net = Network(env)
        a = NetNode(env, net, "a")
        b = NetNode(env, net, "b")
        got = {}
        b.on("ask", lambda m: got.setdefault("req", m))
        a.on("task_ack", lambda m: got.setdefault("rep", m))
        a.send("ask", "b")
        env.run(until=1.0)
        b.reply(got["req"], "task_ack", {"task_id": "t7"})
        env.run(until=2.0)
        assert got["rep"].trace_id == "task:t7"

    def test_codec_carries_trace_id(self):
        msg = Message(kind="ping", src="a", dst="b", trace_id="task:t1")
        out = decode_frame(encode_message(msg))["msg"]
        assert out.trace_id == "task:t1"

    def test_codec_tolerates_frames_without_trace_id(self):
        # A frame from a pre-trace encoder: same version, no field.
        frame = json.loads(
            encode_message(Message(kind="ping", src="a", dst="b"))
        )
        frame["msg"].pop("trace_id")
        out = decode_frame(json.dumps(frame).encode())["msg"]
        assert out.trace_id is None


# -- stats schema unification ------------------------------------------------

class TestStatsSchema:
    def test_summary_includes_reliability_counters(self):
        summary = NetworkStats().summary()
        for key in ("retransmits", "duplicates", "malformed", "acks_sent"):
            assert summary[key] == 0


# -- instrumented simulator --------------------------------------------------

class TestInstrumentedSim:
    def test_network_spans_and_counters(self):
        env = Environment()
        with telemetry.session(Telemetry.sim(env)) as tel:
            net = Network(env)
            a = NetNode(env, net, "a")
            NetNode(env, net, "b")
            a.send("ping", "b", {"task_id": "t1"})
            a.send("ping", "nowhere")  # unknown destination: dropped
            env.run(until=1.0)
        msg_spans = tel.tracer.spans_of_kind(telemetry.MESSAGE)
        assert {s.status for s in msg_spans} == {"ok", "dropped"}
        ok = next(s for s in msg_spans if s.status == "ok")
        assert ok.trace_id == "task:t1" and ok.node == "a"
        assert tel.metrics.value("repro_net_messages_sent_total") == 2
        assert tel.metrics.value("repro_net_messages_delivered_total") == 1
        assert tel.metrics.value("repro_net_messages_dropped_total") == 1

    def test_session_restores_previous_handle(self):
        assert telemetry.current() is telemetry.NOOP
        with telemetry.session(Telemetry.wall()):
            assert telemetry.current() is not telemetry.NOOP
        assert telemetry.current() is telemetry.NOOP


# -- analysis + CLI ----------------------------------------------------------

def _sample_trace(tmp_path):
    env, tel = make_sim_telemetry()
    root = tel.tracer.start_span(
        "t1", kind=telemetry.TASK, node="rm0", trace_id="task:t1",
        key="task:t1",
    )
    env.run(until=0.5)
    for i, peer in enumerate(("p1", "p2")):
        s = tel.tracer.start_span(
            f"svc{i}", kind=telemetry.SERVICE, node=peer,
            trace_id="task:t1", parent_id=root.span_id, step_index=i,
        )
        env.run(until=env.now + 1.0)
        tel.tracer.end_span(s)
    tel.tracer.start_span(
        "stream", kind=telemetry.MESSAGE, node="p1", trace_id="task:t1",
        key="m", dst="p2",
    )
    tel.tracer.end_span_key("m")
    tel.tracer.end_span_key("task:t1", status="completed")
    tel.metrics.counter("net_messages_sent_total").inc(4)  # pre-rename trace
    tel.metrics.counter("net_messages_delivered_total").inc(4)
    path = tmp_path / "t.jsonl"
    write_jsonl(path, tel.tracer, tel.metrics)
    return path


class TestAnalysis:
    def test_critical_path_matches_hops(self, tmp_path):
        data = read_jsonl(_sample_trace(tmp_path))
        traces = task_traces(data)
        assert len(traces) == 1
        trace = traces[0]
        assert trace.status == "completed"
        assert len(trace.hops) == 2
        path = trace.critical_path()
        assert [s.kind for s in path] == [
            telemetry.TASK, telemetry.SERVICE, telemetry.SERVICE
        ]
        assert trace.nodes[:3] == ["rm0", "p1", "p2"]

    def test_reliability_and_kind_summaries(self, tmp_path):
        data = read_jsonl(_sample_trace(tmp_path))
        assert message_kind_counts(data) == {"stream": 1}
        rel = reliability_summary(data)
        assert rel["sent"] == 4 and rel["delivered"] == 4

    def test_format_report_renders(self, tmp_path):
        data = read_jsonl(_sample_trace(tmp_path))
        text = format_report(data)
        assert "critical path" in text and "task t1: completed" in text

    def test_cli_text_and_json(self, tmp_path, capsys):
        path = _sample_trace(tmp_path)
        assert trace_cli_main([str(path)]) == 0
        assert "critical path" in capsys.readouterr().out
        assert trace_cli_main([str(path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["tasks"][0]["hops"] == 2

    def test_cli_missing_file(self, tmp_path, capsys):
        assert trace_cli_main([str(tmp_path / "nope.jsonl")]) == 2


# -- live e2e ----------------------------------------------------------------

@pytest.mark.integration
class TestLiveTracing:
    """One task over real UDP sockets leaves a linked causal trace."""

    @pytest.fixture(scope="class")
    def live_trace(self):
        import asyncio

        from repro.runtime.cluster import LiveCluster, LiveClusterConfig

        tel = telemetry.activate(Telemetry.wall())
        out = {}

        async def main():
            config = LiveClusterConfig(object_duration_s=3.0)
            async with LiveCluster(config) as cluster:
                out["rm_id"] = cluster.rm_node.node_id
                ack = await cluster.submit("P4", deadline=20.0, timeout=15.0)
                await cluster.wait_task_event(
                    ack["task_id"], "completed", timeout=15.0
                )
                task = cluster.task(ack["task_id"])
                out["task_id"] = task.task_id
                out["allocation"] = list(task.allocation)
                out["aggregate"] = cluster.aggregate_summary()

        try:
            asyncio.run(main())
            tel.tracer.finish_open()
            out["tel"] = tel
            yield out
        finally:
            telemetry.deactivate()

    def test_task_span_lives_on_the_rm(self, live_trace):
        tel = live_trace["tel"]
        trace_id = f"task:{live_trace['task_id']}"
        task_spans = [
            s for s in tel.tracer.spans_of_kind(telemetry.TASK)
            if s.trace_id == trace_id
        ]
        assert len(task_spans) == 1
        span = task_spans[0]
        assert span.node == live_trace["rm_id"]
        assert span.status == "completed"
        assert span.duration is not None and span.duration > 0

    def test_service_spans_match_the_allocation_hops(self, live_trace):
        tel = live_trace["tel"]
        trace_id = f"task:{live_trace['task_id']}"
        hops = [
            s for s in tel.tracer.spans_of_kind(telemetry.SERVICE)
            if s.trace_id == trace_id
        ]
        assert len(hops) == len(live_trace["allocation"])
        # Every hop executed on the peer the allocation placed it on,
        # under the RM's task span.
        task_span = next(
            s for s in tel.tracer.spans_of_kind(telemetry.TASK)
            if s.trace_id == trace_id
        )
        hops.sort(key=lambda s: s.attrs["step_index"])
        for hop, (service_id, peer_id) in zip(
            hops, live_trace["allocation"]
        ):
            assert hop.name == service_id
            assert hop.node == peer_id
            assert hop.parent_id == task_span.span_id
            assert hop.status == "ok"

    def test_trace_links_bootstrap_rm_and_peers(self, live_trace):
        tel = live_trace["tel"]
        trace_id = f"task:{live_trace['task_id']}"
        msg_nodes = {
            s.node for s in tel.tracer.spans_of_kind(telemetry.MESSAGE)
            if s.trace_id == trace_id
        }
        assert len(msg_nodes) >= 2  # request from origin, orders from RM
        assert any(
            ev.name == "rm.elected" for ev in tel.tracer.events
        )

    def test_exported_live_trace_reports_a_critical_path(
        self, live_trace, tmp_path
    ):
        tel = live_trace["tel"]
        path = tmp_path / "live.jsonl"
        write_jsonl(
            path, tel.tracer, tel.metrics,
            meta={"aggregate": live_trace["aggregate"]},
        )
        data = read_jsonl(path)
        assert data.clock == "wall"
        traces = [
            t for t in task_traces(data)
            if t.task_id == live_trace["task_id"]
        ]
        assert len(traces) == 1
        assert len(traces[0].hops) == len(live_trace["allocation"])
        rel = reliability_summary(data)
        assert rel["sent"] > 0 and rel["acks_sent"] > 0


# -- disabled overhead -------------------------------------------------------

class TestDisabledOverhead:
    def test_noop_guard_is_cheap(self):
        """The call-site pattern must cost ~a dict read and a branch.

        A generous ceiling (well above any realistic interpreter) so
        the test only fails when the disabled path grows real work —
        not under CI noise.
        """
        n = 200_000
        start = time.perf_counter()
        for _ in range(n):
            tel = telemetry.current()
            if tel.enabled:  # pragma: no cover - never taken
                tel.tracer.event("x")
        elapsed = time.perf_counter() - start
        assert elapsed / n < 5e-6, f"{elapsed / n:.2e}s per guarded call"

    def test_sampler_call_sites_stay_cheap_when_disabled(self):
        """The health-pipeline instrumentation shape: the always-on
        per-class accounting (a dict bump) plus the guarded metric and
        trigger-event emission.  With telemetry disabled this must stay
        in the same cost class as the bare guard."""
        n = 200_000
        completed_by_class: dict = {}
        start = time.perf_counter()
        for _ in range(n):
            cls = "normal"
            completed_by_class[cls] = completed_by_class.get(cls, 0) + 1
            tel = telemetry.current()
            if tel.enabled:  # pragma: no cover - never taken
                tel.metrics.counter(
                    "repro_sched_jobs_completed_total", qos=cls
                ).inc()
                tel.tracer.event("job.missed", node="p0", qos=cls)
        elapsed = time.perf_counter() - start
        assert elapsed / n < 5e-6, f"{elapsed / n:.2e}s per guarded call"
        assert completed_by_class["normal"] == n

"""Baseline selection rules."""

import numpy as np
import pytest

from repro.baselines import (
    LeastLoadedSelector,
    RandomSelector,
    RoundRobinSelector,
    make_allocator,
    make_selector,
    select_first,
)
from repro.core.allocation import Candidate, select_max_fairness
from repro.graphs.resource_graph import ServiceEdge


def cand(peers, fairness=0.5, est=1.0, max_util=0.5):
    path = [
        ServiceEdge(src=i, dst=i + 1, service_id=f"s{i}", peer_id=p,
                    work=1.0)
        for i, p in enumerate(peers)
    ]
    return Candidate(path, fairness, est, {p: 1.0 for p in peers},
                     max_post_util=max_util)


class TestSelectors:
    def test_select_first(self):
        a, b = cand(["p1"]), cand(["p2"])
        assert select_first([a, b]) is a

    def test_select_max_fairness(self):
        a, b = cand(["p1"], fairness=0.3), cand(["p2"], fairness=0.9)
        assert select_max_fairness([a, b]) is b

    def test_random_is_seed_deterministic(self):
        cands = [cand([f"p{i}"]) for i in range(10)]
        s1 = RandomSelector(np.random.default_rng(5))
        s2 = RandomSelector(np.random.default_rng(5))
        assert [s1(cands) for _ in range(5)] == [s2(cands) for _ in range(5)]

    def test_random_covers_candidates(self):
        cands = [cand([f"p{i}"]) for i in range(3)]
        s = RandomSelector(np.random.default_rng(0))
        seen = {id(s(cands)) for _ in range(60)}
        assert len(seen) == 3

    def test_least_loaded_picks_min_max_util(self):
        a = cand(["p1"], max_util=0.9)
        b = cand(["p2"], max_util=0.2)
        assert LeastLoadedSelector()([a, b]) is b

    def test_least_loaded_ties_break_on_est_time(self):
        a = cand(["p1"], max_util=0.5, est=5.0)
        b = cand(["p2"], max_util=0.5, est=1.0)
        assert LeastLoadedSelector()([a, b]) is b

    def test_round_robin_rotates(self):
        sel = RoundRobinSelector()
        a, b = cand(["p1"]), cand(["p2"])
        first = sel([a, b])
        second = sel([a, b])
        assert {id(first), id(second)} == {id(a), id(b)}  # alternates

    def test_round_robin_prefers_unused_peer(self):
        sel = RoundRobinSelector()
        a = cand(["p1"])
        sel([a])  # p1 used once
        b = cand(["p2"])
        assert sel([a, b]) is b

    def test_candidate_peers_deduplicated(self):
        c = cand(["p1", "p1", "p2"])
        assert c.peers() == ["p1", "p2"]


class TestFactories:
    def test_make_selector_names(self):
        for name in ("fairness", "first", "random", "least_loaded",
                     "round_robin"):
            assert make_selector(name) is not None

    def test_make_selector_unknown(self):
        with pytest.raises(ValueError):
            make_selector("optimal-oracle")

    def test_make_allocator_wires_policy(self):
        alloc = make_allocator("first", visited_policy="exhaustive")
        assert alloc.selector is select_first
        assert alloc.visited_policy == "exhaustive"

"""Media formats, objects, and the transcoding cost model."""

import pytest

from repro.media import (
    MediaFormat,
    MediaObject,
    TranscoderSpec,
    TranscodingCostModel,
)
from repro.media.fig1 import (
    FIG1_CANDIDATE_PATHS,
    FIG1_EDGES,
    V1,
    V3,
    build_fig1_graph,
)
from repro.graphs import iter_paths


class TestMediaFormat:
    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError):
            MediaFormat("VP9", 640, 480, 100.0)

    def test_bad_resolution_rejected(self):
        with pytest.raises(ValueError):
            MediaFormat("MPEG-2", 0, 480, 100.0)

    def test_bad_bitrate_rejected(self):
        with pytest.raises(ValueError):
            MediaFormat("MPEG-2", 640, 480, 0.0)

    def test_pixel_rate(self):
        f = MediaFormat("MPEG-2", 100, 100, 64.0, fps=10.0)
        assert f.pixel_rate == 100 * 100 * 10

    def test_bytes_per_second(self):
        f = MediaFormat("MPEG-2", 640, 480, 8.0)  # 8 kbit/s = 1000 B/s
        assert f.bytes_per_second() == pytest.approx(1000.0)

    def test_label_and_str(self):
        f = MediaFormat("MPEG-4", 640, 480, 64.0)
        assert str(f) == "640x480/MPEG-4@64kbps"

    def test_hashable_and_ordered(self):
        a = MediaFormat("MPEG-2", 640, 480, 64.0)
        b = MediaFormat("MPEG-2", 640, 480, 64.0)
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1


class TestMediaObject:
    def test_size_from_bitrate_and_duration(self):
        obj = MediaObject("m", MediaFormat("MPEG-2", 640, 480, 8.0),
                          duration_s=10.0)
        assert obj.size_bytes == pytest.approx(10_000.0)

    def test_size_in_other_format(self):
        obj = MediaObject("m", V1, duration_s=10.0)
        assert obj.size_in(V3) == pytest.approx(
            V3.bytes_per_second() * 10.0
        )

    def test_hash_is_deterministic(self):
        a = MediaObject("m", V1)
        b = MediaObject("m", V1)
        assert a.content_hash == b.content_hash and len(a.content_hash) == 16

    def test_hash_differs_by_name(self):
        assert MediaObject("x", V1).content_hash != \
            MediaObject("y", V1).content_hash

    def test_bad_duration(self):
        with pytest.raises(ValueError):
            MediaObject("m", V1, duration_s=0.0)


class TestCostModel:
    def test_work_scales_with_duration(self):
        m = TranscodingCostModel()
        w1 = m.work(V1, V3, 10.0)
        w2 = m.work(V1, V3, 20.0)
        assert w2 == pytest.approx(2 * w1)

    def test_bigger_output_costs_more(self):
        m = TranscodingCostModel()
        small = MediaFormat("MPEG-4", 320, 240, 64.0)
        big = MediaFormat("MPEG-4", 800, 600, 64.0)
        src = MediaFormat("MPEG-2", 800, 600, 512.0)
        assert m.work(src, big, 60.0) > m.work(src, small, 60.0)

    def test_complex_codec_costs_more(self):
        m = TranscodingCostModel()
        src = MediaFormat("MPEG-2", 640, 480, 256.0)
        to_mpeg4 = MediaFormat("MPEG-4", 640, 480, 64.0)
        to_mjpeg = MediaFormat("MJPEG", 640, 480, 64.0)
        assert m.work(src, to_mpeg4, 60.0) > m.work(src, to_mjpeg, 60.0)

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            TranscodingCostModel().work(V1, V3, 0.0)

    def test_work_positive(self):
        assert TranscodingCostModel().work_per_second(V1, V3) > 0


class TestTranscoderSpec:
    def test_same_format_rejected(self):
        with pytest.raises(ValueError):
            TranscoderSpec(src=V1, dst=V1)

    def test_auto_name(self):
        spec = TranscoderSpec(src=V1, dst=V3)
        assert V1.label() in spec.name and V3.label() in spec.name

    def test_output_bytes(self):
        spec = TranscoderSpec(src=V1, dst=V3)
        assert spec.output_bytes(10.0) == pytest.approx(
            V3.bytes_per_second() * 10.0
        )

    def test_work_delegates_to_model(self):
        spec = TranscoderSpec(src=V1, dst=V3)
        m = TranscodingCostModel()
        assert spec.work(60.0, m) == pytest.approx(m.work(V1, V3, 60.0))


class TestFig1:
    def test_graph_shape(self):
        sc = build_fig1_graph()
        assert sc.graph.n_states == 5
        assert sc.graph.n_edges == 8
        assert set(sc.peers) == {"P1", "P2", "P3", "P4"}

    def test_quoted_endpoints(self):
        """The exact formats quoted in §4.3."""
        assert V1 == MediaFormat("MPEG-2", 800, 600, 512.0)
        assert V3 == MediaFormat("MPEG-4", 640, 480, 64.0)

    def test_paper_bfs_reproduces_candidates_in_order(self):
        sc = build_fig1_graph()
        found = [
            [e.edge_id for e in p]
            for p in iter_paths(sc.graph, sc.v_init, sc.v_sol, "paper")
        ]
        assert found == FIG1_CANDIDATE_PATHS

    def test_exhaustive_finds_same_candidates(self):
        sc = build_fig1_graph()
        found = sorted(
            tuple(e.edge_id for e in p)
            for p in iter_paths(sc.graph, sc.v_init, sc.v_sol, "exhaustive")
        )
        assert found == sorted(tuple(p) for p in FIG1_CANDIDATE_PATHS)

    def test_e6_e7_off_candidate_paths(self):
        """e6 and e7 exist in Fig 1 but lie on no candidate path."""
        flat = {e for p in FIG1_CANDIDATE_PATHS for e in p}
        assert "e6" not in flat and "e7" not in flat
        assert "e6" in FIG1_EDGES and "e7" in FIG1_EDGES

    def test_work_scales_with_duration(self):
        short = build_fig1_graph(duration_s=30.0)
        long = build_fig1_graph(duration_s=60.0)
        assert long.graph.edge("e1").work == pytest.approx(
            2 * short.graph.edge("e1").work
        )

    def test_source_object_matches_v1(self):
        sc = build_fig1_graph()
        assert sc.source_object.fmt == V1

"""Targeted tests for less-travelled paths."""

from repro.core import protocol
from repro.net.message import Message
from repro.tasks.task import TaskOutcome
from tests.conftest import build_live_domain


class TestJoinCapacity:
    def test_busy_rm_redirects_joins(self, live_domain):
        rm = live_domain.rm
        assert rm.consider_join(10.0, 1e6, 0.9) == "accept"
        rm.profiler._util.value = 0.99  # saturate the RM itself
        assert rm.consider_join(10.0, 1e6, 0.9) == "redirect"

    def test_threshold_configurable(self):
        from repro.core.manager import RMConfig

        d = build_live_domain(
            rm_config=RMConfig(join_accept_max_util=0.10)
        )
        d.rm.profiler._util.value = 0.2
        assert d.rm.consider_join(10.0, 1e6, 0.9) == "redirect"


class TestManagerHandlerEdges:
    def test_task_done_for_unknown_task_ignored(self, live_domain):
        rm = live_domain.rm
        rm._handle_task_done(Message(
            kind=protocol.TASK_DONE, src="P1", dst="rm0",
            payload={"task_id": "ghost", "completed_at": 1.0,
                     "sink": "P1"},
        ))
        assert rm.stats["completed"] == 0

    def test_duplicate_task_done_counted_once(self, live_domain):
        d = live_domain
        d.submit(deadline=60.0)
        d.env.run(until=30.0)
        task = d.task()
        assert task.outcome is TaskOutcome.MET_DEADLINE
        # A duplicate completion (e.g. a retried message) is ignored.
        d.rm._handle_task_done(Message(
            kind=protocol.TASK_DONE, src="P4", dst="rm0",
            payload={"task_id": task.task_id,
                     "completed_at": d.env.now, "sink": "P4"},
        ))
        assert d.rm.stats["completed"] == 1

    def test_stale_epoch_step_done_ignored(self, live_domain):
        d = live_domain
        d.submit(deadline=60.0)
        d.env.run(until=0.5)
        task = d.task()
        session = d.rm.sessions[task.task_id]
        session.epoch = 3
        before = session.last_step_done
        d.rm._handle_step_done(Message(
            kind=protocol.STEP_DONE, src="P1", dst="rm0",
            payload={"task_id": task.task_id, "step_index": 0,
                     "peer_id": "P1", "epoch": 1},
        ))
        assert session.last_step_done == before

    def test_domain_fairness_exposed(self, live_domain):
        f = live_domain.rm.domain_fairness()
        assert 0.0 < f <= 1.0

    def test_peer_leave_for_unknown_peer_harmless(self, live_domain):
        live_domain.rm._handle_peer_leave(Message(
            kind=protocol.PEER_LEAVE, src="x", dst="rm0",
            payload={"peer_id": "never-joined"},
        ))


class TestOverlayQueries:
    def test_all_tasks_deduplicates(self):
        from repro.core.manager import RMConfig
        from repro.net import ConstantLatency, Network
        from repro.overlay import OverlayNetwork, PeerSpec
        from repro.sim import Environment

        env = Environment()
        net = Network(env, ConstantLatency(0.005))
        overlay = OverlayNetwork(env, net,
                                 rm_config=RMConfig(max_peers=8),
                                 enable_gossip=False)
        overlay.join(PeerSpec(peer_id="p0", power=10.0,
                              bandwidth=2e6, uptime=0.9))
        assert overlay.all_tasks() == []
        assert overlay.domain_for("p0") is not None
        assert overlay.domain_for("ghost") is None

    def test_prefer_domain_contacts_it_first(self):
        from repro.core.manager import RMConfig
        from repro.net import ConstantLatency, Network
        from repro.overlay import OverlayNetwork, PeerSpec
        from repro.sim import Environment

        env = Environment()
        net = Network(env, ConstantLatency(0.005))
        overlay = OverlayNetwork(env, net,
                                 rm_config=RMConfig(max_peers=4),
                                 enable_gossip=False)
        for i in range(6):  # d0 fills to 4, d1 holds 2
            overlay.join(PeerSpec(peer_id=f"p{i}", power=10.0,
                                  bandwidth=2e6, uptime=0.9))
        assert overlay.n_domains == 2
        d1 = overlay.domain_of["p5"]
        overlay.join(
            PeerSpec(peer_id="late", power=1.0, bandwidth=2e6,
                     uptime=0.9),
            prefer_domain=d1,
        )
        assert overlay.domain_of["late"] == d1
        # Preferring the full domain still lands in the one with room.
        d0 = overlay.domain_of["p0"]
        assert d0 != d1
        overlay.join(
            PeerSpec(peer_id="later", power=1.0, bandwidth=2e6,
                     uptime=0.9),
            prefer_domain=d0,
        )
        assert overlay.domain_of["later"] == d1


class TestArrivalEdgeCases:
    def test_no_live_origin_skips_arrival(self):
        from repro.workloads import (
            PopulationConfig,
            ScenarioConfig,
            WorkloadConfig,
            build_scenario,
        )

        cfg = ScenarioConfig(
            seed=2,
            population=PopulationConfig(n_peers=4, n_objects=2),
            workload=WorkloadConfig(rate=2.0),
        )
        scenario = build_scenario(cfg)
        for pid in list(scenario.overlay.peers):
            scenario.overlay.fail_peer(pid)
        scenario.env.run(until=20.0)  # arrivals find no one: no crash
        assert scenario.workload.n_generated == 0


class TestMeasuredTimings:
    def test_service_graph_carries_real_step_intervals(self, live_domain):
        """§3.1 item 7: run-time computation intervals in G_s."""
        d = live_domain
        d.submit(deadline=60.0)
        d.env.run(until=4.8)  # step 0 done, step 1 in flight
        task = d.task()
        graph = d.rm.info.service_graphs[task.task_id]
        assert 0 in graph.timings
        start, end = graph.timings[0]
        assert end > start            # a real execution interval
        assert end - start > 0.5      # e1 takes ~1.6s at power 10

"""NetNode: handler dispatch, replies, RPC."""

import pytest

from repro.net import ConstantLatency, NetNode, Network, RPCError, RPCTimeout
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def net(env):
    return Network(env, ConstantLatency(0.01), bandwidth=1e9)


class TestDispatch:
    def test_handler_receives_message(self, env, net):
        a, b = NetNode(env, net, "a"), NetNode(env, net, "b")
        got = []
        b.on("hello", lambda msg: got.append(msg.payload))
        a.send("hello", "b", {"x": 1})
        env.run()
        assert got == [{"x": 1}]

    def test_generator_handler_is_spawned(self, env, net):
        a, b = NetNode(env, net, "a"), NetNode(env, net, "b")
        got = []

        def handler(msg):
            def work():
                yield env.timeout(1)
                got.append(env.now)
            return work()

        b.on("go", handler)
        a.send("go", "b")
        env.run()
        assert got and got[0] > 1.0

    def test_unknown_kind_dropped(self, env, net):
        a, b = NetNode(env, net, "a"), NetNode(env, net, "b")
        a.send("nobody-listens", "b")
        env.run()  # must not raise

    def test_duplicate_handler_rejected(self, env, net):
        a = NetNode(env, net, "a")
        a.on("k", lambda m: None)
        with pytest.raises(ValueError):
            a.on("k", lambda m: None)


class TestRPC:
    def test_round_trip(self, env, net):
        a, b = NetNode(env, net, "a"), NetNode(env, net, "b")
        b.on("ping", lambda msg: b.reply(msg, "pong", {"v": msg.payload["v"] + 1}))
        result = []

        def client():
            reply = yield from a.rpc("ping", "b", {"v": 1})
            result.append(reply.payload["v"])

        env.run(env.process(client()))
        assert result == [2]

    def test_timeout_raises(self, env, net):
        a, b = NetNode(env, net, "a"), NetNode(env, net, "b")
        # b has no handler: no reply will come.
        def client():
            with pytest.raises(RPCTimeout):
                yield from a.rpc("ping", "b", timeout=0.5)

        env.run(env.process(client()))
        assert env.now >= 0.5

    def test_late_reply_after_timeout_is_ignored(self, env, net):
        a, b = NetNode(env, net, "a"), NetNode(env, net, "b")

        def slow_handler(msg):
            def work():
                yield env.timeout(2.0)
                b.reply(msg, "pong")
            return work()

        b.on("ping", slow_handler)

        def client():
            with pytest.raises(RPCTimeout):
                yield from a.rpc("ping", "b", timeout=0.5)

        env.process(client())
        env.run()  # late pong arrives; must not crash anything

    def test_concurrent_rpcs_correlate(self, env, net):
        a, b = NetNode(env, net, "a"), NetNode(env, net, "b")

        def echo(msg):
            def work():
                yield env.timeout(msg.payload["delay"])
                b.reply(msg, "echo", {"tag": msg.payload["tag"]})
            return work()

        b.on("q", echo)
        results = []

        def client(tag, delay):
            reply = yield from a.rpc("q", "b", {"tag": tag, "delay": delay})
            results.append(reply.payload["tag"])

        env.process(client("slow", 1.0))
        env.process(client("fast", 0.1))
        env.run()
        assert results == ["fast", "slow"]

    def test_shutdown_fails_pending_rpcs(self, env, net):
        a, b = NetNode(env, net, "a"), NetNode(env, net, "b")

        def client():
            with pytest.raises(RPCError):
                yield from a.rpc("ping", "b", timeout=100.0)

        p = env.process(client())

        def killer():
            yield env.timeout(0.1)
            a.shutdown()

        env.process(killer())
        env.run(until=p)

    def test_reply_goes_to_requester_only(self, env, net):
        a, b = NetNode(env, net, "a"), NetNode(env, net, "b")
        c = NetNode(env, net, "c")
        got_c = []
        c.on("pong", lambda m: got_c.append(1))
        b.on("ping", lambda msg: b.reply(msg, "pong"))

        def client():
            yield from a.rpc("ping", "b")

        env.run(env.process(client()))
        assert not got_c

"""NetworkX bridge, critical-peer analysis, DOT export."""

import pytest

from repro.graphs import ResourceGraph, ServiceGraph
from repro.graphs.analysis import (
    critical_peers,
    peer_centrality,
    reachable_states,
    resource_graph_to_dot,
    service_graph_to_dot,
    to_networkx,
)
from repro.media.fig1 import build_fig1_graph


@pytest.fixture
def fig1():
    return build_fig1_graph()


class TestNetworkXBridge:
    def test_node_and_edge_counts(self, fig1):
        g = to_networkx(fig1.graph)
        assert g.number_of_nodes() == 5
        assert g.number_of_edges() == 8

    def test_edge_attributes_preserved(self, fig1):
        g = to_networkx(fig1.graph)
        edge = fig1.graph.edge("e1")
        data = g.get_edge_data(edge.src, edge.dst)["e1"]
        assert data["peer_id"] == "P1"
        assert data["work"] == pytest.approx(edge.work)

    def test_parallel_edges_survive(self, fig1):
        e2 = fig1.graph.edge("e2")
        g = to_networkx(fig1.graph)
        assert len(g.get_edge_data(e2.src, e2.dst)) == 2  # e2 and e3

    def test_reachability_matches_search(self, fig1):
        reach = reachable_states(fig1.graph, fig1.v_init)
        assert fig1.v_sol in reach
        assert len(reach) == 5  # the Fig-1 graph is fully reachable

    def test_reachability_unknown_state(self, fig1):
        assert reachable_states(fig1.graph, "ghost") == set()


class TestCriticalPeers:
    def test_p1_is_critical_in_fig1(self, fig1):
        """Every candidate path starts with e1 at P1: P1 is a single
        point of failure for this conversion; P2/P3 back each other up."""
        crit = critical_peers(fig1.graph, fig1.v_init, fig1.v_sol)
        assert "P1" in crit
        assert "P2" not in crit and "P3" not in crit

    def test_replicating_the_critical_service_fixes_it(self, fig1):
        g = fig1.graph
        e1 = g.edge("e1")
        g.add_service(e1.src, e1.dst, "T-e1b", "P3", e1.work,
                      e1.out_bytes, edge_id="e1b")
        crit = critical_peers(g, fig1.v_init, fig1.v_sol)
        assert "P1" not in crit

    def test_disconnected_pair_has_no_critical_peers(self, fig1):
        fig1.graph.add_state("island")
        assert critical_peers(fig1.graph, fig1.v_init, "island") == []

    def test_centrality_sums_to_one(self, fig1):
        cent = peer_centrality(fig1.graph)
        assert sum(cent.values()) == pytest.approx(1.0)
        assert cent["P1"] == pytest.approx(2 / 8)

    def test_centrality_empty_graph(self):
        assert peer_centrality(ResourceGraph()) == {}


class TestDotExport:
    def test_resource_graph_dot_is_wellformed(self, fig1):
        dot = resource_graph_to_dot(fig1.graph)
        assert dot.startswith('digraph "Gr" {')
        assert dot.rstrip().endswith("}")
        assert dot.count("->") == 8
        assert "e1" in dot and "P1" in dot
        # Parses as a DOT-ish structure via networkx-pydot? No pydot
        # offline: at least check balanced braces.
        assert dot.count("{") == dot.count("}")

    def test_service_graph_dot_chain(self, fig1):
        edges = [fig1.graph.edge("e1"), fig1.graph.edge("e3")]
        sg = ServiceGraph.from_edges("t1", edges, "P1", "P4")
        dot = service_graph_to_dot(sg)
        # src -> s0 -> s1 -> sink: three arrows.
        assert dot.count("->") == 3
        assert "source" in dot and "sink" in dot

    def test_quotes_escaped(self):
        g = ResourceGraph()
        g.add_service('a"x', "b", 'svc"1', "p", 1.0)
        dot = resource_graph_to_dot(g)
        assert '\\"' in dot

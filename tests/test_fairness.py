"""The Jain fairness index (eq. 1) and its §4.2 properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fairness import (
    LoadVector,
    aggregate_path_deltas,
    fairness_after_assignment,
    jain_fairness,
    optimal_single_load,
)

loads_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=30,
)

positive_loads = st.lists(
    st.floats(min_value=1e-3, max_value=1e6, allow_nan=False),
    min_size=2,
    max_size=30,
)


class TestEquationOne:
    def test_equal_loads_give_one(self):
        assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_peer_is_one(self):
        assert jain_fairness([3.0]) == pytest.approx(1.0)

    def test_all_zero_is_one(self):
        assert jain_fairness([0.0, 0.0]) == 1.0

    def test_one_loaded_among_n(self):
        # F = k/n when k of n peers share the load equally: k=1, n=4.
        assert jain_fairness([8.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_k_of_n_equally_loaded(self):
        # The classic interpretation: F = k/n.
        assert jain_fairness([1, 1, 1, 0, 0, 0]) == pytest.approx(0.5)

    def test_known_value(self):
        # Hand-computed: loads (1,2,3): (6^2)/(3*14) = 36/42.
        assert jain_fairness([1, 2, 3]) == pytest.approx(36 / 42)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jain_fairness([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_fairness([1.0, -0.1])

    @given(loads_strategy)
    def test_range_is_zero_one(self, loads):
        f = jain_fairness(loads)
        assert 0.0 < f <= 1.0 + 1e-12

    @given(positive_loads, st.floats(min_value=1e-3, max_value=1e3))
    def test_scale_invariance(self, loads, c):
        a = jain_fairness(loads)
        b = jain_fairness([x * c for x in loads])
        assert a == pytest.approx(b, rel=1e-9)

    @given(positive_loads)
    def test_permutation_invariance(self, loads):
        rng = np.random.default_rng(0)
        shuffled = list(loads)
        rng.shuffle(shuffled)
        assert jain_fairness(loads) == pytest.approx(
            jain_fairness(shuffled), rel=1e-9
        )

    @given(positive_loads)
    def test_maximized_at_equality(self, loads):
        mean = sum(loads) / len(loads)
        assert jain_fairness(loads) <= jain_fairness(
            [mean] * len(loads)
        ) + 1e-12


class TestOptimalSingleLoad:
    def test_formula(self):
        # others (2, 4): l_best = (4+16)/6 = 20/6.
        assert optimal_single_load([2.0, 4.0]) == pytest.approx(20 / 6)

    def test_all_zero_others(self):
        assert optimal_single_load([0.0, 0.0]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            optimal_single_load([])

    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=100.0),
            min_size=1, max_size=10,
        )
    )
    @settings(max_examples=50)
    def test_lbest_maximizes(self, others):
        """§4.2: fairness peaks at l_best and falls off either side."""
        lbest = optimal_single_load(others)
        f_best = jain_fairness(others + [lbest])
        for factor in (0.5, 0.9, 1.1, 2.0):
            candidate = lbest * factor
            if abs(candidate - lbest) < 1e-12:
                continue
            assert jain_fairness(others + [candidate]) <= f_best + 1e-9

    def test_non_monotonic_in_single_load(self):
        """§4.2: F does not move monotonically with one peer's load."""
        others = [4.0, 4.0]
        lbest = optimal_single_load(others)  # = 4
        below = jain_fairness(others + [lbest * 0.25])
        at = jain_fairness(others + [lbest])
        above = jain_fairness(others + [lbest * 4.0])
        assert below < at and above < at


class TestLoadVector:
    def test_set_get(self):
        vec = LoadVector({"a": 1.0})
        vec.set("b", 2.0)
        assert vec.get("a") == 1.0 and vec.get("b") == 2.0
        assert len(vec) == 2 and "a" in vec

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LoadVector({"a": -1.0})

    def test_add_clamps_at_zero(self):
        vec = LoadVector({"a": 1.0})
        vec.add("a", -5.0)
        assert vec.get("a") == 0.0

    def test_remove(self):
        vec = LoadVector({"a": 1.0, "b": 2.0})
        vec.remove("a")
        assert "a" not in vec and len(vec) == 1
        vec.remove("ghost")  # idempotent

    def test_fairness_matches_direct(self):
        loads = {"a": 1.0, "b": 2.0, "c": 3.0}
        assert LoadVector(loads).fairness() == pytest.approx(
            jain_fairness(list(loads.values()))
        )

    def test_empty_fairness_rejected(self):
        with pytest.raises(ValueError):
            LoadVector().fairness()

    def test_fairness_with_matches_recompute(self):
        vec = LoadVector({"a": 1.0, "b": 2.0, "c": 3.0})
        deltas = {"a": 0.5, "c": 1.5}
        expected = jain_fairness([1.5, 2.0, 4.5])
        assert vec.fairness_with(deltas) == pytest.approx(expected)

    def test_fairness_with_ignores_unknown_peer(self):
        vec = LoadVector({"a": 1.0, "b": 1.0})
        assert vec.fairness_with({"ghost": 100.0}) == pytest.approx(1.0)

    def test_fairness_with_does_not_mutate(self):
        vec = LoadVector({"a": 1.0, "b": 2.0})
        before = vec.fairness()
        vec.fairness_with({"a": 10.0})
        assert vec.fairness() == pytest.approx(before)

    @given(
        st.dictionaries(
            st.sampled_from(list("abcdefgh")),
            st.floats(min_value=0.0, max_value=100.0),
            min_size=2,
        ),
        st.dictionaries(
            st.sampled_from(list("abcdefgh")),
            st.floats(min_value=-10.0, max_value=100.0),
        ),
    )
    @settings(max_examples=100)
    def test_incremental_equals_recompute(self, loads, deltas):
        vec = LoadVector(loads)
        applied = {
            p: max(0.0, loads.get(p, 0.0) + d)
            for p, d in deltas.items()
            if p in loads
        }
        merged = {**loads, **applied}
        assert vec.fairness_with(deltas) == pytest.approx(
            jain_fairness(list(merged.values())), rel=1e-9, abs=1e-9
        )

    @given(
        st.dictionaries(
            st.sampled_from(list("abcdef")),
            st.floats(min_value=0.0, max_value=50.0),
            min_size=1,
        )
    )
    @settings(max_examples=60)
    def test_incremental_sums_survive_mutation(self, loads):
        """set/add/remove keep internal sums consistent with a rebuild."""
        vec = LoadVector(loads)
        vec.set("zz", 5.0)
        vec.add("zz", 2.5)
        vec.remove(next(iter(loads)))
        rebuilt = LoadVector(vec.as_dict())
        assert vec.fairness() == pytest.approx(rebuilt.fairness())


class TestHelpers:
    def test_fairness_after_assignment(self):
        loads = {"a": 1.0, "b": 3.0}
        out = fairness_after_assignment(loads, {"a": 2.0})
        assert out == pytest.approx(1.0)

    def test_aggregate_path_deltas(self):
        deltas = aggregate_path_deltas([("a", 1.0), ("b", 2.0), ("a", 0.5)])
        assert deltas == {"a": 1.5, "b": 2.0}


class TestBatchWhatIf:
    def test_batch_matches_scalar(self):
        vec = LoadVector({"a": 1.0, "b": 2.0, "c": 3.0})
        candidates = [
            {"a": 0.5},
            {"b": 1.0, "c": -1.0},
            {"ghost": 9.0},
            {},
        ]
        batch = vec.fairness_with_batch(candidates)
        for got, deltas in zip(batch, candidates):
            assert got == pytest.approx(vec.fairness_with(deltas))

    def test_empty_candidate_list(self):
        vec = LoadVector({"a": 1.0})
        assert len(vec.fairness_with_batch([])) == 0

    def test_empty_distribution_rejected(self):
        with pytest.raises(ValueError):
            LoadVector().fairness_with_batch([{}])

    @given(
        st.dictionaries(
            st.sampled_from(list("abcde")),
            st.floats(min_value=0.0, max_value=50.0),
            min_size=2,
        ),
        st.lists(
            st.dictionaries(
                st.sampled_from(list("abcde")),
                st.floats(min_value=-5.0, max_value=50.0),
            ),
            max_size=8,
        ),
    )
    @settings(max_examples=60)
    def test_batch_property(self, loads, candidates):
        vec = LoadVector(loads)
        batch = vec.fairness_with_batch(candidates)
        assert len(batch) == len(candidates)
        for got, deltas in zip(batch, candidates):
            assert got == pytest.approx(
                vec.fairness_with(deltas), rel=1e-9, abs=1e-9
            )

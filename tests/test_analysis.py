"""Validation of the simulation substrate against queueing theory.

A single FIFO processor fed Poisson arrivals of fixed-work jobs is an
M/D/1 queue; with exponentially distributed work it is an M/M/1 queue.
The measured mean response times must match the closed forms — this
pins down the correctness of the processor, the event kernel, and the
arrival machinery all at once.
"""

import numpy as np
import pytest

from repro.analysis import (
    md1_mean_response,
    md1_mean_wait,
    mm1_mean_response,
    mm1_mean_wait,
    utilization,
)
from repro.scheduling import Job, Processor, make_policy
from repro.sim import Environment


class TestFormulas:
    def test_utilization(self):
        assert utilization(2.0, 0.25) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            mm1_mean_wait(0.0, 1.0)
        with pytest.raises(ValueError):
            mm1_mean_wait(1.0, 1.0)  # rho = 1
        with pytest.raises(ValueError):
            md1_mean_wait(2.0, 1.0)  # rho = 2

    def test_mm1_known_value(self):
        # rho = 0.5: response = s / 0.5 = 2 s.
        assert mm1_mean_response(1.0, 0.5) == pytest.approx(1.0)

    def test_md1_half_the_mm1_wait(self):
        lam, s = 1.0, 0.5
        assert md1_mean_wait(lam, s) == pytest.approx(
            mm1_mean_wait(lam, s) / 2.0
        )

    def test_wait_grows_with_load(self):
        s = 0.1
        waits = [md1_mean_wait(lam, s) for lam in (1.0, 5.0, 9.0)]
        assert waits == sorted(waits)
        assert waits[-1] > 10 * waits[0]


def simulate_queue(lam, work, power, duration, policy="FIFO",
                   work_dist=None, seed=0):
    """One processor under Poisson arrivals; returns mean response."""
    env = Environment()
    cpu = Processor(env, "p", power=power, policy=make_policy(policy))
    rng = np.random.default_rng(seed)
    jobs = []

    def feeder():
        while env.now < duration:
            yield env.timeout(float(rng.exponential(1.0 / lam)))
            w = work if work_dist is None else float(work_dist(rng))
            if w <= 0:
                continue
            job = Job(work=w, abs_deadline=env.now + 1e9,
                      release=env.now)
            jobs.append(job)
            cpu.submit(job)

    env.process(feeder())
    env.run(until=duration * 1.2)
    responses = [
        j.response_time for j in jobs if j.response_time is not None
    ]
    assert len(responses) > 0.9 * len(jobs)
    return float(np.mean(responses))


@pytest.mark.slow
class TestSimulatorVsTheory:
    def test_md1_light_load(self):
        # rho = 0.3: service 0.3s (work 3 @ power 10), lam = 1.0.
        measured = simulate_queue(
            lam=1.0, work=3.0, power=10.0, duration=30_000.0
        )
        expected = md1_mean_response(1.0, 0.3)
        assert measured == pytest.approx(expected, rel=0.05)

    def test_md1_heavy_load(self):
        # rho = 0.8: queueing dominates.
        measured = simulate_queue(
            lam=2.0, work=4.0, power=10.0, duration=60_000.0
        )
        expected = md1_mean_response(2.0, 0.4)
        assert measured == pytest.approx(expected, rel=0.10)

    def test_mm1_with_exponential_work(self):
        # Exponential work => M/M/1. rho = 0.5.
        measured = simulate_queue(
            lam=1.0, work=0.0, power=10.0, duration=60_000.0,
            work_dist=lambda rng: rng.exponential(5.0),
        )
        expected = mm1_mean_response(1.0, 0.5)
        assert measured == pytest.approx(expected, rel=0.10)

    def test_preemptive_edf_does_not_change_utilization_story(self):
        """Mean response under EDF stays near FIFO for identical jobs
        (identical deadlines order like FIFO)."""
        fifo = simulate_queue(
            lam=1.5, work=3.0, power=10.0, duration=20_000.0,
            policy="FIFO",
        )
        edf = simulate_queue(
            lam=1.5, work=3.0, power=10.0, duration=20_000.0,
            policy="EDF",
        )
        assert edf == pytest.approx(fifo, rel=0.10)

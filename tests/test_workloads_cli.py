"""The repro-run scenario CLI."""

import json

import pytest

from repro.workloads.cli import main as run_main
from repro.workloads.trace import load_trace


class TestRunCLI:
    def test_print_default_config(self, capsys):
        assert run_main(["--print-default-config"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["allocation_policy"] == "fairness"
        assert doc["population"]["n_peers"] > 0

    def test_config_required(self, capsys):
        with pytest.raises(SystemExit):
            run_main([])

    def test_run_from_config_file(self, tmp_path, capsys):
        cfg_path = tmp_path / "scenario.json"
        cfg_path.write_text(json.dumps({
            "seed": 4,
            "population": {"n_peers": 6, "n_objects": 3},
            "workload": {"rate": 0.5},
        }))
        assert run_main([str(cfg_path), "--duration", "40",
                         "--drain", "20"]) == 0
        out = capsys.readouterr().out
        assert "goodput" in out
        assert "overlay:" in out

    def test_seed_override_changes_run(self, tmp_path, capsys):
        cfg_path = tmp_path / "scenario.json"
        cfg_path.write_text(json.dumps({
            "seed": 4,
            "population": {"n_peers": 6, "n_objects": 3},
            "workload": {"rate": 1.0},
        }))
        run_main([str(cfg_path), "--duration", "40", "--drain", "10"])
        out_a = capsys.readouterr().out
        run_main([str(cfg_path), "--duration", "40", "--drain", "10",
                  "--seed", "99"])
        out_b = capsys.readouterr().out
        assert "seed=4" in out_a and "seed=99" in out_b

    def test_record_trace(self, tmp_path, capsys):
        cfg_path = tmp_path / "scenario.json"
        cfg_path.write_text(json.dumps({
            "seed": 4,
            "population": {"n_peers": 6, "n_objects": 3},
            "workload": {"rate": 1.0},
        }))
        trace_path = tmp_path / "run.csv"
        assert run_main([
            str(cfg_path), "--duration", "30", "--drain", "10",
            "--record-trace", str(trace_path),
        ]) == 0
        entries = load_trace(trace_path.read_text())
        assert entries, "trace should contain the generated requests"

"""Resource, PriorityResource and Store primitives."""

import pytest

from repro.sim import Environment, PriorityResource, Resource, Store


@pytest.fixture
def env():
    return Environment()


class TestResource:
    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_grant_immediately_when_free(self, env):
        res = Resource(env, capacity=2)
        r1, r2 = res.request(), res.request()
        assert r1.triggered and r2.triggered
        assert res.count == 2

    def test_queue_when_full_fifo(self, env):
        res = Resource(env, capacity=1)
        order = []

        def user(name, hold):
            with res.request() as req:
                yield req
                order.append((env.now, name))
                yield env.timeout(hold)

        for i in range(3):
            env.process(user(f"u{i}", 2))
        env.run()
        assert order == [(0.0, "u0"), (2.0, "u1"), (4.0, "u2")]

    def test_release_ungranted_cancels(self, env):
        res = Resource(env, capacity=1)
        held = res.request()
        waiting = res.request()
        assert not waiting.triggered
        res.release(waiting)  # cancel from the queue
        res.release(held)
        assert res.count == 0 and not res.queue

    def test_cancel_method(self, env):
        res = Resource(env, capacity=1)
        res.request()
        waiting = res.request()
        waiting.cancel()
        assert waiting not in res.queue


class TestPriorityResource:
    def test_lower_priority_number_first(self, env):
        res = PriorityResource(env, capacity=1)
        order = []

        def user(name, prio):
            req = res.request(priority=prio)
            yield req
            order.append(name)
            yield env.timeout(1)
            res.release(req)

        def driver():
            first = res.request(priority=0)
            yield first
            env.process(user("low", 5))
            env.process(user("high", 1))
            yield env.timeout(1)
            res.release(first)

        env.process(driver())
        env.run()
        assert order == ["high", "low"]

    def test_fifo_within_priority(self, env):
        res = PriorityResource(env, capacity=1)
        blocker = res.request(priority=0)
        a = res.request(priority=2)
        b = res.request(priority=2)
        res.release(blocker)
        env.run()
        assert a.triggered and not b.triggered


class TestStore:
    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)

    def test_put_then_get(self, env):
        st = Store(env)
        st.put("item")
        got = []

        def getter():
            item = yield st.get()
            got.append(item)

        env.process(getter())
        env.run()
        assert got == ["item"]

    def test_get_blocks_until_put(self, env):
        st = Store(env)
        got = []

        def getter():
            item = yield st.get()
            got.append((env.now, item))

        def putter():
            yield env.timeout(4)
            yield st.put("late")

        env.process(getter())
        env.process(putter())
        env.run()
        assert got == [(4.0, "late")]

    def test_bounded_put_blocks(self, env):
        st = Store(env, capacity=1)
        log = []

        def producer():
            yield st.put(1)
            log.append(("put1", env.now))
            yield st.put(2)
            log.append(("put2", env.now))

        def consumer():
            yield env.timeout(5)
            item = yield st.get()
            log.append(("got", item, env.now))

        env.process(producer())
        env.process(consumer())
        env.run()
        assert ("put1", 0.0) in log
        assert ("got", 1, 5.0) in log
        assert ("put2", 5.0) in log

    def test_filtered_get(self, env):
        st = Store(env)
        st.put({"id": 1})
        st.put({"id": 2})
        got = []

        def getter():
            item = yield st.get(filter=lambda m: m["id"] == 2)
            got.append(item)

        env.process(getter())
        env.run()
        assert got == [{"id": 2}]
        assert st.items == [{"id": 1}]

    def test_filtered_get_waits_for_match(self, env):
        st = Store(env)
        st.put("no-match")
        got = []

        def getter():
            item = yield st.get(filter=lambda m: m == "match")
            got.append((env.now, item))

        def putter():
            yield env.timeout(3)
            yield st.put("match")

        env.process(getter())
        env.process(putter())
        env.run()
        assert got == [(3.0, "match")]

    def test_cancel_get(self, env):
        st = Store(env)
        pending = st.get()
        st.cancel_get(pending)
        st.put("x")
        env.run()
        assert st.items == ["x"]
        assert not pending.triggered

    def test_len(self, env):
        st = Store(env)
        st.put("a")
        st.put("b")
        env.run()
        assert len(st) == 2

"""Direct tests of the experiment modules and the CLI."""

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.base import ExperimentResult, replicate, seeds_for
from repro.experiments.cli import main as cli_main
from repro.experiments.f1_graph_example import DEFAULT_LOADS, run as run_f1
from repro.experiments.f2_walkthrough import run as run_f2
from repro.media.fig1 import FIG1_CANDIDATE_PATHS


class TestBase:
    def test_replicate_means_and_stds(self):
        stats = replicate(lambda seed: {"x": float(seed)}, seeds=[1, 2, 3])
        assert stats["x"][0] == pytest.approx(2.0)
        assert stats["x"][1] == pytest.approx(0.8164965, rel=1e-4)

    def test_replicate_needs_seeds(self):
        with pytest.raises(ValueError):
            replicate(lambda s: {}, seeds=[])

    def test_seeds_for(self):
        assert seeds_for(quick=True) == [1]
        assert seeds_for(quick=False, full=4) == [1, 2, 3, 4]


class TestF1:
    def test_candidates_and_choice(self):
        result = run_f1()
        labels = result.column("path")
        expected = ["{" + ",".join(p) + "}" for p in FIG1_CANDIDATE_PATHS]
        assert labels == expected
        chosen_rows = [r for r in result.rows if r[-1].strip()]
        assert len(chosen_rows) == 1
        # With P2 loaded in the default profile, the RM avoids e2.
        assert DEFAULT_LOADS["P2"] > DEFAULT_LOADS["P3"]
        assert chosen_rows[0][0] != "{e1,e2}"

    def test_service_graph_composed_from_winner(self):
        result = run_f1()
        graph = result.extra["service_graph"]
        alloc = result.extra["allocation"]
        assert [s.edge_id for s in graph.steps] == alloc.edge_ids


class TestF2:
    def test_timeline_shape(self):
        result = run_f2()
        stages = result.column("stage")
        assert stages[0] == "A"
        assert stages.count("B") >= 2  # decision + compose messages
        assert stages[-1] == "C"
        times = result.column("t_sim_s")
        assert times == sorted(times)

    def test_task_completes(self):
        result = run_f2()
        task = result.extra["task"]
        assert task.outcome.value == "met"
        _t, payload = result.extra["ack"]
        assert payload["disposition"] == "accepted"


class TestRegistry:
    def test_all_experiments_importable_with_run(self):
        import importlib

        for exp_id, module_path in EXPERIMENTS.items():
            mod = importlib.import_module(module_path)
            assert callable(mod.run), exp_id
            assert mod.__doc__, exp_id

    def test_ids_cover_figures_and_claims(self):
        assert {"f1", "f2", "f3"} <= EXPERIMENTS.keys()
        assert {f"e{i}" for i in range(1, 11)} <= EXPERIMENTS.keys()


class TestCLI:
    def test_list(self, capsys):
        assert cli_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "f1" in out and "e10" in out

    def test_no_args_lists(self, capsys):
        assert cli_main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_unknown_experiment_errors(self, capsys):
        assert cli_main(["e99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_run_f1(self, capsys):
        assert cli_main(["f1", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "{e1,e2}" in out and "F1" in out


class TestResultHelpers:
    def test_table_renders_all_rows(self):
        r = ExperimentResult("t", "t", ["h1", "h2"])
        r.add_row("a", 1.0)
        r.add_row("b", 2.0)
        table = r.table()
        assert table.count("\n") == 3  # header + sep + 2 rows

"""SimClockPump stall catch-up semantics.

A live node's pump can fall arbitrarily far behind the wall clock — a
stopped laptop lid, a SIGSTOP, an event-loop stall under load.  On
resume the backlog must replay *in timestamp order* (causality inside
the sim kernel is the protocol's correctness), the ``max_batch`` valve
must only interleave I/O yields — never skip or reorder work — and
timers scheduled beyond the stall horizon must not fire early.

The stall is simulated by shifting the pump's wall anchor into the
past, which is exactly what a real stall looks like from the pump's
point of view: suddenly everything is overdue.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.runtime.node import SimClockPump
from repro.sim.core import Environment

pytestmark = pytest.mark.integration


def run(coro):
    return asyncio.run(coro)


async def wait_for(predicate, timeout=5.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return predicate()


def timer(env, delay, record, label):
    """A process recording (label, sim-now) after *delay* sim seconds."""
    def gen():
        yield env.timeout(delay)
        record.append((label, env.now))
    return env.process(gen())


def test_stall_catchup_replays_in_order_under_max_batch():
    """A 100 s stall with a deep backlog and ``max_batch=2``: every
    event replays, in timestamp order, at its scheduled sim time."""
    async def main():
        env = Environment()
        record = []
        # Scheduled far enough out that nothing fires naturally during
        # the test; reverse insertion order to catch ordering-by-id.
        delays = [50.0 + i * 0.5 for i in range(20)]
        for i, d in enumerate(reversed(delays)):
            timer(env, d, record, f"t{d:g}")
        pump = SimClockPump(env, max_batch=2)
        task = asyncio.ensure_future(pump.run())
        try:
            await asyncio.sleep(0.05)
            assert record == []  # all timers still in the future
            pump._anchor -= 200.0  # the stall: everything overdue at once
            pump.kick()
            assert await wait_for(lambda: len(record) == len(delays))
            fired_at = [now for _, now in record]
            assert fired_at == sorted(delays)  # order AND timestamps kept
        finally:
            pump.stop()
            await task
    run(main())


def test_stall_catchup_preserves_causal_chains():
    """A process that schedules follow-up work *during* replay lands at
    its causal position, interleaved with independent timers."""
    async def main():
        env = Environment()
        record = []

        def chained():
            yield env.timeout(50.0)
            record.append(("a1", env.now))
            yield env.timeout(10.0)  # scheduled mid-replay, due at 60
            record.append(("a2", env.now))

        env.process(chained())
        timer(env, 55.0, record, "b")
        pump = SimClockPump(env, max_batch=1)
        task = asyncio.ensure_future(pump.run())
        try:
            await asyncio.sleep(0.05)
            pump._anchor -= 100.0
            pump.kick()
            assert await wait_for(lambda: len(record) == 3)
            assert record == [("a1", 50.0), ("b", 55.0), ("a2", 60.0)]
        finally:
            pump.stop()
            await task
    run(main())


def test_timers_beyond_the_stall_do_not_fire_early():
    """Catch-up stops at the (shifted) wall clock: a timer past the
    stall horizon stays pending instead of being dragged forward."""
    async def main():
        env = Environment()
        record = []
        timer(env, 50.0, record, "due")
        timer(env, 1000.0, record, "future")
        pump = SimClockPump(env, max_batch=1000)
        task = asyncio.ensure_future(pump.run())
        try:
            await asyncio.sleep(0.05)
            pump._anchor -= 100.0  # 50 s timer overdue; 1000 s is not
            pump.kick()
            assert await wait_for(lambda: len(record) == 1)
            await asyncio.sleep(0.1)  # catch-up settled; nothing else due
            assert record == [("due", 50.0)]
            # The sim clock never ran ahead of the shifted wall clock.
            assert env.now <= pump.wall_sim_now
        finally:
            pump.stop()
            await task
    run(main())


def test_kick_wakes_an_idle_pump():
    """An idle pump (empty queue, infinite sleep) picks up externally
    injected work on ``kick`` — the datagram-arrival path."""
    async def main():
        env = Environment()
        record = []
        pump = SimClockPump(env, max_batch=1000)
        task = asyncio.ensure_future(pump.run())
        try:
            await asyncio.sleep(0.02)  # parked on the infinite wait
            timer(env, 0.0, record, "injected")
            pump.kick()
            assert await wait_for(lambda: len(record) == 1)
        finally:
            pump.stop()
            await task
    run(main())

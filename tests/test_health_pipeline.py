"""The continuous health pipeline: sampler, flight recorder, endpoint,
quantiles, and the repro-dash CLI.

Covers the tentpole surfaces end to end — simulated overlay probes
feeding ring-buffered series, anomaly-triggered flight bundles (RM
failover / deadline-miss burst / UDP retry storm, each exactly one dump
under cooldown), the Prometheus ``/metrics`` + ``/healthz`` endpoint —
plus the satellites: metric-name aliases, histogram quantile helpers,
and the ``repro.metrics`` deprecation shim under ``-W error``.
"""

from __future__ import annotations

import json
import subprocess
import sys
import urllib.request

import pytest

from repro import telemetry
from repro.core.manager import RMConfig
from repro.gossip import GossipConfig
from repro.net import ConstantLatency, Network
from repro.overlay import FailoverConfig, OverlayNetwork, PeerSpec
from repro.scheduling.processor import qos_class
from repro.sim import Environment, RandomStreams
from repro.telemetry import (
    FlightRecorder,
    HealthSampler,
    SeriesRing,
    Telemetry,
)
from repro.telemetry.dash import main as dash_main
from repro.telemetry.export import read_jsonl, write_jsonl
from repro.telemetry.httpd import TelemetryHTTPServer
from repro.telemetry.metrics import (
    Histogram,
    MetricsRegistry,
    bucket_quantile,
)
from repro.telemetry.timeseries import overlay_probes


@pytest.fixture(autouse=True)
def _isolate_global_handle():
    telemetry.deactivate()
    yield
    telemetry.deactivate()


def build_overlay(env, max_peers=8, n_peers=4, enable_gossip=False):
    net = Network(env, ConstantLatency(0.005), bandwidth=1e7)
    overlay = OverlayNetwork(
        env, net,
        rm_config=RMConfig(max_peers=max_peers),
        gossip_config=GossipConfig(period=1.0, fanout=2),
        failover_config=FailoverConfig(
            sync_period=1.0, dead_after_periods=2.0
        ),
        enable_gossip=enable_gossip,
        enable_backups=True,
        streams=RandomStreams(0),
    )
    for i in range(n_peers):
        overlay.join(PeerSpec(
            peer_id=f"p{i}", power=10.0, bandwidth=2e6, uptime=0.9,
        ))
    return overlay, net


# -- series rings ------------------------------------------------------------

class TestSeriesRing:
    def test_ring_is_bounded(self):
        ring = SeriesRing("x", capacity=3)
        for i in range(10):
            ring.append(float(i), float(i * 2))
        assert len(ring) == 3
        assert ring.times() == [7.0, 8.0, 9.0]
        assert ring.values() == [14.0, 16.0, 18.0]
        assert ring.last == 18.0

    def test_record_round_trip(self):
        ring = SeriesRing("repro_peer_load", {"peer": "p1"})
        ring.append(1.0, 0.5)
        rec = ring.as_record()
        assert rec["name"] == "repro_peer_load"
        assert rec["labels"] == {"peer": "p1"}
        back = SeriesRing.from_record(rec)
        assert back.values() == [0.5]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            SeriesRing("x", capacity=0)


# -- the sampler over a simulated overlay ------------------------------------

class TestHealthSampler:
    def test_sim_sampler_records_core_signals(self):
        env = Environment()
        overlay, net = build_overlay(env, n_peers=4)
        tel = telemetry.activate(Telemetry.sim(env))
        sampler = HealthSampler(tel, period=1.0)
        for probe in overlay_probes(overlay, net):
            sampler.add_probe(probe)
        sampler.attach_sim(env)
        env.run(until=10.0)
        assert sampler.n_samples >= 10
        assert sampler.errors == 0
        load = sampler.series("repro_peer_load", peer="p0")
        assert load is not None and len(load) >= 10
        for name in (
            "repro_load_imbalance", "repro_load_stdev",
            "repro_gossip_staleness_max", "repro_rm_admission_rate",
            "repro_net_send_rate",
        ):
            assert sampler.series(name) is not None, name
        miss = sampler.series("repro_sched_miss_ratio", qos="normal")
        assert miss is not None and len(miss) >= 1

    def test_sampler_is_opt_in_no_events_without_attach(self):
        """The default path schedules nothing: building the sampler must
        not add kernel events (trajectory-golden safety)."""
        env = Environment()
        overlay, net = build_overlay(env, n_peers=2)
        env.run(until=5.0)
        baseline = env.n_processed

        env2 = Environment()
        overlay2, net2 = build_overlay(env2, n_peers=2)
        tel = Telemetry.sim(env2)
        sampler = HealthSampler(tel, period=1.0)
        for probe in overlay_probes(overlay2, net2):
            sampler.add_probe(probe)
        # No attach_sim: identical trajectory.
        env2.run(until=5.0)
        assert env2.n_processed == baseline

    def test_probe_errors_are_counted_not_raised(self):
        tel = Telemetry.wall()
        sampler = HealthSampler(tel, period=1.0)

        def bad_probe(s):
            raise RuntimeError("boom")

        sampler.add_probe(bad_probe)
        sampler.sample()
        assert sampler.errors == 1
        assert sampler.n_samples == 1

    def test_period_validated(self):
        with pytest.raises(ValueError):
            HealthSampler(Telemetry.wall(), period=0.0)

    def test_wall_thread_samples_and_stops(self):
        tel = Telemetry.wall()
        sampler = HealthSampler(tel, period=0.01)
        sampler.add_probe(lambda s: s.observe("sig", 1.0))
        sampler.start_wall()
        import time
        time.sleep(0.1)
        sampler.stop_wall()
        n = sampler.n_samples
        assert n >= 2
        time.sleep(0.05)
        assert sampler.n_samples == n  # thread really stopped

    def test_series_ride_into_jsonl_export(self, tmp_path):
        env = Environment()
        overlay, net = build_overlay(env, n_peers=2)
        tel = telemetry.activate(Telemetry.sim(env))
        sampler = HealthSampler(tel, period=1.0)
        for probe in overlay_probes(overlay, net):
            sampler.add_probe(probe)
        sampler.attach_sim(env)
        env.run(until=5.0)
        path = tmp_path / "t.jsonl"
        write_jsonl(path, tel.tracer, tel.metrics, sampler=sampler)
        data = read_jsonl(path)
        assert data.series
        names = {rec["name"] for rec in data.series}
        assert "repro_load_imbalance" in names


# -- flight recorder ---------------------------------------------------------

class TestFlightRecorder:
    def test_rm_failover_triggers_exactly_one_dump(self, tmp_path):
        env = Environment()
        overlay, net = build_overlay(env, n_peers=4)
        domain = next(iter(overlay.domains.values()))
        assert domain.backup is not None
        primary = domain.rm
        tel = telemetry.activate(Telemetry.sim(env))
        recorder = FlightRecorder(tel, out_dir=str(tmp_path))

        def killer():
            yield env.timeout(10.0)
            overlay.fail_peer(primary.node_id)

        env.process(killer())
        env.run(until=40.0)
        recorder.close()
        assert len(recorder.dumps) == 1
        bundle = read_jsonl(recorder.dumps[0])
        assert bundle.meta["bundle"] == "flight"
        assert bundle.meta["reason"] == "rm_failover"
        assert any(
            ev.name == "failover.takeover" for ev in bundle.events
        )
        # Only the last-N-seconds window rides along.
        window_start = bundle.meta["time"] - bundle.meta["window"]
        assert all(ev.time >= window_start for ev in bundle.events)

    def test_miss_burst_triggers_exactly_one_dump(self, tmp_path):
        tel = telemetry.activate(Telemetry.wall())
        recorder = FlightRecorder(
            tel, out_dir=str(tmp_path), miss_burst=5, miss_window=10.0,
        )
        # A burst of 20 misses inside the window: one dump, not 15.
        for i in range(20):
            tel.tracer.event("job.missed", node="p0", qos="normal")
        recorder.close()
        assert len(recorder.dumps) == 1
        bundle = read_jsonl(recorder.dumps[0])
        assert bundle.meta["reason"] == "deadline_miss_burst"
        assert sum(
            1 for ev in bundle.events if ev.name == "job.missed"
        ) >= 5

    def test_udp_retry_storm_triggers_exactly_one_dump(self, tmp_path):
        tel = telemetry.activate(Telemetry.wall())
        recorder = FlightRecorder(
            tel, out_dir=str(tmp_path), retry_burst=8, retry_window=5.0,
        )
        for i in range(30):
            tel.tracer.event("udp.retry", node="p0", dst="p1", attempt=1)
        recorder.close()
        assert len(recorder.dumps) == 1
        assert "udp_retry_storm" in recorder.dumps[0]

    def test_below_burst_threshold_never_dumps(self, tmp_path):
        tel = telemetry.activate(Telemetry.wall())
        recorder = FlightRecorder(
            tel, out_dir=str(tmp_path), miss_burst=50,
        )
        for _ in range(10):
            tel.tracer.event("job.missed", node="p0", qos="low")
        recorder.close()
        assert recorder.dumps == []

    def test_dump_includes_current_series_and_metrics(self, tmp_path):
        tel = telemetry.activate(Telemetry.wall())
        sampler = HealthSampler(tel, period=1.0)
        sampler.add_probe(lambda s: s.observe("repro_load_mean", 0.7))
        sampler.sample()
        tel.metrics.counter("repro_net_messages_sent_total").inc(9)
        recorder = FlightRecorder(
            tel, out_dir=str(tmp_path), sampler=sampler,
        )
        path = recorder.dump("manual")
        recorder.close()
        bundle = read_jsonl(path)
        assert any(
            rec["name"] == "repro_load_mean" for rec in bundle.series
        )
        assert any(
            m["name"] == "repro_net_messages_sent_total"
            and m["value"] == 9
            for m in bundle.metrics
        )

    def test_close_detaches_listener(self, tmp_path):
        tel = telemetry.activate(Telemetry.wall())
        recorder = FlightRecorder(tel, out_dir=str(tmp_path))
        recorder.close()
        for _ in range(100):
            tel.tracer.event("udp.retry", node="p0")
        assert recorder.dumps == []
        assert len(recorder) == 0


# -- /metrics endpoint -------------------------------------------------------

class TestHttpEndpoint:
    def _get(self, url):
        with urllib.request.urlopen(url, timeout=5) as resp:
            return resp.status, resp.read().decode()

    def test_metrics_and_healthz_serve(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_net_messages_sent_total", help="messages sent"
        ).inc(5)
        registry.histogram("repro_sched_service_time_seconds").observe(0.2)
        with TelemetryHTTPServer(
            registry.to_prometheus_text,
            health_fn=lambda: {"status": "ok", "nodes": 3},
        ) as server:
            status, body = self._get(f"{server.url}/metrics")
            assert status == 200
            assert "# TYPE repro_net_messages_sent_total counter" in body
            assert "repro_net_messages_sent_total 5" in body
            assert 'repro_sched_service_time_seconds_bucket{le="+Inf"} 1' \
                in body
            status, body = self._get(f"{server.url}/healthz")
            assert status == 200
            assert json.loads(body) == {"status": "ok", "nodes": 3}

    def test_unknown_path_404s(self):
        with TelemetryHTTPServer(lambda: "") as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                self._get(f"{server.url}/nope")
            assert err.value.code == 404

    def test_metrics_error_returns_500(self):
        def broken():
            raise RuntimeError("registry gone")

        with TelemetryHTTPServer(broken) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                self._get(f"{server.url}/metrics")
            assert err.value.code == 500


# -- quantile helpers --------------------------------------------------------

class TestQuantiles:
    def test_histogram_quantiles_interpolate(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0):
            h.observe(v)
        q = h.quantiles()
        assert 0.0 < q[0.5] <= 2.0
        assert q[0.95] <= 4.0
        assert h.quantile(1.0) == 4.0

    def test_overflow_clamps_to_highest_bound(self):
        h = Histogram(buckets=(1.0,))
        h.observe(100.0)
        assert h.quantile(0.99) == 1.0

    def test_empty_histogram_is_zero(self):
        h = Histogram()
        assert h.quantile(0.5) == 0.0

    def test_bucket_quantile_snapshot_format(self):
        buckets = [[0.1, 10], [1.0, 90], ["+Inf", 100]]
        p50 = bucket_quantile(buckets, 0.5)
        assert 0.1 < p50 < 1.0
        assert bucket_quantile(buckets, 0.99) == 1.0

    def test_quantile_range_validated(self):
        with pytest.raises(ValueError):
            bucket_quantile([[1.0, 1]], 1.5)


# -- metric names ------------------------------------------------------------

class TestMetricNames:
    def test_aliases_are_gone_names_are_literal(self):
        # The PR-5 one-release alias read path is retired: pre-namespace
        # names are now distinct families, not views of the canonical
        # ones, and the alias table no longer exists.
        assert not hasattr(
            __import__("repro.telemetry.metrics", fromlist=["x"]),
            "METRIC_ALIASES",
        )
        registry = MetricsRegistry()
        registry.counter("net_messages_sent_total").inc(3)
        registry.counter("repro_net_messages_sent_total").inc(4)
        assert registry.value("repro_net_messages_sent_total") == 4
        assert registry.value("net_messages_sent_total") == 3
        assert registry.families() == [
            "net_messages_sent_total", "repro_net_messages_sent_total",
        ]

    def test_qos_class_buckets(self):
        assert qos_class(2.5) == "high"
        assert qos_class(1.0) == "normal"
        assert qos_class(0.4) == "low"


# -- deprecation shim --------------------------------------------------------

class TestMetricsShim:
    def test_both_paths_import_and_warn_once(self):
        script = (
            "import warnings\n"
            "with warnings.catch_warnings(record=True) as w:\n"
            "    warnings.simplefilter('always')\n"
            "    from repro.metrics import MetricsCollector\n"
            "    from repro.metrics.timeseries import TimeSeries\n"
            "from repro.results import MetricsCollector as M2\n"
            "assert MetricsCollector is M2\n"
            "assert sum(issubclass(x.category, DeprecationWarning)"
            " for x in w) == 1\n"
            "print('ok')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env={"PYTHONPATH": "src"},
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "ok"

    def test_shim_under_error_on_deprecation_warning(self):
        """Under -W error the new path stays clean, and the old path
        raises the DeprecationWarning itself — not an AttributeError
        or ImportError from a half-initialized module."""
        script = (
            "from repro.results import MetricsCollector  # clean\n"
            "from repro.results.timeseries import TimeSeries\n"
            "try:\n"
            "    import repro.metrics\n"
            "except DeprecationWarning as exc:\n"
            "    assert 'repro.results' in str(exc)\n"
            "else:\n"
            "    raise SystemExit('expected the warning to raise')\n"
            "print('ok')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-W", "error::DeprecationWarning",
             "-c", script],
            capture_output=True, text=True, env={"PYTHONPATH": "src"},
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "ok"


# -- repro-dash CLI ----------------------------------------------------------

class TestDashCli:
    def _sampled_trace(self, tmp_path):
        env = Environment()
        overlay, net = build_overlay(
            env, max_peers=2, n_peers=4, enable_gossip=True
        )
        tel = telemetry.activate(Telemetry.sim(env))
        sampler = HealthSampler(tel, period=1.0)
        for probe in overlay_probes(overlay, net):
            sampler.add_probe(probe)
        sampler.attach_sim(env)
        env.run(until=20.0)
        path = tmp_path / "trace.jsonl"
        write_jsonl(
            path, tel.tracer, tel.metrics,
            meta={"runtime": "sim"}, sampler=sampler,
        )
        return path

    def test_report_renders_sparklines(self, tmp_path, capsys):
        path = self._sampled_trace(tmp_path)
        assert dash_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "repro health report" in out
        assert "repro_load_imbalance" in out
        assert "repro_sched_miss_ratio" in out
        assert "repro_gossip_staleness_max" in out

    def test_json_report_has_series(self, tmp_path, capsys):
        path = self._sampled_trace(tmp_path)
        assert dash_main([str(path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        names = {rec["name"] for rec in doc["series"]}
        assert "repro_load_imbalance" in names
        assert "repro_gossip_staleness_max" in names

    def test_markdown_mode_emits_tables(self, tmp_path, capsys):
        path = self._sampled_trace(tmp_path)
        assert dash_main([str(path), "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "# repro health report" in out
        assert "| labels | trend | stats |" in out

    def test_bundle_section(self, tmp_path, capsys):
        path = self._sampled_trace(tmp_path)
        tel = telemetry.activate(Telemetry.wall())
        recorder = FlightRecorder(tel, out_dir=str(tmp_path))
        tel.tracer.event("failover.takeover", node="b0", old_rm="m0")
        recorder.close()
        assert len(recorder.dumps) == 1
        assert dash_main(
            [str(path), "--bundle", recorder.dumps[0]]
        ) == 0
        out = capsys.readouterr().out
        assert "flight recorder" in out
        assert "reason=rm_failover" in out

    def test_missing_file_is_clean_error(self, tmp_path, capsys):
        assert dash_main([str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_unsampled_trace_says_rerun_with_sample(
        self, tmp_path, capsys
    ):
        env = Environment()
        tel = telemetry.activate(Telemetry.sim(env))
        path = tmp_path / "plain.jsonl"
        write_jsonl(path, tel.tracer, tel.metrics)
        assert dash_main([str(path)]) == 0
        assert "--sample" in capsys.readouterr().out

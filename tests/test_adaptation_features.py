"""§4.1/§4.5 adaptation features: eligible list, QoS renegotiation,
dependency tracking, and overload reassignment."""

import pytest

from repro.core.manager import RMConfig, ResourceManager
from repro.net import ConstantLatency, Network
from repro.overlay import OverlayNetwork, PeerSpec
from repro.overlay.failover import FailoverConfig
from repro.sim import Environment
from repro.tasks.task import TaskOutcome
from tests.conftest import build_live_domain


def build_overlay(env, quota=2):
    net = Network(env, ConstantLatency(0.005), bandwidth=1e7)
    return OverlayNetwork(
        env, net,
        rm_config=RMConfig(max_peers=16),
        failover_config=FailoverConfig(sync_period=1.0,
                                       dead_after_periods=2.0),
        enable_gossip=False,
        rm_capable_quota=quota,
    )


def spec(pid, power=10.0, bandwidth=2e6, uptime=0.9):
    return PeerSpec(peer_id=pid, power=power, bandwidth=bandwidth,
                    uptime=uptime)


class TestEligibleList:
    def test_quota_of_passive_rms_maintained(self):
        env = Environment()
        overlay = build_overlay(env, quota=2)
        for i in range(6):
            overlay.join(spec(f"p{i}"))
        domain = next(iter(overlay.domains.values()))
        assert len(domain.eligible) == 2
        assert all(
            isinstance(rm, ResourceManager) and not rm.active
            for rm in domain.eligible
        )

    def test_backup_is_best_scored_eligible(self):
        env = Environment()
        overlay = build_overlay(env, quota=2)
        overlay.join(spec("leader"))
        overlay.join(spec("weakish", power=6.0))
        overlay.join(spec("strong", power=40.0))
        domain = next(iter(overlay.domains.values()))
        assert domain.backup.node_id == "strong"
        assert domain.rm.backup_id == "strong"

    def test_second_failover_uses_next_eligible(self):
        """§4.1: after takeover, the next qualifying processor becomes
        the backup — so the domain survives TWO RM crashes."""
        env = Environment()
        overlay = build_overlay(env, quota=2)
        for i in range(5):
            overlay.join(spec(f"p{i}"))
        domain = next(iter(overlay.domains.values()))
        first_primary = domain.rm.node_id
        first_backup = domain.backup.node_id

        def killer():
            yield env.timeout(5.0)
            overlay.fail_peer(first_primary)
            yield env.timeout(15.0)
            # By now the first backup took over and re-designated.
            second_primary = next(
                iter(overlay.domains.values())
            ).rm.node_id
            overlay.fail_peer(second_primary)

        env.process(killer())
        env.run(until=60.0)
        domain = next(iter(overlay.domains.values()))
        assert domain.rm.active and domain.rm.alive
        assert domain.rm.node_id not in (first_primary, first_backup)

    def test_backup_departure_promotes_spare(self):
        env = Environment()
        overlay = build_overlay(env, quota=2)
        for i in range(5):
            overlay.join(spec(f"p{i}"))
        domain = next(iter(overlay.domains.values()))
        old_backup = domain.backup.node_id
        spare = [rm.node_id for rm in domain.eligible
                 if rm.node_id != old_backup][0]
        overlay.fail_peer(old_backup)
        assert domain.backup is not None
        assert domain.backup.node_id == spare


class TestQoSRenegotiation:
    def test_relaxed_deadline_applied_and_propagated(self):
        d = build_live_domain()
        d.submit(origin="P4", deadline=10.0)

        def relax():
            yield d.env.timeout(1.0)
            task = d.task()
            d.peers["P4"].request_qos_change(
                task.task_id, new_deadline_abs=task.submitted_at + 30.0
            )

        d.env.process(relax())
        d.env.run(until=2.0)
        task = d.task()
        assert task.qos.deadline == pytest.approx(30.0, abs=0.1)
        # The refreshed compose order reached the participants.
        session = d.rm.sessions[task.task_id]
        assert session.order.abs_deadline == pytest.approx(
            task.absolute_deadline
        )
        for pid in session.graph.peers():
            if pid in d.peers:
                order = d.peers[pid]._orders.get(task.task_id)
                if order is not None:
                    # Some peers may not have received it yet at t=2;
                    # those that did carry the new deadline.
                    assert order.abs_deadline in (
                        pytest.approx(task.absolute_deadline),
                        pytest.approx(task.submitted_at + 10.0),
                    )
        d.env.run(until=60.0)
        assert task.outcome is TaskOutcome.MET_DEADLINE

    def test_tightened_deadline_records_miss(self):
        d = build_live_domain()
        d.submit(origin="P4", deadline=60.0)

        def tighten():
            yield d.env.timeout(1.0)
            task = d.task()
            d.peers["P4"].request_qos_change(
                task.task_id, new_deadline_abs=task.submitted_at + 2.0
            )

        d.env.process(tighten())
        d.env.run(until=60.0)
        assert d.task().outcome is TaskOutcome.MISSED_DEADLINE

    def test_only_origin_may_renegotiate(self):
        d = build_live_domain()
        d.submit(origin="P4", deadline=60.0)

        def intrude():
            yield d.env.timeout(1.0)
            task = d.task()
            d.peers["P2"].request_qos_change(  # not the owner
                task.task_id, new_deadline_abs=task.submitted_at + 1.0
            )

        d.env.process(intrude())
        d.env.run(until=60.0)
        task = d.task()
        assert task.qos.deadline == 60.0
        assert task.outcome is TaskOutcome.MET_DEADLINE

    def test_update_for_finished_task_ignored(self):
        d = build_live_domain()
        d.submit(origin="P4", deadline=60.0)
        d.env.run(until=30.0)  # long done
        task = d.task()
        d.peers["P4"].request_qos_change(
            task.task_id, new_deadline_abs=task.submitted_at + 999.0
        )
        d.env.run(until=40.0)
        assert task.qos.deadline == 60.0

    def test_past_deadline_update_ignored(self):
        d = build_live_domain()
        d.submit(origin="P4", deadline=60.0)

        def bogus():
            yield d.env.timeout(1.0)
            task = d.task()
            d.peers["P4"].request_qos_change(
                task.task_id,
                new_deadline_abs=task.submitted_at - 5.0,
            )

        d.env.process(bogus())
        d.env.run(until=60.0)
        assert d.task().qos.deadline == 60.0


class TestDependencies:
    def test_dependencies_tracked_during_session(self):
        d = build_live_domain()
        d.submit(origin="P4", deadline=60.0)
        d.env.run(until=4.5)  # mid-session: P1 -> P2 -> P4
        up2, down2 = d.peers["P2"].current_dependencies()
        assert "P1" in up2
        up1, down1 = d.peers["P1"].current_dependencies()
        assert "P2" in down1

    def test_dependencies_cleared_after_completion(self):
        d = build_live_domain()
        d.submit(origin="P4", deadline=60.0)
        d.env.run(until=30.0)
        up, down = d.peers["P4"].current_dependencies()
        assert not up and not down

    def test_dependencies_reported_in_load_update(self):
        d = build_live_domain()
        d.submit(origin="P4", deadline=60.0)
        d.env.run(until=4.5)
        rec = d.rm.info.peer("P1")
        assert rec.last_report is not None
        assert rec.last_report.dependencies >= 1


class TestReassignment:
    def test_overload_triggers_migration(self):
        """Saturate one hot peer; the RM moves future steps off it."""
        d = build_live_domain(
            rm_config=RMConfig(
                reassign_period=1.0,
                overload_utilization=0.3,
                reassign_min_gain=0.0,
            )
        )
        # Keep P2 (host of e2) pinned busy with background jobs and the
        # domain "overloaded" by the low threshold.
        from repro.scheduling import Job

        for peer in ("P1", "P2", "P3", "P4"):
            d.peers[peer].processor.submit(
                Job(work=200.0, abs_deadline=1e9, release=0.0)
            )
        d.submit(origin="P4", deadline=200.0)
        d.env.run(until=120.0)
        # The run completed despite the background load; whether a
        # migration fired depends on estimates — assert no crash and
        # bookkeeping consistency.
        task = d.task()
        assert task.outcome is not None
        assert d.rm.stats["reassignments"] >= 0

"""Scheduling policies and the processor model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling import (
    EDFPolicy,
    FIFOPolicy,
    ImportancePolicy,
    Job,
    LLSPolicy,
    Processor,
    SJFPolicy,
    make_policy,
)
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


class TestPolicies:
    def test_make_policy_known_names(self):
        for name in ("LLS", "EDF", "FIFO", "SJF", "VALUE", "lls"):
            assert make_policy(name) is not None

    def test_make_policy_unknown(self):
        with pytest.raises(ValueError):
            make_policy("CFS")

    def make_jobs(self):
        j1 = Job(work=10, abs_deadline=100, release=0, importance=1)
        j2 = Job(work=2, abs_deadline=50, release=5, importance=9)
        return j1, j2

    def test_fifo_orders_by_release(self):
        j1, j2 = self.make_jobs()
        p = FIFOPolicy()
        assert p.key(j1, 0, 1) < p.key(j2, 0, 1)
        assert not p.preemptive

    def test_edf_orders_by_deadline(self):
        j1, j2 = self.make_jobs()
        p = EDFPolicy()
        assert p.key(j2, 0, 1) < p.key(j1, 0, 1)

    def test_lls_orders_by_laxity(self):
        j1, j2 = self.make_jobs()
        p = LLSPolicy()
        # laxity j1 = 100-0-10 = 90; j2 = 50-0-2 = 48.
        assert p.key(j2, 0, 1.0) < p.key(j1, 0, 1.0)
        assert p.time_varying

    def test_lls_laxity_depends_on_power(self):
        j = Job(work=10, abs_deadline=20, release=0)
        assert j.laxity(0, power=1.0) == 10.0
        assert j.laxity(0, power=2.0) == 15.0

    def test_sjf_orders_by_remaining(self):
        j1, j2 = self.make_jobs()
        p = SJFPolicy()
        assert p.key(j2, 0, 1) < p.key(j1, 0, 1)

    def test_value_orders_by_density(self):
        j1, j2 = self.make_jobs()
        p = ImportancePolicy()
        assert p.key(j2, 0, 1) < p.key(j1, 0, 1)

    def test_ties_break_by_job_id(self):
        a = Job(work=5, abs_deadline=10, release=0)
        b = Job(work=5, abs_deadline=10, release=0)
        p = EDFPolicy()
        assert p.key(a, 0, 1) < p.key(b, 0, 1)


class TestJob:
    def test_work_positive(self):
        with pytest.raises(ValueError):
            Job(work=0, abs_deadline=1, release=0)

    def test_met_deadline_none_until_done(self):
        j = Job(work=1, abs_deadline=1, release=0)
        assert j.met_deadline is None and j.response_time is None


class TestProcessor:
    def test_power_validation(self, env):
        with pytest.raises(ValueError):
            Processor(env, "p", power=0, policy=EDFPolicy())

    def test_quantum_validation(self, env):
        with pytest.raises(ValueError):
            Processor(env, "p", 1.0, EDFPolicy(), quantum=0)

    def test_single_job_exec_time(self, env):
        cpu = Processor(env, "p", power=2.0, policy=EDFPolicy())
        j = Job(work=10, abs_deadline=100, release=0)

        def driver():
            yield cpu.submit(j)

        env.run(env.process(driver()))
        assert env.now == pytest.approx(5.0)
        assert j.completed_at == pytest.approx(5.0)
        assert j.met_deadline

    def test_edf_preemption(self, env):
        cpu = Processor(env, "p", power=1.0, policy=EDFPolicy())
        long_job = Job(work=10, abs_deadline=100, release=0)
        urgent = Job(work=2, abs_deadline=5, release=0)

        def driver():
            d_long = cpu.submit(long_job)
            yield env.timeout(1)
            d_urgent = cpu.submit(urgent)
            yield d_urgent
            assert env.now == pytest.approx(3.0)
            yield d_long
            assert env.now == pytest.approx(12.0)

        env.run(env.process(driver()))
        assert long_job.preemptions == 1
        assert cpu.n_completed == 2 and cpu.n_missed == 0

    def test_fifo_no_preemption(self, env):
        cpu = Processor(env, "p", power=1.0, policy=FIFOPolicy())
        first = Job(work=5, abs_deadline=100, release=0)
        urgent = Job(work=1, abs_deadline=2, release=0)

        def driver():
            cpu.submit(first)
            yield env.timeout(0.5)
            d = cpu.submit(urgent)
            yield d

        env.run(env.process(driver()))
        assert urgent.completed_at == pytest.approx(6.0)
        assert urgent.met_deadline is False
        assert cpu.n_missed == 1

    def test_work_conservation(self, env):
        """Busy time equals total submitted work / power."""
        cpu = Processor(env, "p", power=2.0, policy=EDFPolicy())
        jobs = [
            Job(work=w, abs_deadline=1000, release=0)
            for w in (3.0, 7.0, 2.0, 8.0)
        ]

        def driver():
            events = [cpu.submit(j) for j in jobs]
            for ev in events:
                yield ev

        env.run(env.process(driver()))
        assert cpu.busy_time == pytest.approx(sum(j.work for j in jobs) / 2.0)
        assert env.now == pytest.approx(10.0)

    def test_cancel_queued_job(self, env):
        cpu = Processor(env, "p", power=1.0, policy=FIFOPolicy())
        a = Job(work=5, abs_deadline=100, release=0)
        b = Job(work=5, abs_deadline=100, release=0)

        def driver():
            da = cpu.submit(a)
            db = cpu.submit(b)
            cpu.cancel(b, "test")
            got = yield db
            assert got is b and b.cancelled
            yield da

        env.run(env.process(driver()))
        assert cpu.n_cancelled == 1 and cpu.n_completed == 1

    def test_cancel_running_job_preemptive(self, env):
        cpu = Processor(env, "p", power=1.0, policy=EDFPolicy())
        j = Job(work=100, abs_deadline=1000, release=0)

        def driver():
            done = cpu.submit(j)
            yield env.timeout(2)
            cpu.cancel(j, "test")
            got = yield done
            assert got.cancelled

        env.run(env.process(driver()))
        assert env.now == pytest.approx(2.0)
        assert cpu.busy_time == pytest.approx(2.0)

    def test_stop_resolves_all_jobs(self, env):
        cpu = Processor(env, "p", power=1.0, policy=EDFPolicy())
        jobs = [Job(work=50, abs_deadline=1000, release=0) for _ in range(3)]

        def driver():
            events = [cpu.submit(j) for j in jobs]
            yield env.timeout(1)
            cpu.stop()
            for ev in events:
                yield ev

        env.run(env.process(driver()))
        assert all(j.cancelled for j in jobs)
        with pytest.raises(RuntimeError):
            cpu.submit(Job(work=1, abs_deadline=1, release=0))

    def test_queue_work_includes_running_progress(self, env):
        cpu = Processor(env, "p", power=1.0, policy=EDFPolicy())
        j = Job(work=10, abs_deadline=100, release=0)

        def driver():
            cpu.submit(j)
            yield env.timeout(4)
            assert cpu.queue_work() == pytest.approx(6.0)
            assert cpu.queue_length == 1
            yield env.timeout(100)

        env.run(env.process(driver()))

    def test_busy_time_now_during_slice(self, env):
        cpu = Processor(env, "p", power=1.0, policy=FIFOPolicy())
        j = Job(work=10, abs_deadline=100, release=0)

        def driver():
            cpu.submit(j)
            yield env.timeout(3)
            assert cpu.busy_time_now() == pytest.approx(3.0)
            yield env.timeout(100)

        env.run(env.process(driver()))

    def test_lls_alternation_under_quantum(self, env):
        """Two equal jobs with different deadlines share under LLS."""
        cpu = Processor(env, "p", power=1.0, policy=LLSPolicy(), quantum=0.5)
        a = Job(work=4, abs_deadline=10, release=0)
        b = Job(work=4, abs_deadline=11, release=0)

        def driver():
            da, db = cpu.submit(a), cpu.submit(b)
            yield da
            yield db

        env.run(env.process(driver()))
        # Both complete; the later-deadline job finishes last, and the
        # CPU never idles: total time = total work.
        assert env.now == pytest.approx(8.0)
        assert b.completed_at >= a.completed_at

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.5, max_value=20.0),   # work
                st.floats(min_value=1.0, max_value=100.0),  # deadline
                st.floats(min_value=0.0, max_value=10.0),   # submit delay
            ),
            min_size=1,
            max_size=12,
        ),
        st.sampled_from(["LLS", "EDF", "FIFO", "SJF", "VALUE"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_policy_completes_every_job(self, specs, policy):
        env = Environment()
        cpu = Processor(env, "p", power=2.0, policy=make_policy(policy))
        jobs = []

        def submitter():
            events = []
            for work, deadline, delay in specs:
                yield env.timeout(delay)
                j = Job(work=work, abs_deadline=env.now + deadline,
                        release=env.now)
                jobs.append(j)
                events.append(cpu.submit(j))
            for ev in events:
                yield ev

        env.run(env.process(submitter()))
        assert cpu.n_completed == len(specs)
        assert all(j.completed_at is not None for j in jobs)
        total_work = sum(w for w, _d, _s in specs)
        assert cpu.busy_time == pytest.approx(total_work / 2.0, rel=1e-6)

"""The sharded multi-process runtime, end to end.

The acceptance scenario for the cluster supervisor: shard processes
spawned over a control pipe, the decentralized roster assembling one
domain across them, a SIGKILLed shard respawned with its nodes
re-joining under their old ids, task conservation through the fault,
aggregated metrics, and a graceful drain.  Everything runs at miniature
scale (a handful of peers, a few shards) — the CI ``live-soak-smoke``
job runs the same scenario at 200 peers via ``repro-live-soak``.

Pure-function layers (spec partitioning, Prometheus merging, the task
ledger) are unit-tested without processes first.
"""

from __future__ import annotations

import asyncio
import json
import os

import pytest

from repro.runtime.node import NodeSpec
from repro.runtime.supervisor import (
    TaskLedger,
    merge_prometheus,
    partition_specs,
)

pytestmark = pytest.mark.integration


def run(coro):
    return asyncio.run(coro)


# -- pure layers -------------------------------------------------------------

def specs(n):
    return [NodeSpec(node_id=f"P{i}") for i in range(n)]


def test_partition_specs_round_robin():
    buckets = partition_specs(specs(7), 3)
    assert [len(b) for b in buckets] == [3, 2, 2]
    # Shard 0 gets the first spec — the RM candidate stays on s0.
    assert buckets[0][0].node_id == "P0"
    got = sorted(s.node_id for b in buckets for s in b)
    assert got == sorted(s.node_id for s in specs(7))


def test_partition_specs_drops_empty_buckets():
    # More shards than specs: empty shards would never join; they are
    # elided rather than spawned.
    buckets = partition_specs(specs(2), 4)
    assert [len(b) for b in buckets] == [1, 1]


def test_merge_prometheus_sums_series():
    a = (
        "# HELP repro_x things\n"
        "# TYPE repro_x gauge\n"
        "repro_x 2\n"
        'repro_y{shard="s0"} 1\n'
    )
    b = (
        "# HELP repro_x things\n"
        "# TYPE repro_x gauge\n"
        "repro_x 3\n"
        'repro_y{shard="s1"} 5\n'
    )
    text = merge_prometheus([a, b])
    lines = text.splitlines()
    # One HELP/TYPE pair survives; same-name same-label samples sum;
    # distinct label sets stay distinct.
    assert lines.count("# HELP repro_x things") == 1
    assert "repro_x 5.0" in lines
    assert 'repro_y{shard="s0"} 1.0' in lines
    assert 'repro_y{shard="s1"} 5.0' in lines


def test_merge_prometheus_family_semantics():
    """Satellite check: explicit per-family merge semantics.  Additive
    families (inflight counts) sum across shards; replicated-view
    families (each shard reports the same cluster-wide roster) take the
    max — summing them would triple-count the population."""
    a = (
        "repro_shard_tasks_inflight 3\n"
        "repro_shard_roster_nodes_up 9\n"
        "repro_shard_rm_ready 1\n"
        'repro_slo_burn_rate{slo="miss_rate",window="fast"} 2\n'
    )
    b = (
        "repro_shard_tasks_inflight 4\n"
        "repro_shard_roster_nodes_up 9\n"
        "repro_shard_rm_ready 0\n"
        'repro_slo_burn_rate{slo="miss_rate",window="fast"} 5\n'
    )
    lines = merge_prometheus([a, b]).splitlines()
    assert "repro_shard_tasks_inflight 7.0" in lines  # sum
    assert "repro_shard_roster_nodes_up 9.0" in lines  # max, not 18
    assert "repro_shard_rm_ready 1.0" in lines  # any shard ready
    # Worst shard's burn is the cluster answer.
    assert (
        'repro_slo_burn_rate{slo="miss_rate",window="fast"} 5.0' in lines
    )


def test_merge_prometheus_family_agg_override():
    text = merge_prometheus(
        ["repro_x 2\n", "repro_x 3\n"], family_agg={"repro_x": "max"}
    )
    assert "repro_x 3.0" in text.splitlines()


def test_task_ledger_conservation_accounting():
    led = TaskLedger()
    led.on_rm_event("t1", "admitted", None)
    led.on_rm_event("t2", "admitted", None)
    assert sorted(led.open_tasks()) == ["t1", "t2"]
    led.on_rm_event("t1", "completed", "ok")
    led.on_rm_event("t2", "reassigned", None)
    assert led.open_tasks() == ["t2"]
    led.on_rm_event("t2", "failed", "failed")
    assert led.open_tasks() == []
    counts = led.counts()
    assert counts["seen"] == 2 and counts["terminal"] == 2
    assert counts["open"] == 0 and counts["reassigned"] == 1
    assert counts["completed"] == 1 and counts["failed"] == 1
    # Terminal is latched: a duplicate event cannot reopen a task.
    led.on_rm_event("t1", "completed", "ok")
    assert led.counts()["terminal"] == 2


# -- the full multi-process scenario -----------------------------------------

@pytest.fixture(scope="module")
def soak_result(tmp_path_factory):
    """One shared miniature soak: spawn, kill+respawn, settle, drain —
    with the cluster observability plane on (trace shipping, health
    rollup, correlated bundles, per-shard profilers)."""
    from repro.runtime.soak import SoakConfig, run_soak

    root = tmp_path_factory.mktemp("soak")
    cfg = SoakConfig(
        peers=8, shards=3, duration=6.0, task_rate=3.0,
        profiler_update_period=0.5, join_timeout=30.0,
        settle_grace=45.0, object_duration_s=1.0,
        record_dir=str(root / "flight"),
        observe_dir=str(root / "observe"),
    )
    return run(run_soak(cfg))


def test_soak_passes_every_acceptance_check(soak_result):
    assert soak_result["ok"], soak_result


def test_killed_shard_respawns_and_rejoins(soak_result):
    victim = soak_result["killed"]
    assert victim is not None and soak_result["respawned"]
    assert soak_result["restarts"][victim] >= 1
    # Every *other* shard came through without a restart.
    assert all(
        n == 0 for sid, n in soak_result["restarts"].items()
        if sid != victim
    )


def test_roster_reconverges_after_the_fault(soak_result):
    # Every shard's replica counts the full population again: the
    # respawned nodes re-joined under their old ids (9 nodes, 3 agents).
    assert soak_result["converged"], soak_result


def test_no_task_lost_through_kill_and_drain(soak_result):
    counts = soak_result["tasks"]
    assert soak_result["no_task_lost"]
    assert counts["open"] == 0
    assert counts["terminal"] == counts["seen"]
    assert counts["submit_failures"] == 0
    assert counts["seen"] > 0  # the stream actually flowed


def test_supervisor_metrics_aggregate_all_shards(soak_result):
    assert soak_result["metrics_ok"]


def test_graceful_drain_left_cleanly(soak_result):
    assert soak_result["drain"] is not None
    assert soak_result["drain"]["ok"], soak_result["drain"]
    # The drained shard was not the one we killed, nor the RM's.
    assert soak_result["drain"]["shard"] != soak_result["killed"]


# -- the cluster observability plane ------------------------------------------

def test_observe_writes_merged_cluster_trace(soak_result):
    obs = soak_result.get("observe")
    assert obs, soak_result
    assert soak_result["observe_ok"], obs
    assert os.path.exists(obs["trace"])
    # Every shard incarnation contributed a stream part (the killed
    # shard's pre-kill file plus its respawn's).
    assert obs["parts"] >= soak_result["shards"]


def test_observe_cross_shard_tasks_form_connected_paths(soak_result):
    """The e2e acceptance check: a task admitted on one shard whose
    work executed on another yields a single connected critical path in
    the merged trace — no orphan fragments."""
    from repro.telemetry.cluster import cross_shard_summary
    from repro.telemetry.export import read_jsonl

    obs = soak_result["observe"]
    data = read_jsonl(obs["trace"])
    summary = cross_shard_summary(data)
    assert summary["tasks"] > 0
    assert summary["cross_shard_tasks"] > 0, summary
    assert summary["orphan_spans"] == 0
    cross = [t for t in summary["per_task"] if t["cross_shard"]]
    assert any(t["connected"] for t in cross), summary
    # A cross-shard task may lack its root only because the SIGKILLed
    # shard lost it unshipped — never because stitching left a span
    # dangling under a known root.
    for t in cross:
        if not t["connected"]:
            assert t["orphans"] == 0, t


def test_observe_trace_carries_cluster_health_series(soak_result):
    from repro.telemetry.export import read_jsonl

    data = read_jsonl(soak_result["observe"]["trace"])
    names = {rec.get("name") for rec in data.series}
    assert "repro_load_imbalance" in names
    assert "repro_sched_miss_ratio" in names
    scoped = [
        rec for rec in data.series
        if (rec.get("labels") or {}).get("scope") == "cluster"
    ]
    assert scoped and all(rec.get("v") for rec in scoped)


def test_observe_merges_cluster_folded_profile(soak_result):
    from repro.profiling.folded import read_folded

    obs = soak_result["observe"]
    assert obs.get("folded") and os.path.exists(obs["folded"])
    counts = read_folded(obs["folded"])
    assert counts and sum(counts.values()) > 0
    # At least one live-runtime frame made it into the cluster flame.
    assert any("repro" in stack for stack in counts)


def test_observe_correlated_bundle_collects_shards(soak_result):
    bundles = soak_result["observe"]["bundles"]
    checkpoint = [
        b for b in bundles if b["reason"] == "soak_checkpoint"
    ]
    assert checkpoint, bundles
    bundle = checkpoint[-1]
    # The snapshot fan-out gathered a dump from every live shard.
    assert len(bundle["shards"]) >= 2, bundle
    manifest_path = os.path.join(bundle["dir"], "manifest.json")
    with open(manifest_path, "r", encoding="utf-8") as fh:
        manifest = json.load(fh)
    assert manifest["reason"] == "soak_checkpoint"
    for sid in bundle["shards"]:
        dump = os.path.join(bundle["dir"], f"{sid}.jsonl")
        assert os.path.exists(dump)
        with open(dump, "r", encoding="utf-8") as fh:
            first = json.loads(fh.readline())
        assert first.get("type") == "meta"


def test_observe_shard_profilers_stayed_under_budget(soak_result):
    """The GIL-model acceptance check: every shard's wall profiler ran
    with the handoff model on and its estimated (not just measured)
    cost stayed under 5% of the run."""
    profiles = soak_result["observe"]["profiles"]
    assert profiles, soak_result["observe"]
    for sid, prof in profiles.items():
        assert prof["samples"] > 0, (sid, prof)
        assert prof.get("gil_per_sample_s", 0) > 0, (sid, prof)
        assert prof["estimated_seconds"] >= prof["gil_seconds"]
        assert prof["budget"]["overhead_cumulative"] < 0.05, (sid, prof)

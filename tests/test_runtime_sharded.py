"""The sharded multi-process runtime, end to end.

The acceptance scenario for the cluster supervisor: shard processes
spawned over a control pipe, the decentralized roster assembling one
domain across them, a SIGKILLed shard respawned with its nodes
re-joining under their old ids, task conservation through the fault,
aggregated metrics, and a graceful drain.  Everything runs at miniature
scale (a handful of peers, a few shards) — the CI ``live-soak-smoke``
job runs the same scenario at 200 peers via ``repro-live-soak``.

Pure-function layers (spec partitioning, Prometheus merging, the task
ledger) are unit-tested without processes first.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.runtime.node import NodeSpec
from repro.runtime.supervisor import (
    TaskLedger,
    merge_prometheus,
    partition_specs,
)

pytestmark = pytest.mark.integration


def run(coro):
    return asyncio.run(coro)


# -- pure layers -------------------------------------------------------------

def specs(n):
    return [NodeSpec(node_id=f"P{i}") for i in range(n)]


def test_partition_specs_round_robin():
    buckets = partition_specs(specs(7), 3)
    assert [len(b) for b in buckets] == [3, 2, 2]
    # Shard 0 gets the first spec — the RM candidate stays on s0.
    assert buckets[0][0].node_id == "P0"
    got = sorted(s.node_id for b in buckets for s in b)
    assert got == sorted(s.node_id for s in specs(7))


def test_partition_specs_drops_empty_buckets():
    # More shards than specs: empty shards would never join; they are
    # elided rather than spawned.
    buckets = partition_specs(specs(2), 4)
    assert [len(b) for b in buckets] == [1, 1]


def test_merge_prometheus_sums_series():
    a = (
        "# HELP repro_x things\n"
        "# TYPE repro_x gauge\n"
        "repro_x 2\n"
        'repro_y{shard="s0"} 1\n'
    )
    b = (
        "# HELP repro_x things\n"
        "# TYPE repro_x gauge\n"
        "repro_x 3\n"
        'repro_y{shard="s1"} 5\n'
    )
    text = merge_prometheus([a, b])
    lines = text.splitlines()
    # One HELP/TYPE pair survives; same-name same-label samples sum;
    # distinct label sets stay distinct.
    assert lines.count("# HELP repro_x things") == 1
    assert "repro_x 5.0" in lines
    assert 'repro_y{shard="s0"} 1.0' in lines
    assert 'repro_y{shard="s1"} 5.0' in lines


def test_task_ledger_conservation_accounting():
    led = TaskLedger()
    led.on_rm_event("t1", "admitted", None)
    led.on_rm_event("t2", "admitted", None)
    assert sorted(led.open_tasks()) == ["t1", "t2"]
    led.on_rm_event("t1", "completed", "ok")
    led.on_rm_event("t2", "reassigned", None)
    assert led.open_tasks() == ["t2"]
    led.on_rm_event("t2", "failed", "failed")
    assert led.open_tasks() == []
    counts = led.counts()
    assert counts["seen"] == 2 and counts["terminal"] == 2
    assert counts["open"] == 0 and counts["reassigned"] == 1
    assert counts["completed"] == 1 and counts["failed"] == 1
    # Terminal is latched: a duplicate event cannot reopen a task.
    led.on_rm_event("t1", "completed", "ok")
    assert led.counts()["terminal"] == 2


# -- the full multi-process scenario -----------------------------------------

@pytest.fixture(scope="module")
def soak_result():
    """One shared miniature soak: spawn, kill+respawn, settle, drain."""
    from repro.runtime.soak import SoakConfig, run_soak

    cfg = SoakConfig(
        peers=8, shards=3, duration=6.0, task_rate=3.0,
        profiler_update_period=0.5, join_timeout=30.0,
        settle_grace=45.0, object_duration_s=1.0,
    )
    return run(run_soak(cfg))


def test_soak_passes_every_acceptance_check(soak_result):
    assert soak_result["ok"], soak_result


def test_killed_shard_respawns_and_rejoins(soak_result):
    victim = soak_result["killed"]
    assert victim is not None and soak_result["respawned"]
    assert soak_result["restarts"][victim] >= 1
    # Every *other* shard came through without a restart.
    assert all(
        n == 0 for sid, n in soak_result["restarts"].items()
        if sid != victim
    )


def test_roster_reconverges_after_the_fault(soak_result):
    # Every shard's replica counts the full population again: the
    # respawned nodes re-joined under their old ids (9 nodes, 3 agents).
    assert soak_result["converged"], soak_result


def test_no_task_lost_through_kill_and_drain(soak_result):
    counts = soak_result["tasks"]
    assert soak_result["no_task_lost"]
    assert counts["open"] == 0
    assert counts["terminal"] == counts["seen"]
    assert counts["submit_failures"] == 0
    assert counts["seen"] > 0  # the stream actually flowed


def test_supervisor_metrics_aggregate_all_shards(soak_result):
    assert soak_result["metrics_ok"]


def test_graceful_drain_left_cleanly(soak_result):
    assert soak_result["drain"] is not None
    assert soak_result["drain"]["ok"], soak_result["drain"]
    # The drained shard was not the one we killed, nor the RM's.
    assert soak_result["drain"]["shard"] != soak_result["killed"]

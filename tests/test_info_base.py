"""The Resource Manager's information base (§3.1)."""

import pytest

from repro.common.errors import UnknownPeer
from repro.core.info_base import DomainInfoBase, PeerRecord
from repro.graphs.service_graph import ServiceGraph, ServiceStep
from repro.monitoring.profiler import LoadReport


def report(pid, load, power=10.0, t=0.0):
    return LoadReport(
        peer_id=pid, time=t, power=power, utilization=load / power,
        load=load, bw_used=0.0, queue_work=0.0, queue_length=0,
    )


@pytest.fixture
def info():
    base = DomainInfoBase("d0", "rm0")
    for pid in ("p1", "p2", "p3"):
        base.add_peer(PeerRecord(peer_id=pid, power=10.0, bandwidth=1e6))
    return base


class TestRoster:
    def test_duplicate_add_rejected(self, info):
        with pytest.raises(ValueError):
            info.add_peer(PeerRecord(peer_id="p1", power=1.0, bandwidth=1.0))

    def test_unknown_lookup(self, info):
        with pytest.raises(UnknownPeer):
            info.peer("ghost")
        with pytest.raises(UnknownPeer):
            info.remove_peer("ghost")

    def test_remove_peer_returns_pruned_edges(self, info):
        info.register_service_instance("a", "b", "s1", "p1", 1.0)
        info.register_service_instance("b", "c", "s2", "p1", 1.0)
        info.register_service_instance("a", "c", "s3", "p2", 1.0)
        removed = info.remove_peer("p1")
        assert len(removed) == 2
        assert info.resource_graph.n_edges == 1
        assert not info.has_peer("p1") and info.n_peers == 2


class TestLoadView:
    def test_unreported_peer_has_zero_load(self, info):
        assert info.effective_load("p1", now=0.0) == 0.0

    def test_report_updates_load(self, info):
        info.update_from_report(report("p1", 4.0, t=5.0))
        assert info.effective_load("p1", now=6.0) == 4.0
        assert info.staleness("p1", now=8.0) == pytest.approx(3.0)

    def test_staleness_inf_before_first_report(self, info):
        assert info.staleness("p1", now=100.0) == float("inf")

    def test_projection_adds_to_load(self, info):
        info.update_from_report(report("p1", 4.0))
        info.project_allocation("t1", {"p1": 2.0}, expires_at=50.0)
        assert info.effective_load("p1", now=0.0) == 6.0

    def test_projection_expires(self, info):
        info.project_allocation("t1", {"p1": 2.0}, expires_at=50.0)
        assert info.effective_load("p1", now=51.0) == 0.0

    def test_release_projection(self, info):
        info.project_allocation("t1", {"p1": 2.0, "p2": 1.0},
                                expires_at=1e9)
        info.release_projection("t1")
        assert info.effective_load("p1", now=0.0) == 0.0
        assert info.effective_load("p2", now=0.0) == 0.0

    def test_projection_for_unknown_peer_ignored(self, info):
        info.project_allocation("t1", {"ghost": 5.0}, expires_at=1e9)
        # no exception, nothing recorded

    def test_load_vector_covers_all_peers(self, info):
        info.update_from_report(report("p2", 3.0))
        vec = info.load_vector(now=0.0)
        assert set(vec.peers()) == {"p1", "p2", "p3"}
        assert vec.get("p2") == 3.0

    def test_utilization_vector(self, info):
        info.update_from_report(report("p1", 5.0))
        utils = info.utilization_vector(now=0.0)
        assert utils["p1"] == pytest.approx(0.5)
        assert utils["p2"] == 0.0

    def test_zero_power_claim_does_not_crash_utilization(self, info):
        """A peer that joins claiming zero power must not divide by 0."""
        info.add_peer(PeerRecord(peer_id="z", power=0.0, bandwidth=1e6))
        info.update_from_report(report("z", 1.0, power=10.0))
        utils = info.utilization_vector(now=0.0)
        assert utils["z"] > 0.0  # clamped denominator, huge utilization
        assert info.mean_utilization(now=0.0) > 0.0

    def test_release_projection_leaves_no_residue(self, info):
        """Churny task turnover must not grow _projections forever."""
        for i in range(5):
            info.project_allocation(f"t{i}", {"p1": 2.0}, expires_at=1e9)
            info.release_projection(f"t{i}")
        assert "p1" not in info._projections

    def test_expiry_sweep_deletes_drained_entries(self, info):
        info.project_allocation("t1", {"p1": 2.0}, expires_at=10.0)
        assert "p1" in info._projections
        info.effective_load("p1", now=11.0)  # sweep: all deltas expired
        assert "p1" not in info._projections


class TestObjectsAndServices:
    def test_peers_with_object(self, info):
        info.peer("p1").objects.add("movie")
        info.peer("p3").objects.add("movie")
        assert set(info.peers_with_object("movie")) == {"p1", "p3"}
        assert info.peers_with_object("ghost") == []

    def test_all_objects_and_services(self, info):
        info.peer("p1").objects.add("o1")
        info.peer("p2").objects.add("o2")
        info.register_service_instance("a", "b", "svcX", "p1", 1.0)
        assert info.all_objects() == {"o1", "o2"}
        assert "svcX" in info.all_services()

    def test_register_service_instance_updates_roster(self, info):
        edge = info.register_service_instance("a", "b", "svc", "p2", 2.0)
        assert "svc" in info.peer("p2").services
        assert edge.peer_id == "p2"
        assert info.resource_graph.has_edge(edge.edge_id)


class TestRunningTasks:
    def make_graph(self, task_id, peers):
        steps = [
            ServiceStep(index=i, service_id=f"s{i}", peer_id=p,
                        work=1.0, out_bytes=0.0, src_state=i,
                        dst_state=i + 1)
            for i, p in enumerate(peers)
        ]
        return ServiceGraph(task_id, peers[0], peers[-1], steps)

    def test_register_and_drop(self, info):
        g = self.make_graph("t1", ["p1", "p2"])
        info.register_service_graph(g)
        assert info.service_graphs["t1"] is g
        assert info.drop_service_graph("t1") is g
        assert info.drop_service_graph("t1") is None

    def test_tasks_using_peer(self, info):
        info.register_service_graph(self.make_graph("t1", ["p1", "p2"]))
        info.register_service_graph(self.make_graph("t2", ["p3", "p3"]))
        using_p2 = info.tasks_using_peer("p2")
        assert [g.task_id for g in using_p2] == ["t1"]

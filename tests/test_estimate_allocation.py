"""Completion-time estimation and the Fig-3 allocation algorithm."""

import pytest

from repro.common.errors import NoFeasibleAllocation
from repro.core.allocation import Allocator, select_max_fairness
from repro.core.estimate import CompletionTimeEstimator
from repro.core.info_base import DomainInfoBase, PeerRecord
from repro.media.fig1 import build_fig1_graph
from repro.monitoring.profiler import LoadReport
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.sim.core import Environment
from repro.tasks.qos import QoSRequirements
from repro.tasks.task import ApplicationTask


def make_domain(loads=None, power=10.0):
    loads = loads or {}
    env = Environment()
    net = Network(env, ConstantLatency(0.01), bandwidth=1.25e6)
    info = DomainInfoBase("d0", "rm0")
    scenario = build_fig1_graph()
    for pid in scenario.peers:
        rec = PeerRecord(peer_id=pid, power=power, bandwidth=1.25e6)
        info.add_peer(rec)
        rec.last_report = LoadReport(
            peer_id=pid, time=0.0, power=power,
            utilization=loads.get(pid, 0.0) / power,
            load=loads.get(pid, 0.0), bw_used=0.0,
            queue_work=0.0, queue_length=0,
        )
        rec.reported_at = 0.0
    for edge in scenario.graph.edges():
        info.register_service_instance(
            edge.src, edge.dst, edge.service_id, edge.peer_id,
            edge.work, edge.out_bytes, edge_id=edge.edge_id,
        )
    return info, net, scenario


def make_task(deadline=60.0, scenario=None):
    sc = scenario or build_fig1_graph()
    return ApplicationTask(
        name="movie", qos=QoSRequirements(deadline=deadline),
        initial_state=sc.v_init, goal_state=sc.v_sol,
        origin_peer="P4", submitted_at=0.0,
    )


class TestEstimator:
    def test_validation(self):
        with pytest.raises(ValueError):
            CompletionTimeEstimator(min_free_frac=0.0)
        with pytest.raises(ValueError):
            CompletionTimeEstimator(safety_margin=1.0)
        with pytest.raises(ValueError):
            CompletionTimeEstimator(max_utilization=0.0)

    def test_service_time_slows_with_load(self):
        info, net, sc = make_domain(loads={"P1": 0.0})
        est = CompletionTimeEstimator()
        edge = info.resource_graph.edge("e1")
        t_idle = est.service_time(info, edge, now=0.0)
        info2, _, _ = make_domain(loads={"P1": 8.0})
        edge2 = info2.resource_graph.edge("e1")
        t_busy = est.service_time(info2, edge2, now=0.0)
        assert t_busy > 4 * t_idle

    def test_service_time_floor_at_saturation(self):
        info, net, sc = make_domain(loads={"P1": 10.0})
        est = CompletionTimeEstimator(min_free_frac=0.05)
        edge = info.resource_graph.edge("e1")
        t = est.service_time(info, edge, now=0.0)
        assert t == pytest.approx(edge.work / (10.0 * 0.05))

    def test_work_scale_scales_time(self):
        info, net, sc = make_domain()
        est = CompletionTimeEstimator()
        edge = info.resource_graph.edge("e1")
        assert est.service_time(info, edge, 0.0, work_scale=2.0) == \
            pytest.approx(2 * est.service_time(info, edge, 0.0))

    def test_transfer_time_zero_for_self_or_empty(self):
        info, net, sc = make_domain()
        est = CompletionTimeEstimator()
        assert est.transfer_time(net, "P1", "P1", 1e6) == 0.0
        assert est.transfer_time(net, "P1", "P2", 0.0) == 0.0

    def test_estimate_path_sums_hops(self):
        info, net, sc = make_domain()
        est = CompletionTimeEstimator()
        path = [info.resource_graph.edge("e1"),
                info.resource_graph.edge("e2")]
        total = est.estimate_path(
            info, net, path, 0.0, "P1", "P4", in_bytes=3.84e6
        )
        manual = (
            est.service_time(info, path[0], 0.0)  # e1 at P1 (src local)
            + est.transfer_time(net, "P1", "P2", path[0].out_bytes)
            + est.service_time(info, path[1], 0.0)
            + est.transfer_time(net, "P2", "P4", path[1].out_bytes)
        )
        assert total == pytest.approx(manual)

    def test_estimate_inf_for_missing_peer(self):
        info, net, sc = make_domain()
        edge = info.resource_graph.edge("e1")
        info.remove_peer("P1")
        est = CompletionTimeEstimator()
        assert est.estimate_path(
            info, net, [edge], 0.0, "P2", "P4", 1e6
        ) == float("inf")

    def test_capacity_overload_check(self):
        info, net, sc = make_domain(loads={"P1": 9.5})
        est = CompletionTimeEstimator(max_utilization=1.0)
        edge = info.resource_graph.edge("e1")  # ~16 work units
        # With a 10s deadline the demanded rate 1.6 exceeds free 0.5.
        assert est.path_overloads(info, [edge], 0.0, deadline=10.0)
        # A long deadline demands little rate.
        assert not est.path_overloads(info, [edge], 0.0, deadline=1000.0)

    def test_feasible_rejects_nonpositive_deadline(self):
        info, net, sc = make_domain()
        edge = info.resource_graph.edge("e1")
        est = CompletionTimeEstimator()
        assert not est.feasible(
            info, net, [edge], deadline=0.0, now=0.0,
            source_peer="P1", sink_peer="P4", in_bytes=1e6,
        )


class TestAllocator:
    def test_fig1_picks_lightest_short_path(self):
        """With P2 busy, fairness-max prefers e3 at P3 (the §4.3 story)."""
        info, net, sc = make_domain(loads={"P1": 2.0, "P2": 5.0,
                                           "P3": 1.0, "P4": 1.0})
        task = make_task(scenario=sc)
        result = Allocator().allocate(
            info, net, task, sc.v_init, sc.v_sol,
            source_peer="P1", sink_peer="P4",
            in_bytes=sc.source_object.size_bytes, now=0.0,
        )
        assert result.edge_ids == ["e1", "e3"]
        assert result.n_candidates == 3

    def test_choice_flips_with_load(self):
        """Loading P3 steers the winner away from e3 (hosted at P3)."""
        info, net, sc = make_domain(loads={"P1": 2.0, "P2": 1.0,
                                           "P3": 5.0, "P4": 1.0})
        task = make_task(scenario=sc)
        result = Allocator().allocate(
            info, net, task, sc.v_init, sc.v_sol,
            source_peer="P1", sink_peer="P4",
            in_bytes=sc.source_object.size_bytes, now=0.0,
        )
        assert "e3" not in result.edge_ids
        assert all(e.peer_id != "P3" for e in result.path)

    def test_no_path_reason(self):
        info, net, sc = make_domain()
        task = make_task(scenario=sc)
        with pytest.raises(NoFeasibleAllocation) as exc:
            Allocator().allocate(
                info, net, task, "nonexistent-state", sc.v_sol,
                "P1", "P4", 1e6, 0.0,
            )
        assert exc.value.reason == "no_path"

    def test_qos_reason_when_deadline_impossible(self):
        info, net, sc = make_domain()
        task = make_task(deadline=0.5, scenario=sc)  # far too tight
        with pytest.raises(NoFeasibleAllocation) as exc:
            Allocator().allocate(
                info, net, task, sc.v_init, sc.v_sol,
                "P1", "P4", sc.source_object.size_bytes, 0.0,
            )
        assert exc.value.reason == "qos"

    def test_expired_task_rejected(self):
        info, net, sc = make_domain()
        task = make_task(deadline=10.0, scenario=sc)
        with pytest.raises(NoFeasibleAllocation):
            Allocator().allocate(
                info, net, task, sc.v_init, sc.v_sol,
                "P1", "P4", 1e6, now=task.submitted_at + 11.0,
            )

    def test_remaining_deadline_shrinks_feasible_set(self):
        """A redirected task (clock already running) gets stricter checks."""
        info, net, sc = make_domain()
        task = make_task(deadline=12.0, scenario=sc)
        result_fresh = Allocator().allocate(
            info, net, task, sc.v_init, sc.v_sol,
            "P1", "P4", sc.source_object.size_bytes, now=0.0,
        )
        assert result_fresh is not None
        with pytest.raises(NoFeasibleAllocation):
            Allocator().allocate(
                info, net, task, sc.v_init, sc.v_sol,
                "P1", "P4", sc.source_object.size_bytes, now=8.0,
            )

    def test_deltas_and_max_post_util(self):
        info, net, sc = make_domain()
        task = make_task(deadline=60.0, scenario=sc)
        result = Allocator().allocate(
            info, net, task, sc.v_init, sc.v_sol,
            "P1", "P4", sc.source_object.size_bytes, 0.0,
        )
        for edge in result.path:
            assert result.deltas[edge.peer_id] > 0
        expected = {
            e.peer_id: e.work / 60.0 for e in result.path
        }
        for pid, delta in expected.items():
            assert result.deltas[pid] == pytest.approx(delta)

    def test_custom_selector_used(self):
        picked = {}

        def pick_last(candidates):
            picked["n"] = len(candidates)
            return candidates[-1]

        info, net, sc = make_domain()
        task = make_task(scenario=sc)
        result = Allocator(selector=pick_last).allocate(
            info, net, task, sc.v_init, sc.v_sol,
            "P1", "P4", sc.source_object.size_bytes, 0.0,
        )
        assert picked["n"] == 3
        assert result.edge_ids == ["e1", "e4", "e5", "e8"]

    def test_select_max_fairness_tie_keeps_first(self):
        from repro.core.allocation import Candidate

        a = Candidate([], 0.5, 1.0, {})
        b = Candidate([], 0.5, 2.0, {})
        assert select_max_fairness([a, b]) is a

    def test_max_candidates_cap(self):
        info, net, sc = make_domain()
        task = make_task(scenario=sc)
        result = Allocator(max_candidates=1).allocate(
            info, net, task, sc.v_init, sc.v_sol,
            "P1", "P4", sc.source_object.size_bytes, 0.0,
        )
        assert result.n_candidates == 1

    def test_allocation_pairs(self):
        info, net, sc = make_domain()
        task = make_task(scenario=sc)
        result = Allocator().allocate(
            info, net, task, sc.v_init, sc.v_sol,
            "P1", "P4", sc.source_object.size_bytes, 0.0,
        )
        pairs = result.allocation_pairs()
        assert all(isinstance(s, str) and isinstance(p, str)
                   for s, p in pairs)

"""End-to-end: a live domain over localhost UDP completes a media task.

The acceptance scenario for the live runtime: a
:class:`~repro.runtime.cluster.LiveCluster` of one bootstrap, one
elected RM and four peers — real sockets, wall-clock event kernels —
admits and completes a Figure-1 transcoding task through the full
``TASK_REQUEST -> TASK_ACK -> COMPOSE -> START_STREAM -> STREAM ->
STEP_DONE -> TASK_DONE`` chain, using the *same* protocol handler code
paths as the simulator (asserted by handler-identity below — there is
no second dispatch table).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core import protocol
from repro.core.manager import ResourceManager
from repro.core.peer import Peer
from repro.net.network import ConstantLatency, Network
from repro.runtime.cluster import LiveCluster, LiveClusterConfig
from repro.runtime.node import NodeSpec
from repro.sim.core import Environment

pytestmark = pytest.mark.integration


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def live_run():
    """One shared live run: boot, stream a task, late-join, leave."""
    async def main():
        out = {}
        config = LiveClusterConfig(object_duration_s=3.0)
        async with LiveCluster(config) as cluster:
            rm = cluster.rm_node
            out["rm_id"] = rm.node_id
            out["peer_ids"] = sorted(n.node_id for n in cluster.peers())
            out["rm_handlers"] = dict(rm.node._handlers)
            out["peer_handlers"] = {
                n.node_id: dict(n.node._handlers) for n in cluster.peers()
            }
            out["rm_obj"] = rm.node
            out["peer_objs"] = {n.node_id: n.node for n in cluster.peers()}

            ack = await cluster.submit("P4", deadline=20.0, timeout=15.0)
            out["ack"] = ack
            await cluster.wait_task_event(
                ack["task_id"], "completed", timeout=15.0
            )
            task = cluster.task(ack["task_id"])
            out["task_state"] = task.state.name
            out["allocation"] = list(task.allocation)
            out["events"] = [
                ev for _, tid, ev in cluster.task_events
                if tid == ack["task_id"]
            ]

            # Late join through the bootstrap -> RM forwarding path.
            await cluster.add_peer(NodeSpec(node_id="P9", power=8.0))
            await asyncio.sleep(0.1)
            out["p9_admitted"] = rm.node.info.has_peer("P9")

            # Graceful departure prunes the roster via PEER_LEAVE.
            await cluster.remove_peer("P9")
            await asyncio.sleep(0.1)
            out["p9_after_leave"] = rm.node.info.has_peer("P9")

            # Idle past one profiler period so at least one wall-clock
            # LOAD_UPDATE heartbeat crosses the wire.
            await asyncio.sleep(config.profiler_update_period + 0.3)
            out["aggregate"] = cluster.aggregate_summary()
            out["summaries"] = cluster.summaries()
        return out
    return run(main())


def test_election_yields_one_rm_and_four_peers(live_run):
    # M0 is provisioned to win the §4.1 qualification ranking.
    assert live_run["rm_id"] == "M0"
    assert live_run["peer_ids"] == ["P1", "P2", "P3", "P4"]
    assert isinstance(live_run["rm_obj"], ResourceManager)
    assert all(isinstance(p, Peer) for p in live_run["peer_objs"].values())


def test_task_completes_end_to_end_over_udp(live_run):
    assert live_run["ack"]["disposition"] == "accepted"
    assert live_run["task_state"] == "DONE"
    assert live_run["events"] == ["submitted", "admitted", "completed"]
    # The paper's Figure-1 chain: transcode at P1 then P2/P3.
    services = [s for s, _ in live_run["allocation"]]
    assert services[0] == "T-e1"
    assert len(services) >= 2


def test_full_message_chain_crossed_the_wire(live_run):
    kinds = live_run["aggregate"]["by_kind"]
    for kind in (
        protocol.JOIN_REQUEST, protocol.JOIN_ACK, protocol.TASK_REQUEST,
        protocol.TASK_ACK, protocol.COMPOSE, protocol.START_STREAM,
        protocol.STREAM, protocol.STEP_DONE, protocol.TASK_DONE,
    ):
        assert kinds.get(kind, 0) >= 1, f"no {kind} observed on the wire"
    # Heartbeats flowed on the wall-clock timer path.
    assert kinds.get(protocol.LOAD_UPDATE, 0) >= 1
    # Reliable delivery: nothing dropped on loopback UDP.
    assert live_run["aggregate"]["dropped"] == 0


def test_live_handlers_are_the_simulator_handlers(live_run):
    """No forked protocol logic: the live dispatch tables are the very
    same bound methods a simulator-constructed Peer/RM registers."""
    env = Environment()
    net = Network(env, ConstantLatency(0.01))
    sim_rm = ResourceManager(env, net, "sim_rm", "dsim")
    sim_peer = Peer(env, net, "sim_p", rm_id="sim_rm")

    def table(handlers):
        return {
            kind: getattr(fn, "__func__", fn)
            for kind, fn in handlers.items()
        }

    sim_rm_table = table(sim_rm._handlers)
    live_rm_table = table(live_run["rm_handlers"])
    # Every simulator RM handler appears unchanged in the live RM.
    for kind, fn in sim_rm_table.items():
        assert live_rm_table[kind] is fn, f"forked RM handler for {kind}"
    # The only live-side addition is membership wiring (JOIN_REQUEST
    # forwarded by the bootstrap) — not a protocol fork.
    assert set(live_rm_table) - set(sim_rm_table) == {protocol.JOIN_REQUEST}

    sim_peer_table = table(sim_peer._handlers)
    for peer_id, handlers in live_run["peer_handlers"].items():
        live_table = table(handlers)
        assert live_table == {
            kind: fn for kind, fn in sim_peer_table.items()
        }, f"peer {peer_id} dispatch table diverged from the simulator"


def test_membership_churn_over_the_wire(live_run):
    assert live_run["p9_admitted"] is True
    assert live_run["p9_after_leave"] is False


def test_per_node_summaries_share_the_stats_shape(live_run):
    for node_id, summary in live_run["summaries"].items():
        assert {"sent", "delivered", "dropped", "by_kind",
                "retransmits", "duplicates", "malformed",
                "acks_sent"} <= set(summary), node_id


# -- watcher bookkeeping (no sockets) ---------------------------------------

class _StubTask:
    def __init__(self, task_id):
        self.task_id = task_id
        self.finished_at = 1.0


def test_task_event_watchers_do_not_accumulate():
    """Regression: the cluster used to keep one Event per (task, event)
    forever — a week-long soak's watcher map grew without bound.  Fired
    watchers leave the map immediately; waiters hold their own ref."""
    async def main():
        cluster = LiveCluster(LiveClusterConfig(n_peers=1))
        waiter = asyncio.ensure_future(
            cluster.wait_task_event("t1", "completed", timeout=5.0)
        )
        await asyncio.sleep(0)  # let the waiter register
        assert ("t1", "completed") in cluster._watchers
        cluster._on_task_event(_StubTask("t1"), "completed")
        await waiter
        assert cluster._watchers == {}
        # Events nobody waits for never create watcher entries at all.
        for i in range(50):
            cluster._on_task_event(_StubTask(f"bulk{i}"), "completed")
        assert cluster._watchers == {}
    run(main())


def test_task_event_wait_timeout_removes_watcher():
    """A timed-out wait must not strand its Event in the map."""
    async def main():
        cluster = LiveCluster(LiveClusterConfig(n_peers=1))
        with pytest.raises(asyncio.TimeoutError):
            await cluster.wait_task_event("ghost", "completed", timeout=0.01)
        assert cluster._watchers == {}
    run(main())


def test_fired_event_history_is_bounded():
    """The fired-key LRU stays at capacity under a long event stream;
    recent events remain answerable without a watcher."""
    async def main():
        cluster = LiveCluster(LiveClusterConfig(n_peers=1))
        cap = cluster._fired_capacity
        for i in range(cap + 500):
            cluster._on_task_event(_StubTask(f"t{i}"), "completed")
        assert len(cluster._fired) == cap
        # The newest event answers instantly from the fired set.
        await cluster.wait_task_event(
            f"t{cap + 499}", "completed", timeout=0.01
        )
        # The oldest was evicted: waiting on it now times out.
        with pytest.raises(asyncio.TimeoutError):
            await cluster.wait_task_event("t0", "completed", timeout=0.01)
    run(main())

"""The Resource Manager: admission, sessions, repair, adaptation."""

from repro.core.manager import RMConfig
from repro.tasks.task import TaskOutcome, TaskState
from tests.conftest import build_live_domain


class TestAdmission:
    def test_accept_and_complete(self, live_domain):
        d = live_domain
        acks = d.submit(deadline=60.0)
        d.env.run(until=60.0)
        assert acks[0]["disposition"] == "accepted"
        task = d.task()
        assert task.outcome is TaskOutcome.MET_DEADLINE
        assert task.allocation  # non-empty chain
        assert d.rm.stats["admitted"] == 1
        assert d.rm.stats["completed"] == 1

    def test_unknown_object_rejected_without_other_domains(self, live_domain):
        d = live_domain
        acks = d.submit(name="ghost-object")
        d.env.run(until=5.0)
        assert acks[0]["disposition"] == "rejected"
        assert d.task().state is TaskState.REJECTED
        assert d.task().meta["reject_reason"] == "no_object"

    def test_impossible_deadline_rejected(self, live_domain):
        d = live_domain
        acks = d.submit(deadline=0.2)
        d.env.run(until=5.0)
        assert acks[0]["disposition"] == "rejected"

    def test_degenerate_task_source_equals_goal(self, live_domain):
        """Requesting the object's own format means a plain transfer."""
        d = live_domain
        acks = d.submit(goal=d.scenario.v_init, deadline=60.0)
        d.env.run(until=60.0)
        assert acks[0]["disposition"] == "accepted"
        task = d.task()
        assert task.allocation == []  # no transcoding steps
        assert task.outcome is TaskOutcome.MET_DEADLINE

    def test_origin_is_sink_receives_stream(self, live_domain):
        d = live_domain
        d.submit(origin="P3")
        d.env.run(until=60.0)
        completes = d.tracer.of_kind("peer.task_complete")
        assert completes and completes[0]["peer"] == "P3"

    def test_projection_released_after_completion(self, live_domain):
        d = live_domain
        d.submit()
        d.env.run(until=60.0)
        task = d.task()
        for pid in {p for _s, p in task.allocation}:
            assert d.rm.info.effective_load(pid, d.env.now) == \
                d.rm.info.peer(pid).reported_load

    def test_concurrent_tasks_all_complete(self, live_domain):
        d = live_domain
        for origin in ("P2", "P3", "P4"):
            d.submit(origin=origin, deadline=90.0)
        d.env.run(until=120.0)
        outcomes = [t.outcome for t in d.rm.tasks.values()]
        assert all(o is TaskOutcome.MET_DEADLINE for o in outcomes)


class TestFailureHandling:
    def test_peer_crash_triggers_repair(self):
        d = build_live_domain()
        d.submit(deadline=90.0)

        def killer():
            yield d.env.timeout(4.0)  # step 1 executing at P2
            d.peers["P2"].fail()

        d.env.process(killer())
        d.env.run(until=120.0)
        task = d.task()
        assert task.repairs >= 1
        assert task.outcome is TaskOutcome.MET_DEADLINE
        assert d.rm.stats["repairs"] >= 1
        # P2's services are gone from the resource graph.
        assert d.rm.info.resource_graph.edges_at_peer("P2") == []
        assert not d.rm.info.has_peer("P2")

    def test_repair_disabled_fails_task(self):
        d = build_live_domain(rm_config=RMConfig(enable_repair=False))
        d.submit(deadline=90.0)

        def killer():
            yield d.env.timeout(4.0)
            d.peers["P2"].fail()

        d.env.process(killer())
        d.env.run(until=150.0)
        task = d.task()
        assert task.outcome is TaskOutcome.FAILED
        assert d.rm.stats["failed"] == 1

    def test_graceful_leave_detected_immediately(self):
        d = build_live_domain()
        d.submit(deadline=90.0)

        def leaver():
            yield d.env.timeout(4.0)
            d.peers["P2"].leave()

        d.env.process(leaver())
        d.env.run(until=20.0)
        # PEER_LEAVE beats the silence detector: roster updated well
        # before the ~7s liveness timeout would fire.
        assert not d.rm.info.has_peer("P2")

    def test_origin_failure_fails_task(self):
        d = build_live_domain()
        d.submit(origin="P4", deadline=90.0)

        def killer():
            yield d.env.timeout(2.0)
            d.peers["P4"].fail()

        d.env.process(killer())
        d.env.run(until=150.0)
        assert d.task().outcome is TaskOutcome.FAILED

    def test_lost_task_declared_after_grace(self):
        d = build_live_domain(
            rm_config=RMConfig(task_loss_grace=5.0, enable_repair=False)
        )
        d.submit(deadline=20.0)

        def killer():
            yield d.env.timeout(4.0)
            d.peers["P2"].fail()

        d.env.process(killer())
        d.env.run(until=60.0)
        task = d.task()
        assert task.outcome is TaskOutcome.FAILED
        # failed either by repair-disabled path or by loss grace; both
        # clean up the session.
        assert task.task_id not in d.rm.sessions


class TestSnapshotRestore:
    def test_round_trip_preserves_domain_view(self, live_domain):
        d = live_domain
        d.submit(deadline=90.0)
        d.env.run(until=3.0)
        snap = d.rm.snapshot_state()
        from repro.core.manager import ResourceManager

        backup = ResourceManager(
            d.env, d.net, "backup0", "d0", active=False
        )
        backup.restore_state(snap)
        assert set(backup.info.peers) == set(d.rm.info.peers)
        assert backup.object_catalog.keys() == d.rm.object_catalog.keys()
        assert backup.info.resource_graph.n_edges == \
            d.rm.info.resource_graph.n_edges
        assert set(backup.tasks) == set(d.rm.tasks)
        assert set(backup.sessions) == set(d.rm.sessions)

    def test_snapshot_peer_records_are_copies(self, live_domain):
        d = live_domain
        snap = d.rm.snapshot_state()
        snap["peers"]["P1"].objects.add("tampered")
        assert "tampered" not in d.rm.info.peer("P1").objects


class TestJoinDecision:
    def test_accept_when_room(self, live_domain):
        assert live_domain.rm.consider_join(10.0, 1e6, 0.9) == "accept"

    def test_promote_when_full(self):
        d = build_live_domain(rm_config=RMConfig(max_peers=4))
        assert d.rm.is_full
        assert d.rm.consider_join(10.0, 1e6, 0.9) == "promote"

    def test_passive_rm_redirects(self, live_domain):
        from repro.core.manager import ResourceManager

        backup = ResourceManager(
            live_domain.env, live_domain.net, "b0", "d0", active=False
        )
        assert backup.consider_join(10.0, 1e6, 0.9) == "redirect"

"""Environment: clock, queue ordering, run() modes, error surfacing."""

import pytest

from repro.sim import Environment
from repro.sim.events import NORMAL, URGENT


@pytest.fixture
def env():
    return Environment()


class TestClockAndQueue:
    def test_initial_time(self):
        assert Environment(initial_time=5.0).now == 5.0

    def test_peek_empty_is_inf(self, env):
        assert env.peek() == float("inf")

    def test_step_empty_raises(self, env):
        with pytest.raises(IndexError):
            env.step()

    def test_events_fire_in_time_order(self, env):
        order = []
        for delay in (3, 1, 2):
            ev = env.timeout(delay, delay)
            ev.callbacks.append(lambda e: order.append(e.value))
        env.run()
        assert order == [1, 2, 3]

    def test_same_time_fifo_within_priority(self, env):
        order = []
        for tag in "abc":
            ev = env.event()
            ev.callbacks.append(lambda e: order.append(e.value))
            ev.succeed(tag)
        env.run()
        assert order == ["a", "b", "c"]

    def test_urgent_beats_normal_at_same_time(self, env):
        order = []
        normal = env.event()
        normal.callbacks.append(lambda e: order.append("normal"))
        normal._ok = True
        normal._value = None
        env.schedule(normal, priority=NORMAL)
        urgent = env.event()
        urgent.callbacks.append(lambda e: order.append("urgent"))
        urgent._ok = True
        urgent._value = None
        env.schedule(urgent, priority=URGENT)
        env.run()
        assert order == ["urgent", "normal"]

    def test_double_schedule_rejected(self, env):
        ev = env.event().succeed()
        with pytest.raises(RuntimeError):
            env.schedule(ev)


class TestRunModes:
    def test_run_until_time_sets_clock(self, env):
        def ticker():
            while True:
                yield env.timeout(1)

        env.process(ticker())
        env.run(until=10.5)
        assert env.now == 10.5

    def test_run_until_time_in_past_raises(self):
        env = Environment(initial_time=10.0)
        with pytest.raises(ValueError):
            env.run(until=5.0)

    def test_run_until_event_returns_value(self, env):
        def proc():
            yield env.timeout(4)
            return "result"

        assert env.run(env.process(proc())) == "result"
        assert env.now == 4.0

    def test_run_until_already_processed_event(self, env):
        ev = env.timeout(0, "x")
        env.run()
        assert env.run(until=ev) == "x"

    def test_run_until_event_failure_reraises(self, env):
        def proc():
            yield env.timeout(1)
            raise ValueError("inner")

        with pytest.raises(ValueError, match="inner"):
            env.run(env.process(proc()))

    def test_run_until_starved_event_raises(self, env):
        ev = env.event()  # never triggered, queue empties
        env.timeout(1)
        with pytest.raises(RuntimeError, match="starved"):
            env.run(until=ev)

    def test_run_to_exhaustion(self, env):
        env.timeout(1)
        env.timeout(2)
        env.run()
        assert env.now == 2.0

    def test_unhandled_failed_event_raises_from_run(self, env):
        ev = env.event()

        def failer():
            yield env.timeout(1)
            ev.fail(RuntimeError("unwitnessed"))

        env.process(failer())
        with pytest.raises(RuntimeError, match="unwitnessed"):
            env.run()


class TestDeterminism:
    def test_identical_runs_identical_traces(self):
        def build_and_run():
            env = Environment()
            log = []

            def worker(name, delay):
                yield env.timeout(delay)
                log.append((env.now, name))
                yield env.timeout(delay)
                log.append((env.now, name))

            for i in range(5):
                env.process(worker(f"w{i}", 1 + i * 0.1))
            env.run()
            return log

        assert build_and_run() == build_and_run()

"""RM qualification scoring (§4.1).

"The requirements for becoming a Resource Manager are: i) Sufficient
bandwidth, ii) Sufficient processing power, iii) Sufficient uptime.
According to how affluent a peer is in those resources, it is assigned
a score, that determines its position in the list of peers in the
domain that are eligible for becoming Resource Managers."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple


@dataclass(frozen=True)
class QualificationPolicy:
    """Thresholds and weights for RM eligibility.

    A peer qualifies only if it clears *all three* minimums; its score
    is then a weighted sum of its resources normalized by those
    minimums (so "twice the minimum bandwidth" adds ``w_bandwidth``).
    """

    min_power: float = 5.0
    min_bandwidth: float = 1e6
    min_uptime: float = 0.7
    w_power: float = 1.0
    w_bandwidth: float = 1.0
    w_uptime: float = 2.0

    def qualifies(
        self, power: float, bandwidth: float, uptime: float
    ) -> bool:
        """All three sufficiency requirements hold."""
        return (
            power >= self.min_power
            and bandwidth >= self.min_bandwidth
            and uptime >= self.min_uptime
        )

    def score(self, power: float, bandwidth: float, uptime: float) -> float:
        """Affluence score; higher = earlier in the eligible list."""
        if not self.qualifies(power, bandwidth, uptime):
            return 0.0
        return (
            self.w_power * power / self.min_power
            + self.w_bandwidth * bandwidth / self.min_bandwidth
            + self.w_uptime * uptime / self.min_uptime
        )

    def rank(
        self, candidates: Iterable[Tuple[str, float, float, float]]
    ) -> List[str]:
        """Order (peer_id, power, bandwidth, uptime) tuples by score.

        Unqualified peers are excluded; ties break by peer id so the
        eligible list is deterministic.
        """
        scored = [
            (self.score(p, b, u), pid)
            for pid, p, b, u in candidates
            if self.qualifies(p, b, u)
        ]
        scored.sort(key=lambda t: (-t[0], t[1]))
        return [pid for _score, pid in scored]

"""Primary -> backup state replication and takeover (§4.1).

"The first peer in the list serves as backup Resource Manager, keeping
an up-to-date copy of all the information the Resource Manager stores.
This is achieved by receiving periodic updates from the primary
Resource Manager.  When a Resource Manager disconnects, the backup
Resource Manager senses the withdrawn connection. It then takes over as
a Resource Manager, using its backup copy."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, Optional

from repro import telemetry
from repro.core import protocol
from repro.core.manager import ResourceManager
from repro.net.message import Message
from repro.sim.events import Event, Interrupt


@dataclass
class FailoverConfig:
    """Replication and failure-detection tunables."""

    sync_period: float = 5.0
    #: Declare the primary dead after this many silent sync periods.
    dead_after_periods: float = 3.0

    def __post_init__(self) -> None:
        if self.sync_period <= 0:
            raise ValueError("sync_period must be positive")
        if self.dead_after_periods < 1:
            raise ValueError("dead_after_periods must be >= 1")


class FailoverAgent:
    """Pairs a primary RM with its passive backup."""

    def __init__(
        self,
        primary: ResourceManager,
        backup: ResourceManager,
        config: Optional[FailoverConfig] = None,
        on_takeover: Optional[
            Callable[[str, ResourceManager], None]
        ] = None,
    ) -> None:
        if backup.active:
            raise ValueError("backup must be a passive ResourceManager")
        self.primary = primary
        self.backup = backup
        self.config = config or FailoverConfig()
        self.on_takeover = on_takeover
        self.last_sync: float = backup.env.now
        self.last_snapshot: Optional[Dict[str, Any]] = None
        self.took_over = False
        self.takeover_time: Optional[float] = None

        # replace=True: a spare from the eligible list may be paired
        # with a new primary after a takeover.
        backup.on(protocol.RM_SYNC, self._handle_sync, replace=True)
        self._sync_proc = primary.env.process(
            self._sync_loop(), name=f"rm-sync:{primary.node_id}"
        )
        self._watch_proc = backup.env.process(
            self._watch_loop(), name=f"rm-watch:{backup.node_id}"
        )

    # -- primary side ----------------------------------------------------------
    def _sync_loop(self) -> Generator[Event, Any, None]:
        env = self.primary.env
        try:
            while True:
                yield env.timeout(self.config.sync_period)
                if not self.primary.alive or not self.primary.active:
                    return
                self.primary.send(
                    protocol.RM_SYNC,
                    self.backup.node_id,
                    {"snapshot": self.primary.snapshot_state()},
                    size=protocol.size_of(protocol.RM_SYNC),
                )
        except Interrupt:
            return

    # -- backup side ---------------------------------------------------------------
    def _handle_sync(self, msg: Message) -> None:
        self.last_sync = self.backup.env.now
        self.last_snapshot = msg.payload["snapshot"]

    def _watch_loop(self) -> Generator[Event, Any, None]:
        env = self.backup.env
        limit = self.config.dead_after_periods * self.config.sync_period
        try:
            while True:
                yield env.timeout(self.config.sync_period)
                if self.took_over or not self.backup.alive:
                    return
                if env.now - self.last_sync <= limit:
                    continue
                self._takeover()
                return
        except Interrupt:
            return

    def _takeover(self) -> None:
        """The backup becomes the domain's Resource Manager."""
        self.took_over = True
        self.takeover_time = self.backup.env.now
        old_rm_id = self.primary.node_id
        tel = telemetry.current()
        if tel.enabled:
            tel.tracer.event(
                "failover.takeover", node=self.backup.node_id,
                old_rm=old_rm_id,
            )
            tel.metrics.counter("repro_rm_takeovers_total").inc()
        if self.last_snapshot is not None:
            self.backup.restore_state(self.last_snapshot)
        self.backup.activate()
        # The dead primary is still in the replicated roster: run the
        # normal departed-peer path so its services are pruned and its
        # tasks repaired.
        if self.backup.info.has_peer(old_rm_id):
            self.backup._peer_down(old_rm_id, graceful=False)
        if self.on_takeover is not None:
            self.on_takeover(old_rm_id, self.backup)

    def stop(self) -> None:
        env = self.backup.env
        for proc in (self._sync_proc, self._watch_proc):
            # stop() may be invoked from inside the watch loop itself
            # (takeover callback); the running process ends on its own.
            if proc.is_alive and proc is not env.active_process:
                proc.interrupt("stop")

    @property
    def recovery_delay(self) -> Optional[float]:
        """Takeover time minus the last successful sync (E8 metric)."""
        if self.takeover_time is None:
            return None
        return self.takeover_time - self.last_sync

"""Overlay construction and management (paper §4.1).

Peers are grouped into domains led by Resource Managers selected among
regular peers.  This package provides:

* :mod:`repro.overlay.qualification` — the RM eligibility score
  (bandwidth, processing power, uptime);
* :mod:`repro.overlay.network` — the :class:`OverlayNetwork` harness:
  join negotiation (accept / promote-to-new-domain / redirect), domain
  registry, backup designation;
* :mod:`repro.overlay.failover` — primary->backup state replication and
  backup takeover;
* :mod:`repro.overlay.churn` — peer arrival/departure processes for the
  dynamic-environment experiments.
"""

from repro.overlay.churn import ChurnConfig, ChurnProcess
from repro.overlay.failover import FailoverAgent, FailoverConfig
from repro.overlay.network import OverlayNetwork, PeerSpec
from repro.overlay.qualification import QualificationPolicy

__all__ = [
    "ChurnConfig",
    "ChurnProcess",
    "FailoverAgent",
    "FailoverConfig",
    "OverlayNetwork",
    "PeerSpec",
    "QualificationPolicy",
]

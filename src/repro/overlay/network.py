"""The overlay harness: join negotiation, domains, backups (§4.1).

"When a new peer joins the network, it connects to the Resource Manager
of its geographical domain ... If the Resource Manager has available
bandwidth and processing power, it accepts the processor in its domain,
and adds it to the list of potential Resource Managers, if it
qualifies. If the Resource Manager has reached the maximum number of
processors it can support, it accepts the newcomer as a new Resource
Manager if it qualifies, otherwise it redirects it to a Resource
Manager of another domain."

Construction note (documented substitution): the accept/promote/
redirect *decision* is negotiated through the RMs' ``consider_join``
logic and confirmed on the wire with a JOIN_REQUEST/JOIN_ACK message
pair (so join overhead is accounted), but node objects are built by
this harness — a simulation cannot "hot-swap" a live object's class the
way a real peer re-runs different code after promotion.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional

from repro.core import protocol
from repro.core.allocation import Allocator
from repro.core.info_base import PeerRecord
from repro.core.manager import ResourceManager, RMConfig, TaskEventFn
from repro.core.peer import Peer, PeerConfig
from repro.gossip.agent import GossipAgent, GossipConfig
from repro.media.objects import MediaObject
from repro.net.network import Network
from repro.overlay.failover import FailoverAgent, FailoverConfig
from repro.overlay.qualification import QualificationPolicy
from repro.sim.core import Environment
from repro.sim.rng import RandomStreams
from repro.sim.trace import Tracer

_domain_counter = itertools.count(0)


@dataclass(frozen=True)
class ServiceInstanceSpec:
    """A service a peer offers: one future resource-graph edge."""

    src_state: Hashable
    dst_state: Hashable
    service_id: str
    work: float
    out_bytes: float = 0.0


@dataclass
class PeerSpec:
    """Blueprint for one joining peer."""

    peer_id: str
    power: float = 10.0
    bandwidth: float = 1.25e6
    uptime: float = 0.9
    objects: Dict[str, MediaObject] = field(default_factory=dict)
    services: List[ServiceInstanceSpec] = field(default_factory=list)
    scheduling_policy: str = "LLS"
    profiler_update_period: float = 2.0

    def peer_config(self) -> PeerConfig:
        return PeerConfig(
            power=self.power,
            bandwidth=self.bandwidth,
            uptime_score=self.uptime,
            scheduling_policy=self.scheduling_policy,
            profiler_update_period=self.profiler_update_period,
        )

    def record(self) -> PeerRecord:
        return PeerRecord(
            peer_id=self.peer_id,
            power=self.power,
            bandwidth=self.bandwidth,
            uptime_score=self.uptime,
        )


@dataclass
class Domain:
    """One overlay domain: primary RM, optional backup, members."""

    domain_id: str
    rm: ResourceManager
    backup: Optional[ResourceManager] = None
    failover: Optional[FailoverAgent] = None
    gossip: Optional[GossipAgent] = None
    #: Passive RM-capable members (§4.1's eligible list), best first.
    eligible: List[ResourceManager] = field(default_factory=list)


class OverlayNetwork:
    """Builds and manages the self-organizing overlay of domains."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        qualification: Optional[QualificationPolicy] = None,
        rm_config: Optional[RMConfig] = None,
        allocator_factory: Optional[Callable[[], Allocator]] = None,
        gossip_config: Optional[GossipConfig] = None,
        failover_config: Optional[FailoverConfig] = None,
        enable_backups: bool = True,
        enable_gossip: bool = True,
        rm_capable_quota: int = 2,
        on_task_event: Optional[TaskEventFn] = None,
        streams: Optional[RandomStreams] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.env = env
        self.network = network
        self.qualification = qualification or QualificationPolicy()
        self.rm_config = rm_config or RMConfig()
        self.allocator_factory = allocator_factory or Allocator
        self.gossip_config = gossip_config or GossipConfig()
        self.failover_config = failover_config or FailoverConfig()
        self.enable_backups = enable_backups
        self.enable_gossip = enable_gossip
        #: How many qualifying members per domain are kept RM-capable
        #: (the §4.1 eligible list; the best serves as backup, the rest
        #: are spares for post-failover re-designation).
        self.rm_capable_quota = max(1, rm_capable_quota)
        self.on_task_event = on_task_event
        self.streams = streams or RandomStreams(0)
        self.tracer = tracer

        self.domains: Dict[str, Domain] = {}
        self.peers: Dict[str, Peer] = {}
        self.domain_of: Dict[str, str] = {}
        self.specs: Dict[str, PeerSpec] = {}
        #: Bumped on every roster/spec mutation; cheap change detection
        #: for consumers that cache population-derived aggregates (the
        #: workload's nominal-deadline constants).
        self.specs_version = 0
        self.stats = {"joins": 0, "promotions": 0, "join_redirects": 0,
                      "join_rejects": 0}

    # -- construction --------------------------------------------------------
    def _import_rm_config(self) -> RMConfig:
        import copy
        return copy.copy(self.rm_config)

    def create_domain(self, spec: PeerSpec) -> Domain:
        """Bootstrap a new domain led by *spec* (first peer / promotion)."""
        domain_id = f"d{next(_domain_counter)}"
        rm = ResourceManager(
            self.env,
            self.network,
            spec.peer_id,
            domain_id,
            allocator=self.allocator_factory(),
            rm_config=self._import_rm_config(),
            peer_config=spec.peer_config(),
            active=True,
            on_task_event=self.on_task_event,
            tracer=self.tracer,
        )
        domain = Domain(domain_id=domain_id, rm=rm)
        self.domains[domain_id] = domain
        self._enroll(rm, spec, rm)
        # Introduce the new RM to the existing ones (bootstrap contact
        # list; summaries then flow via gossip).
        for other in self.domains.values():
            if other.domain_id == domain_id:
                continue
            other.rm.known_rms[rm.node_id] = domain_id
            rm.known_rms[other.rm.node_id] = other.domain_id
        if self.enable_gossip:
            domain.gossip = GossipAgent(
                rm,
                self.gossip_config,
                rng=self.streams.get(f"gossip:{rm.node_id}"),
            )
        if self.tracer is not None:
            self.tracer.record(
                self.env.now, "overlay.domain_created", domain=domain_id,
                rm=spec.peer_id,
            )
        return domain

    def join(
        self, spec: PeerSpec, prefer_domain: Optional[str] = None
    ) -> Optional[Peer]:
        """Run the §4.1 join protocol for *spec*.

        Returns the constructed node, or ``None`` if every domain is
        full and the newcomer does not qualify to lead a new one.
        """
        if spec.peer_id in self.peers:
            raise ValueError(f"peer {spec.peer_id} already joined")
        if not self.domains:
            if self._qualifies(spec):
                self.create_domain(spec)
                self.stats["promotions"] += 1
                self.stats["joins"] += 1
                return self.peers[spec.peer_id]
            self.stats["join_rejects"] += 1
            return None

        # Contact the preferred (or first) RM; walk redirects.
        order = self._rm_contact_order(prefer_domain)
        for domain in order:
            decision = domain.rm.consider_join(
                spec.power, spec.bandwidth, spec.uptime
            )
            if decision == "accept":
                node = self._build_member(domain, spec)
                self.stats["joins"] += 1
                return node
            self.stats["join_redirects"] += 1
        # Every domain is full: promote if qualified (new domain), else
        # the join fails.
        if self._qualifies(spec):
            self.create_domain(spec)
            self.stats["promotions"] += 1
            self.stats["joins"] += 1
            return self.peers[spec.peer_id]
        self.stats["join_rejects"] += 1
        return None

    def _rm_contact_order(self, prefer_domain: Optional[str]) -> List[Domain]:
        order = list(self.domains.values())
        if prefer_domain is not None and prefer_domain in self.domains:
            order.sort(key=lambda d: d.domain_id != prefer_domain)
        return order

    def _qualifies(self, spec: PeerSpec) -> bool:
        return self.qualification.qualifies(
            spec.power, spec.bandwidth, spec.uptime
        )

    def _build_member(self, domain: Domain, spec: PeerSpec) -> Peer:
        """Construct an accepted member.

        Qualifying members join the domain's eligible list (§4.1) as
        *passive* ResourceManagers, up to ``rm_capable_quota``; the
        best-scored eligible peer serves as the live backup.
        """
        # Register the spec first: the eligible-list scoring reads it.
        self.specs[spec.peer_id] = spec
        self.specs_version += 1
        make_eligible = (
            self.enable_backups
            and len(domain.eligible) < self.rm_capable_quota
            and self._qualifies(spec)
        )
        if make_eligible:
            node: Peer = ResourceManager(
                self.env,
                self.network,
                spec.peer_id,
                domain.domain_id,
                allocator=self.allocator_factory(),
                rm_config=self._import_rm_config(),
                peer_config=spec.peer_config(),
                active=False,
                on_task_event=self.on_task_event,
                tracer=self.tracer,
            )
            node.rm_id = domain.rm.node_id
            domain.eligible.append(node)  # type: ignore[arg-type]
            self._sort_eligible(domain)
            self._refresh_backup(domain)
        else:
            node = Peer(
                self.env,
                self.network,
                spec.peer_id,
                config=spec.peer_config(),
                rm_id=domain.rm.node_id,
                tracer=self.tracer,
            )
        self._enroll(node, spec, domain.rm)
        # Confirm on the wire (overhead accounting).
        node.send(
            protocol.JOIN_REQUEST, domain.rm.node_id,
            {"peer_id": spec.peer_id},
            size=protocol.size_of(protocol.JOIN_REQUEST),
        )
        return node

    def _score(self, peer_id: str) -> float:
        spec = self.specs.get(peer_id)
        if spec is None:
            return 0.0
        return self.qualification.score(
            spec.power, spec.bandwidth, spec.uptime
        )

    def _sort_eligible(self, domain: Domain) -> None:
        """Keep the §4.1 eligible list live, best score first."""
        domain.eligible = [
            rm for rm in domain.eligible if rm.alive and not rm.active
        ]
        domain.eligible.sort(
            key=lambda rm: (-self._score(rm.node_id), rm.node_id)
        )

    def _refresh_backup(self, domain: Domain) -> None:
        """Designate the head of the eligible list as the live backup."""
        if not self.enable_backups:
            return
        best = domain.eligible[0] if domain.eligible else None
        if best is domain.backup:
            return
        if domain.failover is not None:
            domain.failover.stop()
            domain.failover = None
        domain.backup = best
        domain.rm.backup_id = best.node_id if best is not None else None
        if best is not None:
            domain.failover = FailoverAgent(
                primary=domain.rm,
                backup=best,
                config=self.failover_config,
                on_takeover=self._on_takeover,
            )

    def _enroll(
        self, node: Peer, spec: PeerSpec, rm: ResourceManager
    ) -> None:
        """Shared member bookkeeping: roster, objects, services."""
        self.peers[spec.peer_id] = node
        self.domain_of[spec.peer_id] = rm.domain_id
        self.specs[spec.peer_id] = spec
        self.specs_version += 1
        rm.admit_peer(spec.record(), objects=spec.objects)
        for name, obj in spec.objects.items():
            node.store_object(obj)
        for svc in spec.services:
            node.host_service(svc.service_id, svc)
            rm.info.register_service_instance(
                svc.src_state,
                svc.dst_state,
                svc.service_id,
                spec.peer_id,
                svc.work,
                svc.out_bytes,
            )

    # -- membership changes ----------------------------------------------------
    def fail_peer(self, peer_id: str) -> None:
        """Crash a peer (its RM finds out by silence)."""
        node = self.peers.get(peer_id)
        if node is None:
            return
        node.fail()
        self._forget(peer_id)

    def leave_peer(self, peer_id: str) -> None:
        """Graceful departure (PEER_LEAVE then down)."""
        node = self.peers.get(peer_id)
        if node is None:
            return
        node.leave()
        self._forget(peer_id)

    def _forget(self, peer_id: str) -> None:
        self.peers.pop(peer_id, None)
        # Departed peers never return under the same id (rebirths get a
        # fresh one), so drop the fabric registration too — this prunes
        # the per-pair FIFO floors and keeps Network state bounded under
        # churn.  In-flight traffic to the id still counts as dropped.
        self.network.unregister(peer_id)
        domain_id = self.domain_of.pop(peer_id, None)
        self.specs.pop(peer_id, None)
        self.specs_version += 1
        if domain_id is None:
            return
        domain = self.domains.get(domain_id)
        if domain is None:
            return
        was_backup = (
            domain.backup is not None
            and domain.backup.node_id == peer_id
        )
        in_eligible = any(rm.node_id == peer_id for rm in domain.eligible)
        if was_backup or in_eligible:
            domain.eligible = [
                rm for rm in domain.eligible if rm.node_id != peer_id
            ]
            self._sort_eligible(domain)
            # §4.1: promote the next qualifying processor to backup.
            self._refresh_backup(domain)

    def _on_takeover(self, old_rm_id: str, new_rm: ResourceManager) -> None:
        """Failover callback: update the registry, elect a new backup."""
        domain = self.domains.get(new_rm.domain_id)
        if domain is None:
            return
        domain.rm = new_rm
        domain.backup = None
        if domain.failover is not None:
            domain.failover.stop()
        domain.failover = None
        self.domain_of[new_rm.node_id] = new_rm.domain_id
        # The new primary leaves the eligible list; the next qualifying
        # processor becomes the backup (§4.1).
        domain.eligible = [
            rm for rm in domain.eligible if rm.node_id != new_rm.node_id
        ]
        self._sort_eligible(domain)
        self._refresh_backup(domain)
        if self.enable_gossip:
            if domain.gossip is not None:
                domain.gossip.stop()
            domain.gossip = GossipAgent(
                new_rm,
                self.gossip_config,
                rng=self.streams.get(f"gossip:{new_rm.node_id}"),
            )
        # Let other RMs know whom to gossip with now.
        for other in self.domains.values():
            if other.domain_id == new_rm.domain_id:
                continue
            other.rm.known_rms.pop(old_rm_id, None)
            other.rm.known_rms[new_rm.node_id] = new_rm.domain_id

    # -- queries ------------------------------------------------------------------
    @property
    def n_domains(self) -> int:
        return len(self.domains)

    @property
    def n_peers(self) -> int:
        return len(self.peers)

    def rms(self) -> List[ResourceManager]:
        return [d.rm for d in self.domains.values()]

    def all_tasks(self) -> List[Any]:
        """Every task object any RM has seen (deduplicated by id)."""
        seen: Dict[str, Any] = {}
        for rm in self.rms():
            for tid, task in rm.tasks.items():
                seen[tid] = task
        return list(seen.values())

    def domain_for(self, peer_id: str) -> Optional[Domain]:
        did = self.domain_of.get(peer_id)
        return self.domains.get(did) if did else None

    def __repr__(self) -> str:
        return (
            f"<OverlayNetwork domains={self.n_domains} peers={self.n_peers}>"
        )

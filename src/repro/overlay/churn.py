"""Peer churn: arrivals, departures, failures (dynamic environments).

"Peers may disconnect from the system either intentionally or due to a
failure" (§4.1).  The churn process gives every registered peer an
exponential lifetime; on expiry the peer departs (gracefully with
probability ``graceful_prob``, else by crash), and after an exponential
off-time a replacement peer with a fresh identity joins, keeping the
population roughly stationary — the standard P2P churn model.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

import numpy as np

from repro.overlay.network import OverlayNetwork, PeerSpec
from repro.sim.events import Event, Interrupt
from repro.sim.rng import fallback_rng

_rebirth_counter = itertools.count(1)


@dataclass
class ChurnConfig:
    """Churn tunables."""

    #: Mean peer session lifetime (seconds); exponential.
    mean_lifetime: float = 300.0
    #: Mean downtime before the replacement joins.
    mean_offtime: float = 20.0
    #: Probability a departure is graceful (PEER_LEAVE) vs a crash.
    graceful_prob: float = 0.5
    #: Whether a replacement peer joins after each departure.
    replace: bool = True
    #: Resource managers are exempted (their failure is the failover
    #: experiment's job, not churn's).
    exempt_rms: bool = True

    def __post_init__(self) -> None:
        if self.mean_lifetime <= 0:
            raise ValueError("mean_lifetime must be positive")
        if self.mean_offtime < 0:
            raise ValueError("mean_offtime must be non-negative")
        if not 0 <= self.graceful_prob <= 1:
            raise ValueError("graceful_prob must be in [0, 1]")


class ChurnProcess:
    """Drives churn over an overlay's member peers."""

    def __init__(
        self,
        overlay: OverlayNetwork,
        config: Optional[ChurnConfig] = None,
        rng: Optional[np.random.Generator] = None,
        spec_mutator: Optional[Callable[[PeerSpec, str], PeerSpec]] = None,
    ) -> None:
        self.overlay = overlay
        self.config = config or ChurnConfig()
        # Fallback: derives from the ambient scenario seed when one is
        # installed (see repro.sim.rng), else OS entropy.  Pass an rng
        # (build_scenario derives one from the run seed) to pin draws.
        self.rng = rng if rng is not None else fallback_rng("churn")
        #: Optionally rewrites the replacement's spec (new capabilities).
        self.spec_mutator = spec_mutator
        self.departures = 0
        self.crashes = 0
        self.rejoins = 0
        self._watched: set[str] = set()

    def watch_all(self) -> None:
        """Register every current member for churn."""
        for peer_id in list(self.overlay.peers):
            self.watch(peer_id)

    def watch(self, peer_id: str) -> None:
        """Give one peer an exponential lifetime."""
        if peer_id in self._watched:
            return
        if self.config.exempt_rms and self._is_rm(peer_id):
            return
        self._watched.add(peer_id)
        self.overlay.env.process(
            self._lifetime(peer_id), name=f"churn:{peer_id}"
        )

    def _is_rm(self, peer_id: str) -> bool:
        domain = self.overlay.domain_for(peer_id)
        if domain is None:
            return False
        if domain.rm.node_id == peer_id:
            return True
        return domain.backup is not None and domain.backup.node_id == peer_id

    def _lifetime(self, peer_id: str) -> Generator[Event, Any, None]:
        env = self.overlay.env
        cfg = self.config
        try:
            yield env.timeout(
                float(self.rng.exponential(cfg.mean_lifetime))
            )
            node = self.overlay.peers.get(peer_id)
            if node is None or not node.alive:
                self._watched.discard(peer_id)
                return
            old_spec = self.overlay.specs.get(peer_id)
            old_domain = self.overlay.domain_of.get(peer_id)
            graceful = bool(self.rng.random() < cfg.graceful_prob)
            if graceful:
                self.overlay.leave_peer(peer_id)
            else:
                self.overlay.fail_peer(peer_id)
                self.crashes += 1
            self.departures += 1
            self._watched.discard(peer_id)
            if not cfg.replace or old_spec is None:
                return
            yield env.timeout(float(self.rng.exponential(cfg.mean_offtime)))
            new_id = f"{peer_id}.r{next(_rebirth_counter)}"
            new_spec = PeerSpec(
                peer_id=new_id,
                power=old_spec.power,
                bandwidth=old_spec.bandwidth,
                uptime=old_spec.uptime,
                objects=dict(old_spec.objects),
                services=list(old_spec.services),
                scheduling_policy=old_spec.scheduling_policy,
                profiler_update_period=old_spec.profiler_update_period,
            )
            if self.spec_mutator is not None:
                new_spec = self.spec_mutator(new_spec, peer_id)
            joined = self.overlay.join(new_spec, prefer_domain=old_domain)
            if joined is not None:
                self.rejoins += 1
                self.watch(new_id)
        except Interrupt:
            return

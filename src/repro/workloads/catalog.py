"""Media-format ladders and the transcoder-conversion pool."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.media.formats import MediaFormat
from repro.media.transcode import TranscodingCostModel


def default_formats() -> List[MediaFormat]:
    """A realistic 2005-era format ladder (codec x resolution x rate)."""
    return [
        MediaFormat("MPEG-2", 800, 600, 512.0),
        MediaFormat("MPEG-2", 640, 480, 256.0),
        MediaFormat("MPEG-2", 320, 240, 128.0),
        MediaFormat("MPEG-4", 640, 480, 128.0),
        MediaFormat("MPEG-4", 640, 480, 64.0),
        MediaFormat("MPEG-4", 320, 240, 96.0),
        MediaFormat("MPEG-4", 320, 240, 48.0),
        MediaFormat("H.263", 320, 240, 64.0),
        MediaFormat("MJPEG", 640, 480, 384.0),
    ]


@dataclass
class MediaCatalog:
    """Formats plus the *type-level* conversion pool between them.

    A conversion (src -> dst) is considered offerable when it does not
    upscale by more than ``max_upscale`` in pixel rate — transcoders
    mostly shrink or re-encode streams.  Peers host *instances* of
    these conversions; the type pool also gives the reachability map the
    workload generator uses to pick goals that are achievable in
    principle.
    """

    formats: List[MediaFormat] = field(default_factory=default_formats)
    cost_model: TranscodingCostModel = field(
        default_factory=TranscodingCostModel
    )
    canonical_duration: float = 60.0
    max_upscale: float = 1.0

    def __post_init__(self) -> None:
        if len(self.formats) < 2:
            raise ValueError("need at least two formats")
        if self.canonical_duration <= 0:
            raise ValueError("canonical_duration must be positive")
        self._conversions: Optional[List[Tuple[MediaFormat, MediaFormat]]] = (
            None
        )

    # -- the conversion pool -------------------------------------------------
    def conversions(self) -> List[Tuple[MediaFormat, MediaFormat]]:
        """All offerable (src, dst) conversion types."""
        if self._conversions is None:
            out = []
            for src in self.formats:
                for dst in self.formats:
                    if src == dst:
                        continue
                    if dst.pixel_rate <= src.pixel_rate * self.max_upscale:
                        out.append((src, dst))
            self._conversions = out
        return self._conversions

    def work_of(self, src: MediaFormat, dst: MediaFormat) -> float:
        """Canonical work of one conversion instance."""
        return self.cost_model.work(src, dst, self.canonical_duration)

    def out_bytes_of(self, dst: MediaFormat) -> float:
        """Canonical output volume of a conversion into *dst*."""
        return dst.bytes_per_second() * self.canonical_duration

    # -- reachability -------------------------------------------------------------
    def reachable_from(
        self, src: MediaFormat, max_hops: int = 3
    ) -> List[MediaFormat]:
        """Formats reachable from *src* within ``max_hops`` conversions.

        Type-level reachability: whether *instances* exist on live peers
        is the allocator's problem; the workload only promises the goal
        is not structurally impossible.
        """
        adjacency: Dict[MediaFormat, List[MediaFormat]] = {}
        for a, b in self.conversions():
            adjacency.setdefault(a, []).append(b)
        seen = {src: 0}
        queue = deque([src])
        while queue:
            fmt = queue.popleft()
            depth = seen[fmt]
            if depth >= max_hops:
                continue
            for nxt in adjacency.get(fmt, ()):
                if nxt not in seen:
                    seen[nxt] = depth + 1
                    queue.append(nxt)
        seen.pop(src, None)
        return list(seen)

    def source_formats(self) -> List[MediaFormat]:
        """Formats suitable as *stored object* formats: the high-quality
        end of the ladder (top half by pixel rate x bitrate)."""
        ranked = sorted(
            self.formats,
            key=lambda f: f.pixel_rate * f.bitrate_kbps,
            reverse=True,
        )
        return ranked[: max(1, len(ranked) // 2)]

"""``repro-run``: run one scenario from a JSON config file.

::

    repro-run scenario.json --duration 300
    repro-run scenario.json --duration 300 --record-trace run.csv
    repro-run --print-default-config > scenario.json
"""

from __future__ import annotations

import argparse
import os

from repro import telemetry
from repro.common.util import fmt_table
from repro.reporting.ascii import sparkline
from repro.workloads.configio import config_to_json, load_config
from repro.workloads.scenario import ScenarioConfig, build_scenario
from repro.workloads.trace import TraceRecorder, save_trace


def _run_scenario(args) -> int:
    """The ``--scenario`` path: run one stress-scenario DSL file."""
    import json

    from repro.scenarios import build_stressed_scenario, load_spec

    spec = load_spec(args.scenario)
    if args.seed is not None:
        spec.base.seed = args.seed
    if args.policy is not None:
        spec.base.allocation_policy = args.policy
        spec.base.rm.placement_policy = args.policy
    if args.defense:
        spec.base.rm.enable_defense = True

    out_dir = (
        os.path.dirname(args.metrics_out) if args.metrics_out else "."
    ) or "."
    stressed = build_stressed_scenario(spec, out_dir=out_dir)
    if args.profile:
        stressed.attach_profiling(
            budget=args.profile_budget, out_dir=out_dir
        )
    scenario = stressed.scenario
    print(
        f"scenario {spec.name!r}: {scenario.overlay.n_peers} peers / "
        f"{scenario.overlay.n_domains} domains; seed={spec.base.seed}; "
        f"stressors: arrivals={spec.arrivals.shape if spec.arrivals else '-'}"
        f" cost={spec.cost.dist if spec.cost else '-'}"
        f" faults={len(spec.faults)}"
        f" liars={len(stressed.liars)}"
    )
    summary = stressed.run()
    doc = stressed.metrics_document()

    rows = [[k, v if not isinstance(v, float) else f"{v:.3f}"]
            for k, v in summary.row().items()]
    rows.append(["partition_drops", doc["partition_drops"]])
    print(fmt_table(["metric", "value"], rows))
    if stressed.faults is not None:
        for t, kind, detail in stressed.faults.log:
            print(f"  fault t={t:.1f}s {kind}: {detail}")
    if stressed.recorder is not None:
        for path in stressed.recorder.dumps:
            print(f"flight-recorder bundle -> {path}")
    if stressed.profile is not None:
        sess = stressed.profile
        folded = args.profile_folded or os.path.join(
            out_dir, f"profile-{spec.name}.folded"
        )
        path = sess.write_folded(folded)
        info = sess.summary()
        print(
            f"profiler: {info['samples']} samples / "
            f"{info['unique_stacks']} stacks; overhead "
            f"{info['overhead_ratio']:.2%} (budget {info['budget']:.0%}, "
            f"{info['retunes']} retunes)"
            + (f" -> {path}" if path else "")
        )
        for alert in sess.alerts:
            print(
                f"SLO ALERT: {alert.slo} burning {alert.burn:.1f}x "
                f"({alert.window} window, t={alert.time:.1f}s)"
                + (f" -> {alert.dump}" if alert.dump else "")
            )
    if len(scenario.metrics.fairness_series):
        _, values = scenario.metrics.fairness_series.as_arrays()
        print(f"fairness over time: {sparkline(values, width=60)}")
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fp:
            json.dump(doc, fp, indent=2)
            fp.write("\n")
        print(f"scenario metrics -> {args.metrics_out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-run",
        description="Run one peer-to-peer middleware scenario.",
        epilog=(
            "To run the same protocol over real localhost UDP sockets "
            "instead of the simulator, see repro-live."
        ),
    )
    parser.add_argument(
        "config", nargs="?", help="scenario config JSON file"
    )
    parser.add_argument(
        "--scenario", metavar="FILE",
        help="run a stress-scenario DSL file (.json/.toml) instead of a "
        "plain config: shaped arrivals, fault scripts, misbehaving "
        "peers, auto-attached health sampling (see docs/scenarios.md)",
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE",
        help="with --scenario: write the schema-versioned per-scenario "
        "metrics JSON here",
    )
    parser.add_argument(
        "--duration", type=float, default=300.0,
        help="simulated seconds of workload (default 300)",
    )
    parser.add_argument(
        "--drain", type=float, default=60.0,
        help="extra simulated seconds for in-flight tasks (default 60)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the config seed"
    )
    parser.add_argument(
        "--policy", default=None,
        choices=(
            "paper", "fairness", "first", "random", "least_loaded",
            "round_robin",
        ),
        help="override the placement policy (default: the config's "
        "allocation_policy / rm.placement_policy)",
    )
    parser.add_argument(
        "--defense", action="store_true",
        help="reputation-gated load reports (rm.enable_defense): the RM "
        "cross-checks each peer's claims against observed evidence, "
        "discounts divergent peers in placement and quarantines chronic "
        "liars (see docs/scenarios.md)",
    )
    parser.add_argument(
        "--record-trace", metavar="FILE",
        help="record generated requests to a CSV trace",
    )
    parser.add_argument(
        "--trace", metavar="FILE",
        help="record a telemetry trace (spans/events/metrics) to a JSONL "
        "file; analyse it with repro-trace",
    )
    parser.add_argument(
        "--sample", metavar="PERIOD", nargs="?", const=1.0, type=float,
        default=None,
        help="with --trace: sample health series every PERIOD simulated "
        "seconds (default 1.0) and attach them to the trace; view with "
        "repro-dash.  Also arms the flight recorder (anomaly bundles "
        "land next to the trace file).",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="attach the in-process sampling profiler + overhead "
        "budgeter (and, when health series are sampled, SLO burn-rate "
        "alerting); writes a flame-ready .folded file.  Observation "
        "only: the event trajectory is unchanged.",
    )
    parser.add_argument(
        "--profile-budget", type=float, default=None, metavar="FRAC",
        help="observability overhead budget as a fraction of wall time "
        "(default 0.02); the budgeter backs sampling off above it",
    )
    parser.add_argument(
        "--profile-folded", metavar="FILE", default=None,
        help="where to write the folded stacks (default: profile.folded "
        "next to the trace / metrics output)",
    )
    parser.add_argument(
        "--print-default-config", action="store_true",
        help="emit the default ScenarioConfig as JSON and exit",
    )
    args = parser.parse_args(argv)
    if args.sample is not None and not args.trace:
        parser.error("--sample requires --trace")
    if args.profile_budget is not None and not args.profile:
        parser.error("--profile-budget requires --profile")
    if args.profile_folded and not args.profile:
        parser.error("--profile-folded requires --profile")

    if args.print_default_config:
        print(config_to_json(ScenarioConfig()))
        return 0
    if args.scenario:
        if args.config:
            parser.error("--scenario replaces the plain config argument")
        return _run_scenario(args)
    if args.metrics_out:
        parser.error("--metrics-out requires --scenario")
    if not args.config:
        parser.error("a config file is required (or --print-default-config "
                     "/ --scenario)")

    cfg = load_config(args.config)
    if args.seed is not None:
        cfg.seed = args.seed
    if args.policy is not None:
        cfg.allocation_policy = args.policy
        cfg.rm.placement_policy = args.policy
    if args.defense:
        cfg.rm.enable_defense = True
    scenario = build_scenario(cfg)
    recorder = None
    if args.record_trace:
        recorder = TraceRecorder()
        scenario.workload.on_generate = recorder.record

    print(
        f"overlay: {scenario.overlay.n_peers} peers / "
        f"{scenario.overlay.n_domains} domains; "
        f"policy={cfg.allocation_policy}; seed={cfg.seed}"
    )
    tel = None
    sampler = None
    recorder_fr = None
    if args.trace:
        tel = telemetry.activate(telemetry.Telemetry.sim(scenario.env))
        if args.sample is not None:
            from repro.telemetry.flight_recorder import FlightRecorder
            from repro.telemetry.timeseries import (
                HealthSampler, overlay_probes,
            )

            sampler = HealthSampler(tel, period=args.sample)
            for probe in overlay_probes(scenario.overlay, scenario.network):
                sampler.add_probe(probe)
            sampler.attach_sim(scenario.env)
            recorder_fr = FlightRecorder(
                tel,
                out_dir=os.path.dirname(args.trace) or ".",
                sampler=sampler,
            )
    profile_sess = None
    if args.profile:
        from repro.profiling import profile_sim

        profile_sess = profile_sim(
            scenario.env, tel=tel, sampler=sampler, recorder=recorder_fr,
            budget=(
                args.profile_budget
                if args.profile_budget is not None else 0.02
            ),
        )
    try:
        summary = scenario.run(duration=args.duration, drain=args.drain)
    finally:
        if profile_sess is not None:
            profile_sess.stop()
            if tel is not None:
                profile_sess.publish(tel.metrics)
            folded = args.profile_folded or os.path.join(
                os.path.dirname(args.trace) if args.trace else ".",
                "profile.folded",
            )
            path = profile_sess.write_folded(folded)
            info = profile_sess.summary()
            print(
                f"profiler: {info['samples']} samples / "
                f"{info['unique_stacks']} stacks; overhead "
                f"{info['overhead_ratio']:.2%} "
                f"(budget {info['budget']:.0%}, "
                f"{info['retunes']} retunes)"
                + (f" -> {path}" if path else "")
            )
            for alert in profile_sess.alerts:
                print(
                    f"SLO ALERT: {alert.slo} burning {alert.burn:.1f}x "
                    f"({alert.window} window, t={alert.time:.1f}s)"
                    + (f" -> {alert.dump}" if alert.dump else "")
                )
        if tel is not None:
            tel.tracer.finish_open()
            telemetry.export.write_jsonl(
                args.trace, tel.tracer, tel.metrics,
                meta={
                    "runtime": "sim",
                    "seed": cfg.seed,
                    "aggregate": scenario.network.stats.summary(),
                },
                sampler=sampler,
                profile=(
                    profile_sess.record() if profile_sess else None
                ),
            )
            if recorder_fr is not None:
                recorder_fr.close()
                for path in recorder_fr.dumps:
                    print(f"flight-recorder bundle -> {path}")
            telemetry.deactivate()
            print(f"telemetry trace -> {args.trace}")

    rows = [[k, v if not isinstance(v, float) else f"{v:.3f}"]
            for k, v in summary.row().items()]
    print(fmt_table(["metric", "value"], rows))
    if len(scenario.metrics.fairness_series):
        _, values = scenario.metrics.fairness_series.as_arrays()
        print(f"fairness over time: {sparkline(values, width=60)}")

    if recorder is not None:
        with open(args.record_trace, "w", encoding="utf-8") as fp:
            save_trace(recorder.entries, fp)
        print(f"trace: {len(recorder.entries)} requests -> "
              f"{args.record_trace}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

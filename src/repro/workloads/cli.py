"""``repro-run``: run one scenario from a JSON config file.

::

    repro-run scenario.json --duration 300
    repro-run scenario.json --duration 300 --record-trace run.csv
    repro-run --print-default-config > scenario.json
"""

from __future__ import annotations

import argparse

from repro import telemetry
from repro.common.util import fmt_table
from repro.reporting.ascii import sparkline
from repro.workloads.configio import config_to_json, load_config
from repro.workloads.scenario import ScenarioConfig, build_scenario
from repro.workloads.trace import TraceRecorder, save_trace


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-run",
        description="Run one peer-to-peer middleware scenario.",
        epilog=(
            "To run the same protocol over real localhost UDP sockets "
            "instead of the simulator, see repro-live."
        ),
    )
    parser.add_argument(
        "config", nargs="?", help="scenario config JSON file"
    )
    parser.add_argument(
        "--duration", type=float, default=300.0,
        help="simulated seconds of workload (default 300)",
    )
    parser.add_argument(
        "--drain", type=float, default=60.0,
        help="extra simulated seconds for in-flight tasks (default 60)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the config seed"
    )
    parser.add_argument(
        "--policy", default=None,
        choices=(
            "paper", "fairness", "first", "random", "least_loaded",
            "round_robin",
        ),
        help="override the placement policy (default: the config's "
        "allocation_policy / rm.placement_policy)",
    )
    parser.add_argument(
        "--record-trace", metavar="FILE",
        help="record generated requests to a CSV trace",
    )
    parser.add_argument(
        "--trace", metavar="FILE",
        help="record a telemetry trace (spans/events/metrics) to a JSONL "
        "file; analyse it with repro-trace",
    )
    parser.add_argument(
        "--print-default-config", action="store_true",
        help="emit the default ScenarioConfig as JSON and exit",
    )
    args = parser.parse_args(argv)

    if args.print_default_config:
        print(config_to_json(ScenarioConfig()))
        return 0
    if not args.config:
        parser.error("a config file is required (or --print-default-config)")

    cfg = load_config(args.config)
    if args.seed is not None:
        cfg.seed = args.seed
    if args.policy is not None:
        cfg.allocation_policy = args.policy
        cfg.rm.placement_policy = args.policy
    scenario = build_scenario(cfg)
    recorder = None
    if args.record_trace:
        recorder = TraceRecorder()
        scenario.workload.on_generate = recorder.record

    print(
        f"overlay: {scenario.overlay.n_peers} peers / "
        f"{scenario.overlay.n_domains} domains; "
        f"policy={cfg.allocation_policy}; seed={cfg.seed}"
    )
    tel = None
    if args.trace:
        tel = telemetry.activate(telemetry.Telemetry.sim(scenario.env))
    try:
        summary = scenario.run(duration=args.duration, drain=args.drain)
    finally:
        if tel is not None:
            tel.tracer.finish_open()
            telemetry.export.write_jsonl(
                args.trace, tel.tracer, tel.metrics,
                meta={
                    "runtime": "sim",
                    "seed": cfg.seed,
                    "aggregate": scenario.network.stats.summary(),
                },
            )
            telemetry.deactivate()
            print(f"telemetry trace -> {args.trace}")

    rows = [[k, v if not isinstance(v, float) else f"{v:.3f}"]
            for k, v in summary.row().items()]
    print(fmt_table(["metric", "value"], rows))
    if len(scenario.metrics.fairness_series):
        _, values = scenario.metrics.fairness_series.as_arrays()
        print(f"fairness over time: {sparkline(values, width=60)}")

    if recorder is not None:
        with open(args.record_trace, "w", encoding="utf-8") as fp:
            save_trace(recorder.entries, fp)
        print(f"trace: {len(recorder.entries)} requests -> "
              f"{args.record_trace}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

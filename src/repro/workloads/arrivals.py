"""Poisson task arrivals with Zipf object popularity."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Optional

import numpy as np

from repro.core.peer import Peer
from repro.media.objects import MediaObject
from repro.net.node import RPCError
from repro.overlay.network import OverlayNetwork
from repro.sim.events import Event, Interrupt
from repro.sim.rng import fallback_rng
from repro.workloads.catalog import MediaCatalog


@dataclass
class WorkloadConfig:
    """Task arrival knobs."""

    #: Mean arrival rate, tasks per second (Poisson).
    rate: float = 0.5
    #: Deadline = slack x nominal single-conversion estimate.
    deadline_slack: float = 4.0
    #: Zipf skew for object popularity (1.0 = classic).
    zipf_s: float = 1.0
    #: Importance drawn uniformly from this integer range (inclusive).
    importance_range: tuple = (1, 5)
    #: Stop submitting after this simulated time (None = forever).
    stop_at: Optional[float] = None
    #: Max conversion hops considered when picking a goal format.
    max_goal_hops: int = 3

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.deadline_slack <= 0:
            raise ValueError("deadline_slack must be positive")
        if self.zipf_s < 0:
            raise ValueError("zipf_s must be non-negative")


class TaskArrivalProcess:
    """Generates user queries at random peers (Fig. 2(A))."""

    def __init__(
        self,
        overlay: OverlayNetwork,
        catalog: MediaCatalog,
        objects: List[MediaObject],
        config: Optional[WorkloadConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not objects:
            raise ValueError("need at least one media object")
        self.overlay = overlay
        self.catalog = catalog
        self.objects = list(objects)
        self.config = config or WorkloadConfig()
        self._mean_gap = 1.0 / self.config.rate
        # Fallback: the ambient scenario seed when installed (see
        # repro.sim.rng), else OS entropy; build_scenario plumbs an
        # explicit seed-derived rng.
        self.rng = rng if rng is not None else fallback_rng("arrivals")
        self._zipf_probs = self._make_zipf(len(self.objects))
        self._goals_cache: dict = {}
        # nominal_deadline's population aggregates, keyed on the
        # overlay's specs_version (recomputed only when the population
        # actually changed — it runs once per arrival otherwise).
        self._nominal_const: Optional[tuple] = None
        # _pick_origin's live-peer roster, keyed on (specs_version,
        # membership size, Peer._death_epoch) — see _pick_origin.
        self._live_key: Optional[tuple] = None
        self._live_peers: List[Any] = []
        self.n_generated = 0
        self.n_submit_failures = 0
        #: Optional hook called with a TraceEntry per generated request
        #: (see :class:`repro.workloads.trace.TraceRecorder`).
        self.on_generate = None
        self._proc = overlay.env.process(self._loop(), name="workload")

    def _make_zipf(self, n: int) -> np.ndarray:
        ranks = np.arange(1, n + 1, dtype=float)
        weights = ranks ** (-self.config.zipf_s)
        return weights / weights.sum()

    # -- choices -----------------------------------------------------------
    def _pick_object(self) -> MediaObject:
        idx = int(self.rng.choice(len(self.objects), p=self._zipf_probs))
        return self.objects[idx]

    def _pick_goal(self, obj: MediaObject) -> Optional[Any]:
        goals = self._goals_cache.get(obj.fmt)
        if goals is None:
            goals = self.catalog.reachable_from(
                obj.fmt, max_hops=self.config.max_goal_hops
            )
            self._goals_cache[obj.fmt] = goals
        if not goals:
            return None
        return goals[int(self.rng.integers(len(goals)))]

    def _pick_origin(self) -> Optional[Any]:
        # Scanning every peer per arrival dominates at 1000+ peers, so
        # the live roster is cached.  The key is exhaustive: ``alive``
        # flips False only inside Peer.fail (which bumps _death_epoch),
        # peers appear only via overlay adds (specs_version bump), and
        # membership/order changes move specs_version or the size — so
        # an unchanged key means the fresh listcomp would yield exactly
        # this list, preserving RNG draw parity.
        overlay = self.overlay
        key = (
            overlay.specs_version, len(overlay.peers), Peer._death_epoch,
        )
        if key != self._live_key:
            self._live_peers = [
                p for p in overlay.peers.values() if p.alive
            ]
            self._live_key = key
        live = self._live_peers
        if not live:
            return None
        return live[int(self.rng.integers(len(live)))]

    def nominal_deadline(self, obj: MediaObject) -> float:
        """Slack-scaled rough completion estimate for one conversion.

        nominal = source transfer + 2 conversions at the mean power +
        result transfer, all at tier-median bandwidth.
        """
        const = self._nominal_const
        if const is None or const[0] != self.overlay.specs_version:
            bw = float(np.median(self.overlay.network.bandwidth))
            mean_power = np.mean(
                [s.power for s in self.overlay.specs.values()]
            ) if self.overlay.specs else 10.0
            mean_work = np.mean(
                [
                    self.catalog.work_of(a, b)
                    for a, b in self.catalog.conversions()[:16]
                ]
            )
            const = self._nominal_const = (
                self.overlay.specs_version, bw, mean_power, mean_work
            )
        _, bw, mean_power, mean_work = const
        scale = obj.duration_s / self.catalog.canonical_duration
        nominal = (
            obj.size_bytes / bw
            + 2.0 * mean_work * scale / mean_power
            + obj.size_bytes / (2.0 * bw)
        )
        return float(self.config.deadline_slack * nominal)

    # -- the arrival loop ----------------------------------------------------
    def _next_gap(self, now: float) -> float:
        """Seconds until the next arrival, drawn at sim time *now*.

        The hook shaped workloads override; the base process is a
        homogeneous Poisson stream (one exponential draw per arrival,
        the exact draw sequence the trajectory goldens pin).
        """
        return float(self.rng.exponential(self._mean_gap))

    def _loop(self) -> Generator[Event, Any, None]:
        env = self.overlay.env
        cfg = self.config
        self._mean_gap = 1.0 / cfg.rate
        next_gap = self._next_gap
        timeout = env.timeout
        try:
            while True:
                yield timeout(next_gap(env.now))
                if cfg.stop_at is not None and env.now >= cfg.stop_at:
                    return
                origin = self._pick_origin()
                if origin is None:
                    continue
                obj = self._pick_object()
                goal = self._pick_goal(obj)
                if goal is None:
                    continue
                deadline = self.nominal_deadline(obj) * float(
                    self.rng.uniform(0.9, 1.1)
                )
                importance = float(
                    self.rng.integers(
                        cfg.importance_range[0],
                        cfg.importance_range[1] + 1,
                    )
                )
                self.n_generated += 1
                if self.on_generate is not None:
                    from repro.workloads.trace import TraceEntry

                    self.on_generate(TraceEntry(
                        time=env.now,
                        origin=origin.node_id,
                        object_name=obj.name,
                        goal=goal,
                        deadline=deadline,
                        importance=importance,
                    ))
                env.process(
                    self._submit(origin, obj.name, goal, deadline,
                                 importance),
                    name=f"submit:{origin.node_id}",
                )
        except Interrupt:
            return

    def _submit(
        self, origin, name: str, goal, deadline: float, importance: float
    ) -> Generator[Event, Any, None]:
        try:
            yield from origin.submit_task(
                name, goal, deadline, importance=importance
            )
        except RPCError:
            # RM unreachable (failover window) or the submitting peer
            # itself churned away mid-request: the user's query is
            # simply lost, as in a real system.  RPCTimeout is the
            # unreachable-RM case; the base RPCError covers the dying
            # requester whose pending calls are failed on shutdown.
            self.n_submit_failures += 1

    def stop(self) -> None:
        if self._proc.is_alive:
            self._proc.interrupt("stop")

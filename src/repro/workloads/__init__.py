"""Workload generation: formats, peer populations, task arrivals, scenarios.

Everything an experiment needs to go from a config to a running
simulated system:

* :mod:`repro.workloads.catalog` — media-format ladders and the pool of
  plausible transcoder conversions between them;
* :mod:`repro.workloads.population` — heterogeneous peer populations
  (lognormal processing power, tiered bandwidth, beta-distributed
  uptime) hosting random service instances and replicated objects;
* :mod:`repro.workloads.arrivals` — Poisson task arrivals with Zipf
  object popularity and slack-scaled deadlines;
* :mod:`repro.workloads.scenario` — the one-call scenario builder the
  experiments and examples use.
"""

from repro.workloads.arrivals import TaskArrivalProcess, WorkloadConfig
from repro.workloads.catalog import MediaCatalog, default_formats
from repro.workloads.population import PopulationConfig, generate_specs
from repro.workloads.scenario import Scenario, ScenarioConfig, build_scenario

__all__ = [
    "MediaCatalog",
    "PopulationConfig",
    "Scenario",
    "ScenarioConfig",
    "TaskArrivalProcess",
    "WorkloadConfig",
    "build_scenario",
    "default_formats",
    "generate_specs",
]

"""Heterogeneous peer populations.

"The problem is complicated further by the heterogeneity of the peers,
in terms of processing power, network connectivity, and available
software" (§1): powers are lognormal, bandwidths tiered (modem / DSL /
LAN-class), uptimes beta-distributed, and each peer offers only a
random subset of the transcoder pool (its "available software").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.media.objects import MediaObject
from repro.overlay.network import PeerSpec, ServiceInstanceSpec
from repro.workloads.catalog import MediaCatalog


@dataclass
class PopulationConfig:
    """Knobs for generating a peer population."""

    n_peers: int = 16
    #: Mean processing power (work units/s); lognormal around this.
    mean_power: float = 10.0
    #: Coefficient of variation of power (0 = homogeneous).
    power_cv: float = 0.4
    #: Bandwidth tiers (bytes/s) and their probabilities.
    bandwidth_tiers: tuple = (2.5e5, 1.25e6, 1.25e7)
    bandwidth_probs: tuple = (0.2, 0.6, 0.2)
    #: Beta(a, b) parameters for uptime scores in [0, 1].
    uptime_alpha: float = 6.0
    uptime_beta: float = 2.0
    #: Conversion types hosted per peer.
    services_per_peer: int = 6
    #: Distinct media objects in the system.
    n_objects: int = 8
    #: Replicas per object.
    replication: int = 2
    #: Object stream duration (seconds).
    object_duration: float = 60.0
    #: Distribution of per-object stream durations around
    #: ``object_duration``: ``fixed`` (every object identical — the
    #: historic behavior), ``pareto`` or ``lognormal`` (heavy-tailed
    #: task costs: a few elephant streams dominate the work).
    duration_dist: str = "fixed"
    #: Pareto tail index (smaller = heavier tail; must be > 1 so the
    #: mean exists and can be pinned to ``object_duration``).
    duration_pareto_alpha: float = 1.6
    #: Lognormal sigma of the duration multiplier.
    duration_sigma: float = 0.75
    #: Cap on the duration multiplier (keeps one elephant from eating
    #: the whole run).
    duration_cap: float = 12.0
    #: Local scheduling policy for every peer.
    scheduling_policy: str = "LLS"
    #: Profiler update period (the E7 knob).
    update_period: float = 2.0

    def __post_init__(self) -> None:
        if self.n_peers < 1:
            raise ValueError("n_peers must be >= 1")
        if self.mean_power <= 0:
            raise ValueError("mean_power must be positive")
        if self.power_cv < 0:
            raise ValueError("power_cv must be non-negative")
        if len(self.bandwidth_tiers) != len(self.bandwidth_probs):
            raise ValueError("bandwidth tiers/probs length mismatch")
        if abs(sum(self.bandwidth_probs) - 1.0) > 1e-9:
            raise ValueError("bandwidth_probs must sum to 1")
        if self.replication < 1:
            raise ValueError("replication must be >= 1")
        if self.duration_dist not in ("fixed", "pareto", "lognormal"):
            raise ValueError(
                "duration_dist must be 'fixed', 'pareto' or 'lognormal', "
                f"got {self.duration_dist!r}"
            )
        if self.duration_dist == "pareto" and self.duration_pareto_alpha <= 1:
            raise ValueError("duration_pareto_alpha must be > 1")
        if self.duration_sigma < 0:
            raise ValueError("duration_sigma must be non-negative")
        if self.duration_cap <= 0:
            raise ValueError("duration_cap must be positive")


def _sample_powers(
    cfg: PopulationConfig, rng: np.random.Generator
) -> np.ndarray:
    if cfg.power_cv == 0:
        return np.full(cfg.n_peers, cfg.mean_power)
    # Lognormal with the requested mean and CV.
    sigma2 = np.log(1.0 + cfg.power_cv**2)
    mu = np.log(cfg.mean_power) - sigma2 / 2.0
    return rng.lognormal(mean=mu, sigma=np.sqrt(sigma2), size=cfg.n_peers)


def _duration_multiplier(
    cfg: PopulationConfig, rng: np.random.Generator
) -> float:
    """One heavy-tailed multiplier with mean ~1 (capped)."""
    if cfg.duration_dist == "pareto":
        # Lomax + 1 shifted so E[m] = 1 for alpha > 1.
        a = cfg.duration_pareto_alpha
        m = (1.0 + rng.pareto(a)) * (a - 1.0) / a
    else:  # lognormal
        s = cfg.duration_sigma
        m = rng.lognormal(mean=-s * s / 2.0, sigma=s)
    return float(min(m, cfg.duration_cap))


def make_objects(
    catalog: MediaCatalog, cfg: PopulationConfig,
    rng: np.random.Generator,
) -> List[MediaObject]:
    """The media objects stored in the system (high-quality sources).

    With ``duration_dist != "fixed"`` each object's stream duration is a
    heavy-tailed draw around ``object_duration`` — since transcoding
    work scales with duration, this turns the task-cost distribution
    heavy-tailed too (a handful of elephant streams dominate).  The
    ``fixed`` default draws nothing extra, so historic RNG trajectories
    are untouched.
    """
    sources = catalog.source_formats()
    heavy = cfg.duration_dist != "fixed"
    objects = []
    for i in range(cfg.n_objects):
        fmt = sources[int(rng.integers(len(sources)))]
        duration = cfg.object_duration
        if heavy:
            duration *= _duration_multiplier(cfg, rng)
        objects.append(
            MediaObject(name=f"obj{i}", fmt=fmt, duration_s=duration)
        )
    return objects


def generate_specs(
    catalog: MediaCatalog,
    cfg: PopulationConfig,
    rng: np.random.Generator,
    objects: Optional[List[MediaObject]] = None,
    id_prefix: str = "p",
) -> List[PeerSpec]:
    """Generate :class:`PeerSpec` s for one population.

    Every conversion type is guaranteed at least one instance somewhere
    (round-robin seeding) before the remaining slots are sampled
    uniformly, so a small population cannot accidentally make the whole
    catalog unreachable.
    """
    if objects is None:
        objects = make_objects(catalog, cfg, rng)
    powers = _sample_powers(cfg, rng)
    bandwidths = rng.choice(
        cfg.bandwidth_tiers, size=cfg.n_peers, p=cfg.bandwidth_probs
    )
    uptimes = rng.beta(cfg.uptime_alpha, cfg.uptime_beta, size=cfg.n_peers)

    conversions = catalog.conversions()
    # Seed coverage: spread every conversion type across the population.
    assignments: List[List[int]] = [[] for _ in range(cfg.n_peers)]
    order = rng.permutation(len(conversions))
    for slot, conv_idx in enumerate(order):
        assignments[slot % cfg.n_peers].append(int(conv_idx))
    for i in range(cfg.n_peers):
        want = cfg.services_per_peer
        have = set(assignments[i])
        while len(assignments[i]) < want:
            pick = int(rng.integers(len(conversions)))
            if pick not in have:
                have.add(pick)
                assignments[i].append(pick)
        assignments[i] = assignments[i][:want] if want < len(
            assignments[i]
        ) else assignments[i]

    # Replicate objects across random peers.  The inverse index
    # (peer -> object indices, ascending) avoids the quadratic
    # peers x objects membership scan when building each spec.
    object_homes: Dict[int, List[int]] = {}
    peer_objects: Dict[int, List[int]] = {}
    for oi in range(len(objects)):
        k = min(cfg.replication, cfg.n_peers)
        homes = list(rng.choice(cfg.n_peers, size=k, replace=False))
        object_homes[oi] = homes
        for home in homes:
            peer_objects.setdefault(int(home), []).append(oi)

    specs: List[PeerSpec] = []
    for i in range(cfg.n_peers):
        services = []
        for conv_idx in assignments[i]:
            src, dst = conversions[conv_idx]
            services.append(
                ServiceInstanceSpec(
                    src_state=src,
                    dst_state=dst,
                    service_id=f"tc:{src.label()}>{dst.label()}",
                    work=catalog.work_of(src, dst),
                    out_bytes=catalog.out_bytes_of(dst),
                )
            )
        own_objects = {
            objects[oi].name: objects[oi]
            for oi in peer_objects.get(i, ())
        }
        specs.append(
            PeerSpec(
                peer_id=f"{id_prefix}{i}",
                power=float(powers[i]),
                bandwidth=float(bandwidths[i]),
                uptime=float(uptimes[i]),
                objects=own_objects,
                services=services,
                scheduling_policy=cfg.scheduling_policy,
                profiler_update_period=cfg.update_period,
            )
        )
    return specs

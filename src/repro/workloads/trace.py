"""Trace-driven workloads: record, save, load, and replay request logs.

Two uses:

* **Reproducibility across tools** — a generated workload can be frozen
  to a CSV trace and replayed bit-identically (also handy for feeding
  the same request sequence to an external system).
* **Production-trace substitution** — the paper's authors had no public
  trace either; this module defines the interchange format a real
  deployment log would be converted into (DESIGN.md substitution
  table).

Trace format (CSV, header required)::

    time,origin,object,goal,deadline,importance
    1.25,p3,obj2,640x480/MPEG-4@64kbps,22.5,3
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import Any, Generator, List, TextIO, Union

from repro.media.formats import MediaFormat
from repro.net.node import RPCError
from repro.overlay.network import OverlayNetwork
from repro.sim.events import Event, Interrupt

_HEADER = ["time", "origin", "object", "goal", "deadline", "importance"]


@dataclass(frozen=True)
class TraceEntry:
    """One user request in a trace."""

    time: float
    origin: str
    object_name: str
    goal: MediaFormat
    deadline: float
    importance: float = 1.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"negative time {self.time}")
        if self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")


def _format_to_str(fmt: MediaFormat) -> str:
    return fmt.label()


def _format_from_str(label: str) -> MediaFormat:
    """Parse ``640x480/MPEG-4@64kbps`` back into a MediaFormat."""
    try:
        res, rest = label.split("/", 1)
        codec, rate = rest.rsplit("@", 1)
        width, height = res.split("x")
        if not rate.endswith("kbps"):
            raise ValueError(label)
        return MediaFormat(
            codec, int(width), int(height), float(rate[:-4])
        )
    except (ValueError, TypeError) as exc:
        raise ValueError(f"unparseable format label {label!r}") from exc


def save_trace(entries: List[TraceEntry], fp: TextIO) -> None:
    """Write a trace as CSV."""
    writer = csv.writer(fp)
    writer.writerow(_HEADER)
    for e in entries:
        # repr-precision floats: a saved trace replays bit-identically.
        writer.writerow([
            repr(e.time), e.origin, e.object_name,
            _format_to_str(e.goal), repr(e.deadline),
            f"{e.importance:g}",
        ])


def load_trace(fp: Union[TextIO, str]) -> List[TraceEntry]:
    """Read a CSV trace (file object or CSV text)."""
    if isinstance(fp, str):
        fp = io.StringIO(fp)
    reader = csv.reader(fp)
    header = next(reader, None)
    if header != _HEADER:
        raise ValueError(
            f"bad trace header {header!r}; expected {_HEADER}"
        )
    entries = []
    for lineno, row in enumerate(reader, start=2):
        if not row:
            continue
        if len(row) != len(_HEADER):
            raise ValueError(f"line {lineno}: {len(row)} fields")
        entries.append(TraceEntry(
            time=float(row[0]),
            origin=row[1],
            object_name=row[2],
            goal=_format_from_str(row[3]),
            deadline=float(row[4]),
            importance=float(row[5]),
        ))
    entries.sort(key=lambda e: e.time)
    return entries


class TraceRecorder:
    """Records generated requests so a run can be frozen to a trace.

    Attach to a scenario *before* running::

        rec = TraceRecorder()
        scenario.workload.on_generate = rec.record
    """

    def __init__(self) -> None:
        self.entries: List[TraceEntry] = []

    def record(self, entry: TraceEntry) -> None:
        self.entries.append(entry)

    def dumps(self) -> str:
        buf = io.StringIO()
        save_trace(self.entries, buf)
        return buf.getvalue()


class TraceReplayProcess:
    """Replays a trace against an overlay: the deterministic twin of
    :class:`~repro.workloads.arrivals.TaskArrivalProcess`."""

    def __init__(
        self,
        overlay: OverlayNetwork,
        entries: List[TraceEntry],
        start_offset: float = 0.0,
    ) -> None:
        self.overlay = overlay
        self.entries = sorted(entries, key=lambda e: e.time)
        self.start_offset = start_offset
        self.n_submitted = 0
        self.n_skipped = 0
        self.n_submit_failures = 0
        self._proc = overlay.env.process(self._loop(), name="trace-replay")

    def _loop(self) -> Generator[Event, Any, None]:
        env = self.overlay.env
        base = env.now + self.start_offset
        try:
            for entry in self.entries:
                target = base + entry.time
                if target > env.now:
                    yield env.timeout(target - env.now)
                origin = self.overlay.peers.get(entry.origin)
                if origin is None or not origin.alive:
                    self.n_skipped += 1
                    continue
                self.n_submitted += 1
                env.process(
                    self._submit(origin, entry),
                    name=f"trace-submit:{entry.origin}",
                )
        except Interrupt:
            return

    def _submit(self, origin, entry: TraceEntry):
        try:
            yield from origin.submit_task(
                entry.object_name, entry.goal, entry.deadline,
                importance=entry.importance,
            )
        except RPCError:
            self.n_submit_failures += 1

    def stop(self) -> None:
        if self._proc.is_alive:
            self._proc.interrupt("stop")

"""The one-call scenario builder used by experiments and examples."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.baselines.selectors import make_allocator
from repro.core.estimate import CompletionTimeEstimator
from repro.core.manager import RMConfig
from repro.gossip.agent import GossipConfig
from repro.media.objects import MediaObject
from repro.results.collector import MetricsCollector, RunSummary
from repro.net.latency import DomainAwareLatency
from repro.net.message import Message
from repro.net.network import Network
from repro.overlay.churn import ChurnConfig, ChurnProcess
from repro.overlay.failover import FailoverConfig
from repro.overlay.network import OverlayNetwork
from repro.overlay.qualification import QualificationPolicy
from repro.overlay.network import PeerSpec
from repro.sim.core import Environment
from repro.sim.rng import RandomStreams, set_ambient_streams
from repro.sim.trace import Tracer
from repro.workloads.arrivals import TaskArrivalProcess, WorkloadConfig
from repro.workloads.catalog import MediaCatalog
from repro.workloads.population import (
    PopulationConfig,
    generate_specs,
    make_objects,
)


@dataclass
class ScenarioConfig:
    """Everything that defines one simulation run."""

    seed: int = 0
    #: Allocation policy: paper/fairness | first | random | least_loaded |
    #: round_robin (see :mod:`repro.core.control.placement`).  The
    #: default defers to ``rm.placement_policy`` when that names a
    #: non-default policy, so either config section can pick the policy.
    allocation_policy: str = "fairness"
    #: Path search variant: "paper" (Fig-3 BFS) or "exhaustive".
    visited_policy: str = "paper"
    population: PopulationConfig = field(default_factory=PopulationConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    rm: RMConfig = field(default_factory=RMConfig)
    estimator: CompletionTimeEstimator = field(
        default_factory=CompletionTimeEstimator
    )
    gossip: GossipConfig = field(default_factory=GossipConfig)
    failover: FailoverConfig = field(default_factory=FailoverConfig)
    qualification: QualificationPolicy = field(
        default_factory=QualificationPolicy
    )
    churn: Optional[ChurnConfig] = None
    enable_backups: bool = True
    enable_gossip: bool = True
    #: Intra/inter-domain one-way base latencies (seconds) and jitter.
    intra_latency: float = 0.005
    inter_latency: float = 0.050
    latency_jitter: float = 0.3
    #: Link bandwidth, bytes/second.
    bandwidth: float = 1.25e6
    #: Per-message loss probability on the fabric; the loss pattern is
    #: drawn from the run seed's "loss" stream, so two seeds produce
    #: different drop patterns and one seed reproduces exactly.
    loss_rate: float = 0.0
    #: Fairness/utilization sampling period for metrics.
    metrics_period: float = 1.0
    #: Enable structured tracing (costs memory on long runs).
    tracing: bool = False


@dataclass
class Scenario:
    """A fully built simulated system, ready to run."""

    config: ScenarioConfig
    env: Environment
    network: Network
    overlay: OverlayNetwork
    catalog: MediaCatalog
    objects: List[MediaObject]
    metrics: MetricsCollector
    workload: TaskArrivalProcess
    streams: RandomStreams
    churn: Optional[ChurnProcess] = None
    tracer: Optional[Tracer] = None

    def run(self, duration: float, drain: float = 30.0) -> RunSummary:
        """Run for *duration*, stop new arrivals, drain, summarize.

        ``drain`` gives in-flight tasks time to finish so the outcome
        counters reflect completed work rather than truncation.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.env.run(until=self.env.now + duration)
        self.workload.stop()
        if drain > 0:
            self.env.run(until=self.env.now + drain)
        return self.summary()

    def summary(self) -> RunSummary:
        return self.metrics.summary(net_stats=self.network.stats)


def build_scenario(
    config: Optional[ScenarioConfig] = None,
    *,
    workload_cls: type = TaskArrivalProcess,
    spec_transform: Optional[
        Callable[[List[PeerSpec]], List[PeerSpec]]
    ] = None,
) -> Scenario:
    """Assemble a complete system from a :class:`ScenarioConfig`.

    ``workload_cls`` swaps the arrival process implementation (the
    scenario DSL substitutes shaped arrivals); ``spec_transform`` maps
    the generated peer specs before any peer joins (the DSL uses it to
    inflate the claims of misbehaving peers so §4.1 qualification
    ingests the lie).  Both default to the historic behavior.
    """
    cfg = config or ScenarioConfig()
    # Repeated in-process runs must produce identical message ids; the
    # id counter is module-global, so rewind it per scenario.
    Message.reset_ids()
    streams = RandomStreams(cfg.seed)
    # Components constructed later without an explicit rng (test shims,
    # ad-hoc wiring) derive their fallback streams from this run's seed
    # instead of OS entropy.
    set_ambient_streams(streams)
    env = Environment()
    tracer = Tracer() if cfg.tracing else None

    # The latency model reads the overlay's (mutable) domain map; the
    # dict identity is stable, so wiring it before peers join is safe.
    network = Network(
        env,
        latency=None,  # replaced just below, after overlay exists
        bandwidth=cfg.bandwidth,
        loss_rate=cfg.loss_rate,
        loss_rng=streams.get("loss"),
        tracer=tracer,
    )
    metrics = MetricsCollector(env)
    # Keep the workload's scheduling/update settings consistent with the
    # RM's expectations.
    cfg.rm.canonical_duration = cfg.population.object_duration
    cfg.rm.expected_update_period = cfg.population.update_period

    # Either config section may name the policy: `allocation_policy`
    # (historic) wins when set to a non-default value, otherwise a
    # non-default `rm.placement_policy` is honored.
    policy = cfg.allocation_policy
    if policy in ("fairness", "paper") and cfg.rm.placement_policy not in (
        "paper", "fairness"
    ):
        policy = cfg.rm.placement_policy

    def allocator_factory():
        return make_allocator(
            policy,
            rng=streams.get("allocator"),
            visited_policy=cfg.visited_policy,
            estimator=cfg.estimator,
        )

    overlay = OverlayNetwork(
        env,
        network,
        qualification=cfg.qualification,
        rm_config=cfg.rm,
        allocator_factory=allocator_factory,
        gossip_config=cfg.gossip,
        failover_config=cfg.failover,
        enable_backups=cfg.enable_backups,
        enable_gossip=cfg.enable_gossip,
        on_task_event=metrics.on_task_event,
        streams=streams,
        tracer=tracer,
    )
    network.latency = DomainAwareLatency(
        overlay.domain_of.get,
        intra=cfg.intra_latency,
        inter=cfg.inter_latency,
        jitter=cfg.latency_jitter,
        rng=streams.get("latency"),
    )

    catalog = MediaCatalog(canonical_duration=cfg.population.object_duration)
    pop_rng = streams.get("population")
    objects = make_objects(catalog, cfg.population, pop_rng)
    specs = generate_specs(catalog, cfg.population, pop_rng, objects=objects)
    if spec_transform is not None:
        specs = spec_transform(specs)
    # Bootstrap with a qualified leader: rotate the population so the
    # first joiner can create the initial domain — otherwise unqualified
    # early arrivals would be rejected into the void (a real overlay
    # already exists when ordinary peers show up).
    first_ok = next(
        (
            i for i, s in enumerate(specs)
            if cfg.qualification.qualifies(s.power, s.bandwidth, s.uptime)
        ),
        0,
    )
    for spec in specs[first_ok:] + specs[:first_ok]:
        overlay.join(spec)

    churn: Optional[ChurnProcess] = None
    if cfg.churn is not None:
        churn = ChurnProcess(
            overlay, cfg.churn, rng=streams.get("churn")
        )
        churn.watch_all()

    workload = workload_cls(
        overlay, catalog, objects,
        config=cfg.workload,
        rng=streams.get("arrivals"),
    )
    metrics.start_sampling(overlay, period=cfg.metrics_period)

    return Scenario(
        config=cfg,
        env=env,
        network=network,
        overlay=overlay,
        catalog=catalog,
        objects=objects,
        metrics=metrics,
        workload=workload,
        streams=streams,
        churn=churn,
        tracer=tracer,
    )

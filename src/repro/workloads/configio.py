"""JSON (de)serialization of :class:`ScenarioConfig`.

Lets experiment configurations live in version-controlled files::

    cfg = config_from_json(open("scenario.json").read())
    summary = build_scenario(cfg).run(duration=300.0)

Only fields present in the JSON are overridden; everything else keeps
its dataclass default, so configs stay forward-compatible as knobs are
added.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Type, TypeVar

from repro.core.estimate import CompletionTimeEstimator
from repro.core.manager import RMConfig
from repro.gossip.agent import GossipConfig
from repro.overlay.churn import ChurnConfig
from repro.overlay.failover import FailoverConfig
from repro.overlay.qualification import QualificationPolicy
from repro.workloads.arrivals import WorkloadConfig
from repro.workloads.population import PopulationConfig
from repro.workloads.scenario import ScenarioConfig

T = TypeVar("T")

#: Nested config sections and their dataclass types.
_SECTIONS: Dict[str, type] = {
    "population": PopulationConfig,
    "workload": WorkloadConfig,
    "rm": RMConfig,
    "estimator": CompletionTimeEstimator,
    "gossip": GossipConfig,
    "failover": FailoverConfig,
    "qualification": QualificationPolicy,
    "churn": ChurnConfig,
}


def _dataclass_to_dict(obj: Any) -> Any:
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _dataclass_to_dict(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, tuple):
        return list(obj)
    return obj


def _build_section(cls: Type[T], data: Dict[str, Any]) -> T:
    field_info = {f.name: f for f in dataclasses.fields(cls)}
    unknown = set(data) - set(field_info)
    if unknown:
        raise ValueError(
            f"{cls.__name__}: unknown config keys {sorted(unknown)}"
        )
    kwargs = {}
    for key, value in data.items():
        field = field_info[key]
        # Tuples arrive as JSON lists.
        if isinstance(value, list) and field.default is not None and \
                isinstance(field.default, tuple):
            value = tuple(value)
        kwargs[key] = value
    return cls(**kwargs)


def config_to_json(cfg: ScenarioConfig, indent: int = 2) -> str:
    """Serialize a full ScenarioConfig to JSON text."""
    doc = _dataclass_to_dict(cfg)
    return json.dumps(doc, indent=indent, default=str)


def config_from_dict(doc: Dict[str, Any]) -> ScenarioConfig:
    """Build a ScenarioConfig from a plain dict (partial configs
    allowed) — the shared core of JSON loading and the scenario DSL's
    embedded ``base`` section."""
    if not isinstance(doc, dict):
        raise ValueError("scenario config must be an object")
    kwargs: Dict[str, Any] = {}
    scenario_fields = {
        f.name: f for f in dataclasses.fields(ScenarioConfig)
    }
    unknown = set(doc) - set(scenario_fields)
    if unknown:
        raise ValueError(f"unknown top-level config keys {sorted(unknown)}")
    for key, value in doc.items():
        if key in _SECTIONS:
            if value is None:
                kwargs[key] = None
            elif isinstance(value, dict):
                kwargs[key] = _build_section(_SECTIONS[key], value)
            else:
                raise ValueError(f"section {key!r} must be an object")
        else:
            kwargs[key] = value
    return ScenarioConfig(**kwargs)


def config_from_json(text: str) -> ScenarioConfig:
    """Build a ScenarioConfig from JSON text (partial configs allowed)."""
    return config_from_dict(json.loads(text))


def load_config(path: str) -> ScenarioConfig:
    """Read a ScenarioConfig from a JSON file."""
    with open(path, "r", encoding="utf-8") as fp:
        return config_from_json(fp.read())


def save_config(cfg: ScenarioConfig, path: str) -> None:
    """Write a ScenarioConfig to a JSON file."""
    with open(path, "w", encoding="utf-8") as fp:
        fp.write(config_to_json(cfg))

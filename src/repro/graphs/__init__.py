"""Resource graph ``G_r`` and service graph ``G_s`` (paper §3.3–3.4).

* The **resource graph** is the Resource Manager's map of its domain:
  vertices are *application states* (for transcoding: media formats) and
  edges are *service instances* hosted at specific peers, annotated with
  the work they cost and the bytes they emit.
* A **service graph** is carved out of the resource graph for one task:
  the concrete sequence of service invocations (with their hosting
  peers) that takes the application from its initial to its requested
  state.
"""

from repro.graphs.resource_graph import ResourceGraph, ServiceEdge
from repro.graphs.search import PathSearch, iter_paths
from repro.graphs.service_graph import ServiceGraph, ServiceStep

__all__ = [
    "PathSearch",
    "ResourceGraph",
    "ServiceEdge",
    "ServiceGraph",
    "ServiceStep",
    "iter_paths",
]

"""Path enumeration over the resource graph (the search of Fig. 3).

Two *visited policies* are provided:

``"paper"``
    Faithful to the Figure-3 pseudocode: a breadth-first search in which
    an intermediate vertex is marked *visited* when it is first expanded,
    so later paths through it are pruned.  The goal vertex is never
    marked, so every edge reaching it yields a candidate (this is what
    makes the fairness comparison in Fig. 3 meaningful — in Figure 1
    both ``{e1,e2}`` and ``{e1,e3}`` are considered).  Cheap — O(V+E)
    expansions — but may miss the globally best path; experiment F3
    quantifies the gap.

``"exhaustive"``
    Enumerates *all* simple paths (no repeated vertex within a path),
    depth-first, up to an expansion budget.  Exponential in the worst
    case; used by the optimal baseline and in tests as ground truth.

Both yield paths as lists of :class:`ServiceEdge` and accept a
``feasible`` predicate applied to every path *prefix* — infeasible
prefixes are pruned immediately, mirroring Fig. 3's "fulfills
requirements in q" check.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Hashable, Iterator, List, Optional

from repro.graphs.resource_graph import ResourceGraph, ServiceEdge

Path = List[ServiceEdge]
FeasiblePredicate = Callable[[Path], bool]


def iter_paths(
    graph: ResourceGraph,
    v_init: Hashable,
    v_sol: Hashable,
    visited_policy: str = "paper",
    feasible: Optional[FeasiblePredicate] = None,
    max_expansions: int = 100_000,
) -> Iterator[Path]:
    """Yield candidate execution sequences from ``v_init`` to ``v_sol``.

    Parameters
    ----------
    graph:
        The domain resource graph.
    v_init, v_sol:
        Initial and required application states.  A missing ``v_init``
        or ``v_sol`` yields no paths (the RM then reports "no feasible
        allocation", §4.3).
    visited_policy:
        ``"paper"`` or ``"exhaustive"`` (see module docstring).
    feasible:
        Optional prefix-feasibility predicate; prefixes failing it are
        pruned (and never extended).
    max_expansions:
        Safety budget on vertex expansions.
    """
    if visited_policy == "paper":
        yield from _bfs_paper(graph, v_init, v_sol, feasible, max_expansions)
    elif visited_policy == "exhaustive":
        yield from _dfs_simple(graph, v_init, v_sol, feasible, max_expansions)
    else:
        raise ValueError(
            f"unknown visited_policy {visited_policy!r}; "
            "use 'paper' or 'exhaustive'"
        )


def _bfs_paper(
    graph: ResourceGraph,
    v_init: Hashable,
    v_sol: Hashable,
    feasible: Optional[FeasiblePredicate],
    max_expansions: int,
) -> Iterator[Path]:
    if not graph.has_state(v_init) or not graph.has_state(v_sol):
        return
    if v_init == v_sol:
        # Already in the requested state: the empty sequence solves it.
        if feasible is None or feasible([]):
            yield []
        return
    queue: deque[tuple[Hashable, Path]] = deque([(v_init, [])])
    popleft = queue.popleft
    append = queue.append
    visited: set[Hashable] = set()
    # Read the adjacency dict directly: out_edges() returns a defensive
    # copy, but this loop only iterates (allocation runs this search for
    # every admitted task).
    out = graph._out
    expansions = 0
    while queue:
        v, seq = popleft()
        if feasible is not None and not feasible(seq):
            continue
        if v == v_sol:
            yield seq
            continue
        if v in visited:
            continue
        visited.add(v)
        expansions += 1
        if expansions > max_expansions:
            return
        for edge in out.get(v, ()):
            append((edge.dst, seq + [edge]))


def _dfs_simple(
    graph: ResourceGraph,
    v_init: Hashable,
    v_sol: Hashable,
    feasible: Optional[FeasiblePredicate],
    max_expansions: int,
) -> Iterator[Path]:
    if not graph.has_state(v_init) or not graph.has_state(v_sol):
        return
    if v_init == v_sol:
        if feasible is None or feasible([]):
            yield []
        return
    budget = [max_expansions]

    def dfs(v: Hashable, seq: Path, on_path: set[Hashable]) -> Iterator[Path]:
        if budget[0] <= 0:
            return
        budget[0] -= 1
        for edge in graph.out_edges(v):
            nxt = edge.dst
            if nxt in on_path:
                continue
            new_seq = seq + [edge]
            if feasible is not None and not feasible(new_seq):
                continue
            if nxt == v_sol:
                yield new_seq
                continue
            on_path.add(nxt)
            yield from dfs(nxt, new_seq, on_path)
            on_path.discard(nxt)

    yield from dfs(v_init, [], {v_init})


class PathSearch:
    """Convenience wrapper bundling a graph with search settings."""

    def __init__(
        self,
        graph: ResourceGraph,
        visited_policy: str = "paper",
        max_expansions: int = 100_000,
    ) -> None:
        if visited_policy not in ("paper", "exhaustive"):
            raise ValueError(f"unknown visited_policy {visited_policy!r}")
        self.graph = graph
        self.visited_policy = visited_policy
        self.max_expansions = max_expansions

    def paths(
        self,
        v_init: Hashable,
        v_sol: Hashable,
        feasible: Optional[FeasiblePredicate] = None,
    ) -> List[Path]:
        """All candidate paths as a list (see :func:`iter_paths`)."""
        return list(
            iter_paths(
                self.graph,
                v_init,
                v_sol,
                visited_policy=self.visited_policy,
                feasible=feasible,
                max_expansions=self.max_expansions,
            )
        )

"""The resource graph ``G_r``: domain states and service instances."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterator, List, Optional

_edge_counter = itertools.count(1)


@dataclass(frozen=True)
class ServiceEdge:
    """One service instance: a directed edge of ``G_r``.

    Attributes
    ----------
    src, dst:
        Application states (resource-graph vertices) this service
        converts between.
    service_id:
        The service *type* (e.g. a :class:`~repro.media.TranscoderSpec`
        id); several peers may host instances of the same type.
    peer_id:
        The hosting peer — executing this edge puts load on that peer.
    work:
        CPU work units consumed per execution (for the task's full
        stream).
    out_bytes:
        Bytes this service emits downstream per execution.
    edge_id:
        Unique label (``e1``, ``e2``, ... in Figure 1).
    """

    src: Hashable
    dst: Hashable
    service_id: str
    peer_id: str
    work: float
    out_bytes: float = 0.0
    edge_id: str = field(default_factory=lambda: f"e{next(_edge_counter)}")
    meta: Dict[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.work < 0:
            raise ValueError(f"negative work {self.work}")
        if self.out_bytes < 0:
            raise ValueError(f"negative out_bytes {self.out_bytes}")

    def __str__(self) -> str:
        return f"{self.edge_id}[{self.service_id}@{self.peer_id}]"


class ResourceGraph:
    """Directed multigraph of application states and service instances.

    Vertices are arbitrary hashable application states; parallel edges
    (several services, or the same service type on several peers, between
    the same pair of states) are first-class, exactly as in Figure 1
    where edges ``e2`` and ``e3`` both connect ``v2`` to ``v3``.
    """

    def __init__(self) -> None:
        self._vertices: Dict[Hashable, None] = {}
        self._out: Dict[Hashable, List[ServiceEdge]] = {}
        self._in: Dict[Hashable, List[ServiceEdge]] = {}
        self._edges: Dict[str, ServiceEdge] = {}

    # -- vertices -----------------------------------------------------------
    def add_state(self, state: Hashable) -> None:
        """Add an application state (idempotent)."""
        if state not in self._vertices:
            self._vertices[state] = None
            self._out[state] = []
            self._in[state] = []

    def has_state(self, state: Hashable) -> bool:
        return state in self._vertices

    @property
    def states(self) -> List[Hashable]:
        """All states, in insertion order."""
        return list(self._vertices)

    # -- edges ------------------------------------------------------------------
    def add_service(
        self,
        src: Hashable,
        dst: Hashable,
        service_id: str,
        peer_id: str,
        work: float,
        out_bytes: float = 0.0,
        edge_id: Optional[str] = None,
        **meta: Any,
    ) -> ServiceEdge:
        """Add a service instance edge; endpoints are created as needed."""
        self.add_state(src)
        self.add_state(dst)
        kwargs: Dict[str, Any] = dict(
            src=src,
            dst=dst,
            service_id=service_id,
            peer_id=peer_id,
            work=work,
            out_bytes=out_bytes,
            meta=meta,
        )
        if edge_id is not None:
            kwargs["edge_id"] = edge_id
        edge = ServiceEdge(**kwargs)
        if edge.edge_id in self._edges:
            raise ValueError(f"duplicate edge id {edge.edge_id!r}")
        self._edges[edge.edge_id] = edge
        self._out[src].append(edge)
        self._in[dst].append(edge)
        return edge

    def remove_edge(self, edge_id: str) -> None:
        """Remove one service instance."""
        edge = self._edges.pop(edge_id, None)
        if edge is None:
            return
        self._out[edge.src].remove(edge)
        self._in[edge.dst].remove(edge)

    def remove_peer(self, peer_id: str) -> List[ServiceEdge]:
        """Remove every edge hosted at *peer_id* (peer disconnect, §4.1).

        Returns the removed edges so callers can identify affected tasks.
        """
        doomed = [e for e in self._edges.values() if e.peer_id == peer_id]
        for edge in doomed:
            self.remove_edge(edge.edge_id)
        return doomed

    def edge(self, edge_id: str) -> ServiceEdge:
        """Look up an edge by id."""
        return self._edges[edge_id]

    def has_edge(self, edge_id: str) -> bool:
        return edge_id in self._edges

    def out_edges(self, state: Hashable) -> List[ServiceEdge]:
        """Edges leaving *state* (``E_out`` of §3.4)."""
        return list(self._out.get(state, ()))

    def in_edges(self, state: Hashable) -> List[ServiceEdge]:
        """Edges entering *state* (``E_in`` of §3.4)."""
        return list(self._in.get(state, ()))

    def edges(self) -> Iterator[ServiceEdge]:
        """All edges, in insertion order."""
        return iter(list(self._edges.values()))

    def edges_at_peer(self, peer_id: str) -> List[ServiceEdge]:
        """All service instances hosted by one peer."""
        return [e for e in self._edges.values() if e.peer_id == peer_id]

    @property
    def n_states(self) -> int:
        return len(self._vertices)

    @property
    def n_edges(self) -> int:
        return len(self._edges)

    def peers(self) -> List[str]:
        """Distinct hosting peers, in first-seen order."""
        seen: Dict[str, None] = {}
        for e in self._edges.values():
            seen.setdefault(e.peer_id, None)
        return list(seen)

    def copy(self) -> "ResourceGraph":
        """Shallow structural copy (edges are immutable, safe to share)."""
        # Bulk-copy the internal dicts (RM backup sync snapshots the
        # whole graph every replication period); the adjacency lists are
        # cloned, the edges themselves shared.
        g = ResourceGraph()
        g._vertices = dict.fromkeys(self._vertices)
        g._out = {v: list(es) for v, es in self._out.items()}
        g._in = {v: list(es) for v, es in self._in.items()}
        g._edges = dict(self._edges)
        return g

    def __repr__(self) -> str:
        return f"<ResourceGraph states={self.n_states} edges={self.n_edges}>"

"""Resource-graph analysis: NetworkX bridge, vulnerability, DOT export.

The Resource Manager can ask structural questions about its domain —
*which peers is the service fabric most dependent on?* — and operators
can dump the graphs for visualization.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Set

import networkx as nx

from repro.graphs.resource_graph import ResourceGraph
from repro.graphs.service_graph import ServiceGraph


def to_networkx(graph: ResourceGraph) -> "nx.MultiDiGraph":
    """Convert a resource graph to a NetworkX multidigraph.

    Vertices keep their state objects as node keys; each edge carries
    ``service_id``, ``peer_id``, ``work`` and ``out_bytes`` attributes
    and is keyed by its ``edge_id``.
    """
    g = nx.MultiDiGraph()
    for state in graph.states:
        g.add_node(state)
    for edge in graph.edges():
        g.add_edge(
            edge.src, edge.dst, key=edge.edge_id,
            service_id=edge.service_id, peer_id=edge.peer_id,
            work=edge.work, out_bytes=edge.out_bytes,
        )
    return g


def reachable_states(
    graph: ResourceGraph, v_init: Hashable
) -> Set[Hashable]:
    """All application states reachable from ``v_init``."""
    if not graph.has_state(v_init):
        return set()
    g = to_networkx(graph)
    return set(nx.descendants(g, v_init)) | {v_init}


def critical_peers(
    graph: ResourceGraph, v_init: Hashable, v_sol: Hashable
) -> List[str]:
    """Peers whose departure would disconnect ``v_init`` from ``v_sol``.

    The §4.1 repair mechanism can only substitute a failed peer if an
    alternative route exists; a *critical* peer has no such alternative
    — useful for provisioning decisions (host another instance!).
    """
    if not graph.has_state(v_init) or not graph.has_state(v_sol):
        return []
    base = to_networkx(graph)
    if not nx.has_path(base, v_init, v_sol):
        return []
    critical = []
    for peer in graph.peers():
        pruned = graph.copy()
        pruned.remove_peer(peer)
        g = to_networkx(pruned)
        if not (
            g.has_node(v_init)
            and g.has_node(v_sol)
            and nx.has_path(g, v_init, v_sol)
        ):
            critical.append(peer)
    return critical


def peer_centrality(graph: ResourceGraph) -> Dict[str, float]:
    """Fraction of all service instances each peer hosts.

    A crude load-exposure indicator: a peer hosting most of the edges
    will attract most assignments whatever the balancing policy does.
    """
    total = graph.n_edges
    if total == 0:
        return {}
    counts: Dict[str, int] = {}
    for edge in graph.edges():
        counts[edge.peer_id] = counts.get(edge.peer_id, 0) + 1
    return {p: c / total for p, c in counts.items()}


def _dot_escape(value: object) -> str:
    return str(value).replace('"', r"\"")


def resource_graph_to_dot(graph: ResourceGraph, name: str = "Gr") -> str:
    """Render a resource graph as Graphviz DOT text (Figure 1(A) style)."""
    lines = [f'digraph "{_dot_escape(name)}" {{', "  rankdir=LR;"]
    states = {state: f"v{i}" for i, state in enumerate(graph.states)}
    for state, node_id in states.items():
        lines.append(
            f'  {node_id} [label="{_dot_escape(state)}", shape=circle];'
        )
    for edge in graph.edges():
        lines.append(
            f"  {states[edge.src]} -> {states[edge.dst]} "
            f'[label="{_dot_escape(edge.edge_id)}\\n'
            f'{_dot_escape(edge.service_id)}@{_dot_escape(edge.peer_id)}"];'
        )
    lines.append("}")
    return "\n".join(lines)


def service_graph_to_dot(graph: ServiceGraph, name: str = "Gs") -> str:
    """Render a service graph as DOT (Figure 1(B) style chain)."""
    lines = [f'digraph "{_dot_escape(name)}" {{', "  rankdir=LR;"]
    lines.append(
        f'  src [label="source\\n{_dot_escape(graph.source_peer)}", '
        "shape=box];"
    )
    prev = "src"
    for step in graph.steps:
        node = f"s{step.index}"
        lines.append(
            f'  {node} [label="{_dot_escape(step.service_id)}\\n'
            f'@{_dot_escape(step.peer_id)}", shape=box];'
        )
        lines.append(f"  {prev} -> {node};")
        prev = node
    lines.append(
        f'  sink [label="sink\\n{_dot_escape(graph.sink_peer)}", '
        "shape=box];"
    )
    lines.append(f"  {prev} -> sink;")
    lines.append("}")
    return "\n".join(lines)

"""The service graph ``G_s``: one task's concrete invocation sequence."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.graphs.resource_graph import ServiceEdge


@dataclass(frozen=True)
class ServiceStep:
    """One invocation in a service graph.

    ``T_1, T_2, T_3`` in Figure 1(B) are steps; each corresponds to one
    resource-graph edge at allocation time, but steps carry their own
    copies of (service, peer, work, bytes) so the service graph stays
    valid when the resource graph is later updated — and so a *repair*
    can re-point a step at a replacement peer.
    """

    index: int
    service_id: str
    peer_id: str
    work: float
    out_bytes: float
    src_state: Hashable
    dst_state: Hashable
    edge_id: str = ""

    def with_peer(self, peer_id: str, edge_id: str = "") -> "ServiceStep":
        """A copy of this step hosted at a different peer (repair)."""
        return replace(self, peer_id=peer_id, edge_id=edge_id)


class ServiceGraph:
    """The per-task chain of service invocations (paper §3.3).

    The paper models a task as "a sequence of invocations of objects and
    services distributed across multiple processors"; the service graph
    is therefore a chain from the data source to the requesting peer,
    with per-step timing recorded during execution.
    """

    def __init__(
        self,
        task_id: str,
        source_peer: str,
        sink_peer: str,
        steps: Optional[List[ServiceStep]] = None,
    ) -> None:
        self.task_id = task_id
        #: Peer holding the source object (start of the stream).
        self.source_peer = source_peer
        #: Peer that submitted the query (receives the final stream).
        self.sink_peer = sink_peer
        self.steps: List[ServiceStep] = list(steps or [])
        #: Per-step measured (start, end) times, filled during execution.
        self.timings: Dict[int, Tuple[float, float]] = {}
        self.meta: Dict[str, Any] = {}

    @classmethod
    def from_edges(
        cls,
        task_id: str,
        edges: List[ServiceEdge],
        source_peer: str,
        sink_peer: str,
        work_scale: float = 1.0,
        index_offset: int = 0,
    ) -> "ServiceGraph":
        """Build a service graph from a chosen resource-graph path.

        ``work_scale`` converts the edges' canonical (per-reference-
        duration) work and byte volumes into this task's absolute ones.
        """
        steps = [
            ServiceStep(
                index=index_offset + i,
                service_id=e.service_id,
                peer_id=e.peer_id,
                work=e.work * work_scale,
                out_bytes=e.out_bytes * work_scale,
                src_state=e.src,
                dst_state=e.dst,
                edge_id=e.edge_id,
            )
            for i, e in enumerate(edges)
        ]
        return cls(task_id, source_peer, sink_peer, steps)

    def __len__(self) -> int:
        return len(self.steps)

    def peers(self) -> List[str]:
        """Every peer involved: source, all steps, sink (deduplicated)."""
        out: List[str] = []
        for p in [self.source_peer, *(s.peer_id for s in self.steps),
                  self.sink_peer]:
            if p not in out:
                out.append(p)
        return out

    def uses_peer(self, peer_id: str) -> bool:
        """True if the task depends on *peer_id* in any role."""
        return peer_id in self.peers()

    def steps_on_peer(self, peer_id: str) -> List[ServiceStep]:
        """Steps hosted at *peer_id*."""
        return [s for s in self.steps if s.peer_id == peer_id]

    def replace_step(self, index: int, new_step: ServiceStep) -> None:
        """Swap a step in place (service-graph repair, §4.1)."""
        if not 0 <= index < len(self.steps):
            raise IndexError(f"no step {index} in {self}")
        if new_step.index != index:
            raise ValueError(
                f"replacement step index {new_step.index} != slot {index}"
            )
        self.steps[index] = new_step

    def allocation_pairs(self) -> List[Tuple[str, str]]:
        """``(service_id, peer_id)`` pairs, the task-record form."""
        return [(s.service_id, s.peer_id) for s in self.steps]

    def total_work(self) -> float:
        """Sum of step work (CPU demand the task imposes)."""
        return sum(s.work for s in self.steps)

    def record_timing(self, index: int, start: float, end: float) -> None:
        """Store measured execution interval for one step."""
        if end < start:
            raise ValueError(f"end {end} before start {start}")
        self.timings[index] = (start, end)

    def __repr__(self) -> str:
        chain = " -> ".join(
            f"{s.service_id}@{s.peer_id}" for s in self.steps
        ) or "<empty>"
        return f"<ServiceGraph {self.task_id}: {self.source_peer} | {chain} | {self.sink_peer}>"

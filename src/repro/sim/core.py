"""The simulation environment: clock, event queue, and run loop."""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable, Optional, Union

from repro.sim.events import (
    NORMAL,
    AllOf,
    AnyOf,
    Event,
    Process,
    Timeout,
)


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Environment.run` at ``until``."""


# Heap entries are plain tuples (time, priority, seq, event): tuple
# comparison runs in C and the unique seq guarantees the event object is
# never compared.  (Profiling showed a dedicated __lt__ class cost ~10%
# of large runs.)


class Environment:
    """A discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (default ``0.0``).

    Notes
    -----
    The environment is single-threaded and deterministic: events scheduled
    at the same time fire in (priority, insertion) order.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        #: Events processed so far (the benchmark harness's work unit).
        self.n_processed = 0
        #: The process currently being stepped (None outside process code).
        self.active_process: Optional[Process] = None
        # Profiling hook (repro.profiling.SimEventProfiler): called with
        # (event, callbacks) after every stride-th dispatch.  None on the
        # default path, which keeps the plain run loop below untouched.
        self._profile_hook = None
        self._profile_stride: list[int] = [1]
        self._profile_i = 0

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing after *delay* time units."""
        return Timeout(self, delay, value)

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> Process:
        """Start a new process running *generator*."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event firing once all *events* have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event firing once any of *events* has fired."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = NORMAL
    ) -> None:
        """Place a triggered *event* on the queue ``delay`` from now."""
        if event._scheduled:
            raise RuntimeError(f"{event!r} is already scheduled")
        event._scheduled = True
        heapq.heappush(
            self._queue,
            (self._now + delay, priority, self._seq, event),
        )
        self._seq += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event.

        Raises
        ------
        IndexError
            If the queue is empty.
        """
        time, _priority, _seq, event = heapq.heappop(self._queue)
        self._now = time
        self.n_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not callbacks:
            # A failed event nobody waited for: surface the error rather
            # than silently dropping it.
            raise event._value
        if self._profile_hook is not None:
            self._profile_i += 1
            if self._profile_i >= self._profile_stride[0]:
                self._profile_i = 0
                self._profile_hook(event, callbacks)

    # -- profiling ----------------------------------------------------------
    def set_profile_hook(self, hook, stride_box: Optional[list[int]] = None) -> None:
        """Install a sampling hook on the event dispatch loop.

        *hook* is called as ``hook(event, callbacks)`` after every
        stride-th event has been dispatched, where the stride is read live
        from ``stride_box[0]`` (a one-element list the caller may mutate to
        retune the sample rate mid-run).  The hook observes only: it must
        not schedule events or mutate simulation state, so the event
        trajectory is identical with or without it.  The unhooked run loop
        is untouched — :meth:`run` selects a separate loop variant when a
        hook is installed.
        """
        self._profile_hook = hook
        self._profile_stride = stride_box if stride_box is not None else [1]
        self._profile_i = 0

    def clear_profile_hook(self) -> None:
        """Remove any installed profile hook."""
        self._profile_hook = None
        self._profile_stride = [1]
        self._profile_i = 0

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``
                run until no events remain.
            a number
                run until the clock reaches that time (the clock is set to
                exactly ``until`` on return, even if no event fires then).
            an :class:`Event`
                run until that event has been processed; return its value
                (re-raising its exception on failure).
        """
        stop_at: Optional[float] = None
        until_event: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            until_event = until
            if until_event.processed:
                if not until_event._ok:
                    raise until_event._value
                return until_event._value
            until_event.callbacks.append(self._stop_callback)
        else:
            stop_at = float(until)
            if stop_at < self._now:
                raise ValueError(
                    f"until={stop_at} is in the past (now={self._now})"
                )

        # The hot loop below is step() inlined: one event costs one
        # heappop plus its callbacks, with the queue and heappop held in
        # locals (the loop runs a few hundred thousand times per second
        # of large scenarios, so method/property dispatch per event is
        # measurable).  Keep any semantic change mirrored in step().
        queue = self._queue
        pop = heapq.heappop
        n = self.n_processed
        hook = self._profile_hook
        try:
            if hook is not None:
                # Hooked variants: identical dispatch semantics plus a
                # stride counter and the sampling call.  Kept separate so
                # the default loops above/below stay byte-identical (the
                # trajectory goldens time the unhooked path).
                stride_box = self._profile_stride
                i = self._profile_i
                if stop_at is None:
                    while queue:
                        entry = pop(queue)
                        self._now = entry[0]
                        n += 1
                        event = entry[3]
                        callbacks, event.callbacks = event.callbacks, None
                        for callback in callbacks:
                            callback(event)
                        if not event._ok and not callbacks:
                            raise event._value
                        i += 1
                        if i >= stride_box[0]:
                            i = 0
                            hook(event, callbacks)
                else:
                    while queue and queue[0][0] <= stop_at:
                        entry = pop(queue)
                        self._now = entry[0]
                        n += 1
                        event = entry[3]
                        callbacks, event.callbacks = event.callbacks, None
                        for callback in callbacks:
                            callback(event)
                        if not event._ok and not callbacks:
                            raise event._value
                        i += 1
                        if i >= stride_box[0]:
                            i = 0
                            hook(event, callbacks)
            elif stop_at is None:
                while queue:
                    entry = pop(queue)
                    self._now = entry[0]
                    n += 1
                    event = entry[3]
                    callbacks, event.callbacks = event.callbacks, None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not callbacks:
                        raise event._value
            else:
                while queue and queue[0][0] <= stop_at:
                    entry = pop(queue)
                    self._now = entry[0]
                    n += 1
                    event = entry[3]
                    callbacks, event.callbacks = event.callbacks, None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not callbacks:
                        raise event._value
        except StopSimulation:
            pass
        finally:
            self.n_processed = n
            if until_event is not None and until_event.callbacks is not None:
                try:
                    until_event.callbacks.remove(self._stop_callback)
                except ValueError:
                    pass

        if stop_at is not None:
            self._now = max(self._now, stop_at)
        if until_event is not None:
            if not until_event.processed:
                raise RuntimeError(
                    "run() ended before the 'until' event fired "
                    "(simulation starved)"
                )
            if not until_event._ok:
                raise until_event._value
            return until_event._value
        return None

    def _stop_callback(self, event: Event) -> None:
        raise StopSimulation()

    def __repr__(self) -> str:
        return f"<Environment now={self._now} queued={len(self._queue)}>"

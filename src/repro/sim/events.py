"""Event primitives for the simulation kernel.

An :class:`Event` goes through three states:

``pending``
    created but not yet triggered; callbacks may be attached.
``triggered``
    a value (or an exception) has been set and the event has been placed
    on the environment's queue; it will fire at its scheduled time.
``processed``
    the environment has popped the event and run its callbacks.

:class:`Process` is itself an event: it fires when the wrapped generator
terminates, carrying the generator's return value (so one process can
``yield`` another to join on it).
"""

from __future__ import annotations

from heapq import heappush as _heappush
from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.core import Environment

#: Scheduling priorities. Lower fires first at equal times.
URGENT = 0
NORMAL = 1

_PENDING = object()


class Interrupt(Exception):
    """Raised inside a process that has been :meth:`Process.interrupt`-ed.

    The interrupting party may attach an arbitrary ``cause`` which the
    interrupted process can inspect to decide how to react (e.g. a peer
    failure notification aborting an in-flight service invocation).
    """

    @property
    def cause(self) -> Any:
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0]


class Event:
    """A one-shot occurrence in simulated time.

    Parameters
    ----------
    env:
        The environment this event belongs to.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callbacks run (in attach order) when the event is processed.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._scheduled: bool = False

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once a value or exception has been set."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is not yet triggered."""
        if self._value is _PENDING:
            raise RuntimeError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Set the event's value and schedule it at the current time."""
        # Environment.schedule inlined (both guards kept): succeed runs
        # once for nearly every kernel event, so the property dispatch
        # and extra call frame are measurable at scale.
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if self._scheduled:
            raise RuntimeError(f"{self!r} is already scheduled")
        self._ok = True
        self._value = value
        self._scheduled = True
        env = self.env
        _heappush(env._queue, (env._now, NORMAL, env._seq, self))
        env._seq += 1
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Set an exception outcome and schedule the event."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger_from(self, other: "Event") -> None:
        """Copy the outcome of an already-triggered *other* event."""
        if other._value is _PENDING:
            raise RuntimeError(f"{other!r} has not been triggered")
        self._ok = other._ok
        self._value = other._value
        self.env.schedule(self)

    # -- composition -----------------------------------------------------
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else ("triggered" if self.triggered else "pending")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed *delay* of simulated time."""

    __slots__ = ("delay",)

    def __init__(
        self, env: "Environment", delay: float, value: Any = None
    ) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Flattened Event.__init__ + Environment.schedule: timeouts are
        # the most-allocated event type by far (every process loop tick
        # makes one), and a fresh timeout can never be already-scheduled,
        # so the schedule() guard is dead weight here.  Mirror any
        # change to the scheduling invariants in both places.
        self.env = env
        self.callbacks = []
        self.delay = delay = float(delay)
        self._ok = True
        self._value = value
        self._scheduled = True
        _heappush(env._queue, (env._now + delay, NORMAL, env._seq, self))
        env._seq += 1

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class Initialize(Event):
    """Internal event used to start a freshly created :class:`Process`."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env.schedule(self, priority=URGENT)


class _InterruptDelivery(Event):
    """Internal urgent event delivering an :class:`Interrupt` to a process."""

    __slots__ = ()

    def __init__(
        self, env: "Environment", process: "Process", cause: Any
    ) -> None:
        super().__init__(env)
        self.callbacks.append(process._deliver_interrupt)
        self._ok = False
        self._value = Interrupt(cause)
        env.schedule(self, priority=URGENT)


class Process(Event):
    """A simulation process wrapping a generator.

    The process fires (as an event) when the generator returns; the
    ``StopIteration`` value becomes the event value.  Exceptions escaping
    the generator fail the process event; if nobody is waiting on the
    process, the exception propagates out of :meth:`Environment.run` so
    bugs are never silently swallowed.
    """

    __slots__ = ("generator", "_target", "name", "_send", "_throw")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self.generator = generator
        # Bound once: _step runs for every resume of every process, and
        # the send/throw attribute lookups add up at scale.
        self._send = generator.send
        self._throw = generator.throw
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on.
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process raises ``RuntimeError``.  A process
        cannot interrupt itself (that would just be ``raise``).
        """
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise RuntimeError("a process cannot interrupt itself")
        _InterruptDelivery(self.env, self, cause)

    # -- kernel plumbing ---------------------------------------------------
    def _deliver_interrupt(self, event: Event) -> None:
        if not self.is_alive:  # terminated between scheduling and delivery
            return
        # Detach from the event we were waiting on so we are not resumed
        # twice; if it already fired its callback list is gone and the
        # interrupt is delivered in place of the value.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        self._step(event)

    def _resume(self, event: Event) -> None:
        self._target = None
        self._step(event)

    def _step(self, event: Event) -> None:
        """Advance the generator with the outcome of *event*."""
        env = self.env
        prev, env.active_process = env.active_process, self
        try:
            if event._ok:
                result = self._send(event._value)
            else:
                result = self._throw(event._value)
        except StopIteration as stop:
            env.active_process = prev
            self._ok = True
            self._value = stop.value
            env.schedule(self, priority=URGENT)
            return
        except BaseException as exc:
            env.active_process = prev
            self._ok = False
            self._value = exc
            env.schedule(self, priority=URGENT)
            return
        env.active_process = prev

        if not isinstance(result, Event):
            # Deliver a TypeError inside the generator; it may catch it
            # and terminate (StopIteration) or re-raise.
            relay = Event(env)
            relay.callbacks.append(self._resume)
            relay._ok = False
            relay._value = TypeError(
                f"process yielded a non-event: {result!r}"
            )
            env.schedule(relay, priority=URGENT)
            self._target = relay
            return
        if result.callbacks is None:  # i.e. result.processed, inlined
            # The yielded event already fired: resume immediately (next
            # kernel step) with its stored outcome.
            relay = Event(env)
            relay.callbacks.append(self._resume)
            relay.trigger_from(result)
            self._target = relay
        else:
            result.callbacks.append(self._resume)
            self._target = result

    def __repr__(self) -> str:
        return f"<Process {self.name} {'alive' if self.is_alive else 'dead'}>"


class _Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` composite events."""

    __slots__ = ("events", "_n_fired")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        self._n_fired = 0
        for ev in self.events:
            if ev.env is not env:
                raise ValueError("cannot mix events from different environments")
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            if ev.processed:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self.events if ev.processed and ev._ok}

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._n_fired += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when *all* component events have fired; value maps event->value."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_fired == len(self.events)


class AnyOf(_Condition):
    """Fires when *any* component event has fired; value maps event->value."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_fired >= 1

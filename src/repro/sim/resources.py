"""Shared-resource primitives built on the event kernel.

These mirror the classic SimPy primitives:

:class:`Resource`
    ``capacity`` identical slots, FIFO queueing.
:class:`PriorityResource`
    like :class:`Resource` but the wait queue is ordered by a numeric
    priority (lower = more urgent), FIFO within a priority.
:class:`Store`
    an unbounded (or bounded) buffer of Python objects with blocking
    ``put``/``get`` — the building block for mailboxes and links.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class Request(Event):
    """A pending acquisition of one slot of a :class:`Resource`.

    Usable as a context manager so the slot is always released::

        with resource.request() as req:
            yield req
            ... hold the resource ...
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request from the wait queue."""
        self.resource._cancel(self)


class Resource:
    """``capacity`` identical slots with FIFO queueing."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: list[Request] = []

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self) -> Request:
        """Ask for one slot; the returned event fires when granted."""
        req = Request(self)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed()
        else:
            self.queue.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a slot previously granted to *request*.

        Releasing a request that was never granted silently cancels it;
        this keeps the context-manager form safe even if the holder was
        interrupted before the grant.
        """
        if request in self.users:
            self.users.remove(request)
            self._grant_next()
        else:
            self._cancel(request)

    def _cancel(self, request: Request) -> None:
        try:
            self.queue.remove(request)
        except ValueError:
            pass

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            nxt = self.queue.pop(0)
            self.users.append(nxt)
            nxt.succeed()


class PriorityRequest(Request):
    """A :class:`Request` carrying a priority (lower = more urgent)."""

    __slots__ = ("priority", "_seq")

    def __init__(self, resource: "PriorityResource", priority: float) -> None:
        self.priority = priority
        self._seq = next(resource._counter)
        super().__init__(resource)

    def _key(self) -> tuple[float, int]:
        return (self.priority, self._seq)


class PriorityResource(Resource):
    """A resource whose wait queue is a priority queue."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        self._counter = itertools.count()
        super().__init__(env, capacity)
        self._heap: list[tuple[tuple[float, int], PriorityRequest]] = []

    def request(self, priority: float = 0.0) -> PriorityRequest:  # type: ignore[override]
        req = PriorityRequest(self, priority)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed()
        else:
            heapq.heappush(self._heap, (req._key(), req))
            self.queue.append(req)
        return req

    def _cancel(self, request: Request) -> None:
        super()._cancel(request)
        # lazily dropped from the heap in _grant_next

    def _grant_next(self) -> None:
        while self._heap and len(self.users) < self.capacity:
            _, nxt = heapq.heappop(self._heap)
            if nxt not in self.queue:  # cancelled
                continue
            self.queue.remove(nxt)
            self.users.append(nxt)
            nxt.succeed()


class StorePut(Event):
    """Pending insertion of *item* into a :class:`Store`."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item


class StoreGet(Event):
    """Pending retrieval from a :class:`Store`; fires with the item."""

    __slots__ = ("filter",)

    def __init__(
        self,
        store: "Store",
        filter: Optional[Callable[[Any], bool]] = None,
    ) -> None:
        super().__init__(store.env)
        self.filter = filter


class Store:
    """A buffer of items with blocking put/get.

    Parameters
    ----------
    env:
        Simulation environment.
    capacity:
        Maximum number of buffered items; ``float('inf')`` (default) for
        an unbounded buffer.

    ``get`` accepts an optional filter predicate, enabling
    selective-receive semantics (e.g. a peer waiting for a reply with a
    specific correlation id).
    """

    def __init__(
        self, env: "Environment", capacity: float = float("inf")
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: list[Any] = []
        self._putters: list[StorePut] = []
        self._getters: list[StoreGet] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Insert *item*; the returned event fires once buffered."""
        ev = StorePut(self, item)
        # Fast path (the overwhelmingly common mailbox case): no queue
        # ahead of us and room in the buffer — buffer, fire, hand the
        # item straight to the first matching waiter.  Identical event
        # ordering to _dispatch, without its rescan loop.
        if not self._putters and len(self.items) < self.capacity:
            self.items.append(item)
            ev.succeed()
            getters = self._getters
            if getters:
                # Unfiltered first waiter (every mailbox get): hand over
                # items[0] directly — the same pairing _serve_getters
                # would produce, minus its scan machinery.
                get = getters[0]
                if get.filter is None:
                    del getters[0]
                    get.succeed(self.items.pop(0))
                    if self.items and getters:
                        self._serve_getters()
                else:
                    self._serve_getters()
        else:
            self._putters.append(ev)
            self._dispatch()
        return ev

    def get(
        self, filter: Optional[Callable[[Any], bool]] = None
    ) -> StoreGet:
        """Take one item (matching *filter*, if given)."""
        ev = StoreGet(self, filter)
        # Fast path mirror of put(): nobody queued ahead of us.  Taking
        # a buffered item may open capacity for a waiting putter, hence
        # the _dispatch afterwards (which fires strictly later than our
        # get — the same order _dispatch itself produces).
        if not self._getters and self.items:
            if filter is None:
                ev.succeed(self.items.pop(0))
                if self._putters:
                    self._dispatch()
                return ev
            idx = self._match(ev)
            if idx is None:
                self._getters.append(ev)
                return ev
            ev.succeed(self.items.pop(idx))
            if self._putters:
                self._dispatch()
            return ev
        self._getters.append(ev)
        self._dispatch()
        return ev

    def cancel_get(self, ev: StoreGet) -> None:
        """Withdraw a pending get (e.g. on timeout)."""
        try:
            self._getters.remove(ev)
        except ValueError:
            pass

    def _serve_getters(self) -> None:
        """One pass of the getter-matching loop (see _dispatch)."""
        i = 0
        while i < len(self._getters):
            get = self._getters[i]
            idx = self._match(get)
            if idx is None:
                i += 1
                continue
            item = self.items.pop(idx)
            self._getters.pop(i)
            get.succeed(item)

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            # Move waiting puts into the buffer while capacity allows.
            while self._putters and len(self.items) < self.capacity:
                put = self._putters.pop(0)
                self.items.append(put.item)
                put.succeed()
                progress = True
            # Satisfy getters from the buffer.
            i = 0
            while i < len(self._getters):
                get = self._getters[i]
                idx = self._match(get)
                if idx is None:
                    i += 1
                    continue
                item = self.items.pop(idx)
                self._getters.pop(i)
                get.succeed(item)
                progress = True
            if not self.items and not self._putters:
                break

    def _match(self, get: StoreGet) -> Optional[int]:
        if get.filter is None:
            return 0 if self.items else None
        for idx, item in enumerate(self.items):
            if get.filter(item):
                return idx
        return None

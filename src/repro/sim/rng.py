"""Seeded, named random-number streams.

Every stochastic component of the simulation (arrival processes, link
jitter, churn, gossip peer selection, ...) draws from its *own* named
substream derived from a single root seed.  This gives two properties the
experiments rely on:

* **Reproducibility** — a run is a pure function of (config, seed).
* **Variance reduction** — changing one component (say, the allocation
  policy) does not perturb the random draws of unrelated components, so
  paired comparisons across policies see identical workloads.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np


class RandomStreams:
    """A factory of independent named :class:`numpy.random.Generator` s.

    Parameters
    ----------
    seed:
        Root seed. Two :class:`RandomStreams` built from the same seed
        return identical generators for identical names.

    Examples
    --------
    >>> streams = RandomStreams(7)
    >>> a = streams.get("arrivals")
    >>> b = streams.get("churn")
    >>> a is streams.get("arrivals")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for *name*."""
        gen = self._streams.get(name)
        if gen is None:
            # Derive a child seed deterministically from (root, name).
            ss = np.random.SeedSequence(
                self.seed, spawn_key=tuple(name.encode("utf-8"))
            )
            gen = np.random.Generator(np.random.Philox(ss))
            self._streams[name] = gen
        return gen

    def spawn(self, index: int) -> "RandomStreams":
        """Derive an independent child stream set (for replications)."""
        child = np.random.SeedSequence(self.seed, spawn_key=(0x5EED, index))
        return RandomStreams(int(child.generate_state(1)[0]))

    def __repr__(self) -> str:
        return f"RandomStreams(seed={self.seed}, streams={sorted(self._streams)})"


#: The ambient stream set of the scenario currently being built/run.
#: ``build_scenario`` installs its :class:`RandomStreams` here so that
#: components constructed *without* an explicit ``rng`` still derive
#: from the scenario seed instead of OS entropy — without it, any
#: stressor or helper wired up outside the builder would silently
#: break end-to-end reproducibility.
_ambient: Optional[RandomStreams] = None


def set_ambient_streams(streams: Optional[RandomStreams]) -> None:
    """Install (or clear, with ``None``) the ambient stream set.

    Called by ``build_scenario``; the ambient set stays installed for
    the lifetime of the run so components created mid-run (rebuilt
    gossip agents, scripted fault processes, ...) keep drawing from the
    scenario seed.  Building a new scenario replaces it.
    """
    global _ambient
    _ambient = streams


def ambient_streams() -> Optional[RandomStreams]:
    """The currently installed ambient stream set, if any."""
    return _ambient


def fallback_rng(name: str) -> np.random.Generator:
    """A generator for a component constructed without an explicit rng.

    When an ambient stream set is installed the generator is derived
    from the scenario seed under ``fallback:<name>`` (distinct from the
    explicitly plumbed streams, so legacy draw sequences are never
    perturbed); otherwise this falls back to OS entropy, preserving the
    historic "unseeded fallback" behavior for bare component use.
    """
    if _ambient is not None:
        return _ambient.get(f"fallback:{name}")
    return np.random.default_rng()

"""Seeded, named random-number streams.

Every stochastic component of the simulation (arrival processes, link
jitter, churn, gossip peer selection, ...) draws from its *own* named
substream derived from a single root seed.  This gives two properties the
experiments rely on:

* **Reproducibility** — a run is a pure function of (config, seed).
* **Variance reduction** — changing one component (say, the allocation
  policy) does not perturb the random draws of unrelated components, so
  paired comparisons across policies see identical workloads.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class RandomStreams:
    """A factory of independent named :class:`numpy.random.Generator` s.

    Parameters
    ----------
    seed:
        Root seed. Two :class:`RandomStreams` built from the same seed
        return identical generators for identical names.

    Examples
    --------
    >>> streams = RandomStreams(7)
    >>> a = streams.get("arrivals")
    >>> b = streams.get("churn")
    >>> a is streams.get("arrivals")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for *name*."""
        gen = self._streams.get(name)
        if gen is None:
            # Derive a child seed deterministically from (root, name).
            ss = np.random.SeedSequence(
                self.seed, spawn_key=tuple(name.encode("utf-8"))
            )
            gen = np.random.Generator(np.random.Philox(ss))
            self._streams[name] = gen
        return gen

    def spawn(self, index: int) -> "RandomStreams":
        """Derive an independent child stream set (for replications)."""
        child = np.random.SeedSequence(self.seed, spawn_key=(0x5EED, index))
        return RandomStreams(int(child.generate_state(1)[0]))

    def __repr__(self) -> str:
        return f"RandomStreams(seed={self.seed}, streams={sorted(self._streams)})"

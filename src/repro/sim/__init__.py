"""Discrete-event simulation kernel.

A self-contained, deterministic discrete-event simulator in the style of
SimPy: simulation *processes* are Python generators that ``yield`` events
(timeouts, other processes, resource requests, ...) and are resumed by the
:class:`~repro.sim.core.Environment` when those events fire.

The kernel is the substrate on which the entire peer-to-peer middleware
reproduction runs; every protocol component (schedulers, profilers,
resource managers, gossip, churn) is a process in this simulator.

Determinism: for a fixed seed and identical call order, runs are exactly
reproducible.  The event queue orders by ``(time, priority, sequence)``
where the sequence number breaks ties in insertion order.

Example
-------
>>> from repro.sim import Environment
>>> env = Environment()
>>> log = []
>>> def proc(env):
...     yield env.timeout(3)
...     log.append(env.now)
>>> _ = env.process(proc(env))
>>> env.run()
>>> log
[3.0]
"""

from repro.sim.core import Environment, StopSimulation
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    Timeout,
)
from repro.sim.resources import (
    PriorityResource,
    Resource,
    Store,
)
from repro.sim.rng import RandomStreams
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "PriorityResource",
    "Process",
    "RandomStreams",
    "Resource",
    "StopSimulation",
    "Store",
    "Timeout",
    "TraceRecord",
    "Tracer",
]

"""Lightweight structured tracing for simulation runs.

A :class:`Tracer` collects timestamped records emitted by protocol
components (task admitted, message sent, RM failover, ...).  Experiments
query it after a run; tests assert on it.  Tracing is off by default and
costs a single predicate call per record when disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace event."""

    time: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


class Tracer:
    """Collects :class:`TraceRecord` s, optionally filtered by kind."""

    def __init__(
        self,
        enabled: bool = True,
        kinds: Optional[set[str]] = None,
    ) -> None:
        self.enabled = enabled
        #: If not None, only these kinds are recorded.
        self.kinds = kinds
        self.records: List[TraceRecord] = []
        #: Counters by kind, maintained even for filtered-out kinds.
        self.counts: Dict[str, int] = {}

    def record(self, time: float, kind: str, **fields: Any) -> None:
        """Emit one record (no-op when disabled)."""
        if not self.enabled:
            return
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if self.kinds is not None and kind not in self.kinds:
            return
        self.records.append(TraceRecord(time, kind, fields))

    def count(self, kind: str) -> int:
        """Number of records of *kind* emitted so far."""
        return self.counts.get(kind, 0)

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All stored records of *kind*, in time order."""
        return [r for r in self.records if r.kind == kind]

    def where(
        self, predicate: Callable[[TraceRecord], bool]
    ) -> Iterator[TraceRecord]:
        """Iterate stored records matching *predicate*."""
        return (r for r in self.records if predicate(r))

    def clear(self) -> None:
        """Drop all stored records and counters."""
        self.records.clear()
        self.counts.clear()

    def __len__(self) -> int:
        return len(self.records)

"""QoS requirement sets (the ``q`` of the Fig-3 allocation algorithm)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict


@dataclass(frozen=True)
class QoSRequirements:
    """End-user QoS requirements attached to a task request.

    Attributes
    ----------
    deadline:
        Relative deadline in seconds from task initiation (paper §3.3,
        ``Deadline_t``). Must be positive.
    importance:
        Relative importance of the application (``Importance_t``);
        higher = more important. Used by value-aware local schedulers and
        by reassignment to decide which tasks to move first.
    constraints:
        Free-form additional constraints the request must satisfy — for a
        transcoding task e.g. acceptable codecs/bitrates. Interpreted by
        the workload layer when building ``v_sol`` candidates.
    """

    deadline: float
    importance: float = 1.0
    constraints: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")
        if self.importance <= 0:
            raise ValueError(
                f"importance must be positive, got {self.importance}"
            )

    def relax(self, deadline_factor: float) -> "QoSRequirements":
        """A copy with the deadline scaled (users relaxing QoS, §4.5)."""
        if deadline_factor <= 0:
            raise ValueError("deadline_factor must be positive")
        return QoSRequirements(
            deadline=self.deadline * deadline_factor,
            importance=self.importance,
            constraints=dict(self.constraints),
        )

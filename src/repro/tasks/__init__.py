"""Application-task and QoS model.

A *distributed application task* (paper §3.3) is a sequence of object and
service invocations across multiple peers, submitted by a user with a
deadline and an importance.  This package holds the task lifecycle state
machine, the QoS requirement set carried with each request, and the
per-invocation step descriptors that make up a service graph.
"""

from repro.tasks.qos import QoSRequirements
from repro.tasks.task import ApplicationTask, TaskOutcome, TaskState

__all__ = [
    "ApplicationTask",
    "QoSRequirements",
    "TaskOutcome",
    "TaskState",
]

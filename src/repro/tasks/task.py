"""Task lifecycle: states, outcomes, and the task record itself."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.tasks.qos import QoSRequirements

_task_counter = itertools.count(1)


class TaskState(enum.Enum):
    """Lifecycle states of an application task.

    ::

        PENDING --admit--> ALLOCATED --start--> RUNNING --finish--> DONE
           |                   |                   |
           +--reject--> REJECTED                   +--peer fail--> (repair)
           +--redirect--> (resubmitted in another domain)
    """

    PENDING = "pending"
    ALLOCATED = "allocated"
    RUNNING = "running"
    DONE = "done"
    REJECTED = "rejected"
    FAILED = "failed"


class TaskOutcome(enum.Enum):
    """Final disposition used by the metrics layer."""

    MET_DEADLINE = "met"
    MISSED_DEADLINE = "missed"
    REJECTED = "rejected"
    FAILED = "failed"


@dataclass
class ApplicationTask:
    """One application task request and its accumulated history.

    Attributes
    ----------
    name:
        Application-level name (``id_t`` in §4.3) — e.g. the requested
        media object.
    qos:
        The requirement set ``q``.
    initial_state / goal_state:
        Resource-graph vertices: where the request starts (e.g. the source
        media format) and what the user asked for.
    origin_peer:
        Peer that submitted the query.
    submitted_at:
        Simulation time of submission (stamped by the RM on receipt).
    """

    name: str
    qos: QoSRequirements
    initial_state: Any
    goal_state: Any
    origin_peer: str = ""
    task_id: str = field(default_factory=lambda: f"t{next(_task_counter)}")
    submitted_at: float = 0.0
    state: TaskState = TaskState.PENDING
    #: Assigned execution sequence as (service_id, peer_id) pairs.
    allocation: List[Tuple[str, str]] = field(default_factory=list)
    #: Fairness index of the domain load distribution at allocation time.
    allocation_fairness: float = 0.0
    #: Domain that finally admitted the task (after any redirects).
    admitted_domain: Optional[str] = None
    redirects: int = 0
    repairs: int = 0
    finished_at: Optional[float] = None
    outcome: Optional[TaskOutcome] = None
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def absolute_deadline(self) -> float:
        """Wall-clock deadline: submission time + relative deadline."""
        return self.submitted_at + self.qos.deadline

    @property
    def response_time(self) -> Optional[float]:
        """Completion latency, or ``None`` if not finished."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def mark_allocated(
        self,
        allocation: List[Tuple[str, str]],
        fairness: float,
        domain: str,
    ) -> None:
        """Record a successful allocation (RM decision)."""
        if self.state not in (TaskState.PENDING, TaskState.RUNNING):
            raise ValueError(f"cannot allocate task in state {self.state}")
        self.allocation = list(allocation)
        self.allocation_fairness = fairness
        self.admitted_domain = domain
        self.state = TaskState.ALLOCATED

    def mark_running(self) -> None:
        """The streaming session has started."""
        self.state = TaskState.RUNNING

    def mark_done(self, now: float) -> None:
        """Completed; outcome depends on the deadline (soft real-time)."""
        self.finished_at = now
        self.state = TaskState.DONE
        self.outcome = (
            TaskOutcome.MET_DEADLINE
            if now <= self.absolute_deadline
            else TaskOutcome.MISSED_DEADLINE
        )

    def mark_rejected(self, now: float, reason: str = "") -> None:
        """Admission control refused the task everywhere."""
        self.finished_at = now
        self.state = TaskState.REJECTED
        self.outcome = TaskOutcome.REJECTED
        if reason:
            self.meta["reject_reason"] = reason

    def mark_failed(self, now: float, reason: str = "") -> None:
        """The task was lost (e.g. unrepairable peer failure)."""
        self.finished_at = now
        self.state = TaskState.FAILED
        self.outcome = TaskOutcome.FAILED
        if reason:
            self.meta["fail_reason"] = reason

    def peers_used(self) -> List[str]:
        """Distinct peers in the current allocation, in invocation order."""
        seen: List[str] = []
        for _service, peer in self.allocation:
            if peer not in seen:
                seen.append(peer)
        return seen

    def __repr__(self) -> str:
        return (
            f"<Task {self.task_id} {self.name!r} {self.state.value}"
            f" dl={self.qos.deadline:g}>"
        )

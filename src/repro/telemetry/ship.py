"""Cursor-based trace shipping: flush tracer history to an export stream.

A :class:`TraceShipper` tracks how much of a
:class:`~repro.telemetry.tracer.TelemetryTracer`'s finished-span and
event history has already been flushed to an external sink (a
supervisor pipe, a file), and hands out only the unshipped suffix as
JSONL-ready records.  It exists to close the span-loss window the
sharded runtime had: the shard's history trim (``del spans[:-KEEP]``)
could discard spans that had never reached the export stream.  With a
shipper the rule is *flush before trim, trim only what was flushed* —
:meth:`trim` refuses to delete unshipped records, so under any burst
the union of shipped + retained records is the full history.

The shipper reads the tracer's public lists only (no tracer changes),
so it composes with the flight recorder's listener tap and the
in-process exporters untouched.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


class TraceShipper:
    """Incremental span/event flusher over a tracer's history lists."""

    def __init__(self, tracer, shard: Optional[str] = None) -> None:
        self.tracer = tracer
        #: Stamped into every shipped record (cluster merge provenance).
        self.shard = shard
        #: History-list prefix lengths already handed out by collect().
        self._spans_shipped = 0
        self._events_shipped = 0
        #: Totals across the shipper's lifetime (survive trims).
        self.total_spans = 0
        self.total_events = 0

    # -- flushing ------------------------------------------------------------
    def pending(self) -> int:
        """Records accumulated since the last :meth:`collect`."""
        return (
            max(0, len(self.tracer.spans) - self._spans_shipped)
            + max(0, len(self.tracer.events) - self._events_shipped)
        )

    def collect(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """The unshipped suffix as JSONL-ready records (``type`` tagged).

        Advances the cursor past everything returned.  With *limit*,
        at most that many records are returned (spans first) and the
        remainder stays pending for the next call.
        """
        out: List[Dict[str, Any]] = []
        spans = self.tracer.spans
        events = self.tracer.events
        take_spans = len(spans) - self._spans_shipped
        if limit is not None:
            take_spans = min(take_spans, max(0, limit))
        for span in spans[self._spans_shipped:
                          self._spans_shipped + take_spans]:
            rec = span.as_dict()
            rec["type"] = "span"
            if self.shard is not None:
                rec.setdefault("attrs", {})["shard"] = self.shard
            out.append(rec)
        self._spans_shipped += take_spans
        self.total_spans += take_spans

        take_events = len(events) - self._events_shipped
        if limit is not None:
            take_events = min(take_events, max(0, limit - take_spans))
        for ev in events[self._events_shipped:
                         self._events_shipped + take_events]:
            rec = ev.as_dict()
            rec["type"] = "event"
            if self.shard is not None:
                rec.setdefault("attrs", {})["shard"] = self.shard
            out.append(rec)
        self._events_shipped += take_events
        self.total_events += take_events
        return out

    # -- safe trimming -------------------------------------------------------
    def trim(self, keep: int, high: Optional[int] = None) -> int:
        """Trim shipped history down to *keep* records per list.

        Only records already handed out by :meth:`collect` are
        eligible — unshipped ones survive regardless of *keep*, so a
        burst between flushes can never lose data.  With *high*, lists
        at or under that length are left alone (hysteresis).  Returns
        the number of records dropped.
        """
        dropped = 0
        for shipped_attr, records in (
            ("_spans_shipped", self.tracer.spans),
            ("_events_shipped", self.tracer.events),
        ):
            if high is not None and len(records) <= high:
                continue
            shipped = getattr(self, shipped_attr)
            # Never drop below `keep` retained records, and never drop
            # past the shipped prefix.
            droppable = min(shipped, max(0, len(records) - keep))
            if droppable <= 0:
                continue
            del records[:droppable]
            setattr(self, shipped_attr, shipped - droppable)
            dropped += droppable
        return dropped

    def __repr__(self) -> str:
        return (
            f"<TraceShipper shard={self.shard!r} "
            f"shipped={self.total_spans}+{self.total_events} "
            f"pending={self.pending()}>"
        )

"""Structured ``logging`` wiring with per-node context.

Every middleware component logs through :func:`get_logger`, which binds
the owning node's id into each record (``record.node``); the stock
formatter prints it, and :class:`JsonLogFormatter` emits one JSON object
per line for machine consumption.  Nothing is configured by default —
an un-configured run pays only the stdlib's is-enabled check — call
:func:`configure_logging` (the CLIs do, behind ``--log-level``).
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO, Optional

#: Root of the package's logger namespace.
ROOT = "repro"

_TEXT_FORMAT = (
    "%(asctime)s %(levelname)-7s %(name)s [%(node)s] %(message)s"
)


class _EnsureNode(logging.Filter):
    """Guarantee ``record.node`` exists so the formatter never KeyErrors."""

    def filter(self, record: logging.LogRecord) -> bool:
        if not hasattr(record, "node"):
            record.node = "-"
        return True


class NodeAdapter(logging.LoggerAdapter):
    """Injects a fixed ``node`` id into every record."""

    def process(self, msg, kwargs):
        extra = kwargs.setdefault("extra", {})
        extra.setdefault("node", self.extra["node"])
        return msg, kwargs


class JsonLogFormatter(logging.Formatter):
    """One JSON object per log line (greppable structured logs)."""

    def format(self, record: logging.LogRecord) -> str:
        body = {
            "ts": self.formatTime(record),
            "level": record.levelname,
            "logger": record.name,
            "node": getattr(record, "node", "-"),
            "msg": record.getMessage(),
        }
        if record.exc_info:
            body["exc"] = self.formatException(record.exc_info)
        return json.dumps(body, separators=(",", ":"))


def get_logger(component: str, node: str = "-") -> NodeAdapter:
    """A per-node logger, e.g. ``get_logger("runtime.node", "P3")``."""
    return NodeAdapter(
        logging.getLogger(f"{ROOT}.{component}"), {"node": node}
    )


def configure_logging(
    level: str = "INFO",
    stream: Optional[IO[str]] = None,
    json_lines: bool = False,
) -> logging.Handler:
    """Attach one handler to the ``repro`` logger namespace.

    Idempotent: a second call replaces the handler installed by the
    first (repeated CLI invocations in one process must not stack
    handlers and double-print).
    """
    root = logging.getLogger(ROOT)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_telemetry", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler._repro_telemetry = True  # type: ignore[attr-defined]
    handler.addFilter(_EnsureNode())
    if json_lines:
        handler.setFormatter(JsonLogFormatter())
    else:
        handler.setFormatter(logging.Formatter(_TEXT_FORMAT))
    root.addHandler(handler)
    root.setLevel(level.upper())
    root.propagate = False
    return handler

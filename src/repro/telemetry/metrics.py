"""The metrics registry: counters, gauges, histograms + exporters.

A :class:`MetricsRegistry` hands out label-scoped instruments on demand
(`registry.counter("repro_udp_retransmits_total", node="P1").inc()`),
following
the Prometheus data model: a *family* is one name + instrument type, a
*series* is a family plus a concrete label set.  Two export formats:

* ``snapshot()`` — plain dicts, one per series, written into the JSONL
  trace file alongside spans and events;
* ``to_prometheus_text()`` — the Prometheus text exposition format, for
  scraping or eyeballing.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Default histogram bucket upper bounds (seconds-flavoured).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError(f"counters only go up, got {n}")
        self.value += n


class Gauge:
    """A value that can go up and down."""

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.value -= n


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(sorted(buckets))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        #: Per-bound non-cumulative counts; +inf overflow kept separately.
        self.counts = [0] * len(self.bounds)
        self.overflow = 0
        self.sum = 0.0
        self.count = 0

    def observe(self, v: float) -> None:
        self.sum += v
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if v <= bound:
                self.counts[i] += 1
                return
        self.overflow += 1

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (Prometheus-style linear interpolation).

        The estimate interpolates within the bucket where the cumulative
        count crosses ``q * count``.  The first bucket's lower edge is
        taken as ``min(0.0, lowest bound)`` (laxity histograms observe
        negative values); observations in the overflow bucket clamp to
        the highest finite bound.
        """
        return bucket_quantile(
            [[b, n] for b, n in self.cumulative()], q
        )

    def quantiles(
        self, qs: Iterable[float] = (0.5, 0.95, 0.99)
    ) -> Dict[float, float]:
        """Estimates for several quantiles at once."""
        return {q: self.quantile(q) for q in qs}

    def cumulative(self) -> List[Tuple[float, int]]:
        """(upper bound, cumulative count) pairs, +inf last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.overflow))
        return out

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Get-or-create registry of labelled instruments."""

    def __init__(self) -> None:
        #: family name -> instrument type ("counter"/"gauge"/"histogram").
        self._types: Dict[str, str] = {}
        self._series: Dict[Tuple[str, _LabelKey], Any] = {}
        self._help: Dict[str, str] = {}

    # -- instrument access -------------------------------------------------
    def _get(
        self, name: str, type_: str, factory, labels: Dict[str, Any],
        help_: str = "",
    ):
        seen = self._types.get(name)
        if seen is None:
            self._types[name] = type_
            if help_:
                self._help[name] = help_
        elif seen != type_:
            raise ValueError(
                f"metric {name!r} already registered as {seen}, not {type_}"
            )
        key = (name, _label_key(labels))
        inst = self._series.get(key)
        if inst is None:
            inst = self._series[key] = factory()
        return inst

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        return self._get(name, "counter", Counter, labels, help)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        return self._get(name, "gauge", Gauge, labels, help)

    def histogram(
        self,
        name: str,
        buckets: Optional[Iterable[float]] = None,
        help: str = "",
        **labels: Any,
    ) -> Histogram:
        return self._get(
            name, "histogram",
            lambda: Histogram(buckets or DEFAULT_BUCKETS), labels, help,
        )

    # -- introspection -----------------------------------------------------
    def families(self) -> List[str]:
        return sorted(self._types)

    def value(self, name: str, **labels: Any) -> Optional[float]:
        """Scalar value of one series (histograms report their sum)."""
        inst = self._series.get((name, _label_key(labels)))
        if inst is None:
            return None
        if isinstance(inst, Histogram):
            return inst.sum
        return inst.value

    def total(self, name: str) -> float:
        """Sum of a family's scalar values across all label sets."""
        total = 0.0
        for (fam, _), inst in self._series.items():
            if fam != name:
                continue
            total += inst.sum if isinstance(inst, Histogram) else inst.value
        return total

    def clear(self) -> None:
        self._types.clear()
        self._series.clear()
        self._help.clear()

    def __len__(self) -> int:
        return len(self._series)

    # -- exporters ---------------------------------------------------------
    def snapshot(self) -> List[Dict[str, Any]]:
        """One plain dict per series (the JSONL ``metric`` records)."""
        out: List[Dict[str, Any]] = []
        for (name, key) in sorted(self._series):
            inst = self._series[(name, key)]
            rec: Dict[str, Any] = {
                "name": name,
                "type": self._types[name],
                "labels": dict(key),
            }
            if isinstance(inst, Histogram):
                rec["sum"] = inst.sum
                rec["count"] = inst.count
                rec["buckets"] = [
                    [b if b != float("inf") else "+Inf", n]
                    for b, n in inst.cumulative()
                ]
            else:
                rec["value"] = inst.value
            out.append(rec)
        return out

    def to_prometheus_text(self) -> str:
        """Prometheus text exposition format."""
        lines: List[str] = []
        by_family: Dict[str, List[Tuple[_LabelKey, Any]]] = {}
        for (name, key), inst in self._series.items():
            by_family.setdefault(name, []).append((key, inst))
        for name in sorted(by_family):
            help_ = self._help.get(name)
            if help_:
                lines.append(f"# HELP {name} {help_}")
            lines.append(f"# TYPE {name} {self._types[name]}")
            for key, inst in sorted(by_family[name]):
                if isinstance(inst, Histogram):
                    for bound, n in inst.cumulative():
                        le = "+Inf" if bound == float("inf") else f"{bound:g}"
                        lines.append(
                            f"{name}_bucket{_fmt_labels(key, le=le)} {n}"
                        )
                    lines.append(
                        f"{name}_sum{_fmt_labels(key)} {inst.sum:g}"
                    )
                    lines.append(
                        f"{name}_count{_fmt_labels(key)} {inst.count}"
                    )
                else:
                    lines.append(
                        f"{name}{_fmt_labels(key)} {inst.value:g}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def bucket_quantile(buckets: List[List[Any]], q: float) -> float:
    """q-quantile estimate from cumulative ``[[bound, count], ...]``.

    Accepts the snapshot/JSONL bucket encoding, where the +inf bound is
    the string ``"+Inf"`` and counts are cumulative.  Linear
    interpolation within the crossing bucket, Prometheus-style; the
    overflow bucket clamps to the highest finite bound.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    parsed: List[Tuple[float, float]] = []
    for bound, n in buckets:
        b = float("inf") if bound == "+Inf" else float(bound)
        parsed.append((b, float(n)))
    parsed.sort(key=lambda bn: bn[0])
    if not parsed or parsed[-1][1] <= 0:
        return 0.0
    total = parsed[-1][1]
    rank = q * total
    prev_bound = min(0.0, parsed[0][0])
    prev_count = 0.0
    for bound, count in parsed:
        if count >= rank:
            if bound == float("inf"):
                # Overflow bucket: no upper edge to interpolate toward.
                return prev_bound
            if count == prev_count:
                return bound
            frac = (rank - prev_count) / (count - prev_count)
            return prev_bound + frac * (bound - prev_bound)
        prev_bound, prev_count = bound, count
    return prev_bound


def _fmt_labels(key: _LabelKey, **extra: str) -> str:
    pairs = list(key) + sorted(extra.items())
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _escape(v: str) -> str:
    return v.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")

"""Trace analysis: span trees, per-task critical paths, summaries.

Works on :class:`~repro.telemetry.export.TraceData` (a loaded JSONL
file) — the ``repro-trace`` CLI is a thin printer over these functions,
and tests assert on their return values directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.telemetry.export import TraceData
from repro.telemetry.metrics import bucket_quantile
from repro.telemetry.tracer import MESSAGE, SERVICE, TASK, Span

#: NetworkStats counter names surfaced in the reliability summary.
_RELIABILITY_KEYS = (
    "sent", "delivered", "dropped", "partition_drops", "retransmits",
    "duplicates", "malformed", "acks_sent",
)


def span_children(spans: List[Span]) -> Dict[Optional[int], List[Span]]:
    """parent span id -> children, each list in start order."""
    tree: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        tree.setdefault(span.parent_id, []).append(span)
    for children in tree.values():
        children.sort(key=lambda s: (s.start, s.span_id))
    return tree


@dataclass
class TaskTrace:
    """Everything one task's trace contains."""

    task_id: str
    trace_id: str
    #: The RM-side lifecycle span, if the trace captured it.
    task_span: Optional[Span] = None
    #: Per-hop service execution spans, in start order.
    hops: List[Span] = field(default_factory=list)
    #: Message spans belonging to this trace, in start order.
    messages: List[Span] = field(default_factory=list)

    @property
    def status(self) -> str:
        return self.task_span.status if self.task_span else "?"

    @property
    def duration(self) -> Optional[float]:
        return self.task_span.duration if self.task_span else None

    @property
    def nodes(self) -> List[str]:
        """Distinct nodes touched by this trace, in first-seen order."""
        seen: List[str] = []
        for span in self.critical_path():
            if span.node and span.node not in seen:
                seen.append(span.node)
        for span in self.messages:
            for node in (span.node, span.attrs.get("dst")):
                if node and node not in seen:
                    seen.append(node)
        return seen

    def critical_path(self) -> List[Span]:
        """The task span followed by its service hops, in time order.

        Service chains execute hop by hop, so the ordered hop spans ARE
        the critical path of the session; the enclosing task span heads
        the list when present.
        """
        path: List[Span] = []
        if self.task_span is not None:
            path.append(self.task_span)
        path.extend(self.hops)
        return path


def task_traces(data: TraceData) -> List[TaskTrace]:
    """Group spans into per-task traces (``task:<id>`` trace ids)."""
    by_trace: Dict[str, TaskTrace] = {}
    for span in sorted(data.spans, key=lambda s: (s.start, s.span_id)):
        tid = span.trace_id
        if not tid or not tid.startswith("task:"):
            continue
        trace = by_trace.get(tid)
        if trace is None:
            trace = by_trace[tid] = TaskTrace(
                task_id=tid.split(":", 1)[1], trace_id=tid
            )
        if span.kind == TASK:
            trace.task_span = span
        elif span.kind == SERVICE:
            trace.hops.append(span)
        elif span.kind == MESSAGE:
            trace.messages.append(span)
    return sorted(by_trace.values(), key=lambda t: t.task_id)


def message_kind_counts(data: TraceData) -> Dict[str, int]:
    """Message-span count per protocol kind."""
    counts: Dict[str, int] = {}
    for span in data.spans:
        if span.kind == MESSAGE:
            counts[span.name] = counts.get(span.name, 0) + 1
    return counts


def reliability_summary(data: TraceData) -> Dict[str, float]:
    """Transport counters aggregated over all nodes.

    Reads the ``net_*``/``udp_*`` metric families the instrumented
    transports maintain, falling back to the aggregate the CLI stores
    in the meta line, so both sim and live traces produce one schema.
    """
    out: Dict[str, float] = {k: 0.0 for k in _RELIABILITY_KEYS}
    # Canonical repro_* names plus the pre-rename families, so traces
    # written before the naming normalization still analyze cleanly.
    families = {
        "repro_net_messages_sent_total": "sent",
        "repro_net_messages_delivered_total": "delivered",
        "repro_net_messages_dropped_total": "dropped",
        "repro_udp_retransmits_total": "retransmits",
        "repro_udp_duplicates_total": "duplicates",
        "repro_udp_malformed_total": "malformed",
        "repro_udp_acks_sent_total": "acks_sent",
        "net_messages_sent_total": "sent",
        "net_messages_delivered_total": "delivered",
        "net_messages_dropped_total": "dropped",
        "udp_retransmits_total": "retransmits",
        "udp_duplicates_total": "duplicates",
        "udp_malformed_total": "malformed",
        "udp_acks_sent_total": "acks_sent",
    }
    seen = False
    for rec in data.metrics:
        key = families.get(rec.get("name", ""))
        if key is not None:
            out[key] += rec.get("value", 0.0)
            seen = True
    agg = data.meta.get("aggregate")
    if isinstance(agg, dict):
        # The aggregate is the same ground truth the counters came
        # from; fill any key the metric records didn't cover (e.g.
        # partition_drops, which has no counter family).
        for key in _RELIABILITY_KEYS:
            if key in agg and (not seen or out[key] == 0.0):
                out[key] = float(agg[key])
    return out


def histogram_summaries(data: TraceData) -> Dict[str, Dict[str, float]]:
    """Per-family count/mean/p50/p95/p99 over histogram metric records.

    Label sets within a family are merged by summing their cumulative
    bucket counts per bound, then quantiles are estimated from the
    merged buckets (the same linear interpolation Prometheus uses).
    """
    merged: Dict[str, Dict[str, Any]] = {}
    for rec in data.metrics:
        if "buckets" not in rec:
            continue
        name = rec.get("name", "?")
        fam = merged.setdefault(
            name, {"count": 0, "sum": 0.0, "buckets": {}}
        )
        fam["count"] += rec.get("count", 0)
        fam["sum"] += rec.get("sum", 0.0)
        for bound, n in rec["buckets"]:
            key = "+Inf" if bound == "+Inf" else float(bound)
            fam["buckets"][key] = fam["buckets"].get(key, 0) + n
    out: Dict[str, Dict[str, float]] = {}
    for name in sorted(merged):
        fam = merged[name]
        buckets = [[b, n] for b, n in fam["buckets"].items()]
        count = fam["count"]
        out[name] = {
            "count": count,
            "mean": fam["sum"] / count if count else 0.0,
            "p50": bucket_quantile(buckets, 0.5),
            "p95": bucket_quantile(buckets, 0.95),
            "p99": bucket_quantile(buckets, 0.99),
        }
    return out


def control_event_counts(data: TraceData) -> Dict[str, int]:
    """Event count per event name (elections, gossip rounds, ...)."""
    counts: Dict[str, int] = {}
    for ev in data.events:
        counts[ev.name] = counts.get(ev.name, 0) + 1
    return counts


# -- report rendering --------------------------------------------------------

def format_report(data: TraceData, verbose: bool = False) -> str:
    """The human-readable ``repro-trace`` report."""
    lines: List[str] = []
    traces = task_traces(data)
    lines.append(
        f"trace: clock={data.clock} spans={len(data.spans)} "
        f"events={len(data.events)} tasks={len(traces)}"
    )
    for trace in traces:
        dur = trace.duration
        head = f"task {trace.task_id}: {trace.status}"
        if dur is not None:
            head += f" in {dur:.3f}s"
        head += f"  hops={len(trace.hops)}"
        if trace.nodes:
            head += f"  nodes={'->'.join(trace.nodes)}"
        lines.append(head)
        path = trace.critical_path()
        if path:
            t0 = path[0].start
            lines.append("  critical path:")
            for span in path:
                dt = span.start - t0
                desc = f"    +{dt:8.3f}s  {span.kind:<7} {span.name}"
                if span.node:
                    desc += f" @ {span.node}"
                if span.duration is not None:
                    desc += f"  ({span.duration:.3f}s)"
                if span.kind == SERVICE:
                    step = span.attrs.get("step_index")
                    if step is not None:
                        desc += f"  step={step}"
                lines.append(desc)
        if verbose and trace.messages:
            lines.append(f"  messages: {len(trace.messages)}")
            for span in trace.messages:
                lines.append(
                    f"    {span.name} {span.node}->"
                    f"{span.attrs.get('dst', '?')} [{span.status}]"
                )
    kinds = message_kind_counts(data)
    if kinds:
        lines.append("message spans by kind:")
        lines.append(
            "  " + " ".join(f"{k}={n}" for k, n in sorted(kinds.items()))
        )
    events = control_event_counts(data)
    if events:
        lines.append("events:")
        lines.append(
            "  " + " ".join(f"{k}={n}" for k, n in sorted(events.items()))
        )
    rel = reliability_summary(data)
    lines.append(
        "reliability: " + " ".join(
            f"{k}={rel[k]:g}" for k in _RELIABILITY_KEYS
        )
    )
    hists = histogram_summaries(data)
    if hists:
        lines.append("latency quantiles:")
        for name, s in hists.items():
            lines.append(
                f"  {name}: n={s['count']} mean={s['mean']:.4f}s "
                f"p50={s['p50']:.4f}s p95={s['p95']:.4f}s "
                f"p99={s['p99']:.4f}s"
            )
    return "\n".join(lines)


def report_dict(data: TraceData) -> Dict[str, Any]:
    """Machine-readable form of the report (``repro-trace --json``)."""
    return {
        "clock": data.clock,
        "n_spans": len(data.spans),
        "n_events": len(data.events),
        "tasks": [
            {
                "task_id": t.task_id,
                "status": t.status,
                "duration": t.duration,
                "hops": len(t.hops),
                "nodes": t.nodes,
                "critical_path": [
                    {
                        "name": s.name,
                        "kind": s.kind,
                        "node": s.node,
                        "start": s.start,
                        "duration": s.duration,
                        "status": s.status,
                    }
                    for s in t.critical_path()
                ],
            }
            for t in task_traces(data)
        ],
        "message_kinds": message_kind_counts(data),
        "events": control_event_counts(data),
        "reliability": reliability_summary(data),
        "histograms": histogram_summaries(data),
    }

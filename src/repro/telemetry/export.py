"""JSONL trace files: one self-describing record per line.

Line types::

    {"type": "meta",   "clock": "wall", "version": 1, ...}
    {"type": "span",   "span_id": 3, "trace_id": "task:t1", ...}
    {"type": "event",  "time": 0.2, "name": "rm.elected", ...}
    {"type": "metric", "name": "repro_udp_retransmits_total", ...}
    {"type": "series", "name": "repro_peer_load", "t": [...], "v": [...]}
    {"type": "profile", "runtime": "sim", "top": [...], "budget": {...}}

The format is append-friendly (a crashed run still yields a readable
prefix) and greppable; :func:`read_jsonl` tolerates unknown line types
so future writers stay compatible with old readers.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Iterable, List, Optional, Union

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import Span, TraceEvent

#: Trace-file schema version; bump on incompatible record changes.
TRACE_FORMAT_VERSION = 1


@dataclass
class TraceData:
    """An in-memory trace file (what :func:`read_jsonl` returns)."""

    meta: Dict[str, Any] = field(default_factory=dict)
    spans: List[Span] = field(default_factory=list)
    events: List[TraceEvent] = field(default_factory=list)
    metrics: List[Dict[str, Any]] = field(default_factory=list)
    series: List[Dict[str, Any]] = field(default_factory=list)
    #: The run's profiler summary (``--profile``), or None.
    profile: Optional[Dict[str, Any]] = None

    @property
    def clock(self) -> str:
        return self.meta.get("clock", "?")


def iter_records(
    tracer,
    metrics: Optional[MetricsRegistry] = None,
    meta: Optional[Dict[str, Any]] = None,
    sampler=None,
    profile: Optional[Dict[str, Any]] = None,
) -> Iterable[Dict[str, Any]]:
    """All records of one trace file, meta line first."""
    head: Dict[str, Any] = {
        "type": "meta",
        "version": TRACE_FORMAT_VERSION,
        "clock": getattr(getattr(tracer, "clock", None), "label", "?"),
    }
    if meta:
        head.update(meta)
    yield head
    for span in sorted(tracer.spans, key=lambda s: (s.start, s.span_id)):
        rec = span.as_dict()
        rec["type"] = "span"
        yield rec
    for ev in tracer.events:
        rec = ev.as_dict()
        rec["type"] = "event"
        yield rec
    if metrics is not None:
        for rec in metrics.snapshot():
            rec = dict(rec)
            rec["type"] = "metric"
            yield rec
    if sampler is not None:
        for rec in sampler.records():
            rec = dict(rec)
            rec["type"] = "series"
            yield rec
    if profile is not None:
        rec = dict(profile)
        rec["type"] = "profile"
        yield rec


def write_jsonl(
    dest: Union[str, "os.PathLike[str]", IO[str]],
    tracer,
    metrics: Optional[MetricsRegistry] = None,
    meta: Optional[Dict[str, Any]] = None,
    sampler=None,
    profile: Optional[Dict[str, Any]] = None,
) -> int:
    """Write a trace file; returns the number of records written."""
    records = iter_records(
        tracer, metrics=metrics, meta=meta, sampler=sampler,
        profile=profile,
    )
    if isinstance(dest, (str, os.PathLike)):
        with open(dest, "w", encoding="utf-8") as fp:
            return _write(fp, records)
    return _write(dest, records)


def _write(fp: IO[str], records: Iterable[Dict[str, Any]]) -> int:
    n = 0
    for rec in records:
        fp.write(json.dumps(rec, separators=(",", ":"), default=str))
        fp.write("\n")
        n += 1
    return n


def read_jsonl(src: Union[str, "os.PathLike[str]", IO[str]]) -> TraceData:
    """Load a trace file written by :func:`write_jsonl`."""
    if isinstance(src, (str, os.PathLike)):
        with open(src, "r", encoding="utf-8") as fp:
            return _read(fp)
    return _read(src)


def _read(fp: IO[str]) -> TraceData:
    data = TraceData()
    for lineno, line in enumerate(fp, 1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"bad trace line {lineno}: {exc}") from exc
        rtype = rec.get("type")
        if rtype == "meta":
            data.meta.update(
                {k: v for k, v in rec.items() if k != "type"}
            )
        elif rtype == "span":
            data.spans.append(Span.from_dict(rec))
        elif rtype == "event":
            data.events.append(TraceEvent.from_dict(rec))
        elif rtype == "metric":
            data.metrics.append(
                {k: v for k, v in rec.items() if k != "type"}
            )
        elif rtype == "series":
            data.series.append(
                {k: v for k, v in rec.items() if k != "type"}
            )
        elif rtype == "profile":
            data.profile = {
                k: v for k, v in rec.items() if k != "type"
            }
        # unknown types: skipped (forward compatibility)
    return data

"""``repro-dash`` — terminal/markdown health report from sampled series.

::

    repro-dash out.jsonl                       # sparkline health report
    repro-dash out.jsonl --markdown            # markdown tables
    repro-dash out.jsonl --json                # machine-readable
    repro-dash out.jsonl --bundle flight-000-rm_failover.jsonl

Loads a trace written with ``--sample`` (``repro-run``/``repro-live``)
and renders one sparkline per health series — the Figures 1–3-style
views (deadline-miss ratio, load imbalance, staleness, net rates)
regenerated from any run.  A flight-recorder bundle adds an anomaly
section: reason, trigger time, and the windowed event counts.

Merged cluster traces (``repro-trace merge`` output, ``--observe``
soaks) additionally render a *cluster* panel: supervisor-aggregated
miss ratio, per-shard imbalance spread, and SLO burn state.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.telemetry.analyze import (
    _RELIABILITY_KEYS,
    control_event_counts,
    histogram_summaries,
    reliability_summary,
)
from repro.telemetry.export import TraceData, read_jsonl
from repro.reporting.ascii import sparkline

#: Max label sets rendered per series family before eliding.
_MAX_SERIES_PER_FAMILY = 4


def _fmt_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def _families(series: List[Dict[str, Any]]) -> Dict[str, List[Dict]]:
    fams: Dict[str, List[Dict]] = {}
    for rec in series:
        fams.setdefault(rec.get("name", "?"), []).append(rec)
    for recs in fams.values():
        recs.sort(key=lambda r: sorted((r.get("labels") or {}).items()))
    return fams


def _last_value(rec: Dict[str, Any]) -> Optional[float]:
    values = rec.get("v") or []
    return float(values[-1]) if values else None


def cluster_summary(data: TraceData) -> Optional[Dict[str, Any]]:
    """Supervisor-aggregated rollup, present only in merged cluster
    traces (``repro-trace merge`` output / ``--observe`` soaks).

    Returns None when the trace carries no ``scope=cluster`` series and
    no ``repro_shard_*`` per-shard series — single-process traces render
    no cluster panel.
    """
    cluster = [
        r for r in data.series
        if (r.get("labels") or {}).get("scope") == "cluster"
    ]
    shard_recs = [
        r for r in data.series
        if str(r.get("name", "")).startswith("repro_shard_")
        and "shard" in (r.get("labels") or {})
    ]
    if not cluster and not shard_recs:
        return None

    miss: Dict[str, float] = {}
    load_mean = None
    load_imbalance = None
    for rec in cluster:
        last = _last_value(rec)
        if last is None:
            continue
        name = rec.get("name")
        if name == "repro_sched_miss_ratio":
            miss[(rec.get("labels") or {}).get("qos", "?")] = last
        elif name == "repro_load_mean":
            load_mean = last
        elif name == "repro_load_imbalance":
            load_imbalance = last

    shard_imbalance: Dict[str, float] = {}
    shard_inflight: Dict[str, float] = {}
    for rec in shard_recs:
        last = _last_value(rec)
        if last is None:
            continue
        sid = rec["labels"]["shard"]
        if rec.get("name") == "repro_shard_imbalance":
            shard_imbalance[sid] = last
        elif rec.get("name") == "repro_shard_tasks_inflight":
            shard_inflight[sid] = last

    burn: Dict[str, float] = {}
    for rec in data.series:
        if rec.get("name") != "repro_slo_burn_rate":
            continue
        last = _last_value(rec)
        if last is None:
            continue
        labels = rec.get("labels") or {}
        key = f"{labels.get('slo', '?')}/{labels.get('window', '?')}"
        # Several shards may report the same SLO window; the cluster
        # state is the worst of them.
        burn[key] = max(burn.get(key, 0.0), last)

    return {
        "shards": sorted(
            {r["labels"]["shard"] for r in shard_recs}
        ),
        "load_mean": load_mean,
        "load_imbalance": load_imbalance,
        "miss_ratio": miss,
        "shard_imbalance": shard_imbalance,
        "shard_inflight": shard_inflight,
        "slo_burn": burn,
    }


def _series_line(rec: Dict[str, Any], width: int, markdown: bool) -> str:
    values = [float(v) for v in rec.get("v", [])]
    labels = _fmt_labels(rec.get("labels") or {})
    spark = sparkline(values, width=width) if values else "(empty)"
    if values:
        stats = (
            f"n={len(values)} last={values[-1]:.3g} "
            f"min={min(values):.3g} max={max(values):.3g}"
        )
    else:
        stats = "n=0"
    if markdown:
        return f"| `{labels or '—'}` | `{spark}` | {stats} |"
    return f"  {labels or '(all)':<28} {spark}  {stats}"


def render_report(
    data: TraceData,
    bundle: Optional[TraceData] = None,
    markdown: bool = False,
    width: int = 40,
) -> str:
    lines: List[str] = []

    def heading(text: str) -> None:
        if markdown:
            lines.append(f"\n## {text}\n")
        else:
            lines.append(f"\n{text}")

    head = (
        f"clock={data.clock} series={len(data.series)} "
        f"spans={len(data.spans)} events={len(data.events)}"
    )
    if markdown:
        lines.append("# repro health report\n")
        lines.append(head)
    else:
        lines.append(f"repro health report: {head}")

    cluster = cluster_summary(data)
    if cluster is not None:
        heading("cluster")
        parts = []
        if cluster["shards"]:
            parts.append(f"shards={len(cluster['shards'])}")
        if cluster["load_mean"] is not None:
            parts.append(f"load_mean={cluster['load_mean']:.3g}")
        if cluster["load_imbalance"] is not None:
            parts.append(
                f"load_imbalance={cluster['load_imbalance']:.3g}"
            )
        for qos, ratio in sorted(cluster["miss_ratio"].items()):
            parts.append(f"miss_ratio[{qos}]={ratio:.1%}")
        lines.append(" ".join(parts) if parts else "(no samples)")
        if cluster["shard_imbalance"]:
            vals = cluster["shard_imbalance"]
            spread = max(vals.values()) - min(vals.values())
            lines.append(
                "per-shard imbalance: " + " ".join(
                    f"{sid}={v:.2f}" for sid, v in sorted(vals.items())
                ) + f"  (spread {spread:.2f})"
            )
        if cluster["shard_inflight"]:
            lines.append(
                "per-shard inflight: " + " ".join(
                    f"{sid}={v:g}" for sid, v in
                    sorted(cluster["shard_inflight"].items())
                )
            )
        if cluster["slo_burn"]:
            worst = max(cluster["slo_burn"].values())
            lines.append(
                "slo burn: " + " ".join(
                    f"{key}={v:g}x" for key, v in
                    sorted(cluster["slo_burn"].items())
                ) + ("  BURNING" if worst > 1.0 else "  ok")
            )

    fams = _families(data.series)
    if not fams:
        lines.append(
            "\nno sampled series in this trace — rerun with --sample "
            "(repro-run/repro-live) to record health signals."
        )
    for name in sorted(fams):
        recs = fams[name]
        heading(name)
        if markdown:
            lines.append("| labels | trend | stats |")
            lines.append("|---|---|---|")
        for rec in recs[:_MAX_SERIES_PER_FAMILY]:
            lines.append(_series_line(rec, width, markdown))
        if len(recs) > _MAX_SERIES_PER_FAMILY:
            extra = len(recs) - _MAX_SERIES_PER_FAMILY
            lines.append(
                f"| … | (+{extra} more) | |" if markdown
                else f"  (+{extra} more label sets)"
            )

    rep_fams = {
        name: recs for name, recs in fams.items()
        if name.startswith("repro_reputation_")
    }
    if rep_fams:
        heading("reputation defense")

        def _last(name: str) -> Optional[float]:
            recs = rep_fams.get(name)
            if not recs:
                return None
            values = recs[0].get("v") or []
            return float(values[-1]) if values else None

        quarantined = _last("repro_reputation_quarantined")
        total = _last("repro_reputation_quarantines_total")
        min_trust = _last("repro_reputation_min_trust")
        mean_trust = _last("repro_reputation_mean_trust")
        parts = []
        if quarantined is not None:
            parts.append(f"quarantined={quarantined:g}")
        if total is not None:
            parts.append(f"quarantines_total={total:g}")
        if min_trust is not None:
            parts.append(f"min_trust={min_trust:.3f}")
        if mean_trust is not None:
            parts.append(f"mean_trust={mean_trust:.3f}")
        lines.append(" ".join(parts) if parts else "(no samples)")

    rel = reliability_summary(data)
    if any(rel.values()):
        heading("reliability")
        lines.append(
            " ".join(f"{k}={rel[k]:g}" for k in _RELIABILITY_KEYS)
        )
    hists = histogram_summaries(data)
    if hists:
        heading("latency quantiles")
        for name, s in hists.items():
            lines.append(
                f"{name}: n={s['count']} mean={s['mean']:.4f}s "
                f"p50={s['p50']:.4f}s p95={s['p95']:.4f}s "
                f"p99={s['p99']:.4f}s"
            )
    events = control_event_counts(data)
    if events:
        heading("events")
        lines.append(
            " ".join(f"{k}={n}" for k, n in sorted(events.items()))
        )

    if data.profile:
        prof = data.profile
        budget = prof.get("budget", {})
        heading("profiler")
        rate = (
            f"stride={prof['stride']}" if "stride" in prof
            else f"period={prof.get('period', '?')}s"
        )
        lines.append(
            f"runtime={prof.get('runtime', '?')} "
            f"samples={prof.get('samples', 0)} "
            f"stacks={prof.get('unique_stacks', 0)} {rate} "
            f"overhead={budget.get('overhead_cumulative', 0.0):.2%} "
            f"(budget {budget.get('target', 0.0):.0%}, "
            f"{budget.get('backoffs', 0)} backoffs / "
            f"{budget.get('recovers', 0)} recovers)"
        )
        top = prof.get("top", [])
        if markdown and top:
            lines.append("| share | hot path |")
            lines.append("|---|---|")
        for entry in top[:8]:
            if markdown:
                lines.append(
                    f"| {entry['share']:.1%} | `{entry['stack']}` |"
                )
            else:
                lines.append(f"  {entry['share']:6.1%}  {entry['stack']}")
        settings = budget.get("settings") or {}
        if settings:
            lines.append(
                "knobs: " + " ".join(
                    f"{k}={v:g}" for k, v in sorted(settings.items())
                )
            )
        slo = prof.get("slo")
        if slo is not None:
            heading("slo burn")
            for s in slo.get("slos", []):
                lines.append(
                    f"  {s['name']}: {s['series']} "
                    f"{s.get('comparison', '>')} {s['threshold']:g} "
                    f"(objective {s['objective']:.0%})"
                )
            alerts = slo.get("alerts", [])
            for a in alerts:
                lines.append(
                    f"  ALERT t={a['time']:g} {a['slo']} "
                    f"({a['window']} window) burn={a['burn']:g}x "
                    f"bad={a['bad_fraction']:.1%}"
                    + (f" -> {a['dump']}" if a.get("dump") else "")
                )
            if not alerts:
                lines.append("  no burn alerts")

    if bundle is not None:
        heading("flight recorder")
        meta = bundle.meta
        lines.append(
            f"reason={meta.get('reason', '?')} "
            f"time={meta.get('time', '?')} "
            f"window={meta.get('window', '?')}s "
            f"clock={meta.get('clock', '?')}"
        )
        counts = control_event_counts(bundle)
        if counts:
            lines.append(
                "window events: " + " ".join(
                    f"{k}={n}" for k, n in sorted(counts.items())
                )
            )
        lines.append(
            f"window spans: {len(bundle.spans)}  "
            f"series: {len(bundle.series)}"
        )
    return "\n".join(lines)


def report_dict(
    data: TraceData, bundle: Optional[TraceData] = None
) -> Dict[str, Any]:
    doc: Dict[str, Any] = {
        "clock": data.clock,
        "series": data.series,
        "reliability": reliability_summary(data),
        "histograms": histogram_summaries(data),
        "events": control_event_counts(data),
    }
    cluster = cluster_summary(data)
    if cluster is not None:
        doc["cluster"] = cluster
    if data.profile:
        doc["profile"] = data.profile
    if bundle is not None:
        doc["flight"] = {
            "meta": bundle.meta,
            "events": control_event_counts(bundle),
            "n_spans": len(bundle.spans),
            "n_series": len(bundle.series),
        }
    return doc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dash",
        description=(
            "Render a terminal/markdown health report (sparklines per "
            "sampled signal) from a telemetry trace produced with "
            "--sample, optionally joined with a flight-recorder bundle."
        ),
    )
    parser.add_argument("trace", help="trace file (JSONL) with series")
    parser.add_argument(
        "--bundle", help="flight-recorder bundle (JSONL) to include",
    )
    parser.add_argument(
        "--markdown", action="store_true",
        help="emit markdown tables instead of plain text",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit a machine-readable JSON report",
    )
    parser.add_argument(
        "--width", type=int, default=40,
        help="sparkline width in characters (default 40)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        data = read_jsonl(args.trace)
        bundle = read_jsonl(args.bundle) if args.bundle else None
    except OSError as exc:
        print(f"error: cannot read trace: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        if args.json:
            print(json.dumps(
                report_dict(data, bundle), indent=2, default=str
            ))
        else:
            print(render_report(
                data, bundle, markdown=args.markdown, width=args.width
            ))
    except BrokenPipeError:  # e.g. ``repro-dash out.jsonl | head``
        sys.stderr.close()
        return 0
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

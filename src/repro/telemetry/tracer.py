"""Causal spans and events — the trace side of the telemetry layer.

A :class:`Span` is a timed interval of work (a task's whole lifetime, one
service hop on a CPU, one message's flight); a :class:`TraceEvent` is an
instantaneous occurrence (an RM election, a gossip round, a profiler
update).  Causality is carried two ways:

* ``trace_id`` groups everything belonging to one logical activity —
  task traces use ``task:<task_id>``, so spans recorded by different
  nodes (and across the UDP hop, where the id travels on the wire in
  :class:`~repro.net.message.Message`) land in the same trace;
* ``parent_id`` links a span to its enclosing span when both live in
  the same process (e.g. a service hop under its task span).

Two tracer implementations share one API: :class:`TelemetryTracer`
records everything; :class:`NoopTracer` (the process-wide default) does
nothing.  Instrumented hot paths guard every call with a single
``enabled`` check, so disabled-telemetry overhead is a branch and an
attribute read — see ``tests/test_telemetry.py`` for the bound.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

# -- span kinds --------------------------------------------------------------
#: Whole task lifecycle: submit -> admission -> ... -> done/miss/reject.
TASK = "task"
#: One service-hop execution on a peer's CPU.
SERVICE = "service"
#: One protocol message's flight (send -> deliver/ack, or -> dropped).
MESSAGE = "message"
#: Control-plane work (election, failover, sync, gossip).
CONTROL = "control"


@dataclass
class Span:
    """One timed interval of traced work."""

    span_id: int
    trace_id: Optional[str]
    parent_id: Optional[int]
    name: str
    kind: str
    node: str
    start: float
    end: Optional[float] = None
    status: str = "open"
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> Optional[float]:
        """Span length, or ``None`` while still open."""
        if self.end is None:
            return None
        return self.end - self.start

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form for the JSONL exporter."""
        return {
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "node": self.node,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Span":
        return cls(
            span_id=d["span_id"], trace_id=d.get("trace_id"),
            parent_id=d.get("parent_id"), name=d["name"], kind=d["kind"],
            node=d.get("node", ""), start=d["start"], end=d.get("end"),
            status=d.get("status", "ok"), attrs=dict(d.get("attrs", {})),
        )


@dataclass
class TraceEvent:
    """One instantaneous traced occurrence."""

    time: float
    name: str
    node: str
    trace_id: Optional[str] = None
    span_id: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "time": self.time,
            "name": self.name,
            "node": self.node,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "TraceEvent":
        return cls(
            time=d["time"], name=d["name"], node=d.get("node", ""),
            trace_id=d.get("trace_id"), span_id=d.get("span_id"),
            attrs=dict(d.get("attrs", {})),
        )


class TelemetryTracer:
    """Records spans and events, stamping times from a clock source.

    In-flight spans can be registered under a string *key* so the code
    that closes a span need not hold the object the opener created —
    e.g. the RM opens ``task:<id>`` at submission and closes it by key
    when the completion report arrives.
    """

    enabled = True

    def __init__(self, clock) -> None:
        self.clock = clock
        #: Finished spans, in completion order.
        self.spans: List[Span] = []
        #: Events, in emission order.
        self.events: List[TraceEvent] = []
        self._open: Dict[str, Span] = {}
        self._ids = itertools.count(1)
        # Stream taps (e.g. the flight recorder): fn(kind, record) called
        # on every finished span and every event.
        self._listeners: List[Any] = []

    # -- stream listeners --------------------------------------------------
    def add_listener(self, fn) -> None:
        """Register *fn(kind, record)* for finished spans and events."""
        if fn not in self._listeners:
            self._listeners.append(fn)

    def remove_listener(self, fn) -> None:
        if fn in self._listeners:
            self._listeners.remove(fn)

    # -- spans -------------------------------------------------------------
    def start_span(
        self,
        name: str,
        kind: str,
        node: str = "",
        trace_id: Optional[str] = None,
        parent_id: Optional[int] = None,
        key: Optional[str] = None,
        **attrs: Any,
    ) -> Span:
        """Open a span now; register it under *key* if given."""
        span = Span(
            span_id=next(self._ids), trace_id=trace_id,
            parent_id=parent_id, name=name, kind=kind, node=node,
            start=self.clock.now(), attrs=attrs,
        )
        if key is not None:
            self._open[key] = span
        return span

    def end_span(self, span: Span, status: str = "ok", **attrs: Any) -> Span:
        """Close *span* now with a final status."""
        span.end = self.clock.now()
        span.status = status
        if attrs:
            span.attrs.update(attrs)
        self.spans.append(span)
        if self._listeners:
            for fn in self._listeners:
                fn("span", span)
        return span

    def end_span_key(
        self, key: str, status: str = "ok", **attrs: Any
    ) -> Optional[Span]:
        """Close the span registered under *key* (``None`` if unknown)."""
        span = self._open.pop(key, None)
        if span is None:
            return None
        return self.end_span(span, status=status, **attrs)

    def open_span(self, key: str) -> Optional[Span]:
        """The still-open span registered under *key*, if any."""
        return self._open.get(key)

    def finish_open(self, status: str = "unfinished") -> int:
        """Close every still-open keyed span (export-time cleanup)."""
        n = 0
        for key in list(self._open):
            self.end_span_key(key, status=status)
            n += 1
        return n

    # -- events ------------------------------------------------------------
    def event(
        self,
        name: str,
        node: str = "",
        trace_id: Optional[str] = None,
        span_id: Optional[int] = None,
        **attrs: Any,
    ) -> TraceEvent:
        """Emit one instantaneous event."""
        ev = TraceEvent(
            time=self.clock.now(), name=name, node=node,
            trace_id=trace_id, span_id=span_id, attrs=attrs,
        )
        self.events.append(ev)
        if self._listeners:
            for fn in self._listeners:
                fn("event", ev)
        return ev

    # -- queries -----------------------------------------------------------
    def spans_of_kind(self, kind: str) -> List[Span]:
        return [s for s in self.spans if s.kind == kind]

    def trace(self, trace_id: str) -> List[Span]:
        """All finished spans of one trace, in start order."""
        return sorted(
            (s for s in self.spans if s.trace_id == trace_id),
            key=lambda s: (s.start, s.span_id),
        )

    def clear(self) -> None:
        self.spans.clear()
        self.events.clear()
        self._open.clear()

    def __len__(self) -> int:
        return len(self.spans) + len(self.events)


class NoopTracer:
    """The disabled tracer: every method is a do-nothing stub.

    Call sites normally never reach these methods (they check
    ``enabled`` first); the stubs exist so un-guarded calls are still
    harmless.
    """

    enabled = False

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self.events: List[TraceEvent] = []

    def start_span(self, name, kind, **kwargs) -> Span:  # noqa: D102
        return _NOOP_SPAN

    def end_span(self, span, status="ok", **attrs) -> Span:  # noqa: D102
        return _NOOP_SPAN

    def end_span_key(self, key, status="ok", **attrs):  # noqa: D102
        return None

    def open_span(self, key):  # noqa: D102
        return None

    def finish_open(self, status="unfinished") -> int:  # noqa: D102
        return 0

    def event(self, name, **kwargs) -> None:  # noqa: D102
        return None

    def add_listener(self, fn) -> None:  # noqa: D102
        return None

    def remove_listener(self, fn) -> None:  # noqa: D102
        return None

    def clear(self) -> None:  # noqa: D102
        return None

    def __len__(self) -> int:
        return 0


#: Shared placeholder returned by every NoopTracer span call.
_NOOP_SPAN = Span(
    span_id=0, trace_id=None, parent_id=None, name="noop", kind=CONTROL,
    node="", start=0.0, end=0.0, status="noop",
)

"""Pluggable clock sources behind the telemetry timestamps.

The same instrumentation call sites run in two worlds: the discrete-event
simulator (timestamps are simulation seconds) and the live UDP runtime
(timestamps are wall-clock seconds since telemetry activation).  A
:class:`ClockSource` hides the difference; every span and event records
which clock stamped it, so analysis tools never mix the two scales.
"""

from __future__ import annotations

import time
from typing import Protocol


class ClockSource(Protocol):
    """Anything with a monotone ``now()`` and a scale ``label``."""

    #: ``"sim"`` or ``"wall"`` — written into exported traces.
    label: str

    def now(self) -> float:
        """Current time on this clock's scale (seconds)."""
        ...  # pragma: no cover


class SimClock:
    """Reads simulation time from an :class:`~repro.sim.core.Environment`.

    Duck-typed on ``env.now`` so the telemetry package never imports the
    simulator (no circular dependency: the sim imports telemetry).
    """

    label = "sim"

    def __init__(self, env) -> None:
        self.env = env

    def now(self) -> float:
        return self.env.now


class WallClock:
    """Monotonic wall-clock seconds since construction.

    Relative (not epoch) time keeps live traces directly comparable to
    simulator traces, which also start at zero.
    """

    label = "wall"

    def __init__(self) -> None:
        self._anchor = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._anchor


class NullClock:
    """The no-op telemetry clock: always zero, never consulted."""

    label = "null"

    def now(self) -> float:
        return 0.0

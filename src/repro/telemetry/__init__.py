"""Unified telemetry: causal tracing + metrics across sim and live runs.

One process-wide :class:`Telemetry` handle bundles the three pillars:

* ``tracer`` — causally-linked spans and events
  (:mod:`repro.telemetry.tracer`),
* ``metrics`` — a counters/gauges/histograms registry
  (:mod:`repro.telemetry.metrics`),
* ``clock`` — the time source stamping both
  (:mod:`repro.telemetry.clock`): sim-time in the simulator,
  wall-clock in the live UDP runtime.

The default handle is a no-op: instrumented hot paths check one flag::

    from repro import telemetry
    ...
    tel = telemetry.current()
    if tel.enabled:
        tel.tracer.event("gossip.round", node=rm_id)

so a run that never activates telemetry pays a module-global read and a
branch per call site (bounded by a test).  Activate explicitly::

    tel = telemetry.activate(telemetry.Telemetry.wall())   # live runtime
    tel = telemetry.activate(telemetry.Telemetry.sim(env)) # simulator
    ...
    telemetry.export.write_jsonl("out.jsonl", tel.tracer, tel.metrics)
    telemetry.deactivate()

or scope it with ``with telemetry.session(tel): ...``.  The ``repro-trace``
CLI (:mod:`repro.telemetry.cli`) analyses the exported JSONL.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.telemetry import export
from repro.telemetry.clock import ClockSource, NullClock, SimClock, WallClock
from repro.telemetry.flight_recorder import FlightRecorder
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.timeseries import HealthSampler, SeriesRing
from repro.telemetry.tracer import (
    CONTROL,
    MESSAGE,
    SERVICE,
    TASK,
    NoopTracer,
    Span,
    TelemetryTracer,
    TraceEvent,
)

__all__ = [
    "Telemetry", "current", "activate", "deactivate", "session",
    "TelemetryTracer", "NoopTracer", "Span", "TraceEvent",
    "MetricsRegistry", "SimClock", "WallClock",
    "NullClock", "ClockSource", "HealthSampler", "SeriesRing",
    "FlightRecorder", "TASK", "SERVICE", "MESSAGE", "CONTROL", "export",
]


@dataclass
class Telemetry:
    """The process-wide telemetry handle (tracer + metrics + clock)."""

    tracer: object
    metrics: MetricsRegistry
    clock: object
    enabled: bool = True

    @classmethod
    def sim(cls, env) -> "Telemetry":
        """A handle stamping simulation time from *env*."""
        clock = SimClock(env)
        return cls(TelemetryTracer(clock), MetricsRegistry(), clock)

    @classmethod
    def wall(cls) -> "Telemetry":
        """A handle stamping wall-clock seconds since creation."""
        clock = WallClock()
        return cls(TelemetryTracer(clock), MetricsRegistry(), clock)

    @classmethod
    def noop(cls) -> "Telemetry":
        clock = NullClock()
        return cls(NoopTracer(), MetricsRegistry(), clock, enabled=False)


#: The disabled default every un-instrumented run sees.
NOOP: Telemetry = Telemetry.noop()

_active: Telemetry = NOOP


def current() -> Telemetry:
    """The active telemetry handle (the no-op one unless activated)."""
    return _active


def activate(tel: Telemetry) -> Telemetry:
    """Install *tel* as the process-wide handle; returns it."""
    global _active
    _active = tel
    return tel


def deactivate() -> None:
    """Restore the no-op default."""
    activate(NOOP)


@contextmanager
def session(tel: Optional[Telemetry] = None) -> Iterator[Telemetry]:
    """Scoped activation: restores the previous handle on exit."""
    previous = _active
    installed = activate(tel if tel is not None else Telemetry.wall())
    try:
        yield installed
    finally:
        activate(previous)

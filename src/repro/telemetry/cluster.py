"""Cluster trace stitching: merge per-shard streams into one timeline.

Each :class:`~repro.runtime.shard.ShardHost` ships its spans and events
up the supervisor pipe as JSONL records; the supervisor lands them in
one file per shard.  Those per-shard streams share ``trace_id``\\ s (the
``task:<id>`` correlation key rides wire v1 with every message), but
they are *not* directly mergeable:

* span ids are per-process counters, so ids collide across shards and
  ``parent_id`` links would cross-wire;
* each shard's :class:`~repro.telemetry.clock.WallClock` anchors zero
  at its own telemetry activation, so timestamps are offset by the
  difference in process start times.

:func:`merge_traces` fixes both — span ids are re-keyed into one
namespace (parent links remapped per shard), timestamps are shifted
onto the earliest shard's axis using the ``epoch_unix`` each shard
records in its meta line — and then *stitches* cross-shard parentage:
a span that belongs to a task trace but arrived parentless (it was
opened on a different shard than the task span) is linked under the
task span, so every task forms one connected tree rather than
per-shard fragments.

:func:`cross_shard_summary` reports the result: how many task traces
touch more than one shard, and whether each is fully connected.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Union

from repro.telemetry.analyze import task_traces
from repro.telemetry.export import TraceData
from repro.telemetry.tracer import TASK, Span


def write_trace_data(
    dest: Union[str, "os.PathLike[str]"], data: TraceData
) -> int:
    """Write an in-memory :class:`TraceData` (e.g. a merge result) as a
    JSONL trace file; returns the number of records written.

    The inverse of :func:`~repro.telemetry.export.read_jsonl` — the
    existing :func:`~repro.telemetry.export.write_jsonl` serializes a
    live tracer, not an already-loaded trace.
    """
    n = 0
    with open(dest, "w", encoding="utf-8") as fh:
        def emit(rec: Dict[str, Any]) -> None:
            nonlocal n
            fh.write(json.dumps(rec, separators=(",", ":"), default=str))
            fh.write("\n")
            n += 1

        emit({"type": "meta", **data.meta})
        for span in data.spans:
            emit({"type": "span", **span.as_dict()})
        for ev in data.events:
            emit({"type": "event", **ev.as_dict()})
        for rec in data.metrics:
            emit({"type": "metric", **rec})
        for rec in data.series:
            emit({"type": "series", **rec})
        if data.profile is not None:
            emit({"type": "profile", **data.profile})
    return n


def _shard_of(span_or_event, default: Optional[str]) -> Optional[str]:
    return span_or_event.attrs.get("shard", default)


def merge_traces(
    parts: List[TraceData], stitch: bool = True
) -> TraceData:
    """Merge per-shard trace files into one cluster-timeline trace.

    Per part: span ids are re-keyed into a shared namespace (parent
    ids remapped with them), timestamps are shifted by the difference
    of the part's ``epoch_unix`` meta to the earliest epoch (parts
    without an epoch stay unshifted), and spans/events/series inherit
    the part's ``shard`` meta as provenance.  With *stitch* (default),
    cross-shard task parentage is linked via :func:`stitch_parents`.
    """
    if not parts:
        return TraceData(meta={"merged_from": 0})
    epochs = [
        p.meta.get("epoch_unix") for p in parts
        if p.meta.get("epoch_unix") is not None
    ]
    epoch0 = min(epochs) if epochs else None
    merged = TraceData()
    merged.meta = {
        "clock": parts[0].clock,
        "merged_from": len(parts),
        "shards": [
            p.meta.get("shard") for p in parts
        ],
        "version": parts[0].meta.get("version", 1),
    }
    if epoch0 is not None:
        merged.meta["epoch_unix"] = epoch0

    next_id = 1
    for part in parts:
        shard = part.meta.get("shard")
        epoch = part.meta.get("epoch_unix")
        shift = (epoch - epoch0) if (
            epoch is not None and epoch0 is not None
        ) else 0.0
        id_map: Dict[int, int] = {}
        for span in part.spans:
            id_map[span.span_id] = next_id
            next_id += 1
        for span in part.spans:
            attrs = dict(span.attrs)
            if shard is not None:
                attrs.setdefault("shard", shard)
            merged.spans.append(Span(
                span_id=id_map[span.span_id],
                trace_id=span.trace_id,
                # A parent recorded on another shard (or trimmed away)
                # has no local mapping; stitch() re-links those below.
                parent_id=id_map.get(span.parent_id)
                if span.parent_id is not None else None,
                name=span.name, kind=span.kind, node=span.node,
                start=span.start + shift,
                end=(span.end + shift) if span.end is not None else None,
                status=span.status, attrs=attrs,
            ))
        for ev in part.events:
            ev2 = type(ev)(
                time=ev.time + shift, name=ev.name, node=ev.node,
                trace_id=ev.trace_id,
                span_id=id_map.get(ev.span_id)
                if ev.span_id is not None else None,
                attrs=dict(ev.attrs),
            )
            if shard is not None:
                ev2.attrs.setdefault("shard", shard)
            merged.events.append(ev2)
        for rec in part.metrics:
            rec = dict(rec)
            if shard is not None:
                rec.setdefault("labels", {})
                if isinstance(rec["labels"], dict):
                    rec["labels"].setdefault("shard", shard)
            merged.metrics.append(rec)
        for rec in part.series:
            rec = dict(rec)
            if shard is not None:
                labels = dict(rec.get("labels") or {})
                labels.setdefault("shard", shard)
                rec["labels"] = labels
            merged.series.append(rec)
        if merged.profile is None and part.profile is not None:
            merged.profile = part.profile
    merged.spans.sort(key=lambda s: (s.start, s.span_id))
    merged.events.sort(key=lambda e: e.time)
    if stitch:
        merged.meta["stitched_spans"] = stitch_parents(merged)
    return merged


def stitch_parents(data: TraceData) -> int:
    """Link parentless task-trace spans under their task span.

    After a merge, a service hop or message span recorded on shard B
    for a task admitted on shard A has ``parent_id=None`` (its parent
    lived in another process).  The shared ``trace_id`` identifies the
    enclosing task span, so re-parent such orphans under it — the span
    tree of every task becomes connected.  Returns the number of spans
    re-linked.
    """
    task_span_by_trace: Dict[str, Span] = {}
    for span in data.spans:
        if span.kind == TASK and span.trace_id:
            task_span_by_trace.setdefault(span.trace_id, span)
    known_ids = {s.span_id for s in data.spans}
    stitched = 0
    for span in data.spans:
        if span.kind == TASK or not span.trace_id:
            continue
        parent = task_span_by_trace.get(span.trace_id)
        if parent is None or parent.span_id == span.span_id:
            continue
        if span.parent_id is None or span.parent_id not in known_ids:
            span.parent_id = parent.span_id
            span.attrs.setdefault("stitched", True)
            stitched += 1
    return stitched


def cross_shard_summary(data: TraceData) -> Dict[str, Any]:
    """Connectivity report over the merged trace's task traces.

    A task is *cross-shard* when its spans carry more than one distinct
    ``shard`` attribute; it is *connected* when it has a task span and
    every other span in the trace parent-links (transitively) into it.
    """
    default_shard = data.meta.get("shard")
    known_ids = {s.span_id for s in data.spans}
    tasks = []
    for trace in task_traces(data):
        spans = trace.critical_path() + trace.messages
        shards = sorted({
            s for s in (
                _shard_of(span, default_shard) for span in spans
            ) if s is not None
        })
        root = trace.task_span
        orphans = 0
        if root is not None:
            for span in spans:
                if span is root:
                    continue
                if span.parent_id is None or span.parent_id not in known_ids:
                    orphans += 1
        connected = root is not None and orphans == 0
        tasks.append({
            "task_id": trace.task_id,
            "shards": shards,
            "cross_shard": len(shards) > 1,
            "connected": connected,
            "orphans": orphans,
            "hops": len(trace.hops),
        })
    return {
        "tasks": len(tasks),
        "cross_shard_tasks": sum(1 for t in tasks if t["cross_shard"]),
        "connected_tasks": sum(1 for t in tasks if t["connected"]),
        "orphan_spans": sum(t["orphans"] for t in tasks),
        "per_task": tasks,
    }

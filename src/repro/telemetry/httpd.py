"""Live `/metrics` + `/healthz` endpoint (stdlib-only, daemon thread).

Serves the active registry's Prometheus text exposition so a scraper
(or a human with ``curl``) can watch a live run::

    server = TelemetryHTTPServer(tel.metrics.to_prometheus_text, port=9464)
    server.start()
    ...
    server.close()

``metrics_fn`` is pulled on every request — no caching, no background
collection — so the endpoint costs nothing between scrapes.  The server
runs on a daemon thread of :class:`http.server.ThreadingHTTPServer`;
``port=0`` binds an ephemeral port (read it back from ``.port`` after
``start()``), which is what the tests use.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional


class TelemetryHTTPServer:
    """Minimal observability endpoint for the live runtime."""

    def __init__(
        self,
        metrics_fn: Callable[[], str],
        health_fn: Optional[Callable[[], Dict[str, Any]]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.metrics_fn = metrics_fn
        self.health_fn = health_fn or (lambda: {"status": "ok"})
        outer = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib API)
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    try:
                        body = outer.metrics_fn().encode("utf-8")
                    except Exception as exc:
                        self._reply(500, "text/plain",
                                    f"metrics error: {exc}\n".encode())
                        return
                    self._reply(
                        200, "text/plain; version=0.0.4; charset=utf-8",
                        body,
                    )
                elif path == "/healthz":
                    try:
                        payload = outer.health_fn()
                    except Exception as exc:
                        self._reply(
                            500, "application/json",
                            json.dumps(
                                {"status": "error", "error": str(exc)}
                            ).encode(),
                        )
                        return
                    self._reply(
                        200, "application/json",
                        json.dumps(payload).encode("utf-8"),
                    )
                else:
                    self._reply(404, "text/plain", b"not found\n")

            def _reply(self, code: int, ctype: str, body: bytes) -> None:
                self.send_response(code)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, fmt: str, *args: Any) -> None:
                pass  # scrapes must not spam the run's stdout

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "TelemetryHTTPServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="telemetry-httpd", daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=2.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "TelemetryHTTPServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()

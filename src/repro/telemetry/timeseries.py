"""Continuous health sampling: bounded ring-buffered time series.

The paper's evaluation (§5) is about *trajectories* — deadline-miss
rate vs. load, balancing across peers, adaptation after churn — but
counters only show the end state.  A :class:`HealthSampler` snapshots
the key signals periodically into :class:`SeriesRing` buffers (bounded,
so an always-on sampler has a hard memory ceiling):

* per-peer load ``l_i`` (the Profiler's power × utilization),
* domain load-imbalance (max/mean) and load stdev,
* per-QoS-class deadline-miss ratio from the LLS processors,
* RM admission / redirect / reject rates,
* gossip summary staleness age (max and mean over held summaries),
* network retry / duplicate / loss rates from ``NetworkStats``.

Two drivers share the same sampler:

* **simulator** — :meth:`HealthSampler.attach_sim` runs a sampler
  Process inside the :class:`~repro.sim.core.Environment`.  This adds
  kernel events, so it is strictly **opt-in** (``repro-run --sample``);
  the default path never schedules it and the trajectory goldens hold.
* **live runtime** — :meth:`HealthSampler.start_wall` runs a daemon
  thread, so the asyncio loop and socket path are untouched.

Probes are plain callables ``probe(sampler)`` that call
:meth:`HealthSampler.observe`; the builders below are duck-typed on the
overlay / live-cluster surfaces so this module imports nothing from the
simulator (same rule as :mod:`repro.telemetry.clock`).
"""

from __future__ import annotations

import math
import threading
from collections import deque
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Default sampling period, seconds (sim or wall, per driver).
DEFAULT_PERIOD = 1.0
#: Default ring capacity: 12 minutes of 1 Hz samples.
DEFAULT_CAPACITY = 720

_SeriesKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def qos_class(importance: float) -> str:
    """Bucket a task/job importance into a QoS class label."""
    if importance >= 2.0:
        return "high"
    if importance >= 1.0:
        return "normal"
    return "low"


class SeriesRing:
    """One bounded time series: (t, value) points in a ring buffer.

    Two retention modes share the hard memory ceiling ``capacity``:

    * **drop-oldest** (default) — a plain ring: the oldest point falls
      off when a new one arrives at capacity.
    * **rollup** (``rollup=True``) — when full, the *oldest half* is
      downsampled pairwise: adjacent points merge into one carrying the
      count-weighted mean time/value plus the running min/max/count.
      Long soaks keep their full history at progressively coarser
      resolution (recent samples stay raw) instead of forgetting it.
    """

    __slots__ = (
        "name", "labels", "capacity", "rollup",
        "_t", "_v", "_mn", "_mx", "_n",
    )

    def __init__(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        capacity: int = DEFAULT_CAPACITY,
        rollup: bool = False,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self.labels: Dict[str, str] = dict(labels or {})
        self.capacity = int(capacity)
        self.rollup = bool(rollup)
        if rollup:
            self._t: deque = deque()
            self._v: deque = deque()
            self._mn: Optional[deque] = deque()
            self._mx: Optional[deque] = deque()
            self._n: Optional[deque] = deque()
        else:
            self._t = deque(maxlen=capacity)
            self._v = deque(maxlen=capacity)
            self._mn = self._mx = self._n = None

    def append(self, t: float, v: float) -> None:
        t = float(t)
        v = float(v)
        if self.rollup:
            if len(self._v) >= self.capacity:
                self._compact()
            self._mn.append(v)
            self._mx.append(v)
            self._n.append(1)
        self._t.append(t)
        self._v.append(v)

    def _compact(self) -> None:
        """Pairwise-merge the oldest half of the ring (rollup mode)."""
        ts, vs = list(self._t), list(self._v)
        mns, mxs, ns = list(self._mn), list(self._mx), list(self._n)
        half = len(ts) // 2
        m_t: List[float] = []
        m_v: List[float] = []
        m_mn: List[float] = []
        m_mx: List[float] = []
        m_n: List[int] = []
        i = 0
        while i + 1 < half:
            n = ns[i] + ns[i + 1]
            m_t.append((ts[i] * ns[i] + ts[i + 1] * ns[i + 1]) / n)
            m_v.append((vs[i] * ns[i] + vs[i + 1] * ns[i + 1]) / n)
            m_mn.append(min(mns[i], mns[i + 1]))
            m_mx.append(max(mxs[i], mxs[i + 1]))
            m_n.append(n)
            i += 2
        if i < half:
            # Odd-sized old half: the unpaired point carries over as-is.
            m_t.append(ts[i])
            m_v.append(vs[i])
            m_mn.append(mns[i])
            m_mx.append(mxs[i])
            m_n.append(ns[i])
            i += 1
        self._t = deque(m_t + ts[half:])
        self._v = deque(m_v + vs[half:])
        self._mn = deque(m_mn + mns[half:])
        self._mx = deque(m_mx + mxs[half:])
        self._n = deque(m_n + ns[half:])

    def __len__(self) -> int:
        return len(self._v)

    @property
    def last(self) -> Optional[float]:
        return self._v[-1] if self._v else None

    def times(self) -> List[float]:
        return list(self._t)

    def values(self) -> List[float]:
        return list(self._v)

    def counts(self) -> List[int]:
        """Per-point sample counts (all 1 unless rollup has merged)."""
        if self._n is not None:
            return list(self._n)
        return [1] * len(self._v)

    def points(self) -> List[Tuple[float, float, float, float, int]]:
        """All points as ``(t, mean, min, max, count)`` tuples."""
        if self.rollup:
            return list(zip(self._t, self._v, self._mn, self._mx, self._n))
        return [(t, v, v, v, 1) for t, v in zip(self._t, self._v)]

    def points_since(
        self, t_min: float
    ) -> List[Tuple[float, float, float, float, int]]:
        """Points with ``t >= t_min`` (newest window), oldest first.

        Scans from the newest point and stops at the window edge, so a
        short trailing window over a long ring stays cheap (the SLO
        monitor calls this every evaluation).
        """
        if self.rollup:
            it = zip(
                reversed(self._t), reversed(self._v),
                reversed(self._mn), reversed(self._mx), reversed(self._n),
            )
        else:
            it = (
                (t, v, v, v, 1)
                for t, v in zip(reversed(self._t), reversed(self._v))
            )
        out: List[Tuple[float, float, float, float, int]] = []
        for point in it:
            if point[0] < t_min:
                break
            out.append(point)
        out.reverse()
        return out

    def quantile(self, q: float) -> float:
        """Count-weighted q-quantile of the stored values.

        Rolled-up points weigh in with their merged sample count, so
        quantiles stay comparable before and after downsampling (up to
        within-pair averaging).
        """
        if not self._v:
            return 0.0
        q = min(1.0, max(0.0, q))
        if self.rollup:
            pairs = sorted(zip(self._v, self._n))
        else:
            pairs = sorted((v, 1) for v in self._v)
        total = sum(n for _, n in pairs)
        target = q * total
        running = 0
        for v, n in pairs:
            running += n
            if running >= target:
                return v
        return pairs[-1][0]

    def as_record(self) -> Dict[str, Any]:
        """The JSONL ``series`` record (sans the ``type`` tag)."""
        rec = {
            "name": self.name,
            "labels": dict(self.labels),
            "t": [round(t, 6) for t in self._t],
            "v": [round(v, 6) for v in self._v],
        }
        if self.rollup:
            rec["n"] = list(self._n)
        return rec

    @classmethod
    def from_record(cls, rec: Dict[str, Any]) -> "SeriesRing":
        times = rec.get("t", [])
        values = rec.get("v", [])
        counts = rec.get("n")
        ring = cls(
            rec.get("name", "?"), rec.get("labels"),
            capacity=max(1, len(values)),
            rollup=counts is not None,
        )
        if counts is not None:
            # Restore without re-compacting (the ring arrives exactly
            # at capacity); merged points keep their counts, min/max
            # degrade to the stored mean.
            for t, v, n in zip(times, values, counts):
                ring._t.append(float(t))
                ring._v.append(float(v))
                ring._mn.append(float(v))
                ring._mx.append(float(v))
                ring._n.append(int(n))
        else:
            for t, v in zip(times, values):
                ring.append(t, v)
        return ring

    def __repr__(self) -> str:
        return (
            f"<SeriesRing {self.name}{self.labels or ''} n={len(self)}>"
        )


class HealthSampler:
    """Periodically snapshots registered probes into bounded series.

    One sampler serves both drivers; construct it against the active
    :class:`~repro.telemetry.Telemetry` handle so samples share the
    run's clock (sim seconds or wall seconds).
    """

    def __init__(
        self,
        tel,
        period: float = DEFAULT_PERIOD,
        capacity: int = DEFAULT_CAPACITY,
        rollup: bool = True,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.tel = tel
        self.period = float(period)
        self.capacity = int(capacity)
        self.rollup = bool(rollup)
        self._series: Dict[_SeriesKey, SeriesRing] = {}
        self._probes: List[Callable[["HealthSampler"], None]] = []
        self.n_samples = 0
        #: Probe exceptions swallowed (live probes race the event loop).
        self.errors = 0
        #: Cumulative wall seconds spent inside :meth:`sample` — the
        #: sampler's self-cost, read by the overhead budgeter.
        self.sample_cost_s = 0.0
        self._now = 0.0
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- configuration -----------------------------------------------------
    def add_probe(self, probe: Callable[["HealthSampler"], None]) -> None:
        self._probes.append(probe)

    # -- sampling ----------------------------------------------------------
    @property
    def now(self) -> float:
        """The timestamp of the sample currently being taken."""
        return self._now

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one point on the named series at the sample time."""
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        ring = self._series.get(key)
        if ring is None:
            ring = self._series[key] = SeriesRing(
                name, dict(key[1]),
                capacity=self.capacity, rollup=self.rollup,
            )
        ring.append(self._now, value)

    def ingest(self, t: float, name: str, value: float, **labels: Any) -> None:
        """Record one externally-timed point (supervisor aggregation).

        Unlike :meth:`observe` — which stamps at the time of the probe
        sweep currently running — this sets the sample time explicitly,
        for callers folding in measurements that arrived over a pipe
        with their own timestamps (cluster health rollup).
        """
        self._now = float(t)
        self.observe(name, value, **labels)

    def sample(self) -> None:
        """Take one snapshot: run every probe at the current clock time."""
        t0 = perf_counter()
        self._now = self.tel.clock.now()
        for probe in self._probes:
            try:
                probe(self)
            except Exception:
                # A probe racing a mutating system (live daemon thread)
                # must not kill the sampler; the error count is visible.
                self.errors += 1
        self.n_samples += 1
        self.sample_cost_s += perf_counter() - t0

    # -- access ------------------------------------------------------------
    def series(self, name: str, **labels: Any) -> Optional[SeriesRing]:
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        return self._series.get(key)

    def series_family(self, name: str) -> List[SeriesRing]:
        """All rings of one family (any label set), label-sorted."""
        return [
            self._series[key]
            for key in sorted(self._series)
            if key[0] == name
        ]

    def all_series(self) -> List[SeriesRing]:
        return [self._series[k] for k in sorted(self._series)]

    def records(self) -> List[Dict[str, Any]]:
        """JSONL-ready ``series`` records (sans ``type``), name-sorted."""
        return [ring.as_record() for ring in self.all_series()]

    # -- simulator driver --------------------------------------------------
    def attach_sim(self, env):
        """Start the sampling Process in *env* (opt-in: adds events).

        Never wired on the default path — a sampler Process changes the
        kernel event count and would break trajectory goldens; callers
        opt in explicitly (``repro-run --sample``, bench ``--sample``).
        """
        def _loop():
            while True:
                self.sample()
                yield env.timeout(self.period)

        return env.process(_loop(), name="health-sampler")

    # -- wall-clock driver -------------------------------------------------
    def start_wall(self) -> None:
        """Start the daemon sampling thread (live runtime)."""
        if self._thread is not None:
            return
        self._stop.clear()

        def _run() -> None:
            while not self._stop.wait(self.period):
                self.sample()

        self._thread = threading.Thread(
            target=_run, name="health-sampler", daemon=True
        )
        self._thread.start()

    def stop_wall(self, final_sample: bool = True) -> None:
        """Stop the daemon thread (and take one last snapshot)."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=2.0)
        self._thread = None
        if final_sample:
            self.sample()


# -- delta-rate helper -------------------------------------------------------

class _RateTracker:
    """Turns monotone counters into per-second rates between samples."""

    def __init__(self) -> None:
        self._last_t: Optional[float] = None
        self._last: Dict[str, float] = {}

    def rates(
        self, now: float, totals: Dict[str, float]
    ) -> Dict[str, float]:
        if self._last_t is None or now <= self._last_t:
            self._last_t = now
            self._last = dict(totals)
            return {k: 0.0 for k in totals}
        dt = now - self._last_t
        out = {
            k: max(0.0, (v - self._last.get(k, 0.0)) / dt)
            for k, v in totals.items()
        }
        self._last_t = now
        self._last = dict(totals)
        return out


def _load_stats(loads: List[float]) -> Tuple[float, float, float]:
    """(mean, max/mean imbalance, stdev) of a load vector."""
    if not loads:
        return 0.0, 1.0, 0.0
    mean = sum(loads) / len(loads)
    peak = max(loads)
    imbalance = peak / mean if mean > 0 else 1.0
    var = sum((v - mean) ** 2 for v in loads) / len(loads)
    return mean, imbalance, math.sqrt(var)


# -- probe builders: simulator ----------------------------------------------

def overlay_probes(
    overlay, network, per_peer: bool = True
) -> List[Callable[[HealthSampler], None]]:
    """Probes over a simulated :class:`OverlayNetwork` + fabric.

    Duck-typed: needs ``overlay.peers`` (id -> node with ``.alive``,
    ``.profiler.load``, ``.processor``), ``overlay.domains`` /
    ``overlay.rms()`` and ``network.stats``.  With ``per_peer=False``
    the per-peer ``l_i`` series are skipped (bench reports stay small).
    """
    net_rates = _RateTracker()
    rm_rates = _RateTracker()

    def load_probe(s: HealthSampler) -> None:
        loads: List[float] = []
        by_domain: Dict[str, List[float]] = {}
        domain_of = overlay.domain_of
        for pid, node in overlay.peers.items():
            if not node.alive:
                continue
            load = node.profiler.load
            loads.append(load)
            did = domain_of.get(pid)
            if did is not None:
                by_domain.setdefault(did, []).append(load)
            if per_peer:
                s.observe("repro_peer_load", load, peer=pid)
        mean, imbalance, stdev = _load_stats(loads)
        s.observe("repro_load_mean", mean)
        s.observe("repro_load_imbalance", imbalance)
        s.observe("repro_load_stdev", stdev)
        for did, dloads in sorted(by_domain.items()):
            _, d_imb, d_std = _load_stats(dloads)
            s.observe("repro_domain_load_imbalance", d_imb, domain=did)
            s.observe("repro_domain_load_stdev", d_std, domain=did)

    def miss_probe(s: HealthSampler) -> None:
        finished: Dict[str, int] = {}
        missed: Dict[str, int] = {}
        for node in overlay.peers.values():
            proc = getattr(node, "processor", None)
            if proc is None:
                continue
            for cls, n in proc.completed_by_class.items():
                finished[cls] = finished.get(cls, 0) + n
            for cls, n in proc.missed_by_class.items():
                missed[cls] = missed.get(cls, 0) + n
        for cls in sorted(finished) or ["normal"]:
            done = finished.get(cls, 0)
            ratio = missed.get(cls, 0) / done if done else 0.0
            s.observe("repro_sched_miss_ratio", ratio, qos=cls)

    def rm_probe(s: HealthSampler) -> None:
        totals = {"admitted": 0.0, "rejected": 0.0, "redirected_out": 0.0}
        staleness: List[float] = []
        now = s.now
        for rm in overlay.rms():
            for key in totals:
                totals[key] += rm.stats.get(key, 0)
            info = rm.info
            for rm_id in info.summary_received_at:
                staleness.append(info.summary_age(rm_id, now))
        rates = rm_rates.rates(now, totals)
        s.observe("repro_rm_admission_rate", rates["admitted"])
        s.observe("repro_rm_reject_rate", rates["rejected"])
        s.observe("repro_rm_redirect_rate", rates["redirected_out"])
        s.observe(
            "repro_gossip_staleness_max",
            max(staleness) if staleness else 0.0,
        )
        s.observe(
            "repro_gossip_staleness_mean",
            sum(staleness) / len(staleness) if staleness else 0.0,
        )

    def net_probe(s: HealthSampler) -> None:
        stats = network.stats
        rates = net_rates.rates(s.now, {
            "sent": stats.sent,
            "dropped": stats.dropped,
            "partition_drops": getattr(stats, "partition_drops", 0),
            "retransmits": stats.retransmits,
            "duplicates": stats.duplicates,
        })
        s.observe("repro_net_send_rate", rates["sent"])
        s.observe("repro_net_drop_rate", rates["dropped"])
        s.observe(
            "repro_net_partition_drop_rate", rates["partition_drops"]
        )
        s.observe("repro_net_retry_rate", rates["retransmits"])
        s.observe("repro_net_dup_rate", rates["duplicates"])

    def reputation_probe(s: HealthSampler) -> None:
        # Only emits when some RM runs with the reputation defense
        # (RMConfig.enable_defense) — undefended runs keep their exact
        # series set, so existing golden metrics documents hold.
        scores: List[float] = []
        quarantined = 0
        total = 0
        engines = 0
        for rm in overlay.rms():
            engine = getattr(rm, "reputation", None)
            if engine is None:
                continue
            engines += 1
            snap = engine.snapshot(rm.env.now)
            scores.extend(p["score"] for p in snap["peers"].values())
            quarantined += len(snap["quarantined"])
            total += snap["quarantines_total"]
        if not engines:
            return
        s.observe("repro_reputation_quarantined", quarantined)
        s.observe("repro_reputation_quarantines_total", total)
        s.observe(
            "repro_reputation_min_trust", min(scores) if scores else 1.0
        )
        s.observe(
            "repro_reputation_mean_trust",
            sum(scores) / len(scores) if scores else 1.0,
        )

    return [load_probe, miss_probe, rm_probe, net_probe, reputation_probe]


# -- probe builders: live runtime --------------------------------------------

def live_cluster_probes(cluster) -> List[Callable[[HealthSampler], None]]:
    """Probes over a :class:`~repro.runtime.cluster.LiveCluster`.

    Runs on the sampler's daemon thread while the asyncio loop mutates
    the cluster, so everything here is read-only over plain attributes
    (the sampler swallows the occasional mid-mutation race).
    """
    net_rates = _RateTracker()
    rm_rates = _RateTracker()

    def node_probe(s: HealthSampler) -> None:
        loads: List[float] = []
        finished: Dict[str, int] = {}
        missed: Dict[str, int] = {}
        for live in list(cluster.nodes.values()):
            signal = live.health_signal()
            if signal.get("load") is not None:
                loads.append(signal["load"])
                s.observe(
                    "repro_peer_load", signal["load"], peer=live.node_id
                )
            for cls, n in signal.get("finished_by_class", {}).items():
                finished[cls] = finished.get(cls, 0) + n
            for cls, n in signal.get("missed_by_class", {}).items():
                missed[cls] = missed.get(cls, 0) + n
        mean, imbalance, stdev = _load_stats(loads)
        s.observe("repro_load_mean", mean)
        s.observe("repro_load_imbalance", imbalance)
        s.observe("repro_load_stdev", stdev)
        for cls in sorted(finished) or ["normal"]:
            done = finished.get(cls, 0)
            ratio = missed.get(cls, 0) / done if done else 0.0
            s.observe("repro_sched_miss_ratio", ratio, qos=cls)

    def rm_probe(s: HealthSampler) -> None:
        totals = {"admitted": 0.0, "rejected": 0.0, "redirected_out": 0.0}
        staleness: List[float] = []
        now = s.now
        for live in list(cluster.nodes.values()):
            node = live.node
            stats = getattr(node, "stats", None)
            if stats is None:
                continue
            for key in totals:
                totals[key] += stats.get(key, 0)
            info = getattr(node, "info", None)
            if info is not None:
                sim_now = live.env.now
                for rm_id in info.summary_received_at:
                    staleness.append(info.summary_age(rm_id, sim_now))
        rates = rm_rates.rates(now, totals)
        s.observe("repro_rm_admission_rate", rates["admitted"])
        s.observe("repro_rm_reject_rate", rates["rejected"])
        s.observe("repro_rm_redirect_rate", rates["redirected_out"])
        s.observe(
            "repro_gossip_staleness_max",
            max(staleness) if staleness else 0.0,
        )
        s.observe(
            "repro_gossip_staleness_mean",
            sum(staleness) / len(staleness) if staleness else 0.0,
        )

    def net_probe(s: HealthSampler) -> None:
        agg = cluster.aggregate_summary()
        rates = net_rates.rates(s.now, {
            "sent": agg["sent"],
            "dropped": agg["dropped"],
            "partition_drops": agg.get("partition_drops", 0),
            "retransmits": agg["retransmits"],
            "duplicates": agg["duplicates"],
        })
        s.observe("repro_net_send_rate", rates["sent"])
        s.observe("repro_net_drop_rate", rates["dropped"])
        s.observe(
            "repro_net_partition_drop_rate", rates["partition_drops"]
        )
        s.observe("repro_net_retry_rate", rates["retransmits"])
        s.observe("repro_net_dup_rate", rates["duplicates"])

    return [node_probe, rm_probe, net_probe]

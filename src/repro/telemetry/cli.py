"""``repro-trace`` — analyse a telemetry JSONL trace file.

::

    repro-trace out.jsonl              # per-task critical paths + summaries
    repro-trace out.jsonl --verbose    # also list per-task message spans
    repro-trace out.jsonl --json       # machine-readable report
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.telemetry.analyze import format_report, report_dict
from repro.telemetry.export import read_jsonl


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description=(
            "Print per-task critical paths, per-kind message counts, and "
            "retry/loss summaries from a telemetry trace (JSONL) produced "
            "by repro-live --trace or repro-run --trace."
        ),
    )
    parser.add_argument("trace", help="trace file (JSONL)")
    parser.add_argument(
        "--json", action="store_true",
        help="emit a machine-readable JSON report instead of text",
    )
    parser.add_argument(
        "--verbose", "-v", action="store_true",
        help="also list each task's message spans",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        data = read_jsonl(args.trace)
    except OSError as exc:
        print(f"error: cannot read {args.trace}: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        if args.json:
            print(json.dumps(report_dict(data), indent=2, default=str))
        else:
            print(format_report(data, verbose=args.verbose))
    except BrokenPipeError:  # e.g. ``repro-trace out.jsonl | head``
        sys.stderr.close()  # suppress the interpreter's flush warning
        return 0
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

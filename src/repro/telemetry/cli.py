"""``repro-trace`` — analyse telemetry JSONL traces and profiles.

::

    repro-trace out.jsonl              # per-task critical paths + summaries
    repro-trace out.jsonl --verbose    # also list per-task message spans
    repro-trace out.jsonl --json       # machine-readable report

    # merge per-shard streams into one cluster timeline
    repro-trace merge trace-s0-0.jsonl trace-s1-0.jsonl -o cluster.jsonl

    # which stacks got hot between two runs' .folded profiles
    repro-trace diff-profile base.folded new.folded
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.telemetry.analyze import format_report, report_dict
from repro.telemetry.export import read_jsonl

_SUBCOMMANDS = ("merge", "diff-profile")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description=(
            "Print per-task critical paths, per-kind message counts, and "
            "retry/loss summaries from a telemetry trace (JSONL) produced "
            "by repro-live --trace or repro-run --trace."
        ),
    )
    parser.add_argument("trace", help="trace file (JSONL)")
    parser.add_argument(
        "--json", action="store_true",
        help="emit a machine-readable JSON report instead of text",
    )
    parser.add_argument(
        "--verbose", "-v", action="store_true",
        help="also list each task's message spans",
    )
    return parser


def build_merge_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace merge",
        description=(
            "Merge per-shard trace streams into one cluster timeline: "
            "span ids re-keyed, timestamps epoch-aligned, cross-shard "
            "task parentage stitched."
        ),
    )
    parser.add_argument("traces", nargs="+", help="per-shard JSONL files")
    parser.add_argument(
        "-o", "--output", default=None,
        help="write the merged trace here (JSONL)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the cross-shard connectivity summary as JSON",
    )
    return parser


def build_diff_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace diff-profile",
        description=(
            "Compare two .folded profiles by sample share and report "
            "the top regressed (grew) and improved (shrank) stacks."
        ),
    )
    parser.add_argument("base", help="baseline .folded profile")
    parser.add_argument("new", help="candidate .folded profile")
    parser.add_argument(
        "--top", type=int, default=10,
        help="stacks to list per direction (default 10)",
    )
    parser.add_argument(
        "--min-delta", type=float, default=None,
        help="ignore share moves smaller than this (default 0.005)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the diff as JSON instead of text",
    )
    return parser


def _main_merge(argv: List[str]) -> int:
    from repro.telemetry.cluster import (
        cross_shard_summary,
        merge_traces,
        write_trace_data,
    )

    args = build_merge_parser().parse_args(argv)
    parts = []
    for path in args.traces:
        try:
            parts.append(read_jsonl(path))
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 2
    merged = merge_traces(parts)
    if args.output:
        write_trace_data(args.output, merged)
    summary = cross_shard_summary(merged)
    if args.json:
        print(json.dumps(summary, indent=2, default=str))
        return 0
    print(
        f"merged {len(parts)} shard stream(s): "
        f"{len(merged.spans)} spans, {len(merged.events)} events, "
        f"{merged.meta.get('stitched_spans', 0)} stitched"
    )
    print(
        f"tasks: {summary['tasks']} total, "
        f"{summary['cross_shard_tasks']} cross-shard, "
        f"{summary['connected_tasks']} connected, "
        f"{summary['orphan_spans']} orphan spans"
    )
    if args.output:
        print(f"wrote {args.output}")
    print()
    print(format_report(merged))
    return 0


def _main_diff(argv: List[str]) -> int:
    from repro.profiling.folded import (
        DEFAULT_MIN_DELTA,
        diff_folded,
        format_diff,
        read_folded,
    )

    args = build_diff_parser().parse_args(argv)
    profiles = []
    for path in (args.base, args.new):
        try:
            profiles.append(read_folded(path))
        except OSError as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 2
    diff = diff_folded(
        profiles[0], profiles[1], top_n=args.top,
        min_delta=(
            DEFAULT_MIN_DELTA if args.min_delta is None
            else args.min_delta
        ),
    )
    if args.json:
        print(json.dumps(diff, indent=2))
    else:
        print(format_diff(diff))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    try:
        if argv and argv[0] == "merge":
            return _main_merge(list(argv[1:]))
        if argv and argv[0] == "diff-profile":
            return _main_diff(list(argv[1:]))
        args = build_parser().parse_args(argv)
        try:
            data = read_jsonl(args.trace)
        except OSError as exc:
            print(
                f"error: cannot read {args.trace}: {exc}", file=sys.stderr
            )
            return 2
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(report_dict(data), indent=2, default=str))
        else:
            print(format_report(data, verbose=args.verbose))
    except BrokenPipeError:  # e.g. ``repro-trace out.jsonl | head``
        sys.stderr.close()  # suppress the interpreter's flush warning
        return 0
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

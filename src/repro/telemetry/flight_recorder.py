"""Flight recorder: bounded span/event ring + anomaly-triggered dumps.

Crash-time evidence for a system whose interesting failures are
transient: the recorder keeps the last ``capacity`` finished spans and
events in a ring (always-on, bounded memory) and watches the stream for
three anomaly signatures:

* ``rm_failover`` — a ``failover.takeover`` control event (a backup RM
  promoted itself after the primary went silent),
* ``deadline_miss_burst`` — more than ``miss_burst`` ``job.missed``
  events inside ``miss_window`` seconds,
* ``udp_retry_storm`` — more than ``retry_burst`` ``udp.retry`` events
  inside ``retry_window`` seconds.

On a trigger it dumps the last ``window`` seconds of the ring — plus
the current sampler series and a metrics snapshot — to a JSONL bundle
(``flight-NNN-<reason>.jsonl``), then goes quiet for ``cooldown``
seconds per reason so a sustained anomaly yields one bundle, not one
per event.

The recorder taps the stream via the tracer's listener hook, so it only
sees anything when telemetry is enabled; the disabled path stays the
usual no-op guard.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.telemetry.export import TRACE_FORMAT_VERSION

#: Ring capacity (finished spans + events combined).
DEFAULT_CAPACITY = 4096


class FlightRecorder:
    """Always-on bounded recorder with anomaly-triggered JSONL dumps."""

    def __init__(
        self,
        tel,
        out_dir: str = ".",
        window: float = 30.0,
        capacity: int = DEFAULT_CAPACITY,
        miss_burst: int = 8,
        miss_window: float = 10.0,
        retry_burst: int = 20,
        retry_window: float = 5.0,
        cooldown: float = 60.0,
        sampler=None,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.tel = tel
        self.out_dir = out_dir
        self.window = float(window)
        self.miss_burst = int(miss_burst)
        self.miss_window = float(miss_window)
        self.retry_burst = int(retry_burst)
        self.retry_window = float(retry_window)
        self.cooldown = float(cooldown)
        self.sampler = sampler

        self._ring: Deque[Tuple[float, str, Dict[str, Any]]] = deque(
            maxlen=capacity
        )
        self._miss_times: Deque[float] = deque(maxlen=self.miss_burst + 1)
        self._retry_times: Deque[float] = deque(maxlen=self.retry_burst + 1)
        self._last_dump: Dict[str, float] = {}
        #: Paths of bundles written, in order.
        self.dumps: List[str] = []
        self.n_triggers = 0
        self._closed = False
        tel.tracer.add_listener(self._on_record)

    # -- stream tap --------------------------------------------------------
    def _on_record(self, kind: str, rec) -> None:
        if self._closed:
            return
        data = rec.as_dict()
        t = data.get("end", data.get("time", 0.0)) or 0.0
        self._ring.append((t, kind, data))
        if kind != "event":
            return
        name = data.get("name")
        if name == "failover.takeover":
            self._trigger("rm_failover", t)
        elif name == "job.missed":
            if self._burst(self._miss_times, t,
                           self.miss_burst, self.miss_window):
                self._trigger("deadline_miss_burst", t)
        elif name == "udp.retry":
            if self._burst(self._retry_times, t,
                           self.retry_burst, self.retry_window):
                self._trigger("udp_retry_storm", t)

    @staticmethod
    def _burst(times: Deque[float], t: float, burst: int,
               window: float) -> bool:
        times.append(t)
        while times and times[0] < t - window:
            times.popleft()
        return len(times) > burst

    # -- triggering --------------------------------------------------------
    def _trigger(self, reason: str, now: float) -> None:
        last = self._last_dump.get(reason)
        if last is not None and now - last < self.cooldown:
            return
        self._last_dump[reason] = now
        self.n_triggers += 1
        self.dump(reason, now)

    def dump(self, reason: str, now: Optional[float] = None) -> str:
        """Write the windowed bundle; returns the bundle path."""
        if now is None:
            now = self.tel.clock.now()
        cutoff = now - self.window
        path = os.path.join(
            self.out_dir,
            f"flight-{len(self.dumps):03d}-{reason}.jsonl",
        )
        os.makedirs(self.out_dir or ".", exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            meta = {
                "type": "meta",
                "version": TRACE_FORMAT_VERSION,
                "bundle": "flight",
                "reason": reason,
                "time": round(now, 6),
                "window": self.window,
                "clock": self.tel.clock.label,
            }
            fh.write(json.dumps(meta) + "\n")
            for t, kind, data in self._ring:
                if t < cutoff:
                    continue
                fh.write(json.dumps({"type": kind, **data}) + "\n")
            if self.sampler is not None:
                for rec in self.sampler.records():
                    fh.write(json.dumps({"type": "series", **rec}) + "\n")
            for rec in self.tel.metrics.snapshot():
                # snapshot() records carry the metric kind in "type";
                # the JSONL record type must win (matches export.py).
                fh.write(json.dumps({**rec, "type": "metric"}) + "\n")
        self.dumps.append(path)
        return path

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Detach from the tracer stream."""
        if self._closed:
            return
        self._closed = True
        self.tel.tracer.remove_listener(self._on_record)

    def __len__(self) -> int:
        return len(self._ring)

    def __repr__(self) -> str:
        return (
            f"<FlightRecorder ring={len(self._ring)} "
            f"dumps={len(self.dumps)}>"
        )

"""Flight recorder: bounded span/event ring + anomaly-triggered dumps.

Crash-time evidence for a system whose interesting failures are
transient: the recorder keeps the last ``capacity`` finished spans and
events in a ring (always-on, bounded memory) and watches the stream for
three anomaly signatures:

* ``rm_failover`` — a ``failover.takeover`` control event (a backup RM
  promoted itself after the primary went silent),
* ``deadline_miss_burst`` — more than ``miss_burst`` ``job.missed``
  events inside ``miss_window`` seconds,
* ``udp_retry_storm`` — more than ``retry_burst`` ``udp.retry`` events
  inside ``retry_window`` seconds.

External detectors can also request dumps through :meth:`trigger` —
the SLO burn-rate monitor (:mod:`repro.profiling.slo`) uses reasons
``slo_burn_fast`` / ``slo_burn_slow``.  Suppressed (cooling-down)
requests are visible via the
``repro_flightrecorder_dump_skipped_total`` counter and the
``repro_flightrecorder_cooldown_active{reason=...}`` gauge.

On a trigger it dumps the last ``window`` seconds of the ring — plus
the current sampler series and a metrics snapshot — to a JSONL bundle
(``flight-NNN-<reason>.jsonl``), then goes quiet for ``cooldown``
seconds per reason so a sustained anomaly yields one bundle, not one
per event.

The recorder taps the stream via the tracer's listener hook, so it only
sees anything when telemetry is enabled; the disabled path stays the
usual no-op guard.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.telemetry.export import TRACE_FORMAT_VERSION

#: Ring capacity (finished spans + events combined).
DEFAULT_CAPACITY = 4096


class FlightRecorder:
    """Always-on bounded recorder with anomaly-triggered JSONL dumps."""

    def __init__(
        self,
        tel,
        out_dir: str = ".",
        window: float = 30.0,
        capacity: int = DEFAULT_CAPACITY,
        miss_burst: int = 8,
        miss_window: float = 10.0,
        retry_burst: int = 20,
        retry_window: float = 5.0,
        cooldown: float = 60.0,
        sampler=None,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.tel = tel
        self.out_dir = out_dir
        self.window = float(window)
        self.miss_burst = int(miss_burst)
        self.miss_window = float(miss_window)
        self.retry_burst = int(retry_burst)
        self.retry_window = float(retry_window)
        self.cooldown = float(cooldown)
        self.sampler = sampler

        self._ring: Deque[Tuple[float, str, Dict[str, Any]]] = deque(
            maxlen=capacity
        )
        self._miss_times: Deque[float] = deque(maxlen=self.miss_burst + 1)
        self._retry_times: Deque[float] = deque(maxlen=self.retry_burst + 1)
        #: Cooldown key -> last dump time (key defaults to the reason).
        self._last_dump: Dict[str, float] = {}
        #: Cooldown key -> reason, for the per-reason gauges.
        self._reasons: Dict[str, str] = {}
        #: Paths of bundles written, in order.
        self.dumps: List[str] = []
        #: Called as ``on_dump(reason, path)`` after each bundle is
        #: written.  The sharded runtime uses this to notify the
        #: supervisor so it can correlate dumps across shards.
        self.on_dump: Optional[Any] = None
        self.n_triggers = 0
        #: Per-reason count of dumps suppressed by the cooldown.
        self.skipped: Dict[str, int] = {}
        self._closed = False
        tel.tracer.add_listener(self._on_record)

    # -- stream tap --------------------------------------------------------
    def _on_record(self, kind: str, rec) -> None:
        if self._closed:
            return
        data = rec.as_dict()
        t = data.get("end", data.get("time", 0.0)) or 0.0
        self._ring.append((t, kind, data))
        if kind != "event":
            return
        name = data.get("name")
        if name == "failover.takeover":
            self._trigger("rm_failover", t)
        elif name == "job.missed":
            if self._burst(self._miss_times, t,
                           self.miss_burst, self.miss_window):
                self._trigger("deadline_miss_burst", t)
        elif name == "udp.retry":
            if self._burst(self._retry_times, t,
                           self.retry_burst, self.retry_window):
                self._trigger("udp_retry_storm", t)

    @staticmethod
    def _burst(times: Deque[float], t: float, burst: int,
               window: float) -> bool:
        times.append(t)
        while times and times[0] < t - window:
            times.popleft()
        return len(times) > burst

    # -- triggering --------------------------------------------------------
    def _trigger(self, reason: str, now: float) -> None:
        self.trigger(reason, now)

    def trigger(
        self,
        reason: str,
        now: Optional[float] = None,
        key: Optional[str] = None,
    ) -> Optional[str]:
        """Request a dump for *reason*, honouring the per-reason cooldown.

        External anomaly detectors (e.g. the SLO burn-rate monitor) call
        this instead of :meth:`dump` so sustained anomalies coalesce.
        *key* narrows the cooldown domain below the reason (the SLO
        monitor passes ``slo_burn_fast:miss_rate`` so one SLO's dump
        doesn't shadow a different SLO sharing the same reason) —
        bundle naming and metric labels still use *reason* alone.
        Returns the bundle path, or ``None`` when suppressed; suppressed
        requests are counted in ``skipped`` and the
        ``repro_flightrecorder_dump_skipped_total`` counter.
        """
        if now is None:
            now = self.tel.clock.now()
        k = key or reason
        self._reasons[k] = reason
        last = self._last_dump.get(k)
        if last is not None and now - last < self.cooldown:
            self.skipped[reason] = self.skipped.get(reason, 0) + 1
            self.tel.metrics.counter(
                "repro_flightrecorder_dump_skipped_total",
                help="Flight-recorder dumps suppressed by the cooldown.",
                reason=reason,
            ).inc()
            self._cooldown_gauge(reason).set(1.0)
            return None
        self._last_dump[k] = now
        self.n_triggers += 1
        self._cooldown_gauge(reason).set(1.0)
        return self.dump(reason, now)

    def _cooldown_gauge(self, reason: str):
        return self.tel.metrics.gauge(
            "repro_flightrecorder_cooldown_active",
            help="1 while dumps for this reason are in cooldown.",
            reason=reason,
        )

    def refresh_cooldowns(self, now: Optional[float] = None) -> None:
        """Re-evaluate the per-reason cooldown gauges at *now*.

        The gauges are set on trigger; call this periodically (the
        profiling wiring registers it as a sampler probe) so they fall
        back to 0 once a cooldown expires.
        """
        if now is None:
            now = self.tel.clock.now()
        by_reason: Dict[str, float] = {}
        for key, last in self._last_dump.items():
            reason = self._reasons.get(key, key)
            active = 1.0 if now - last < self.cooldown else 0.0
            by_reason[reason] = max(by_reason.get(reason, 0.0), active)
        for reason, active in by_reason.items():
            self._cooldown_gauge(reason).set(active)

    def dump(self, reason: str, now: Optional[float] = None) -> str:
        """Write the windowed bundle; returns the bundle path."""
        if now is None:
            now = self.tel.clock.now()
        cutoff = now - self.window
        path = os.path.join(
            self.out_dir,
            f"flight-{len(self.dumps):03d}-{reason}.jsonl",
        )
        os.makedirs(self.out_dir or ".", exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            meta = {
                "type": "meta",
                "version": TRACE_FORMAT_VERSION,
                "bundle": "flight",
                "reason": reason,
                "time": round(now, 6),
                "window": self.window,
                "clock": self.tel.clock.label,
            }
            fh.write(json.dumps(meta) + "\n")
            for t, kind, data in self._ring:
                if t < cutoff:
                    continue
                fh.write(json.dumps({"type": kind, **data}) + "\n")
            if self.sampler is not None:
                for rec in self.sampler.records():
                    fh.write(json.dumps({"type": "series", **rec}) + "\n")
            for rec in self.tel.metrics.snapshot():
                # snapshot() records carry the metric kind in "type";
                # the JSONL record type must win (matches export.py).
                fh.write(json.dumps({**rec, "type": "metric"}) + "\n")
        self.dumps.append(path)
        cb = self.on_dump
        if cb is not None:
            cb(reason, path)
        return path

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Detach from the tracer stream."""
        if self._closed:
            return
        self._closed = True
        self.tel.tracer.remove_listener(self._on_record)

    def __len__(self) -> int:
        return len(self._ring)

    def __repr__(self) -> str:
        return (
            f"<FlightRecorder ring={len(self._ring)} "
            f"dumps={len(self.dumps)}>"
        )

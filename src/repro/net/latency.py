"""Latency models for overlay links.

The paper assumes a wide-area environment with *unpredictable* latencies
and peers grouped into domains by topological proximity; the
:class:`DomainAwareLatency` model captures exactly that: fast intra-domain
links, slow inter-domain links, multiplicative jitter on both.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.sim.rng import fallback_rng


class LatencyModel:
    """Base class: maps a (src, dst) pair to a one-way delay sample."""

    def sample(self, src: str, dst: str) -> float:
        """One-way propagation delay in seconds for this transmission."""
        raise NotImplementedError

    def expected(self, src: str, dst: str) -> float:
        """Mean delay for planning purposes (no randomness)."""
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Every link has the same fixed delay (useful in tests)."""

    def __init__(self, delay: float = 0.01) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.delay = float(delay)

    def sample(self, src: str, dst: str) -> float:
        return self.delay

    def expected(self, src: str, dst: str) -> float:
        return self.delay


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from ``[lo, hi]`` per transmission."""

    def __init__(
        self, lo: float, hi: float, rng: Optional[np.random.Generator] = None
    ) -> None:
        if not 0 <= lo <= hi:
            raise ValueError(f"invalid latency range [{lo}, {hi}]")
        self.lo = float(lo)
        self.hi = float(hi)
        # Fallback: the ambient scenario seed when installed (see
        # repro.sim.rng), else OS entropy; build_scenario plumbs an
        # explicit seed-derived rng.
        self.rng = rng if rng is not None else fallback_rng("latency")

    def sample(self, src: str, dst: str) -> float:
        return float(self.rng.uniform(self.lo, self.hi))

    def expected(self, src: str, dst: str) -> float:
        return (self.lo + self.hi) / 2.0


class DomainAwareLatency(LatencyModel):
    """Intra-domain links are fast; inter-domain links are slow.

    Parameters
    ----------
    domain_of:
        Maps a node id to its domain id. Nodes whose domain is unknown
        (callable returns ``None``) are treated as inter-domain.
    intra, inter:
        Base one-way delays (seconds) within / across domains.
    jitter:
        Multiplicative jitter fraction; each sample is
        ``base * (1 + U(-jitter, +jitter))``.
    """

    def __init__(
        self,
        domain_of: Callable[[str], Optional[str]],
        intra: float = 0.005,
        inter: float = 0.050,
        jitter: float = 0.3,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if intra < 0 or inter < 0:
            raise ValueError("latencies must be non-negative")
        if not 0 <= jitter < 1:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.domain_of = domain_of
        self.intra = float(intra)
        self.inter = float(inter)
        self.jitter = float(jitter)
        # Fallback: the ambient scenario seed when installed (see
        # repro.sim.rng), else OS entropy; build_scenario plumbs an
        # explicit seed-derived rng.
        self.rng = rng if rng is not None else fallback_rng("latency")
        # Jitter draws are batched: a numpy Generator produces the exact
        # same value sequence for one size=N call as for N scalar calls,
        # so refilling a buffer preserves trajectories bit-for-bit while
        # amortizing the per-call Generator overhead (sample() runs once
        # per message).  Assumes ``jitter`` is fixed after construction.
        self._jit_buf: list = []
        self._jit_i = 0

    def _base(self, src: str, dst: str) -> float:
        ds, dd = self.domain_of(src), self.domain_of(dst)
        if ds is not None and ds == dd:
            return self.intra
        return self.inter

    def sample(self, src: str, dst: str) -> float:
        ds, dd = self.domain_of(src), self.domain_of(dst)
        base = self.intra if (ds is not None and ds == dd) else self.inter
        jitter = self.jitter
        if jitter == 0.0:
            return base
        i = self._jit_i
        buf = self._jit_buf
        if i >= len(buf):
            buf = self._jit_buf = self.rng.uniform(
                -jitter, jitter, size=1024
            ).tolist()
            i = 0
        self._jit_i = i + 1
        return base * (1.0 + buf[i])

    def expected(self, src: str, dst: str) -> float:
        return self._base(src, dst)

"""Overlay network substrate.

Models the communication layer under the middleware: named nodes with
mailboxes, point-to-point messages with sampled latency and
bandwidth-dependent transmission delay, in-order per-link delivery,
request/response (RPC) plumbing with timeouts, and failure injection
(nodes going down drop traffic).

This is the "wide-area environment with unpredictable latencies" of the
paper's introduction, as a simulation substrate.
"""

from repro.net.connections import (
    ConnectionCapacityError,
    ConnectionManager,
)
from repro.net.latency import (
    ConstantLatency,
    DomainAwareLatency,
    LatencyModel,
    UniformLatency,
)
from repro.net.message import Message
from repro.net.network import Network, NetworkStats
from repro.net.node import NetNode, RPCError, RPCTimeout

__all__ = [
    "ConnectionCapacityError",
    "ConnectionManager",
    "ConstantLatency",
    "DomainAwareLatency",
    "LatencyModel",
    "Message",
    "NetNode",
    "Network",
    "NetworkStats",
    "RPCError",
    "RPCTimeout",
    "UniformLatency",
]

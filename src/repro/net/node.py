"""Overlay node endpoint: mailbox, handler dispatch, RPC."""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, Generator, Optional

from repro.net.message import Message, trace_id_for_payload
from repro.net.network import Network
from repro.sim.core import Environment
from repro.sim.events import Event, Interrupt, Process
from repro.sim.resources import Store

#: A handler takes the incoming message; it may return a generator to be
#: run as a new process, or ``None`` for fire-and-forget handling.
Handler = Callable[[Message], Optional[Generator[Event, Any, Any]]]


class RPCError(Exception):
    """Base class for request/response failures."""


class RPCTimeout(RPCError):
    """No reply arrived within the allotted time."""

    def __init__(self, msg: Message, timeout: float) -> None:
        super().__init__(f"no reply to {msg} within {timeout}s")
        self.request = msg
        self.timeout = timeout


class NetNode:
    """A protocol endpoint attached to a :class:`Network`.

    Subclasses (peers, resource managers) register message handlers with
    :meth:`on`; a dispatcher process delivers each incoming message to its
    handler, spawning a new simulation process when the handler is a
    generator function.  Replies to outstanding :meth:`rpc` calls are
    matched by correlation id before handler dispatch.
    """

    def __init__(self, env: Environment, network: Network, node_id: str) -> None:
        self.env = env
        self.network = network
        self.node_id = node_id
        self.mailbox = Store(env)
        self._handlers: Dict[str, Handler] = {}
        self._pending: Dict[int, Event] = {}
        self._dispatcher: Process = env.process(
            self._dispatch_loop(), name=f"dispatch:{node_id}"
        )
        network.register(self)

    # -- wiring ---------------------------------------------------------------
    def on(self, kind: str, handler: Handler, replace: bool = False) -> None:
        """Register *handler* for messages of *kind* (one per kind).

        Pass ``replace=True`` to intentionally swap an existing handler
        (e.g. a re-designated backup re-wiring its sync handler);
        accidental double registration stays an error.
        """
        if kind in self._handlers and not replace:
            raise ValueError(f"{self.node_id}: handler for {kind!r} already set")
        self._handlers[kind] = handler

    def _dispatch_loop(self) -> Generator[Event, Any, None]:
        try:
            yield from self._dispatch_forever()
        except Interrupt:
            return

    def _dispatch_forever(self) -> Generator[Event, Any, None]:
        while True:
            msg: Message = yield self.mailbox.get()
            # Correlated replies resolve the waiting RPC instead of (or in
            # addition to) a handler.
            if msg.reply_to is not None:
                waiter = self._pending.pop(msg.reply_to, None)
                if waiter is not None:
                    if not waiter.triggered:
                        waiter.succeed(msg)
                    continue
            handler = self._handlers.get(msg.kind)
            if handler is None:
                continue  # unknown kinds are dropped, datagram-style
            result = handler(msg)
            # Only generators become processes; handlers may return any
            # other value (e.g. the Message from a reply) harmlessly.
            if inspect.isgenerator(result):
                self.env.process(
                    result, name=f"{self.node_id}:{msg.kind}"
                )

    def shutdown(self) -> None:
        """Stop the dispatcher (node leaves the system)."""
        if self._dispatcher.is_alive:
            self._dispatcher.interrupt("shutdown")
        for waiter in self._pending.values():
            if not waiter.triggered:
                waiter.fail(RPCError(f"{self.node_id} shut down"))
        self._pending.clear()

    # -- messaging ---------------------------------------------------------------
    def send(
        self,
        kind: str,
        dst: str,
        payload: Optional[Dict[str, Any]] = None,
        size: float = 512.0,
        reply_to: Optional[int] = None,
        trace_id: Optional[str] = None,
    ) -> Message:
        """Fire-and-forget send; returns the sent message.

        When *trace_id* is omitted the network derives one at send time
        (task-scoped payloads join their ``task:<id>`` trace, anything
        else starts a fresh trace).
        """
        msg = Message(
            kind=kind,
            src=self.node_id,
            dst=dst,
            payload=payload or {},
            size=size,
            reply_to=reply_to,
            trace_id=trace_id,
        )
        self.network.send(msg)
        return msg

    def reply(
        self,
        to: Message,
        kind: str,
        payload: Optional[Dict[str, Any]] = None,
        size: float = 512.0,
    ) -> Message:
        """Answer an incoming request message.

        The reply joins the request's trace unless its own payload is
        task-scoped (then the task trace wins, keeping task messages in
        one causal chain even when the request was not).
        """
        trace_id = to.trace_id
        if payload:
            trace_id = trace_id_for_payload(payload) or trace_id
        return self.send(
            kind, to.src, payload, size=size, reply_to=to.msg_id,
            trace_id=trace_id,
        )

    def rpc(
        self,
        kind: str,
        dst: str,
        payload: Optional[Dict[str, Any]] = None,
        timeout: float = 5.0,
        size: float = 512.0,
    ) -> Generator[Event, Any, Message]:
        """Request/response as a sub-generator: ``reply = yield from rpc(...)``.

        Raises
        ------
        RPCTimeout
            If no correlated reply arrives within *timeout* seconds —
            the caller's cue that the destination has failed or departed.
        """
        msg = self.send(kind, dst, payload, size=size)
        waiter = Event(self.env)
        self._pending[msg.msg_id] = waiter
        deadline = self.env.timeout(timeout)
        outcome = yield waiter | deadline
        if waiter in outcome:
            return outcome[waiter]
        self._pending.pop(msg.msg_id, None)
        raise RPCTimeout(msg, timeout)

    def __repr__(self) -> str:
        return f"<NetNode {self.node_id}>"

"""The network fabric: registration, delivery, failure injection."""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappush as _heappush
from typing import TYPE_CHECKING, Any, Dict, Iterable, Optional, Set, Tuple

from repro import telemetry
from repro.common.errors import UnknownPeer
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.message import Message
from repro.sim.core import Environment
from repro.sim.events import NORMAL, Event
from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import NetNode


@dataclass
class NetworkStats:
    """Aggregate traffic counters (per run)."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    #: Drops attributed to an active network partition (a subset of
    #: ``dropped``); scripted partition scenarios gate on this.
    partition_drops: int = 0
    bytes_sent: float = 0.0
    by_kind: Dict[str, int] = field(default_factory=dict)
    #: Messages addressed to each node (hot-spot analysis, e.g. how much
    #: traffic a centralized manager terminates).
    by_dst: Dict[str, int] = field(default_factory=dict)
    #: Reliability counters.  Only the UDP transport moves them (the
    #: simulated fabric has no retransmission), but they live here so
    #: every transport reports one summary schema.
    retransmits: int = 0
    duplicates: int = 0
    malformed: int = 0
    acks_sent: int = 0

    def note_send(self, msg: Message) -> None:
        self.sent += 1
        self.bytes_sent += msg.size
        self.by_kind[msg.kind] = self.by_kind.get(msg.kind, 0) + 1
        self.by_dst[msg.dst] = self.by_dst.get(msg.dst, 0) + 1

    def hottest_destination(self) -> tuple[str, int]:
        """(node, count) of the most-addressed node (("", 0) if none)."""
        if not self.by_dst:
            return ("", 0)
        node = max(self.by_dst, key=self.by_dst.get)
        return (node, self.by_dst[node])

    def summary(self) -> Dict[str, Any]:
        """Counters as a plain dict, identical in shape for every
        transport (simulated fabric and live UDP), so sim and live runs
        report comparable traffic stats."""
        hot, hot_n = self.hottest_destination()
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "partition_drops": self.partition_drops,
            "bytes_sent": self.bytes_sent,
            "by_kind": dict(self.by_kind),
            "hottest_dst": hot,
            "hottest_dst_count": hot_n,
            "retransmits": self.retransmits,
            "duplicates": self.duplicates,
            "malformed": self.malformed,
            "acks_sent": self.acks_sent,
        }


class _Delivery(Event):
    """The scheduled arrival of one in-flight message.

    A plain :class:`Event` plus a closure used to play this role; a
    dedicated subclass carrying the message avoids the per-send lambda
    and lets the constructor skip the generic-event ceremony (a fresh
    delivery can never be already-scheduled).
    """

    __slots__ = ("msg",)

    def __init__(self, network: "Network", msg: Message) -> None:
        self.env = network.env
        self.callbacks = [network._on_arrival]
        self._value = None
        self._ok = True
        self._scheduled = False
        self.msg = msg


class Network:
    """Point-to-point message fabric between registered nodes.

    Delivery delay for a message is ``latency.sample(src, dst) +
    size / bandwidth``; delivery on each ordered (src, dst) pair is FIFO
    (a later send never overtakes an earlier one), which the protocol
    layers rely on.

    Failure injection: :meth:`set_down` makes a node unreachable — all
    traffic from or to it is counted as dropped; :meth:`set_up` restores
    it.  Node-process shutdown is handled by higher layers (overlay
    churn); the network only models reachability.
    """

    def __init__(
        self,
        env: Environment,
        latency: Optional[LatencyModel] = None,
        bandwidth: float = 1.25e6,
        loss_rate: float = 0.0,
        loss_rng: Optional[Any] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.env = env
        self.latency = latency if latency is not None else ConstantLatency(0.01)
        #: Link bandwidth in bytes/second (default 10 Mbit/s).
        self.bandwidth = float(bandwidth)
        #: Per-message loss probability (wide-area unreliability; the
        #: protocol layers tolerate loss through timeouts, liveness
        #: detection and repair — never through retransmission magic).
        self.loss_rate = float(loss_rate)
        self._loss_rng = loss_rng
        self.tracer = tracer
        self.stats = NetworkStats()
        self._nodes: Dict[str, "NetNode"] = {}
        self._down: Set[str] = set()
        #: Active partition: node id -> group index (None = connected).
        #: Nodes absent from the map form one implicit residual group.
        self._partition: Optional[Dict[str, int]] = None
        #: Last scheduled arrival per (src, dst), for FIFO ordering.
        self._last_arrival: Dict[Tuple[str, str], float] = {}
        # Bound once: every send attaches this callback to its delivery
        # event, and re-binding the method per message shows up at scale.
        self._on_arrival = self._handle_arrival

    # -- registration ------------------------------------------------------
    def register(self, node: "NetNode") -> None:
        """Attach *node* to the fabric (id must be unique)."""
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        self._nodes[node.node_id] = node

    def unregister(self, node_id: str) -> None:
        """Permanently remove a node (departed peer).

        The FIFO floors involving the node are pruned too: without this
        the per-``(src, dst)`` arrival map grows without bound under
        churn, and a later peer reusing the id would inherit a stale
        floor delaying its first messages far into the future.
        """
        self._nodes.pop(node_id, None)
        self._down.discard(node_id)
        if self._last_arrival:
            stale = [k for k in self._last_arrival if node_id in k]
            for k in stale:
                del self._last_arrival[k]

    def node(self, node_id: str) -> "NetNode":
        """Look up a registered node."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownPeer(node_id) from None

    def knows(self, node_id: str) -> bool:
        """True if *node_id* is registered (up or down)."""
        return node_id in self._nodes

    @property
    def node_ids(self) -> list[str]:
        """Ids of all registered nodes."""
        return list(self._nodes)

    # -- failure injection ---------------------------------------------------
    def set_down(self, node_id: str) -> None:
        """Make a node unreachable (crash / disconnect)."""
        if node_id not in self._nodes:
            raise UnknownPeer(node_id)
        self._down.add(node_id)

    def set_up(self, node_id: str) -> None:
        """Restore a node's reachability."""
        self._down.discard(node_id)

    def is_up(self, node_id: str) -> bool:
        """True if the node is registered and not failed."""
        return node_id in self._nodes and node_id not in self._down

    # -- partitions ----------------------------------------------------------
    def set_partition(self, groups: Iterable[Iterable[str]]) -> None:
        """Split the fabric into isolated *groups* of node ids.

        While a partition is active, a message whose src and dst fall in
        different groups is dropped at send time and attributed to the
        ``partition_drops`` counter.  Nodes not named in any group form
        one implicit residual group (they can reach each other but no
        listed group).  Calling again replaces the partition wholesale;
        :meth:`heal_partition` removes it.
        """
        mapping: Dict[str, int] = {}
        for index, group in enumerate(groups):
            for node_id in group:
                mapping[node_id] = index
        self._partition = mapping or None

    def heal_partition(self) -> None:
        """Remove any active partition; delivery resumes immediately."""
        self._partition = None

    @property
    def partitioned(self) -> bool:
        """True while a partition is in force."""
        return self._partition is not None

    def reachable(self, src: str, dst: str) -> bool:
        """True if no active partition separates *src* from *dst*."""
        part = self._partition
        if part is None:
            return True
        return part.get(src, -1) == part.get(dst, -1)

    # -- transmission ---------------------------------------------------------
    def send(self, msg: Message) -> None:
        """Transmit *msg*; delivery is asynchronous.

        Messages from or to unreachable/unknown nodes are silently
        dropped (and counted), mirroring datagram semantics: peers learn
        about failures through timeouts, exactly as the paper's RM does
        when it "senses the withdrawn connection".
        """
        msg.sent_at = self.env.now
        msg.ensure_trace_id()
        self.stats.note_send(msg)
        if self.tracer is not None:
            self.tracer.record(
                self.env.now, "net.send", msg_kind=msg.kind, src=msg.src,
                dst=msg.dst, size=msg.size,
            )
        tel = telemetry.current()
        if tel.enabled:
            tel.tracer.start_span(
                msg.kind, kind=telemetry.MESSAGE, node=msg.src,
                trace_id=msg.trace_id, key=f"msg:{msg.msg_id}",
                dst=msg.dst, msg_id=msg.msg_id, size=msg.size,
            )
            tel.metrics.counter("repro_net_messages_sent_total").inc()
            tel.metrics.counter(
                "repro_net_message_bytes_total", kind=msg.kind
            ).inc(msg.size)
        src, dst = msg.src, msg.dst
        nodes, down = self._nodes, self._down
        if (src not in nodes or dst not in nodes
                or src in down or dst in down):
            self._drop(msg)
            return
        part = self._partition
        if part is not None and part.get(src, -1) != part.get(dst, -1):
            self.stats.partition_drops += 1
            self._drop(msg)
            return
        if self.loss_rate > 0.0:
            if self._loss_rng is None:
                # No stream was plumbed in: derive from the ambient
                # scenario seed when one is installed, else OS entropy
                # (a fixed fallback seed here would silently give every
                # run the same loss pattern regardless of the scenario
                # seed; ``build_scenario`` passes ``loss_rng``).
                from repro.sim.rng import fallback_rng

                self._loss_rng = fallback_rng("loss")
            if self._loss_rng.random() < self.loss_rate:
                self._drop(msg)
                return
        env = self.env
        now = env._now
        delay = self.latency.sample(src, dst) + msg.size / self.bandwidth
        key = (src, dst)
        arrival = now + delay
        floor = self._last_arrival.get(key)
        if floor is not None and floor > arrival:
            arrival = floor
        self._last_arrival[key] = arrival
        # Environment.schedule inlined (one delivery per message): a
        # fresh _Delivery can never be already-scheduled.  The schedule
        # time is written as now + (arrival - now), not plain arrival,
        # to keep the float bits identical to the delay-based API.
        ev = _Delivery(self, msg)
        ev._scheduled = True
        _heappush(env._queue, (now + (arrival - now), NORMAL, env._seq, ev))
        env._seq += 1

    def _drop(self, msg: Message) -> None:
        self.stats.dropped += 1
        tel = telemetry.current()
        if tel.enabled:
            tel.tracer.end_span_key(f"msg:{msg.msg_id}", status="dropped")
            tel.metrics.counter("repro_net_messages_dropped_total").inc()

    def _handle_arrival(self, ev: "Event") -> None:
        self._deliver(ev.msg)

    def _deliver(self, msg: Message) -> None:
        # The destination may have failed while the message was in flight.
        if not self.is_up(msg.dst):
            self._drop(msg)
            return
        self.stats.delivered += 1
        if self.tracer is not None:
            self.tracer.record(
                self.env.now, "net.deliver", msg_kind=msg.kind, src=msg.src,
                dst=msg.dst,
            )
        tel = telemetry.current()
        if tel.enabled:
            tel.tracer.end_span_key(f"msg:{msg.msg_id}", status="ok")
            tel.metrics.counter("repro_net_messages_delivered_total").inc()
        self._nodes[msg.dst].mailbox.put(msg)

    def expected_delay(self, src: str, dst: str, size: float = 512.0) -> float:
        """Planning estimate of one-way delay (used by the RM's cost model)."""
        return self.latency.expected(src, dst) + size / self.bandwidth

"""The Connection Manager (paper §2).

"The Connection Manager is responsible for managing the peer
connections; that is, establishing or destroying connections of the
processor to other peers. The number of connections is typically
limited by the resources at the peer."

A :class:`ConnectionManager` tracks the logical connections a peer
holds open.  Opening a connection to a new peer costs one handshake
message (accounted on the wire); when the cap is reached the
least-recently-used idle connection is torn down.  Connections pinned
by an active streaming session are never evicted.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Set

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import NetNode

#: Wire size of a connection handshake message.
HANDSHAKE_SIZE = 128.0
HANDSHAKE_KIND = "conn_open"


class ConnectionCapacityError(Exception):
    """All connection slots are pinned; nothing can be evicted."""

    def __init__(self, node_id: str, max_connections: int) -> None:
        super().__init__(
            f"{node_id}: all {max_connections} connections pinned"
        )


class ConnectionManager:
    """Bounded set of open connections with LRU eviction.

    Parameters
    ----------
    node:
        The owning network node (handshakes are sent through it).
    max_connections:
        Slot budget, "limited by the resources at the peer".
    """

    def __init__(self, node: "NetNode", max_connections: int = 32) -> None:
        if max_connections < 1:
            raise ValueError(
                f"max_connections must be >= 1, got {max_connections}"
            )
        self.node = node
        self.max_connections = max_connections
        #: peer id -> last-use timestamp (insertion order == LRU order
        #: is *not* assumed; we sort on eviction).
        self._last_used: Dict[str, float] = {}
        self._pinned: Set[str] = set()
        self.opened = 0
        self.evicted = 0

    # -- queries ------------------------------------------------------------
    def is_open(self, peer_id: str) -> bool:
        return peer_id in self._last_used

    @property
    def n_open(self) -> int:
        return len(self._last_used)

    def connections(self) -> list[str]:
        """Open connections, least recently used first."""
        return sorted(self._last_used, key=self._last_used.get)

    # -- lifecycle ---------------------------------------------------------------
    def ensure(self, peer_id: str, pin: bool = False) -> bool:
        """Make sure a connection to *peer_id* is open.

        Returns ``True`` if a new connection was established (and the
        handshake message sent), ``False`` if it already existed.

        Raises
        ------
        ConnectionCapacityError
            If a new slot is needed but every open connection is pinned.
        """
        if peer_id == self.node.node_id:
            return False  # no self-connections
        now = self.node.env.now
        if peer_id in self._last_used:
            self._last_used[peer_id] = now
            if pin:
                self._pinned.add(peer_id)
            return False
        if len(self._last_used) >= self.max_connections:
            self._evict_one()
        self._last_used[peer_id] = now
        if pin:
            self._pinned.add(peer_id)
        self.opened += 1
        self.node.send(HANDSHAKE_KIND, peer_id, {}, size=HANDSHAKE_SIZE)
        return True

    def _evict_one(self) -> None:
        evictable = [
            pid for pid in self._last_used if pid not in self._pinned
        ]
        if not evictable:
            raise ConnectionCapacityError(
                self.node.node_id, self.max_connections
            )
        victim = min(evictable, key=self._last_used.get)
        del self._last_used[victim]
        self.evicted += 1

    def pin(self, peer_id: str) -> None:
        """Protect a connection from eviction (active session)."""
        if peer_id in self._last_used:
            self._pinned.add(peer_id)

    def unpin(self, peer_id: str) -> None:
        """Release a session's pin."""
        self._pinned.discard(peer_id)

    def close(self, peer_id: str) -> None:
        """Tear a connection down explicitly."""
        self._last_used.pop(peer_id, None)
        self._pinned.discard(peer_id)

    def close_all(self) -> None:
        self._last_used.clear()
        self._pinned.clear()

    def __repr__(self) -> str:
        return (
            f"<ConnectionManager {self.node.node_id} "
            f"{self.n_open}/{self.max_connections} open, "
            f"{len(self._pinned)} pinned>"
        )

"""The message unit exchanged between overlay nodes."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

_msg_counter = itertools.count(1)
_trace_counter = itertools.count(1)


def _next_id() -> int:
    return next(_msg_counter)


def next_trace_id() -> str:
    """A fresh correlation id for a message that starts its own trace."""
    return f"m{next(_trace_counter)}"


def reset_message_ids(start: int = 1) -> None:
    """Rewind the module-global message-id and trace-id counters.

    Repeated in-process runs (experiment sweeps, notebook re-runs) share
    this module's counters, so without a reset the *second* run's message
    ids differ from a fresh interpreter's — breaking trace comparisons.
    Experiment setup calls this so identical configs produce identical
    ids.  Never call it mid-run: id uniqueness within one run depends on
    the counters only moving forward.
    """
    global _msg_counter, _trace_counter
    _msg_counter = itertools.count(start)
    _trace_counter = itertools.count(start)


_task_traces: Dict[str, str] = {}


def trace_id_for_payload(payload: Dict[str, Any]) -> Optional[str]:
    """Derive the task-trace id a payload belongs to, if any.

    Task-scoped messages all carry the task identity in one of three
    conventional payload shapes: a ``task_id`` field (STEP_DONE,
    TASK_DONE, TASK_ACK, START_STREAM, STREAM, CANCEL_TASK, QOS_UPDATE),
    an ``order`` (COMPOSE) or a ``task`` object (TASK_REDIRECT).  All
    three map onto the same ``task:<id>`` trace, which is how spans
    recorded on different nodes — and across the UDP hop — correlate.
    """
    task_id = payload.get("task_id")
    if isinstance(task_id, str) and task_id:
        # Every message of a task re-derives the same string; memoize
        # (bounded by the number of distinct tasks in the process).
        trace = _task_traces.get(task_id)
        if trace is None:
            trace = _task_traces[task_id] = f"task:{task_id}"
        return trace
    order = payload.get("order")
    if order is not None:
        tid = getattr(order, "task_id", None)
        if tid:
            return f"task:{tid}"
    task = payload.get("task")
    if task is not None:
        tid = getattr(task, "task_id", None)
        if tid:
            return f"task:{tid}"
    return None


@dataclass(slots=True)
class Message:
    """A point-to-point overlay message.

    Attributes
    ----------
    kind:
        Protocol message type (e.g. ``"task_request"``, ``"load_update"``).
    src, dst:
        Node identifiers.
    payload:
        Arbitrary content; by convention a dict of plain values.
    size:
        Wire size in bytes (drives transmission delay and bandwidth
        accounting).
    msg_id:
        Unique id, assigned automatically.
    reply_to:
        For responses: the ``msg_id`` of the request being answered.
    sent_at:
        Stamped by the network at send time (simulation seconds).
    trace_id:
        Causal-correlation id for telemetry: task-scoped messages carry
        ``task:<task_id>``, replies inherit the request's id, everything
        else gets a fresh ``m<N>`` at send time (see
        :func:`trace_id_for_payload`).  Travels on the wire so spans
        correlate across the UDP hop; deterministic given a
        :func:`reset_message_ids` at run start.
    """

    kind: str
    src: str
    dst: str
    payload: Dict[str, Any] = field(default_factory=dict)
    size: float = 512.0
    msg_id: int = field(default_factory=_next_id)
    reply_to: Optional[int] = None
    sent_at: float = 0.0
    trace_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"message size must be positive, got {self.size}")

    @staticmethod
    def reset_ids(start: int = 1) -> None:
        """Rewind automatic id assignment (see :func:`reset_message_ids`)."""
        reset_message_ids(start)

    def is_reply(self) -> bool:
        """True if this message answers an earlier request."""
        return self.reply_to is not None

    def ensure_trace_id(self) -> str:
        """Assign (if still unset) and return this message's trace id.

        Called by every transport at the send chokepoint: payload-derived
        task correlation wins, otherwise the message starts a trace of
        its own.
        """
        if self.trace_id is None:
            self.trace_id = (
                trace_id_for_payload(self.payload) or next_trace_id()
            )
        return self.trace_id

    def __repr__(self) -> str:
        return (
            f"Message({self.kind}, {self.src}->{self.dst}, id={self.msg_id}"
            + (f", reply_to={self.reply_to}" if self.reply_to else "")
            + ")"
        )

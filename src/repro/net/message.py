"""The message unit exchanged between overlay nodes."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

_msg_counter = itertools.count(1)


def _next_id() -> int:
    return next(_msg_counter)


def reset_message_ids(start: int = 1) -> None:
    """Rewind the module-global message-id counter.

    Repeated in-process runs (experiment sweeps, notebook re-runs) share
    this module's counter, so without a reset the *second* run's message
    ids differ from a fresh interpreter's — breaking trace comparisons.
    Experiment setup calls this so identical configs produce identical
    ids.  Never call it mid-run: id uniqueness within one run depends on
    the counter only moving forward.
    """
    global _msg_counter
    _msg_counter = itertools.count(start)


@dataclass
class Message:
    """A point-to-point overlay message.

    Attributes
    ----------
    kind:
        Protocol message type (e.g. ``"task_request"``, ``"load_update"``).
    src, dst:
        Node identifiers.
    payload:
        Arbitrary content; by convention a dict of plain values.
    size:
        Wire size in bytes (drives transmission delay and bandwidth
        accounting).
    msg_id:
        Unique id, assigned automatically.
    reply_to:
        For responses: the ``msg_id`` of the request being answered.
    sent_at:
        Stamped by the network at send time (simulation seconds).
    """

    kind: str
    src: str
    dst: str
    payload: Dict[str, Any] = field(default_factory=dict)
    size: float = 512.0
    msg_id: int = field(default_factory=_next_id)
    reply_to: Optional[int] = None
    sent_at: float = 0.0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"message size must be positive, got {self.size}")

    @staticmethod
    def reset_ids(start: int = 1) -> None:
        """Rewind automatic id assignment (see :func:`reset_message_ids`)."""
        reset_message_ids(start)

    def is_reply(self) -> bool:
        """True if this message answers an earlier request."""
        return self.reply_to is not None

    def __repr__(self) -> str:
        return (
            f"Message({self.kind}, {self.src}->{self.dst}, id={self.msg_id}"
            + (f", reply_to={self.reply_to}" if self.reply_to else "")
            + ")"
        )

"""The run-level metrics collector used by all experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from repro.common.util import percentile
from repro.results.timeseries import TimeSeries
from repro.core.fairness import jain_fairness
from repro.sim.core import Environment
from repro.sim.events import Event, Interrupt
from repro.tasks.task import ApplicationTask, TaskOutcome


@dataclass
class RunSummary:
    """Aggregated results of one simulation run."""

    duration: float
    n_submitted: int
    n_admitted: int
    n_completed: int
    n_met: int
    n_missed: int
    n_rejected: int
    n_failed: int
    n_redirected: int
    n_repairs: int
    n_reassignments: int
    mean_response: float
    p95_response: float
    mean_fairness: float
    min_fairness: float
    messages: int
    bytes_sent: float
    #: Sum of importance over tasks that met their deadline / sum over
    #: all terminal tasks — the Jensen-style "overall system benefit"
    #: the paper's Importance_t exists for (§3.3, §5).
    value_goodput: float = 0.0
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def miss_rate(self) -> float:
        """Missed deadlines / tasks that reached a terminal state."""
        done = self.n_completed + self.n_failed
        if done == 0:
            return 0.0
        return (self.n_missed + self.n_failed) / done

    @property
    def goodput(self) -> float:
        """Tasks meeting their deadline / all submitted."""
        if self.n_submitted == 0:
            return 0.0
        return self.n_met / self.n_submitted

    @property
    def rejection_rate(self) -> float:
        if self.n_submitted == 0:
            return 0.0
        return self.n_rejected / self.n_submitted

    def row(self) -> Dict[str, Any]:
        """Flat dict for table printing."""
        return {
            "submitted": self.n_submitted,
            "admitted": self.n_admitted,
            "met": self.n_met,
            "missed": self.n_missed,
            "rejected": self.n_rejected,
            "failed": self.n_failed,
            "goodput": self.goodput,
            "miss_rate": self.miss_rate,
            "mean_resp": self.mean_response,
            "p95_resp": self.p95_response,
            "fairness": self.mean_fairness,
            "messages": self.messages,
        }


class MetricsCollector:
    """Observes task lifecycle events and samples system state.

    Wire ``collector.on_task_event`` into the RMs (or the overlay); call
    :meth:`start_sampling` to record the fairness index of the *actual*
    (profiler-measured) load distribution over time; call
    :meth:`summary` after the run.
    """

    def __init__(self, env: Environment) -> None:
        self.env = env
        self.tasks: Dict[str, ApplicationTask] = {}
        self.events: List[tuple[float, str, str]] = []
        self.counts: Dict[str, int] = {}
        self.fairness_series = TimeSeries()
        self.utilization_series = TimeSeries()
        self._sampler = None

    # -- lifecycle hook -----------------------------------------------------
    def on_task_event(self, task: ApplicationTask, event: str) -> None:
        """Register a task lifecycle transition (RM callback)."""
        self.tasks[task.task_id] = task
        self.events.append((self.env.now, task.task_id, event))
        self.counts[event] = self.counts.get(event, 0) + 1

    # -- sampling ------------------------------------------------------------
    def start_sampling(
        self, overlay: Any, period: float = 1.0
    ) -> None:
        """Periodically sample true loads across all live peers.

        ``overlay`` needs a ``peers`` mapping of id -> object exposing
        ``alive`` and ``profiler.load`` (both :class:`OverlayNetwork`
        and ad-hoc harnesses satisfy this).
        """
        if period <= 0:
            raise ValueError("period must be positive")
        self._sampler = self.env.process(
            self._sample_loop(overlay, period), name="metrics-sampler"
        )

    def _sample_loop(
        self, overlay: Any, period: float
    ) -> Generator[Event, Any, None]:
        try:
            while True:
                yield self.env.timeout(period)
                loads = [
                    p.profiler.load
                    for p in overlay.peers.values()
                    if p.alive
                ]
                utils = [
                    p.profiler.utilization
                    for p in overlay.peers.values()
                    if p.alive
                ]
                if loads:
                    self.fairness_series.add(
                        self.env.now, jain_fairness(loads)
                    )
                    self.utilization_series.add(
                        self.env.now, sum(utils) / len(utils)
                    )
        except Interrupt:
            return

    def stop_sampling(self) -> None:
        if self._sampler is not None and self._sampler.is_alive:
            self._sampler.interrupt("stop")

    # -- aggregation ------------------------------------------------------------
    def summary(
        self, net_stats: Optional[Any] = None
    ) -> RunSummary:
        """Aggregate everything observed so far."""
        tasks = list(self.tasks.values())
        responses = [
            t.response_time
            for t in tasks
            if t.outcome in (TaskOutcome.MET_DEADLINE,
                             TaskOutcome.MISSED_DEADLINE)
            and t.response_time is not None
        ]
        n_met = sum(
            1 for t in tasks if t.outcome is TaskOutcome.MET_DEADLINE
        )
        n_missed = sum(
            1 for t in tasks if t.outcome is TaskOutcome.MISSED_DEADLINE
        )
        n_rejected = sum(
            1 for t in tasks if t.outcome is TaskOutcome.REJECTED
        )
        n_failed = sum(1 for t in tasks if t.outcome is TaskOutcome.FAILED)
        value_met = sum(
            t.qos.importance
            for t in tasks
            if t.outcome is TaskOutcome.MET_DEADLINE
        )
        value_all = sum(
            t.qos.importance for t in tasks if t.outcome is not None
        )
        return RunSummary(
            duration=self.env.now,
            n_submitted=self.counts.get("submitted", 0)
            or len(tasks),
            n_admitted=self.counts.get("admitted", 0),
            n_completed=n_met + n_missed,
            n_met=n_met,
            n_missed=n_missed,
            n_rejected=n_rejected,
            n_failed=n_failed,
            n_redirected=self.counts.get("redirected", 0),
            n_repairs=self.counts.get("repaired", 0),
            n_reassignments=self.counts.get("reassigned", 0),
            mean_response=(
                sum(responses) / len(responses) if responses else 0.0
            ),
            p95_response=percentile(responses, 95) if responses else 0.0,
            mean_fairness=(
                self.fairness_series.time_weighted_mean()
                if len(self.fairness_series)
                else 1.0
            ),
            min_fairness=(
                self.fairness_series.min()
                if len(self.fairness_series)
                else 1.0
            ),
            messages=net_stats.sent if net_stats is not None else 0,
            bytes_sent=(
                net_stats.bytes_sent if net_stats is not None else 0.0
            ),
            value_goodput=(value_met / value_all) if value_all else 0.0,
        )

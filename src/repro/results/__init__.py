"""Run-level result collection: task outcomes, fairness series, overheads."""

from repro.results.collector import MetricsCollector, RunSummary
from repro.results.timeseries import TimeSeries

__all__ = ["MetricsCollector", "RunSummary", "TimeSeries"]

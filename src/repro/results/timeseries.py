"""A small timestamped series with time-weighted statistics."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


class TimeSeries:
    """Timestamped samples with plain and time-weighted aggregation."""

    def __init__(self) -> None:
        self.times: List[float] = []
        self.values: List[float] = []

    def add(self, t: float, v: float) -> None:
        """Append a sample; timestamps must be non-decreasing."""
        if self.times and t < self.times[-1]:
            raise ValueError(
                f"timestamp {t} precedes last sample {self.times[-1]}"
            )
        self.times.append(t)
        self.values.append(v)

    def __len__(self) -> int:
        return len(self.times)

    def mean(self) -> float:
        """Unweighted mean of the samples."""
        if not self.values:
            raise ValueError("mean of empty series")
        return float(np.mean(self.values))

    def time_weighted_mean(self) -> float:
        """Mean weighted by holding time (last sample weight = 0)."""
        if not self.values:
            raise ValueError("mean of empty series")
        if len(self.values) == 1:
            return float(self.values[0])
        t = np.asarray(self.times)
        v = np.asarray(self.values)
        dt = np.diff(t)
        total = float(dt.sum())
        if total <= 0:
            return float(np.mean(v))
        return float((v[:-1] * dt).sum() / total)

    def min(self) -> float:
        if not self.values:
            raise ValueError("min of empty series")
        return float(np.min(self.values))

    def max(self) -> float:
        if not self.values:
            raise ValueError("max of empty series")
        return float(np.max(self.values))

    def last(self) -> float:
        if not self.values:
            raise ValueError("last of empty series")
        return float(self.values[-1])

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.times), np.asarray(self.values)

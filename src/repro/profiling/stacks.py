"""Folded-stack aggregation with a bounded memory footprint.

The profiler's unit of storage is the *folded stack*: frames joined
root-first with ``;`` (``repro/sim/core.py:run;repro/net.py:_deliver``),
the flamegraph interchange format.  A :class:`StackAggregator` maps
folded stacks to (sample count, attributed seconds) with a hard ceiling
on distinct stacks — overflow collapses into an ``(other)`` bucket so a
pathological workload cannot grow the table without bound.

``to_folded()`` emits the classic ``stack count`` text consumed by
``flamegraph.pl`` / speedscope / inferno.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: Catch-all bucket once ``max_stacks`` distinct stacks exist.
OTHER_KEY = "(other)"

#: Default ceiling on distinct folded stacks held in memory.
DEFAULT_MAX_STACKS = 4096


def shorten_path(path: str) -> str:
    """Compress a source path to its repo-relative tail.

    Keeps everything from the last ``repro`` component (the package
    root) when present, else the final two components.
    """
    parts = path.replace("\\", "/").split("/")
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[idx:])
    return "/".join(parts[-2:])


def format_frame(frame) -> str:
    """``path:function`` for one Python frame."""
    code = frame.f_code
    return f"{shorten_path(code.co_filename)}:{code.co_name}"


def fold_frames(frame, max_depth: int = 64) -> str:
    """Fold a leaf frame and its callers into one root-first stack."""
    names: List[str] = []
    f = frame
    while f is not None and len(names) < max_depth:
        names.append(format_frame(f))
        f = f.f_back
    names.reverse()
    return ";".join(names)


class StackAggregator:
    """Bounded ``folded stack -> (count, seconds)`` accumulator."""

    __slots__ = ("max_stacks", "_counts", "n_samples", "truncated")

    def __init__(self, max_stacks: int = DEFAULT_MAX_STACKS) -> None:
        if max_stacks < 1:
            raise ValueError(f"max_stacks must be >= 1, got {max_stacks}")
        self.max_stacks = int(max_stacks)
        # folded stack -> [count, seconds]
        self._counts: Dict[str, List[float]] = {}
        self.n_samples = 0
        #: Samples routed into the ``(other)`` bucket.
        self.truncated = 0

    def add(self, folded: str, count: float = 1.0,
            seconds: float = 0.0) -> None:
        entry = self._counts.get(folded)
        if entry is None:
            if len(self._counts) >= self.max_stacks:
                self.truncated += 1
                folded = OTHER_KEY
                entry = self._counts.get(folded)
                if entry is None:
                    entry = self._counts[folded] = [0.0, 0.0]
            else:
                entry = self._counts[folded] = [0.0, 0.0]
        entry[0] += count
        entry[1] += seconds
        self.n_samples += 1

    def __len__(self) -> int:
        return len(self._counts)

    @property
    def unique_stacks(self) -> int:
        return len(self._counts)

    def top(
        self, n: int = 10, by: str = "count"
    ) -> List[Tuple[str, float, float]]:
        """The *n* hottest stacks as ``(stack, count, seconds)``."""
        idx = 1 if by == "seconds" else 0
        rows = sorted(
            (
                (stack, entry[0], entry[1])
                for stack, entry in self._counts.items()
            ),
            key=lambda row: (-row[idx + 1], row[0]),
        )
        return rows[:n]

    @property
    def total_count(self) -> float:
        """Sum of all stack weights (== n_samples for unit adds)."""
        return sum(entry[0] for entry in self._counts.values())

    def share(self, count: float) -> float:
        """A stack weight as a fraction of the total weight."""
        total = self.total_count
        return count / total if total else 0.0

    # -- export -------------------------------------------------------------
    def to_folded(self) -> str:
        """The flamegraph folded-stack text (``stack count`` lines)."""
        lines = [
            f"{stack} {max(1, round(entry[0]))}"
            for stack, entry in sorted(
                self._counts.items(), key=lambda kv: (-kv[1][0], kv[0])
            )
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_folded(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_folded())
        return path

    def record(self, top_n: int = 20) -> Dict[str, Any]:
        """JSON-ready summary (embedded in the ``profile`` trace record)."""
        return {
            "samples": self.n_samples,
            "unique_stacks": self.unique_stacks,
            "truncated": self.truncated,
            "top": [
                {
                    "stack": stack,
                    "count": round(count, 3),
                    "seconds": round(seconds, 6),
                    "share": round(self.share(count), 4),
                }
                for stack, count, seconds in self.top(top_n)
            ],
        }

    def publish(self, metrics, top_n: int = 5,
                prefix: str = "repro_prof") -> None:
        """Export aggregate + top-N hot-path gauges to *metrics*."""
        metrics.gauge(
            f"{prefix}_samples",
            help="Profile samples aggregated so far.",
        ).set(self.n_samples)
        metrics.gauge(
            f"{prefix}_unique_stacks",
            help="Distinct folded stacks held (bounded by max_stacks).",
        ).set(self.unique_stacks)
        metrics.gauge(
            f"{prefix}_truncated",
            help="Samples collapsed into the (other) bucket.",
        ).set(self.truncated)
        for rank, (stack, count, _seconds) in enumerate(
            self.top(top_n), start=1
        ):
            metrics.gauge(
                f"{prefix}_hot_share",
                help="Fraction of samples landing in this hot path.",
                rank=str(rank), stack=stack,
            ).set(round(self.share(count), 4))

    def __repr__(self) -> str:
        return (
            f"<StackAggregator stacks={self.unique_stacks} "
            f"samples={self.n_samples}>"
        )


def describe_callback(cb) -> Optional[str]:
    """A low-cardinality label for an event callback target.

    Bound methods of a :class:`~repro.sim.events.Process` resolve to the
    process generator's code location (``path:function``); other bound
    methods to ``Class.method``; plain functions to their qualname.
    Instance names are deliberately ignored — per-peer names would blow
    up stack cardinality.
    """
    owner = getattr(cb, "__self__", None)
    if owner is not None:
        gen = getattr(owner, "generator", None)
        code = getattr(gen, "gi_code", None)
        if code is not None:
            return f"{shorten_path(code.co_filename)}:{code.co_name}"
        method = getattr(cb, "__name__", "?")
        return f"{type(owner).__name__}.{method}"
    qual = getattr(cb, "__qualname__", None)
    if qual:
        return qual
    return getattr(cb, "__name__", None)


def describe_dispatch(event, callbacks) -> str:
    """Folded stack for one sim event dispatch.

    Event-count sampling has no call stack to walk (the kernel loop *is*
    the stack), so the synthetic three-frame stack is
    ``sim.dispatch;<EventType>;<first callback target>`` — enough to see
    which event kinds and handlers dominate the run.
    """
    target = None
    for cb in callbacks or ():
        target = describe_callback(cb)
        if target is not None:
            break
    if target is None:
        target = "(no-callbacks)"
    extra = len(callbacks) - 1 if callbacks else 0
    suffix = f" (+{extra})" if extra > 0 else ""
    return f"sim.dispatch;{type(event).__name__};{target}{suffix}"

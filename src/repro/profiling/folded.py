"""Folded-profile files: read, merge across shards, diff across runs.

``.folded`` is the flamegraph interchange format the profilers emit
(``stack count`` lines, frames ``;``-joined root-first).  This module
closes the profile pipeline around it:

* :func:`read_folded` / :func:`write_folded` — file I/O to/from a
  plain ``stack -> count`` dict;
* :func:`merge_folded` — sum several profiles (per-shard outputs into
  one cluster flame profile; sample counts add because every shard's
  sample stands for the same sampling period);
* :func:`diff_folded` — compare two profiles by *share* (count /
  total), so runs of different lengths or sample rates are comparable,
  and report the top regressed (grew) and improved (shrank) stacks —
  the answer to "which stack got hot between these two bench runs";
* :func:`format_diff` — the human-readable report.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Iterable, List, Union

#: Share changes smaller than this are noise, not findings.
DEFAULT_MIN_DELTA = 0.005


def parse_folded(text: str) -> Dict[str, float]:
    """Parse ``.folded`` text into ``{stack: count}``.

    Tolerates blank lines and comments; duplicate stacks accumulate.
    The count is the last whitespace-separated token (stack frames may
    contain spaces, e.g. the aggregator's ``(+N)`` suffix).
    """
    counts: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        stack, _, count = line.rpartition(" ")
        if not stack:
            continue
        try:
            num = float(count)
        except ValueError:
            continue
        counts[stack] = counts.get(stack, 0.0) + num
    return counts


def read_folded(src: Union[str, "os.PathLike[str]"]) -> Dict[str, float]:
    """Load a ``.folded`` file into ``{stack: count}``."""
    with open(src, "r", encoding="utf-8") as fh:
        return parse_folded(fh.read())


def merge_folded(
    profiles: Iterable[Dict[str, float]]
) -> Dict[str, float]:
    """Sum several ``{stack: count}`` profiles into one."""
    merged: Dict[str, float] = {}
    for counts in profiles:
        for stack, n in counts.items():
            merged[stack] = merged.get(stack, 0.0) + n
    return merged


def write_folded(
    path: Union[str, "os.PathLike[str]"], counts: Dict[str, float]
) -> str:
    """Write ``{stack: count}`` as ``.folded`` text, hottest first."""
    with open(path, "w", encoding="utf-8") as fh:
        for stack, n in sorted(
            counts.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            fh.write(f"{stack} {max(1, round(n))}\n")
    return os.fspath(path)


def _shares(counts: Dict[str, float]) -> Dict[str, float]:
    total = sum(counts.values())
    if total <= 0:
        return {}
    return {stack: n / total for stack, n in counts.items()}


def diff_folded(
    base: Dict[str, float],
    new: Dict[str, float],
    top_n: int = 10,
    min_delta: float = DEFAULT_MIN_DELTA,
) -> Dict[str, Any]:
    """Share-normalized profile diff: top regressed/improved stacks.

    A stack's *delta* is ``new_share - base_share``; positive means it
    grew (regressed).  Stacks moving less than *min_delta* in share are
    dropped as noise.  Absolute sample counts are reported alongside
    so the reader can judge statistical weight.
    """
    base_shares = _shares(base)
    new_shares = _shares(new)
    rows: List[Dict[str, Any]] = []
    for stack in set(base_shares) | set(new_shares):
        b = base_shares.get(stack, 0.0)
        n = new_shares.get(stack, 0.0)
        delta = n - b
        if abs(delta) < min_delta:
            continue
        rows.append({
            "stack": stack,
            "base_share": round(b, 4),
            "new_share": round(n, 4),
            "delta": round(delta, 4),
            "base_count": base.get(stack, 0.0),
            "new_count": new.get(stack, 0.0),
        })
    rows.sort(key=lambda r: (-abs(r["delta"]), r["stack"]))
    regressed = [r for r in rows if r["delta"] > 0][:top_n]
    improved = [r for r in rows if r["delta"] < 0][:top_n]
    return {
        "base_samples": sum(base.values()),
        "new_samples": sum(new.values()),
        "min_delta": min_delta,
        "regressed": regressed,
        "improved": improved,
    }


def format_diff(diff: Dict[str, Any]) -> str:
    """The human-readable ``repro-trace diff-profile`` report."""
    lines = [
        f"profile diff: base={diff['base_samples']:g} samples, "
        f"new={diff['new_samples']:g} samples "
        f"(min share delta {diff['min_delta']:.1%})"
    ]

    def section(title: str, rows: List[Dict[str, Any]]) -> None:
        lines.append(f"{title}:")
        if not rows:
            lines.append("  (none)")
            return
        for r in rows:
            lines.append(
                f"  {r['delta']:+7.1%}  "
                f"{r['base_share']:.1%} -> {r['new_share']:.1%}  "
                f"{r['stack']}"
            )

    section("regressed (grew)", diff["regressed"])
    section("improved (shrank)", diff["improved"])
    return "\n".join(lines)

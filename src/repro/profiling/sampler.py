"""The two sampling drivers: wall-clock threads and sim event counts.

* :class:`WallStackProfiler` — a daemon timer thread walking
  ``sys._current_frames()`` every ``period`` wall seconds.  Stdlib-only
  continuous profiling for the live runtime: no signals, no
  ``sys.setprofile`` (which would tax every function call), just
  whole-stack snapshots whose cost scales with sample *rate*, not with
  application throughput.
* :class:`SimEventProfiler` — hooks the simulator's dispatch loop via
  :meth:`Environment.set_profile_hook` and samples every ``stride``
  events.  Timer threads would race the virtual clock, so sim sampling
  is event-count triggered; each sample attributes the wall time since
  the previous sample to the sampled dispatch (standard event-boundary
  sampling: hot handlers are hit in proportion to how often they run).

Both expose the same budgeter-facing surface: ``self_time_s`` (their
own measured cost), a retunable rate knob, and an ``on_sample``
callback fired after each sample (the budgeter's evaluation trigger).
"""

from __future__ import annotations

import sys
import threading
from time import perf_counter
from typing import Callable, Optional

from repro.profiling.stacks import (
    DEFAULT_MAX_STACKS,
    StackAggregator,
    describe_dispatch,
    fold_frames,
)

#: Default wall sampling period, seconds (20 Hz).  Each sample is
#: cheap to *take*, but every timer wakeup also forces a GIL handoff
#: the self-cost clock cannot see; 20 Hz keeps that hidden tax a few
#: percent while still collecting hundreds of samples per minute.
DEFAULT_PERIOD = 0.05
#: Default sim sampling stride, events.
DEFAULT_STRIDE = 64

#: Fallback per-wakeup GIL-handoff cost (seconds) when calibration is
#: disabled or yields an implausible value.  Each timer wakeup makes
#: the sampler thread contend for the GIL: the running app thread
#: stalls for roughly one context handoff.  Tens of microseconds is
#: the observed order on CPython 3.10–3.12.
DEFAULT_GIL_HANDOFF_S = 50e-6

#: Calibration results outside this band are discarded as noise.
_GIL_COST_BOUNDS = (1e-6, 2e-3)

#: Process-wide calibration cache (the cost is a property of the
#: interpreter + host, not of any one profiler instance).
_gil_cost_cache: Optional[float] = None


def _busy_loop(deadline: float) -> int:
    """Pure-Python spin until *deadline*; returns iterations done."""
    n = 0
    while perf_counter() < deadline:
        n += 1
    return n


def estimate_gil_handoff_cost(
    phase_s: float = 0.03, wake_period: float = 0.001,
) -> float:
    """Measure the per-wakeup GIL-handoff tax a timer sampler inflicts.

    The profiler's ``self_time_s`` clock sees only the time *inside*
    :meth:`WallStackProfiler.sample_once`; it cannot see the stall each
    wakeup imposes on the application thread that must yield the GIL.
    This one-shot calibration measures that hidden side: a pure-Python
    busy loop runs for *phase_s* seconds alone, then again while a
    thread wakes every *wake_period* seconds to walk
    ``sys._current_frames()`` — the drop in loop throughput divided by
    the number of wakeups is the per-wakeup cost.  Implausible results
    (scheduler noise on a loaded CI box) fall back to
    :data:`DEFAULT_GIL_HANDOFF_S`.  The result is cached process-wide.
    """
    global _gil_cost_cache
    if _gil_cost_cache is not None:
        return _gil_cost_cache

    # Phase A: baseline throughput, no sampler.
    t0 = perf_counter()
    base_iters = _busy_loop(t0 + phase_s)
    base_elapsed = perf_counter() - t0
    rate = base_iters / base_elapsed if base_elapsed > 0 else 0.0

    # Phase B: same loop under a waking sampler thread.
    wakeups = [0]
    stop = threading.Event()

    def _waker() -> None:
        while not stop.wait(wake_period):
            sys._current_frames()
            wakeups[0] += 1

    thread = threading.Thread(target=_waker, daemon=True)
    thread.start()
    t1 = perf_counter()
    loaded_iters = _busy_loop(t1 + phase_s)
    loaded_elapsed = perf_counter() - t1
    stop.set()
    thread.join(timeout=1.0)

    cost = DEFAULT_GIL_HANDOFF_S
    if rate > 0 and wakeups[0] > 0:
        # Seconds of busy-loop progress lost to the sampler's wakeups.
        lost = loaded_elapsed - (loaded_iters / rate)
        per_wakeup = lost / wakeups[0]
        if _GIL_COST_BOUNDS[0] <= per_wakeup <= _GIL_COST_BOUNDS[1]:
            cost = per_wakeup
    _gil_cost_cache = cost
    return cost


class WallStackProfiler:
    """Timer-thread stack sampler over ``sys._current_frames()``."""

    def __init__(
        self,
        period: float = DEFAULT_PERIOD,
        aggregator: Optional[StackAggregator] = None,
        max_stacks: int = DEFAULT_MAX_STACKS,
        gil_cost_per_sample: Optional[float] = None,
        calibrate_gil: bool = True,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        #: Seconds between samples; the budgeter retunes this live.
        self.period = float(period)
        self.agg = aggregator or StackAggregator(max_stacks=max_stacks)
        #: Cumulative wall seconds spent taking samples (self-cost).
        self.self_time_s = 0.0
        self.n_samples = 0
        #: Per-wakeup GIL-handoff cost model.  None means "calibrate on
        #: start()" (or fall back to the default constant if calibration
        #: is disabled); pass 0.0 to turn the model off entirely.
        self.gil_cost_per_sample = gil_cost_per_sample
        self._calibrate_gil = calibrate_gil
        #: Called as ``on_sample(profiler)`` after every sample.
        self.on_sample: Optional[Callable[["WallStackProfiler"], None]] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    @property
    def gil_cost_s(self) -> float:
        """Modeled cumulative GIL-handoff tax across all wakeups."""
        per = self.gil_cost_per_sample
        if per is None:
            per = DEFAULT_GIL_HANDOFF_S
        return self.n_samples * per

    @property
    def estimated_cost_s(self) -> float:
        """Total estimated profiler cost: measured self-time plus the
        modeled GIL-handoff tax.  This — not ``self_time_s`` alone — is
        what the overhead budgeter should meter."""
        return self.self_time_s + self.gil_cost_s

    def start(self) -> None:
        if self._thread is not None:
            return
        if self.gil_cost_per_sample is None:
            self.gil_cost_per_sample = (
                estimate_gil_handoff_cost() if self._calibrate_gil
                else DEFAULT_GIL_HANDOFF_S
            )
        self._stop.clear()

        def _run() -> None:
            while not self._stop.wait(self.period):
                self.sample_once()

        self._thread = threading.Thread(
            target=_run, name="stack-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=2.0)
        self._thread = None

    def sample_once(self) -> None:
        """Snapshot every thread's stack except the profiler's own."""
        t0 = perf_counter()
        own = threading.get_ident()
        period = self.period
        for tid, frame in sys._current_frames().items():
            if tid == own:
                continue
            # Each sample stands for ~period seconds of that thread.
            self.agg.add(fold_frames(frame), seconds=period)
        self.n_samples += 1
        self.self_time_s += perf_counter() - t0
        cb = self.on_sample
        if cb is not None:
            cb(self)

    # -- budgeter knob ------------------------------------------------------
    def get_rate_setting(self) -> float:
        return self.period

    def set_rate_setting(self, period: float) -> None:
        self.period = float(period)

    def __repr__(self) -> str:
        return (
            f"<WallStackProfiler period={self.period} "
            f"samples={self.n_samples}>"
        )


class SimEventProfiler:
    """Event-count-triggered sampler for the simulation kernel.

    Attaching installs a dispatch hook; the kernel's default (unhooked)
    run loop is untouched, and the hook only observes — the event
    trajectory with the profiler attached is identical to without
    (goldens: scalability_1000 stays 190,173 events either way).
    """

    def __init__(
        self,
        env,
        stride: int = DEFAULT_STRIDE,
        aggregator: Optional[StackAggregator] = None,
        max_stacks: int = DEFAULT_MAX_STACKS,
    ) -> None:
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.env = env
        self._stride_box = [int(stride)]
        self.agg = aggregator or StackAggregator(max_stacks=max_stacks)
        self.self_time_s = 0.0
        self.n_samples = 0
        self.on_sample: Optional[Callable[["SimEventProfiler"], None]] = None
        self._last_t: Optional[float] = None
        self._attached = False

    # -- lifecycle ----------------------------------------------------------
    def attach(self) -> None:
        self.env.set_profile_hook(self._on_dispatch, self._stride_box)
        self._attached = True

    def detach(self) -> None:
        if self._attached:
            self.env.clear_profile_hook()
            self._attached = False

    # -- the hook -----------------------------------------------------------
    def _on_dispatch(self, event, callbacks) -> None:
        now = perf_counter()
        last = self._last_t
        self._last_t = now
        seconds = (now - last) if last is not None else 0.0
        self.agg.add(describe_dispatch(event, callbacks), seconds=seconds)
        self.n_samples += 1
        self.self_time_s += perf_counter() - now
        cb = self.on_sample
        if cb is not None:
            cb(self)

    # -- budgeter knob ------------------------------------------------------
    @property
    def stride(self) -> int:
        return self._stride_box[0]

    @stride.setter
    def stride(self, value: int) -> None:
        self._stride_box[0] = max(1, int(value))

    def get_rate_setting(self) -> float:
        return float(self._stride_box[0])

    def set_rate_setting(self, stride: float) -> None:
        self._stride_box[0] = max(1, int(round(stride)))

    def __repr__(self) -> str:
        return (
            f"<SimEventProfiler stride={self.stride} "
            f"samples={self.n_samples}>"
        )

"""One-call wiring of profiler + budgeter + SLO monitor per runtime.

The CLIs (``repro-run --profile``, ``repro-live --profile``,
``repro-bench --profile``) and tests all want the same bundle:

* the right sampling driver for the runtime (event-count for sim,
  timer-thread for live),
* an :class:`OverheadBudgeter` fed every self-cost source in play and
  actuating the profiler's rate knob,
* when a :class:`HealthSampler` is attached: budgeter decisions as
  series, a :class:`BurnRateMonitor` over the stock SLOs, and the
  flight-recorder cooldown-gauge refresh probe.

:func:`profile_sim` / :func:`profile_wall` build that bundle and return
a :class:`ProfileSession` that knows how to stop itself, publish
metrics, write the ``.folded`` artifact, and emit the ``profile`` JSONL
record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.profiling.budget import (
    DEFAULT_BUDGET,
    Actuator,
    OverheadBudgeter,
)
from repro.profiling.sampler import (
    DEFAULT_PERIOD,
    DEFAULT_STRIDE,
    SimEventProfiler,
    WallStackProfiler,
)
from repro.profiling.slo import (
    DEFAULT_SLOS,
    BurnRateMonitor,
    SLO,
)

#: Actuation ranges: sim stride in events, wall period in seconds.
SIM_STRIDE_RANGE = (16.0, 65536.0)
WALL_PERIOD_RANGE = (0.005, 1.0)


@dataclass
class ProfileSession:
    """Everything ``--profile`` attached to one run."""

    runtime: str  # "sim" | "wall"
    profiler: Any
    budgeter: OverheadBudgeter
    monitor: Optional[BurnRateMonitor] = None
    sampler: Any = None
    #: Set when the session created the flight recorder itself (the
    #: scenario had none); the caller then owns closing it.
    created_recorder: Any = None
    folded_path: Optional[str] = None
    _extra: Dict[str, Any] = field(default_factory=dict)

    # -- lifecycle ----------------------------------------------------------
    def stop(self) -> None:
        """Detach/stop the profiler (leaves aggregates readable)."""
        if self.runtime == "sim":
            self.profiler.detach()
        else:
            self.profiler.stop()
        self.budgeter.evaluate()

    def write_folded(self, path: str) -> Optional[str]:
        """Write the flamegraph artifact; None when nothing sampled."""
        if self.profiler.agg.n_samples == 0:
            return None
        self.folded_path = self.profiler.agg.write_folded(path)
        return self.folded_path

    # -- exports ------------------------------------------------------------
    def publish(self, metrics, top_n: int = 5) -> None:
        self.profiler.agg.publish(metrics, top_n=top_n)
        self.budgeter.publish(metrics)

    def record(self, top_n: int = 20) -> Dict[str, Any]:
        """The ``profile`` JSONL trace record (sans ``type``)."""
        rec: Dict[str, Any] = {"runtime": self.runtime}
        if self.runtime == "sim":
            rec["stride"] = self.profiler.stride
        else:
            rec["period"] = self.profiler.period
        rec.update(self.profiler.agg.record(top_n=top_n))
        rec["self_seconds"] = round(self.profiler.self_time_s, 6)
        if hasattr(self.profiler, "estimated_cost_s"):
            per = self.profiler.gil_cost_per_sample
            if per is not None:
                rec["gil_per_sample_s"] = round(per, 9)
            rec["gil_seconds"] = round(self.profiler.gil_cost_s, 6)
            rec["estimated_seconds"] = round(
                self.profiler.estimated_cost_s, 6
            )
        rec["budget"] = self.budgeter.record()
        if self.monitor is not None:
            rec["slo"] = self.monitor.record()
        if self.folded_path:
            rec["folded_path"] = self.folded_path
        return rec

    def summary(self) -> Dict[str, Any]:
        """Small console/healthz summary."""
        agg = self.profiler.agg
        out = {
            "runtime": self.runtime,
            "samples": agg.n_samples,
            "unique_stacks": agg.unique_stacks,
            "overhead_ratio": round(self.budgeter.overhead_cumulative, 5),
            "budget": self.budgeter.budget,
            "retunes": self.budgeter.n_backoffs + self.budgeter.n_recovers,
        }
        if self.monitor is not None:
            out["slo_alerts"] = len(self.monitor.alerts)
        return out

    @property
    def alerts(self):
        return self.monitor.alerts if self.monitor is not None else []


def _wire_budgeter(
    budgeter: OverheadBudgeter, profiler, sampler, monitor
) -> None:
    # The wall profiler models the GIL-handoff tax each timer wakeup
    # inflicts on application threads; the budgeter must meter that
    # estimated total, not just the measured in-sampler time.  The sim
    # profiler has no such hidden cost and exposes only self_time_s.
    if hasattr(profiler, "estimated_cost_s"):
        budgeter.add_source("profiler", lambda: profiler.estimated_cost_s)
    else:
        budgeter.add_source("profiler", lambda: profiler.self_time_s)
    if sampler is not None:
        if monitor is not None:
            # The monitor probe runs inside sampler.sample(), so its
            # flight-recorder dump writes land in sample_cost_s; back
            # them out — the dump is the alert's deliverable, not
            # observation overhead.
            budgeter.add_source(
                "health_sampler",
                lambda: sampler.sample_cost_s - monitor.dump_cost_s,
            )
        else:
            budgeter.add_source(
                "health_sampler", lambda: sampler.sample_cost_s
            )
    # Evaluate from the profiler's own sample callback so the budgeter
    # runs even without a sampler (rate-limited by min_interval).
    profiler.on_sample = lambda _p: budgeter.maybe_evaluate()


def _wire_sampler_probes(
    sampler, budgeter, monitor, recorder
) -> None:
    """Order matters: signal probes already registered, then budgeter
    series, then SLO evaluation over this tick's fresh points, then the
    cooldown-gauge refresh."""
    sampler.add_probe(budgeter.as_probe())
    if monitor is not None:
        sampler.add_probe(monitor.as_probe())
        # Second-stage knob: the monitor's full-window rescans dominate
        # its cost, so the budgeter may thin the evaluation cadence
        # once the profiler stride is exhausted.
        budgeter.add_actuator(Actuator(
            "slo_stride",
            monitor.get_rate_setting,
            monitor.set_rate_setting,
            lo=1.0,
            hi=32.0,
        ))
    if recorder is not None:
        sampler.add_probe(lambda s: recorder.refresh_cooldowns(s.now))


def profile_sim(
    env,
    tel=None,
    sampler=None,
    recorder=None,
    budget: float = DEFAULT_BUDGET,
    stride: int = DEFAULT_STRIDE,
    slos: Tuple[SLO, ...] = DEFAULT_SLOS,
    slo_kwargs: Optional[Dict[str, Any]] = None,
) -> ProfileSession:
    """Attach the profiling bundle to a simulation environment.

    The profiler hook observes only and the budgeter never actuates the
    sim sampler's period (that would change the simulated trajectory
    mid-run) — with ``--profile`` the event trajectory is identical to
    the same run without it.
    """
    profiler = SimEventProfiler(env, stride=stride)
    profiler.attach()
    budgeter = OverheadBudgeter(budget=budget)
    # lo = the configured stride: recovery restores the requested
    # resolution after backoffs but never samples more finely than asked.
    budgeter.add_actuator(Actuator(
        "sim_stride",
        profiler.get_rate_setting,
        profiler.set_rate_setting,
        lo=float(stride),
        hi=max(float(stride), SIM_STRIDE_RANGE[1]),
    ))
    monitor = None
    if sampler is not None:
        monitor = BurnRateMonitor(
            sampler, slos=slos, tel=tel, recorder=recorder,
            **(slo_kwargs or {}),
        )
    _wire_budgeter(budgeter, profiler, sampler, monitor)
    if monitor is not None:
        _wire_sampler_probes(sampler, budgeter, monitor, recorder)
    return ProfileSession(
        runtime="sim", profiler=profiler, budgeter=budgeter,
        monitor=monitor, sampler=sampler,
    )


def profile_wall(
    tel=None,
    sampler=None,
    recorder=None,
    budget: float = DEFAULT_BUDGET,
    period: float = DEFAULT_PERIOD,
    slos: Tuple[SLO, ...] = DEFAULT_SLOS,
    slo_kwargs: Optional[Dict[str, Any]] = None,
    start: bool = True,
    gil_model: bool = True,
) -> ProfileSession:
    """Attach the profiling bundle to the live (wall-clock) runtime.

    With *gil_model* (default), the profiler calibrates its per-wakeup
    GIL-handoff cost on start and the budgeter meters the estimated
    total cost; ``gil_model=False`` zeroes the model (budgeter sees
    measured self-time only, the pre-model behaviour).
    """
    profiler = WallStackProfiler(
        period=period,
        gil_cost_per_sample=None if gil_model else 0.0,
    )
    budgeter = OverheadBudgeter(budget=budget)
    budgeter.add_actuator(Actuator(
        "wall_period",
        profiler.get_rate_setting,
        profiler.set_rate_setting,
        lo=float(period),
        hi=max(float(period), WALL_PERIOD_RANGE[1]),
    ))
    monitor = None
    if sampler is not None:
        monitor = BurnRateMonitor(
            sampler, slos=slos, tel=tel, recorder=recorder,
            **(slo_kwargs or {}),
        )
    _wire_budgeter(budgeter, profiler, sampler, monitor)
    if monitor is not None:
        _wire_sampler_probes(sampler, budgeter, monitor, recorder)
    if start:
        profiler.start()
    return ProfileSession(
        runtime="wall", profiler=profiler, budgeter=budgeter,
        monitor=monitor, sampler=sampler,
    )

"""The overhead budgeter: keep observability under a fixed cost budget.

Observability must pay for itself.  Every self-measuring component
(profilers, the health sampler) exposes a cumulative self-cost counter
in wall seconds; the budgeter differences those counters over wall time
windows to get the *overhead ratio* — the fraction of real time the
process spends observing itself — and steers it toward a configurable
budget (default 2%) by retuning sampling-rate knobs:

* over budget  -> every actuator backs off (knob × ``backoff``),
* under half the budget -> actuators recover (knob ÷ ``recover``),
  so a quiet system drifts back to full sampling resolution.

Knobs are uniform: *larger setting = cheaper* (a stride of events, a
period in seconds).  Each actuation decision is appended to a bounded
history and — when a :class:`HealthSampler` is attached — recorded as a
series (``repro_prof_overhead_ratio``, ``repro_prof_budget_action``,
``repro_prof_sample_setting{actuator=...}``), so the controller's own
behaviour is auditable after the run.
"""

from __future__ import annotations

from collections import deque
from time import perf_counter
from typing import Any, Callable, Deque, Dict, List, Optional

#: Default observability overhead budget: 2% of wall time.
DEFAULT_BUDGET = 0.02

#: Numeric encoding of actions for the decision series.
ACTION_CODES = {"backoff": -1.0, "hold": 0.0, "recover": 1.0}


class Actuator:
    """One retunable sampling knob; larger settings are cheaper."""

    def __init__(
        self,
        name: str,
        getter: Callable[[], float],
        setter: Callable[[float], None],
        lo: float,
        hi: float,
        backoff: float = 2.0,
        recover: float = 1.25,
    ) -> None:
        if lo <= 0 or hi < lo:
            raise ValueError(f"bad actuator range [{lo}, {hi}]")
        self.name = name
        self._get = getter
        self._set = setter
        self.lo = float(lo)
        self.hi = float(hi)
        self.backoff = float(backoff)
        self.recover = float(recover)

    def get(self) -> float:
        return self._get()

    def cheapen(self) -> bool:
        """Back the knob off; returns True if it moved."""
        cur = self._get()
        new = min(self.hi, cur * self.backoff)
        if new != cur:
            self._set(new)
            return True
        return False

    def enrich(self) -> bool:
        """Recover sampling resolution; returns True if it moved."""
        cur = self._get()
        new = max(self.lo, cur / self.recover)
        if new != cur:
            self._set(new)
            return True
        return False

    def __repr__(self) -> str:
        return f"<Actuator {self.name}={self.get()}>"


class OverheadBudgeter:
    """Windowed self-cost controller over registered cost sources."""

    def __init__(
        self,
        budget: float = DEFAULT_BUDGET,
        min_interval: float = 0.1,
        slack: float = 0.5,
        history: int = 256,
    ) -> None:
        if budget <= 0:
            raise ValueError(f"budget must be positive, got {budget}")
        self.budget = float(budget)
        #: Minimum wall seconds between evaluations.
        self.min_interval = float(min_interval)
        #: Recover only below ``budget * slack`` (hysteresis band).
        self.slack = float(slack)
        self._sources: List[tuple] = []  # (name, cumulative-seconds fn)
        self.actuators: List[Actuator] = []
        self._t0 = perf_counter()
        self._last_eval = self._t0
        self._last_cost = 0.0
        #: Latest windowed overhead ratio estimate.
        self.overhead_ratio = 0.0
        #: Whole-run overhead ratio (total cost / total wall).
        self.overhead_cumulative = 0.0
        self.n_evals = 0
        self.n_backoffs = 0
        self.n_recovers = 0
        self.last_action = "hold"
        self.decisions: Deque[Dict[str, Any]] = deque(maxlen=history)

    # -- wiring -------------------------------------------------------------
    def add_source(self, name: str, fn: Callable[[], float]) -> None:
        """Register a cumulative self-cost counter (wall seconds)."""
        self._sources.append((name, fn))

    def add_actuator(self, actuator: Actuator) -> None:
        self.actuators.append(actuator)

    def total_cost(self) -> float:
        return sum(fn() for _, fn in self._sources)

    # -- evaluation ---------------------------------------------------------
    def maybe_evaluate(self) -> Optional[Dict[str, Any]]:
        """Evaluate if at least ``min_interval`` wall seconds elapsed."""
        if perf_counter() - self._last_eval < self.min_interval:
            return None
        return self.evaluate()

    def evaluate(self) -> Optional[Dict[str, Any]]:
        """Measure the current window and actuate; returns the decision."""
        now = perf_counter()
        elapsed = now - self._last_eval
        if elapsed <= 0.0:
            return None
        cost = self.total_cost()
        window_cost = max(0.0, cost - self._last_cost)
        ratio = window_cost / elapsed
        self._last_eval = now
        self._last_cost = cost
        self.overhead_ratio = ratio
        total_elapsed = now - self._t0
        if total_elapsed > 0:
            self.overhead_cumulative = cost / total_elapsed
        self.n_evals += 1

        # Staged escalation: a mild overshoot moves one knob per
        # evaluation (registration order: cheapest-to-lose resolution
        # first); a severe one (>2x budget) backs everything off at
        # once so short runs still converge.  Recovery is always one
        # knob, in reverse order (last sacrificed, first restored).
        action = "hold"
        if ratio > self.budget:
            severe = ratio > 2.0 * self.budget
            moved = False
            for a in self.actuators:
                if a.cheapen():
                    moved = True
                    if not severe:
                        break
            if moved:
                action = "backoff"
                self.n_backoffs += 1
        elif ratio < self.budget * self.slack:
            for a in reversed(self.actuators):
                if a.enrich():
                    action = "recover"
                    self.n_recovers += 1
                    break
        self.last_action = action

        decision = {
            "t_wall": round(total_elapsed, 6),
            "overhead": round(ratio, 6),
            "action": action,
            "settings": {
                a.name: round(a.get(), 6) for a in self.actuators
            },
        }
        self.decisions.append(decision)
        return decision

    # -- exports ------------------------------------------------------------
    def as_probe(self) -> Callable[[Any], None]:
        """A HealthSampler probe recording the controller as series."""

        def probe(s) -> None:
            self.maybe_evaluate()
            s.observe("repro_prof_overhead_ratio", self.overhead_ratio)
            s.observe(
                "repro_prof_budget_action",
                ACTION_CODES.get(self.last_action, 0.0),
            )
            for a in self.actuators:
                s.observe(
                    "repro_prof_sample_setting", a.get(), actuator=a.name
                )

        return probe

    def publish(self, metrics) -> None:
        """Export the controller state as metrics gauges/counters."""
        metrics.gauge(
            "repro_prof_overhead_ratio",
            help="Windowed observability self-cost / wall time.",
        ).set(round(self.overhead_ratio, 6))
        metrics.gauge(
            "repro_prof_overhead_cumulative",
            help="Whole-run observability self-cost / wall time.",
        ).set(round(self.overhead_cumulative, 6))
        metrics.gauge(
            "repro_prof_budget_target",
            help="Configured observability overhead budget.",
        ).set(self.budget)
        for a in self.actuators:
            metrics.gauge(
                "repro_prof_sample_setting",
                help="Current sampling-rate knob (larger = cheaper).",
                actuator=a.name,
            ).set(round(a.get(), 6))

    def record(self, last_n: int = 32) -> Dict[str, Any]:
        """JSON-ready summary (embedded in the ``profile`` record)."""
        decisions = list(self.decisions)
        return {
            "target": self.budget,
            "overhead_ratio": round(self.overhead_ratio, 6),
            "overhead_cumulative": round(self.overhead_cumulative, 6),
            "evals": self.n_evals,
            "backoffs": self.n_backoffs,
            "recovers": self.n_recovers,
            "settings": {
                a.name: round(a.get(), 6) for a in self.actuators
            },
            "decisions": decisions[-last_n:],
        }

    def __repr__(self) -> str:
        return (
            f"<OverheadBudgeter budget={self.budget} "
            f"overhead={self.overhead_cumulative:.4f} "
            f"evals={self.n_evals}>"
        )

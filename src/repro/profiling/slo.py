"""SLO definitions + multi-window burn-rate alerting over health series.

The SRE burn-rate idiom adapted to sampled series: an SLO says "at
least ``objective`` of samples must be good", where a sample is *bad*
when its value crosses ``threshold``.  The monitor evaluates each SLO
over two trailing windows of HealthSampler samples:

* a **fast** window (minutes-scale, scaled to sim seconds) catching
  sharp regressions with a high burn threshold, and
* a **slow** window (hours-scale equivalent) catching slow bleeds with
  a low threshold,

where ``burn = bad_fraction / (1 - objective)`` — burn 1 means exactly
spending the error budget, burn 10 means burning it 10x too fast.
Families with multiple label sets (per-QoS miss ratios, per-domain
imbalance) alert on their *worst* ring.

Alerts are edge-triggered: one ``slo.burn`` trace event +
``repro_slo_alerts_total`` increment per excursion (cleared with 20%
hysteresis), and a flight-recorder dump via reasons ``slo_burn_fast`` /
``slo_burn_slow`` (the recorder's per-reason cooldown coalesces
sustained burns).  ``repro_slo_burn_rate{slo=...,window=...}`` is
re-exported continuously as both a gauge and a sampled series.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Default windows, in clock seconds (sim or wall, per driver).
DEFAULT_FAST_WINDOW = 60.0
DEFAULT_SLOW_WINDOW = 600.0
#: Default burn-rate alert thresholds per window.
DEFAULT_FAST_BURN = 10.0
DEFAULT_SLOW_BURN = 2.0


@dataclass(frozen=True)
class SLO:
    """One objective over a sampled series family."""

    name: str
    series: str
    threshold: float
    objective: float = 0.99
    comparison: str = ">"
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"objective must be in (0, 1), got {self.objective}"
            )
        if self.comparison not in (">", "<"):
            raise ValueError(
                f"comparison must be '>' or '<', got {self.comparison!r}"
            )

    def violated(self, value: float) -> bool:
        if self.comparison == ">":
            return value > self.threshold
        return value < self.threshold

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective


#: The stock objectives over the standard HealthSampler families.
DEFAULT_SLOS: Tuple[SLO, ...] = (
    SLO(
        "miss_rate", "repro_sched_miss_ratio", 0.10, objective=0.99,
        description="Deadline-miss ratio stays under 10% per QoS class.",
    ),
    SLO(
        "redirect_rate", "repro_rm_redirect_rate", 2.0, objective=0.95,
        description="RM redirect rate stays under 2/s.",
    ),
    SLO(
        "imbalance", "repro_load_imbalance", 3.0, objective=0.95,
        description="Cluster max/mean load imbalance stays under 3x.",
    ),
)


@dataclass
class BurnAlert:
    """One fired burn-rate alert (edge-triggered)."""

    time: float
    slo: str
    window: str
    burn: float
    bad_fraction: float
    samples: int
    dump: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "time": round(self.time, 6),
            "slo": self.slo,
            "window": self.window,
            "burn": round(self.burn, 3),
            "bad_fraction": round(self.bad_fraction, 4),
            "samples": self.samples,
            "dump": self.dump,
        }


class BurnRateMonitor:
    """Evaluates SLO burn rates on every HealthSampler tick."""

    def __init__(
        self,
        sampler,
        slos: Tuple[SLO, ...] = DEFAULT_SLOS,
        tel=None,
        recorder=None,
        fast_window: float = DEFAULT_FAST_WINDOW,
        slow_window: float = DEFAULT_SLOW_WINDOW,
        fast_burn: float = DEFAULT_FAST_BURN,
        slow_burn: float = DEFAULT_SLOW_BURN,
        min_samples: int = 5,
        hysteresis: float = 0.8,
        warmup: float = 0.5,
    ) -> None:
        self.sampler = sampler
        self.slos = tuple(slos)
        self.tel = tel
        self.recorder = recorder
        self.windows = (
            ("fast", float(fast_window), float(fast_burn)),
            ("slow", float(slow_window), float(slow_burn)),
        )
        self.min_samples = int(min_samples)
        self.hysteresis = float(hysteresis)
        #: A window may alert only once the monitor has watched at
        #: least ``warmup * window`` seconds — a nearly-empty slow
        #: window would otherwise scream on the first bad sample.
        self.warmup = float(warmup)
        #: Evaluate every Nth sampler tick (the budgeter's SLO knob:
        #: full-window rescans are the monitor's dominant cost).
        self.eval_stride = 1
        #: Cumulative wall seconds spent evaluating (self-cost).
        self.self_time_s = 0.0
        #: Wall seconds spent writing flight-recorder dumps.  Excluded
        #: from self-cost: the dump is the alert's deliverable, and
        #: budgeting it would punish sampling for firing alerts.
        self.dump_cost_s = 0.0
        self._tick = 0
        self._t_first: Optional[float] = None
        #: All alerts fired, in order.
        self.alerts: List[BurnAlert] = []
        self._active: Dict[Tuple[str, str], bool] = {}
        self._gauges: Dict[Tuple[str, str], Any] = {}

    # -- evaluation ---------------------------------------------------------
    def as_probe(self) -> Callable[[Any], None]:
        """Register the returned probe *after* the signal probes, so
        each tick evaluates the series points just recorded."""

        def probe(s) -> None:
            t0 = perf_counter()
            d0 = self.dump_cost_s
            self._tick += 1
            if self._tick % max(1, self.eval_stride) == 0:
                self.evaluate(s.now)
            self.self_time_s += (
                perf_counter() - t0 - (self.dump_cost_s - d0)
            )

        return probe

    # -- budgeter knob ------------------------------------------------------
    def get_rate_setting(self) -> float:
        return float(self.eval_stride)

    def set_rate_setting(self, stride: float) -> None:
        self.eval_stride = max(1, int(round(stride)))

    def evaluate(self, now: float) -> List[BurnAlert]:
        """One evaluation pass; returns alerts fired at this tick."""
        if self._t_first is None:
            self._t_first = now
        watched = now - self._t_first
        fired: List[BurnAlert] = []
        for slo in self.slos:
            rings = self.sampler.series_family(slo.series)
            if not rings:
                continue
            for wname, wlen, wburn in self.windows:
                if watched < self.warmup * wlen:
                    # Still warming up: don't even pay for the scan (a
                    # nearly-empty window couldn't alert anyway).
                    continue
                frac, n = self._worst_bad_fraction(rings, now - wlen, slo)
                burn = frac / slo.error_budget
                self._export_burn(slo, wname, burn)
                alert = self._edge(
                    slo, wname, wburn, burn, frac, n, now
                )
                if alert is not None:
                    fired.append(alert)
        return fired

    @staticmethod
    def _worst_bad_fraction(
        rings, t_min: float, slo: SLO
    ) -> Tuple[float, int]:
        """Max bad-sample fraction across the family's rings.

        Rolled-up points weigh in with their merged counts; a merged
        point is bad if its *worst* side (max for ">" SLOs, min for
        "<") violates, so downsampling cannot hide an excursion.
        """
        worst_frac = 0.0
        worst_n = 0
        for ring in rings:
            total = bad = 0
            for _t, _v, mn, mx, cnt in ring.points_since(t_min):
                total += cnt
                probe_v = mx if slo.comparison == ">" else mn
                if slo.violated(probe_v):
                    bad += cnt
            if not total:
                continue
            frac = bad / total
            if frac > worst_frac or (frac == worst_frac and total > worst_n):
                worst_frac = frac
                worst_n = total
        return worst_frac, worst_n

    def _export_burn(self, slo: SLO, wname: str, burn: float) -> None:
        self.sampler.observe(
            "repro_slo_burn_rate", burn, slo=slo.name, window=wname
        )
        if self.tel is not None:
            key = (slo.name, wname)
            gauge = self._gauges.get(key)
            if gauge is None:
                gauge = self._gauges[key] = self.tel.metrics.gauge(
                    "repro_slo_burn_rate",
                    help="Error-budget burn rate over the trailing window.",
                    slo=slo.name, window=wname,
                )
            gauge.set(round(burn, 4))

    def _edge(
        self,
        slo: SLO,
        wname: str,
        wburn: float,
        burn: float,
        frac: float,
        n: int,
        now: float,
    ) -> Optional[BurnAlert]:
        key = (slo.name, wname)
        active = self._active.get(key, False)
        if not active and burn > wburn and n >= self.min_samples:
            self._active[key] = True
            return self._fire(slo, wname, burn, frac, n, now)
        if active and burn < wburn * self.hysteresis:
            self._active[key] = False
            self._set_active_gauge(slo, wname, 0.0)
        return None

    def _fire(
        self, slo: SLO, wname: str, burn: float,
        frac: float, n: int, now: float,
    ) -> BurnAlert:
        alert = BurnAlert(
            time=now, slo=slo.name, window=wname,
            burn=burn, bad_fraction=frac, samples=n,
        )
        if self.tel is not None:
            self.tel.metrics.counter(
                "repro_slo_alerts_total",
                help="Burn-rate alerts fired (edge-triggered).",
                slo=slo.name, window=wname,
            ).inc()
            self._set_active_gauge(slo, wname, 1.0)
            self.tel.tracer.event(
                "slo.burn",
                slo=slo.name,
                window=wname,
                burn=round(burn, 3),
                bad_fraction=round(frac, 4),
                threshold=slo.threshold,
                objective=slo.objective,
            )
        if self.recorder is not None:
            t0 = perf_counter()
            alert.dump = self.recorder.trigger(
                f"slo_burn_{wname}", now,
                key=f"slo_burn_{wname}:{slo.name}",
            )
            self.dump_cost_s += perf_counter() - t0
        self.alerts.append(alert)
        return alert

    def _set_active_gauge(self, slo: SLO, wname: str, v: float) -> None:
        if self.tel is not None:
            self.tel.metrics.gauge(
                "repro_slo_alert_active",
                help="1 while this SLO window is burning.",
                slo=slo.name, window=wname,
            ).set(v)

    # -- exports ------------------------------------------------------------
    def record(self) -> Dict[str, Any]:
        """JSON-ready summary (embedded in the ``profile`` record)."""
        return {
            "slos": [
                {
                    "name": slo.name,
                    "series": slo.series,
                    "threshold": slo.threshold,
                    "objective": slo.objective,
                    "comparison": slo.comparison,
                }
                for slo in self.slos
            ],
            "windows": [
                {"name": w, "seconds": s, "burn_threshold": b}
                for w, s, b in self.windows
            ],
            "alerts": [a.as_dict() for a in self.alerts],
        }

    def __repr__(self) -> str:
        return (
            f"<BurnRateMonitor slos={len(self.slos)} "
            f"alerts={len(self.alerts)}>"
        )

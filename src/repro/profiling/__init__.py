"""Self-observation: in-process profiling, overhead budgeting, SLOs.

The telemetry stack (:mod:`repro.telemetry`) observes the *protocol*;
this package observes the *system running it*:

* :mod:`repro.profiling.stacks` — bounded folded-stack aggregation and
  flamegraph export,
* :mod:`repro.profiling.sampler` — the two sampling drivers
  (timer-thread ``sys._current_frames`` for the live runtime,
  event-count dispatch sampling for the simulator),
* :mod:`repro.profiling.budget` — the adaptive overhead budgeter
  keeping total observability self-cost under a configured fraction of
  wall time (default 2%),
* :mod:`repro.profiling.slo` — SLO definitions + multi-window
  burn-rate alerting over HealthSampler series, dumped to the flight
  recorder,
* :mod:`repro.profiling.attach` — one-call wiring per runtime
  (:func:`profile_sim` / :func:`profile_wall`),
* :mod:`repro.profiling.folded` — ``.folded`` profile I/O, cross-shard
  merge, and share-normalized run-to-run diffing.

Everything is stdlib-only and strictly opt-in: nothing here is
imported or scheduled on the default path, so trajectory goldens and
the zero-overhead guarantee of disabled telemetry hold.
"""

from repro.profiling.attach import (
    ProfileSession,
    profile_sim,
    profile_wall,
)
from repro.profiling.budget import (
    DEFAULT_BUDGET,
    Actuator,
    OverheadBudgeter,
)
from repro.profiling.folded import (
    diff_folded,
    format_diff,
    merge_folded,
    parse_folded,
    read_folded,
    write_folded,
)
from repro.profiling.sampler import (
    DEFAULT_GIL_HANDOFF_S,
    SimEventProfiler,
    WallStackProfiler,
    estimate_gil_handoff_cost,
)
from repro.profiling.slo import (
    DEFAULT_SLOS,
    SLO,
    BurnAlert,
    BurnRateMonitor,
)
from repro.profiling.stacks import StackAggregator, fold_frames

__all__ = [
    "Actuator",
    "BurnAlert",
    "BurnRateMonitor",
    "DEFAULT_BUDGET",
    "DEFAULT_GIL_HANDOFF_S",
    "DEFAULT_SLOS",
    "OverheadBudgeter",
    "ProfileSession",
    "SLO",
    "SimEventProfiler",
    "StackAggregator",
    "WallStackProfiler",
    "diff_folded",
    "estimate_gil_handoff_cost",
    "fold_frames",
    "format_diff",
    "merge_folded",
    "parse_folded",
    "profile_sim",
    "profile_wall",
    "read_folded",
    "write_folded",
]

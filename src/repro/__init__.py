"""repro — Adaptive Resource Management in Peer-to-Peer Middleware.

A from-scratch Python reproduction of Repantis, Drougas & Kalogeraki,
*Adaptive Resource Management in Peer-to-Peer Middleware* (IPPS 2005):
a decentralized resource-management architecture for soft real-time
media streaming/transcoding over a peer-to-peer overlay.

Quick start
-----------
>>> from repro.workloads import ScenarioConfig, build_scenario
>>> scenario = build_scenario(ScenarioConfig(seed=1))
>>> summary = scenario.run(duration=120.0)
>>> 0.0 <= summary.goodput <= 1.0
True

Package map
-----------
``repro.sim``         discrete-event simulation kernel
``repro.net``         overlay network substrate (latency, RPC, failures)
``repro.tasks``       application tasks and QoS requirement sets
``repro.media``       media formats, objects, transcoding cost model
``repro.graphs``      resource graph G_r / service graph G_s / search
``repro.scheduling``  local schedulers (LLS, EDF, FIFO, ...) + processor
``repro.monitoring``  the per-peer Profiler
``repro.summaries``   Bloom-filter domain summaries
``repro.gossip``      inter-domain gossip of summaries
``repro.overlay``     domains, join protocol, churn, RM failover
``repro.core``        the paper's contribution: RM, allocation, fairness
``repro.core.control`` the RM control plane: admission, placement,
                      task registry, repair
``repro.baselines``   comparison allocation policies
``repro.workloads``   populations, arrivals, one-call scenarios
``repro.results``     run summaries and time series (né ``repro.metrics``)
``repro.telemetry``   tracing + runtime metrics registry
``repro.experiments`` the reproduced evaluation (F1-F3, E1-E10)
"""

from repro.core.allocation import AllocationResult, Allocator
from repro.core.fairness import jain_fairness
from repro.core.manager import ResourceManager, RMConfig
from repro.core.peer import Peer, PeerConfig
from repro.sim.core import Environment
from repro.tasks.qos import QoSRequirements
from repro.tasks.task import ApplicationTask
from repro.workloads.scenario import (
    Scenario,
    ScenarioConfig,
    build_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "AllocationResult",
    "Allocator",
    "ApplicationTask",
    "Environment",
    "Peer",
    "PeerConfig",
    "QoSRequirements",
    "RMConfig",
    "ResourceManager",
    "Scenario",
    "ScenarioConfig",
    "build_scenario",
    "jain_fairness",
    "__version__",
]

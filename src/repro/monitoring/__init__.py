"""Peer-side monitoring (the paper's Profiler component, §2 / §3.2).

The Profiler measures the peer's current processor load and network
bandwidth and monitors the computation and communication times of the
applications as they execute; its measurements are periodically
propagated to the domain Resource Manager (§4.4, intra-domain
propagation).
"""

from repro.monitoring.profiler import LoadReport, Profiler, ServiceObservation

__all__ = ["LoadReport", "Profiler", "ServiceObservation"]

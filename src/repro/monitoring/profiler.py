"""The Profiler: load measurement and periodic propagation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Optional

from repro import telemetry
from repro.common.util import EWMA
from repro.scheduling.processor import Processor
from repro.sim.core import Environment
from repro.sim.events import Event, Interrupt, Timeout


@dataclass
class ServiceObservation:
    """Running statistics of one service's measured execution times."""

    service_id: str
    count: int = 0
    total_time: float = 0.0
    total_work: float = 0.0

    @property
    def mean_time(self) -> float:
        return self.total_time / self.count if self.count else 0.0

    @property
    def mean_rate(self) -> float:
        """Observed work units per second while executing this service."""
        return self.total_work / self.total_time if self.total_time else 0.0

    def observe(self, exec_time: float, work: float) -> None:
        if exec_time < 0 or work < 0:
            raise ValueError("negative observation")
        self.count += 1
        self.total_time += exec_time
        self.total_work += work


@dataclass(slots=True)
class LoadReport:
    """One intra-domain load update (Profiler -> Resource Manager).

    ``load`` follows the paper's definition (§3.1 item 3): processing
    power × current utilization, i.e. the absolute work rate the peer is
    currently expending.
    """

    peer_id: str
    time: float
    power: float
    utilization: float
    load: float
    bw_used: float
    queue_work: float
    queue_length: int
    services: Dict[str, float] = field(default_factory=dict)
    #: Current count of service dependencies (§3.2 item 5), filled in by
    #: the owning peer just before the report goes on the wire.
    dependencies: int = 0

    def as_payload(self) -> Dict[str, Any]:
        """Serialize for a network message payload."""
        return {
            "peer_id": self.peer_id,
            "time": self.time,
            "power": self.power,
            "utilization": self.utilization,
            "load": self.load,
            "bw_used": self.bw_used,
            "queue_work": self.queue_work,
            "queue_length": self.queue_length,
            "services": dict(self.services),
            "dependencies": self.dependencies,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "LoadReport":
        return cls(**payload)


class Profiler:
    """Samples local load and periodically reports it.

    Parameters
    ----------
    env, processor:
        The peer's environment and CPU.
    report_fn:
        Called with a :class:`LoadReport` every *update_period*; the
        peer wires this to a ``load_update`` message to its RM.  The
        update period is a key experimental knob (E7): too-frequent
        updates cost messages, too-infrequent ones leave the RM with a
        stale view.
    sample_period:
        Utilization sampling interval (EWMA-smoothed).
    alpha:
        EWMA weight for utilization smoothing.
    """

    def __init__(
        self,
        env: Environment,
        processor: Processor,
        report_fn: Optional[Callable[[LoadReport], None]] = None,
        update_period: float = 2.0,
        sample_period: float = 0.5,
        alpha: float = 0.4,
        adaptive: bool = False,
        adaptive_busy_factor: float = 0.5,
        adaptive_idle_factor: float = 2.0,
    ) -> None:
        if update_period <= 0 or sample_period <= 0:
            raise ValueError("periods must be positive")
        if adaptive_busy_factor <= 0 or adaptive_idle_factor <= 0:
            raise ValueError("adaptive factors must be positive")
        self.env = env
        self.processor = processor
        self.report_fn = report_fn
        self.update_period = update_period
        self.sample_period = sample_period
        #: §4.4: "The application QoS requirements determine the
        #: appropriate update frequency."  With ``adaptive=True`` a peer
        #: executing deadline-bearing jobs reports faster
        #: (``update_period x busy_factor``) and an idle peer slower
        #: (``x idle_factor``) — load information is fresh exactly where
        #: QoS decisions depend on it.
        self.adaptive = adaptive
        self.adaptive_busy_factor = adaptive_busy_factor
        self.adaptive_idle_factor = adaptive_idle_factor
        self._util = EWMA(alpha)
        self._last_sample_t = env.now
        self._last_busy = processor.busy_time_now()
        self._bytes_out = 0.0
        self._last_bytes = 0.0
        self._bw_rate = EWMA(alpha)
        self.observations: Dict[str, ServiceObservation] = {}
        # The per-report {service: mean_time} dict is rebuilt only when
        # an observation landed since the last report; reports between
        # observations share the snapshot (nobody mutates it — every
        # serialization path copies).
        self._services_snapshot: Dict[str, float] = {}
        self._services_dirty = False
        self.reports_sent = 0
        self._sampler = env.process(
            self._sample_loop(), name=f"profiler-sample:{processor.peer_id}"
        )
        self._reporter = env.process(
            self._report_loop(), name=f"profiler-report:{processor.peer_id}"
        )

    # -- measurement -----------------------------------------------------------
    @property
    def utilization(self) -> float:
        """Smoothed utilization in [0, 1]."""
        return self._util.get(0.0)

    @property
    def load(self) -> float:
        """The paper's l_i: power × utilization."""
        return self.processor.power * self.utilization

    @property
    def bw_used(self) -> float:
        """Smoothed outgoing bandwidth (bytes/s)."""
        return self._bw_rate.get(0.0)

    def note_bytes_out(self, n: float) -> None:
        """Account bytes the peer sent (wired from the peer's send path)."""
        self._bytes_out += n

    def observe_service(
        self, service_id: str, exec_time: float, work: float
    ) -> None:
        """Record a measured service execution (computation time, §3.2)."""
        obs = self.observations.get(service_id)
        if obs is None:
            obs = self.observations[service_id] = ServiceObservation(service_id)
        obs.observe(exec_time, work)
        self._services_dirty = True

    def current_report(self) -> LoadReport:
        """Snapshot the current measurements."""
        if self._services_dirty:
            self._services_snapshot = {
                sid: obs.mean_time
                for sid, obs in self.observations.items()
            }
            self._services_dirty = False
        return LoadReport(
            peer_id=self.processor.peer_id,
            time=self.env.now,
            power=self.processor.power,
            utilization=self.utilization,
            load=self.load,
            bw_used=self.bw_used,
            queue_work=self.processor.queue_work(),
            queue_length=self.processor.queue_length,
            services=self._services_snapshot,
        )

    # -- processes ---------------------------------------------------------------
    def _sample_loop(self) -> Generator[Event, None, None]:
        # Collaborators are bound once: one of these loops ticks per
        # peer for the whole run, and the period/processor/EWMA objects
        # never change after construction.
        env = self.env
        period = self.sample_period
        busy_now = self.processor.busy_time_now
        util_update = self._util.update
        bw_update = self._bw_rate.update
        last_t = self._last_sample_t
        last_busy = self._last_busy
        last_bytes = self._last_bytes
        try:
            while True:
                yield Timeout(env, period)
                busy = busy_now()
                now = env._now
                span = now - last_t
                bytes_out = self._bytes_out
                if span > 0:
                    u = (busy - last_busy) / span
                    util_update(u if u < 1.0 else 1.0)
                    bw_update((bytes_out - last_bytes) / span)
                last_t = now
                last_busy = busy
                last_bytes = bytes_out
        except Interrupt:
            return
        finally:
            # Mirror the locals back so external introspection (and a
            # hypothetical restarted loop) sees the latest sample state.
            self._last_sample_t = last_t
            self._last_busy = last_busy
            self._last_bytes = last_bytes

    def current_period(self) -> float:
        """The in-force update period (QoS-adaptive when enabled)."""
        if not self.adaptive:
            return self.update_period
        if self.processor.queue_length > 0:
            return self.update_period * self.adaptive_busy_factor
        return self.update_period * self.adaptive_idle_factor

    def _report_loop(self) -> Generator[Event, None, None]:
        try:
            while True:
                yield self.env.timeout(self.current_period())
                if self.report_fn is not None:
                    report = self.current_report()
                    self.report_fn(report)
                    self.reports_sent += 1
                    tel = telemetry.current()
                    if tel.enabled:
                        tel.tracer.event(
                            "profiler.update", node=report.peer_id,
                            utilization=report.utilization,
                            load=report.load,
                            queue_length=report.queue_length,
                        )
                        tel.metrics.gauge(
                            "repro_profiler_peer_utilization",
                            peer=report.peer_id,
                        ).set(report.utilization)
                        tel.metrics.counter(
                            "repro_profiler_reports_total"
                        ).inc()
        except Interrupt:
            return

    def stop(self) -> None:
        """Halt sampling and reporting (peer departure)."""
        for proc in (self._sampler, self._reporter):
            if proc.is_alive:
                proc.interrupt("stop")

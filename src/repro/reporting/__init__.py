"""Result presentation: ASCII charts and machine-readable export."""

from repro.reporting.ascii import histogram, sparkline
from repro.reporting.export import result_to_csv, result_to_json

__all__ = ["histogram", "result_to_csv", "result_to_json", "sparkline"]

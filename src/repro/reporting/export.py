"""Machine-readable export of experiment results."""

from __future__ import annotations

import csv
import io
import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.base import ExperimentResult


def result_to_csv(result: "ExperimentResult") -> str:
    """Render a result's table as CSV text."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(result.headers)
    for row in result.rows:
        writer.writerow(row)
    return buf.getvalue()


def result_to_json(result: "ExperimentResult", indent: int = 2) -> str:
    """Render a result (table + notes) as a JSON document."""
    doc = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "headers": result.headers,
        "rows": [
            [cell if not hasattr(cell, "item") else cell.item()
             for cell in row]
            for row in result.rows
        ],
        "notes": list(result.notes),
    }
    return json.dumps(doc, indent=indent, default=str)

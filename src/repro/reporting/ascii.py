"""Terminal-friendly mini charts for experiment output."""

from __future__ import annotations

from typing import Sequence

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int | None = None) -> str:
    """A one-line unicode chart of *values* (e.g. fairness over time).

    Values are min-max normalized; ``width`` (if given) downsamples by
    bucket-averaging so long series stay one terminal line.
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if width is not None and width > 0 and len(vals) > width:
        bucket = len(vals) / width
        vals = [
            sum(vals[int(i * bucket):max(int((i + 1) * bucket),
                                         int(i * bucket) + 1)])
            / max(int((i + 1) * bucket) - int(i * bucket), 1)
            for i in range(width)
        ]
    lo, hi = min(vals), max(vals)
    if hi - lo < 1e-12:
        return _BLOCKS[len(_BLOCKS) // 2] * len(vals)
    scale = (len(_BLOCKS) - 1) / (hi - lo)
    return "".join(_BLOCKS[int((v - lo) * scale)] for v in vals)


def histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 40,
) -> str:
    """A multi-line ASCII histogram (e.g. response-time distribution)."""
    vals = [float(v) for v in values]
    if not vals:
        return "(empty)"
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    lo, hi = min(vals), max(vals)
    if hi - lo < 1e-12:
        return f"{lo:10.3f} | {'#' * width} {len(vals)}"
    step = (hi - lo) / bins
    counts = [0] * bins
    for v in vals:
        idx = min(int((v - lo) / step), bins - 1)
        counts[idx] += 1
    peak = max(counts)
    lines = []
    for i, count in enumerate(counts):
        bar = "#" * int(round(count / peak * width)) if count else ""
        lines.append(f"{lo + i * step:10.3f} | {bar} {count}")
    return "\n".join(lines)

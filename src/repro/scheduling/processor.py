"""The processor model: a preemptive CPU executing jobs under a policy.

A processor with *power* ``P`` executes ``P`` work units per simulated
second.  It is work-conserving: whenever the ready set is non-empty the
policy's minimum-key job runs.  Preemption points are job arrival, job
completion, cancellation, and — for time-varying policies such as LLS —
the expiry of a re-evaluation *quantum*.

Accounting maintained for the Profiler:

* cumulative ``busy_time`` (integrates utilization),
* ``queue_work`` (remaining work across ready jobs),
* per-job completion records (response time, deadline met).
"""

from __future__ import annotations

import math
from typing import Any, Generator, List, Optional

from repro import telemetry
from repro.scheduling.job import Job
from repro.scheduling.policies import SchedulingPolicy
from repro.sim.core import Environment
from repro.sim.events import Event, Interrupt
from repro.sim.trace import Tracer

#: Remaining-work epsilon below which a job counts as complete.
_EPS = 1e-9


def qos_class(importance: float) -> str:
    """Bucket a job's importance weight into a QoS class label."""
    if importance >= 2.0:
        return "high"
    if importance >= 1.0:
        return "normal"
    return "low"


class Processor:
    """A single peer's CPU.

    Parameters
    ----------
    env:
        Simulation environment.
    peer_id:
        Owning peer (for traces).
    power:
        Work units per second (heterogeneous across peers).
    policy:
        Scheduling policy instance.
    quantum:
        Re-evaluation period for time-varying policies; ``None`` derives
        a default (only used when the policy declares
        ``time_varying=True``).
    """

    def __init__(
        self,
        env: Environment,
        peer_id: str,
        power: float,
        policy: SchedulingPolicy,
        quantum: Optional[float] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if power <= 0:
            raise ValueError(f"power must be positive, got {power}")
        if quantum is not None and quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        self.env = env
        self.peer_id = peer_id
        self.power = float(power)
        self.policy = policy
        self.quantum = quantum if quantum is not None else 0.1
        self.tracer = tracer

        self.ready: List[Job] = []
        self.running: Optional[Job] = None
        self._slice_started: Optional[float] = None
        self._wake: Optional[Event] = None
        self._stopped = False

        # accounting
        self.busy_time = 0.0
        self.n_completed = 0
        self.n_missed = 0
        self.n_cancelled = 0
        self.completed_jobs: List[Job] = []
        # Per-QoS-class tallies for the health sampler's miss-ratio
        # series.  Plain dict bumps: always on, trajectory-neutral.
        self.completed_by_class: dict = {}
        self.missed_by_class: dict = {}

        self._proc = env.process(self._run(), name=f"cpu:{peer_id}")

    # -- public API ------------------------------------------------------------
    def submit(self, job: Job) -> Event:
        """Queue *job*; returns an event fired when the job leaves the CPU.

        The event *succeeds with the job* both on completion and on
        cancellation — check ``job.cancelled`` (cancellation must not
        crash sessions that already gave up waiting, so it is a value,
        not an exception; :class:`JobCancelled` is available for callers
        who prefer to raise).
        """
        if self._stopped:
            raise RuntimeError(f"processor {self.peer_id} is stopped")
        job.done = Event(self.env)
        self.ready.append(job)
        if self.tracer is not None:
            self.tracer.record(
                self.env.now, "cpu.submit", peer=self.peer_id,
                job=job.job_id, task=job.task_id, work=job.work,
            )
        tel = telemetry.current()
        if tel.enabled:
            tel.metrics.gauge(
                "repro_sched_queue_depth", peer=self.peer_id
            ).set(self.queue_length)
        self._kick()
        return job.done

    def cancel(self, job: Job, reason: str = "") -> None:
        """Withdraw a queued or running job."""
        if job.cancelled or job.completed_at is not None:
            return
        job.cancelled = True
        self.n_cancelled += 1
        if job in self.ready:
            self.ready.remove(job)
            if job.done is not None and not job.done.triggered:
                job.done.succeed(job)
        elif job is self.running:
            # The run loop observes the flag at the next preemption point;
            # force one now.
            self._kick()

    def cancel_all(self, reason: str = "") -> None:
        """Cancel every queued and running job (peer going down)."""
        for job in list(self.ready):
            self.cancel(job, reason)
        if self.running is not None:
            self.cancel(self.running, reason)

    def stop(self) -> None:
        """Halt the processor permanently (peer departure)."""
        if self._stopped:
            return
        self._stopped = True
        running = self.running
        self.cancel_all("processor stopped")
        if self._proc.is_alive:
            self._proc.interrupt("stop")
        # The interrupt may beat the preemption wake-up, in which case the
        # run loop never observes the cancelled running job: resolve its
        # completion event here so no session waits forever.
        if (
            running is not None
            and running.done is not None
            and not running.done.triggered
        ):
            running.done.succeed(running)

    # -- load inspection ---------------------------------------------------------
    @property
    def queue_length(self) -> int:
        """Jobs waiting or running."""
        return len(self.ready) + (1 if self.running is not None else 0)

    def queue_work(self) -> float:
        """Remaining work across all queued and running jobs."""
        total = sum(j.remaining for j in self.ready)
        if self.running is not None:
            total += self._running_remaining()
        return total

    def busy_time_now(self) -> float:
        """Cumulative busy time including the in-progress slice."""
        extra = 0.0
        if self.running is not None and self._slice_started is not None:
            extra = self.env.now - self._slice_started
        return self.busy_time + extra

    def utilization(self, since: float, busy_at_since: float) -> float:
        """Mean utilization over a window given a previous busy snapshot."""
        span = self.env.now - since
        if span <= 0:
            return 1.0 if self.running is not None else 0.0
        return min(1.0, (self.busy_time_now() - busy_at_since) / span)

    def _running_remaining(self) -> float:
        job = self.running
        assert job is not None
        done = 0.0
        if self._slice_started is not None:
            done = (self.env.now - self._slice_started) * self.power
        return max(0.0, job.remaining - done)

    # -- internals ------------------------------------------------------------
    def _kick(self) -> None:
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    def _select(self) -> Job:
        now = self.env.now
        return min(
            self.ready, key=lambda j: self.policy.key(j, now, self.power)
        )

    def _run(self) -> Generator[Event, Any, None]:
        env = self.env
        # power/policy/quantum are set only in __init__ — hoist them
        # (and the derived flags) out of the dispatch loop.
        power = self.power
        ready = self.ready
        timeout_at = env.timeout
        preempt_allowed = self.policy.preemptive
        slice_capped = preempt_allowed and self.policy.time_varying
        quantum = self.quantum
        try:
            while True:
                if not ready:
                    self._wake = Event(env)
                    yield self._wake
                    self._wake = None
                    continue

                job = self._select()
                ready.remove(job)
                self.running = job
                if job.started_at is None:
                    job.started_at = env.now
                    tel = telemetry.current()
                    if tel.enabled and math.isfinite(job.abs_deadline):
                        # Slack the job still has when it first reaches the
                        # CPU — the quantity LLS schedules on.
                        tel.metrics.histogram(
                            "repro_sched_dispatch_laxity_seconds"
                        ).observe(job.laxity(env.now, power))
                else:
                    job.preemptions += 1

                slice_len = job.remaining / power
                if slice_capped and quantum < slice_len:
                    slice_len = quantum

                self._slice_started = env.now
                self._wake = Event(env) if preempt_allowed else None
                timeout = timeout_at(slice_len)
                if self._wake is not None:
                    yield timeout | self._wake
                else:
                    yield timeout
                elapsed = env.now - self._slice_started
                self._slice_started = None
                self._wake = None
                self.busy_time += elapsed
                job.remaining = max(0.0, job.remaining - elapsed * power)
                self.running = None

                if job.cancelled:
                    if job.done is not None and not job.done.triggered:
                        job.done.succeed(job)
                    continue
                if job.remaining <= _EPS * max(1.0, job.work):
                    job.remaining = 0.0
                    job.completed_at = env.now
                    self.n_completed += 1
                    cls = qos_class(job.importance)
                    self.completed_by_class[cls] = (
                        self.completed_by_class.get(cls, 0) + 1
                    )
                    if not job.met_deadline:
                        self.n_missed += 1
                        self.missed_by_class[cls] = (
                            self.missed_by_class.get(cls, 0) + 1
                        )
                    self.completed_jobs.append(job)
                    if self.tracer is not None:
                        self.tracer.record(
                            env.now, "cpu.complete", peer=self.peer_id,
                            job=job.job_id, task=job.task_id,
                            met=job.met_deadline,
                        )
                    tel = telemetry.current()
                    if tel.enabled:
                        tel.metrics.counter(
                            "repro_sched_jobs_completed_total", qos=cls
                        ).inc()
                        if not job.met_deadline:
                            tel.metrics.counter(
                                "repro_sched_jobs_missed_total", qos=cls
                            ).inc()
                            # Flight-recorder trigger: miss bursts.
                            tel.tracer.event(
                                "job.missed", node=self.peer_id,
                                task=job.task_id, qos=cls,
                            )
                        tel.metrics.gauge(
                            "repro_sched_queue_depth", peer=self.peer_id
                        ).set(self.queue_length)
                    if job.done is not None:
                        job.done.succeed(job)
                else:
                    # Preempted (arrival or quantum expiry): back to ready.
                    self.ready.append(job)
        except Interrupt:
            return

    def __repr__(self) -> str:
        return (
            f"<Processor {self.peer_id} power={self.power:g} "
            f"policy={self.policy.name} q={self.queue_length}>"
        )

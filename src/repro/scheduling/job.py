"""Jobs: units of CPU work queued at a processor."""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.events import Event

_job_counter = itertools.count(1)


class JobCancelled(Exception):
    """The job was withdrawn before completion (peer failure, reassignment)."""

    def __init__(self, job: "Job", reason: str = "") -> None:
        super().__init__(f"job {job.job_id} cancelled: {reason or 'n/a'}")
        self.job = job
        self.reason = reason


class Job:
    """One schedulable unit of CPU work.

    Attributes
    ----------
    work:
        Total demand in work units; a processor with power ``P``
        executes ``P`` work units per second.
    remaining:
        Work still to do (decreases as the job runs).
    abs_deadline:
        Absolute completion deadline (soft — the job keeps running past
        it; the miss is recorded).
    importance:
        Task importance, consumed by value-aware policies.
    service_id / task_id:
        Provenance, for profiling and tracing.
    """

    __slots__ = (
        "job_id",
        "task_id",
        "service_id",
        "work",
        "remaining",
        "release",
        "abs_deadline",
        "importance",
        "done",
        "started_at",
        "completed_at",
        "preemptions",
        "cancelled",
    )

    def __init__(
        self,
        work: float,
        abs_deadline: float,
        release: float,
        importance: float = 1.0,
        task_id: str = "",
        service_id: str = "",
    ) -> None:
        if work <= 0:
            raise ValueError(f"job work must be positive, got {work}")
        self.job_id = next(_job_counter)
        self.task_id = task_id
        self.service_id = service_id
        self.work = float(work)
        self.remaining = float(work)
        self.release = float(release)
        self.abs_deadline = float(abs_deadline)
        self.importance = float(importance)
        #: Event fired on completion (set by the processor at submit).
        self.done: Optional["Event"] = None
        self.started_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self.preemptions = 0
        self.cancelled = False

    def laxity(self, now: float, power: float) -> float:
        """Slack before the deadline if run to completion at full speed."""
        return self.abs_deadline - now - self.remaining / power

    @property
    def response_time(self) -> Optional[float]:
        """Release-to-completion latency, if finished."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.release

    @property
    def met_deadline(self) -> Optional[bool]:
        if self.completed_at is None:
            return None
        return self.completed_at <= self.abs_deadline

    def __repr__(self) -> str:
        return (
            f"<Job {self.job_id} task={self.task_id} rem={self.remaining:.3g}"
            f"/{self.work:.3g} dl={self.abs_deadline:.3g}>"
        )

"""Scheduling policies: pick the next job from the ready set.

A policy is a *key function*: the processor runs the ready job with the
smallest key.  Keys may depend on the current time and processor power
(LLS laxity does); ties break by job id (i.e. arrival order), keeping
runs deterministic.
"""

from __future__ import annotations

from typing import Tuple

from repro.scheduling.job import Job


class SchedulingPolicy:
    """Base class. Subclasses define :meth:`key`; lower key runs first."""

    #: Human-readable policy name (used in experiment tables).
    name: str = "base"
    #: Whether a newly arrived job may preempt the running one.
    preemptive: bool = True
    #: Whether job priorities drift with time while queued (LLS does),
    #: requiring periodic re-evaluation (the processor's quantum).
    time_varying: bool = False

    def key(self, job: Job, now: float, power: float) -> Tuple[float, int]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class FIFOPolicy(SchedulingPolicy):
    """First-come-first-served, non-preemptive (the naive baseline)."""

    name = "FIFO"
    preemptive = False

    def key(self, job: Job, now: float, power: float) -> Tuple[float, int]:
        return (job.release, job.job_id)


class EDFPolicy(SchedulingPolicy):
    """Earliest Deadline First (preemptive)."""

    name = "EDF"

    def key(self, job: Job, now: float, power: float) -> Tuple[float, int]:
        return (job.abs_deadline, job.job_id)


class LLSPolicy(SchedulingPolicy):
    """Least Laxity Scheduling — the paper's Local Scheduler (§2).

    Laxity = deadline − now − remaining/power: the slack a job has left.
    The job closest to being un-completable runs first.  Laxity order
    can change while jobs wait, so the policy is time-varying and the
    processor re-evaluates every quantum.
    """

    name = "LLS"
    time_varying = True

    def key(self, job: Job, now: float, power: float) -> Tuple[float, int]:
        return (job.laxity(now, power), job.job_id)


class SJFPolicy(SchedulingPolicy):
    """Shortest (remaining) job first — throughput-oriented baseline."""

    name = "SJF"

    def key(self, job: Job, now: float, power: float) -> Tuple[float, int]:
        return (job.remaining, job.job_id)


class ImportancePolicy(SchedulingPolicy):
    """Highest value density first: importance / remaining work.

    A benefit-oriented policy in the spirit of Jensen-style value
    scheduling (paper §5 related work); used in the E3 comparison.
    """

    name = "VALUE"

    def key(self, job: Job, now: float, power: float) -> Tuple[float, int]:
        density = job.importance / max(job.remaining, 1e-12)
        return (-density, job.job_id)


_POLICIES = {
    cls.name: cls
    for cls in (FIFOPolicy, EDFPolicy, LLSPolicy, SJFPolicy, ImportancePolicy)
}


def make_policy(name: str) -> SchedulingPolicy:
    """Instantiate a policy by its table name (``"LLS"``, ``"EDF"``, ...)."""
    try:
        return _POLICIES[name.upper()]()
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; known: {sorted(_POLICIES)}"
        ) from None

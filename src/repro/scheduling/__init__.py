"""Local scheduling: per-peer processors and scheduling policies.

The paper's Local Scheduler "determines the execution sequence of the
applications at the peer" using **Least Laxity Scheduling** (§2).  This
package provides the processor model (a preemptive work-conserving CPU
executing abstract work units on the simulator) and a family of
policies: LLS (the paper's), EDF, FIFO, SJF and an importance-weighted
value policy — the comparison set for experiment E3.
"""

from repro.scheduling.job import Job, JobCancelled
from repro.scheduling.policies import (
    EDFPolicy,
    FIFOPolicy,
    ImportancePolicy,
    LLSPolicy,
    SJFPolicy,
    SchedulingPolicy,
    make_policy,
)
from repro.scheduling.processor import Processor

__all__ = [
    "EDFPolicy",
    "FIFOPolicy",
    "ImportancePolicy",
    "Job",
    "JobCancelled",
    "LLSPolicy",
    "Processor",
    "SJFPolicy",
    "SchedulingPolicy",
    "make_policy",
]

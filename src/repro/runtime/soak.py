"""The multi-process live soak: the sharded runtime under sustained
load with fault injection.

``repro-live-soak`` (and the CI ``live-soak-smoke`` job) runs this
scenario end to end:

1. spawn N shards hosting the whole population (RM candidate ``M0``
   plus ``P1..Pn``), wait for the decentralized roster to converge and
   the §4.1 election to seat the RM;
2. originate a steady task stream from every shard;
3. SIGKILL one non-RM shard mid-run, assert the supervisor respawns it
   and its nodes re-join under their old ids;
4. let the stream settle and check task conservation — every task the
   RM accepted reached exactly one terminal event (completed, rejected
   or failed; crash-severed sessions are recovered by the §4.5 repair
   path or expire through the loss grace, never silently dropped);
5. scrape the supervisor's aggregated ``/metrics``;
6. drain one shard gracefully (SIGTERM semantics) and verify it left
   with no in-flight work abandoned.

The defaults are CI-sized.  ``--peers 10000 --shards 8`` reproduces
the documented local run (see ``docs/runtime.md`` for ulimit notes).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.manager import RMConfig
from repro.media.fig1 import build_fig1_graph
from repro.media.objects import MediaObject
from repro.runtime.node import NodeSpec
from repro.runtime.shard import ShardConfig
from repro.runtime.supervisor import ClusterSupervisor, partition_specs


@dataclass
class SoakConfig:
    """One soak run's shape."""

    peers: int = 1000
    shards: int = 4
    duration: float = 45.0
    #: Cluster-wide task origination rate (tasks/s), split over shards.
    task_rate: float = 4.0
    task_deadline: float = 30.0
    kill: bool = True
    drain: bool = True
    host: str = "127.0.0.1"
    metrics_port: int = 0
    record_dir: Optional[str] = None
    #: Root of the cluster observability plane's artifacts (per-shard
    #: trace streams, merged cluster trace + .folded, correlated flight
    #: bundles).  None = plane off, shard behaviour unchanged.
    observe_dir: Optional[str] = None
    seed: int = 7
    profiler_update_period: float = 5.0
    gossip_period: float = 1.0
    object_duration_s: float = 1.0
    join_timeout: float = 60.0
    settle_grace: float = 60.0


def soak_specs(cfg: SoakConfig) -> List[NodeSpec]:
    """The soak population: a well-provisioned RM candidate plus
    uniform peers all hosting the Figure-1 edge set (so any peer can
    take over any reassigned session) and the source object."""
    scenario = build_fig1_graph(duration_s=60.0)  # canonical calibration
    edges = [
        {
            "src": e.src, "dst": e.dst, "service_id": e.service_id,
            "work": e.work, "out_bytes": e.out_bytes, "edge_id": e.edge_id,
        }
        for e in scenario.graph.edges()
    ]
    movie = MediaObject(
        "movie", scenario.source_object.fmt,
        duration_s=cfg.object_duration_s,
    )
    specs = [NodeSpec(
        node_id="M0", power=50.0, bandwidth=1.0e7, uptime=1.0,
        profiler_update_period=cfg.profiler_update_period,
    )]
    for i in range(cfg.peers):
        pid = f"P{i + 1}"
        # Edge ids must be unique per hosted instance: every peer
        # carries the full edge set so any session can be reassigned
        # anywhere (§4.5), so qualify the id with the host.
        hosted = [
            {**e, "edge_id": f"{e['edge_id']}@{pid}"} for e in edges
        ]
        specs.append(NodeSpec(
            node_id=pid,
            power=10.0, bandwidth=1.25e6, uptime=0.9,
            objects=[movie],
            service_edges=hosted,
            profiler_update_period=cfg.profiler_update_period,
        ))
    return specs


def soak_shard_configs(cfg: SoakConfig) -> List[ShardConfig]:
    specs = soak_specs(cfg)
    buckets = partition_specs(specs, cfg.shards)
    rm_config = RMConfig(
        max_peers=cfg.peers + 8,
        expected_update_period=cfg.profiler_update_period,
    )
    out: List[ShardConfig] = []
    for i, bucket in enumerate(buckets):
        sid = f"s{i}"
        record_dir = (
            os.path.join(cfg.record_dir, sid) if cfg.record_dir else None
        )
        out.append(ShardConfig(
            shard_id=sid,
            specs=bucket,
            expected_nodes=len(specs),
            host=cfg.host,
            rm_config=rm_config,
            join_timeout=cfg.join_timeout,
            gossip_period=cfg.gossip_period,
            record_dir=record_dir,
            observe=cfg.observe_dir is not None,
            task_rate=cfg.task_rate / len(buckets),
            task_deadline=cfg.task_deadline,
            seed=cfg.seed + i,
        ))
    return out


async def run_soak(cfg: SoakConfig) -> Dict[str, Any]:
    """Run the scenario; returns the result document (``ok`` rolls up
    every acceptance check)."""
    configs = soak_shard_configs(cfg)
    expected_nodes = cfg.peers + 1
    sup = ClusterSupervisor(
        configs, metrics_port=cfg.metrics_port,
        start_timeout=cfg.join_timeout,
        observe_dir=cfg.observe_dir,
    )
    result: Dict[str, Any] = {
        "peers": cfg.peers, "shards": len(configs),
        "duration": cfg.duration,
        "killed": None, "respawned": None,
        "converged": False, "no_task_lost": False,
        "metrics_ok": False, "drain": None,
    }
    loop = asyncio.get_running_loop()
    try:
        await sup.start()
        await sup.wait_running(timeout=cfg.join_timeout)
        await sup.wait_rm_ready(timeout=cfg.join_timeout)
        t0 = loop.time()
        kill_at = t0 + 0.35 * cfg.duration
        end_at = t0 + cfg.duration

        if cfg.kill:
            await asyncio.sleep(max(0.0, kill_at - loop.time()))
            rm_sid = sup.rm_shard_id()
            candidates = [
                sid for sid in sup.shards if sid != rm_sid
            ] or list(sup.shards)
            victim = candidates[-1]
            result["killed"] = victim
            sup.kill_shard(victim)
            # Respawn + roster pull + re-join under the old ids.
            await sup.wait_respawned(victim, timeout=cfg.join_timeout)
            result["respawned"] = True

        await asyncio.sleep(max(0.0, end_at - loop.time()))
        sup.pause_tasks()
        await sup.wait_tasks_settled(timeout=cfg.settle_grace)

        counts = sup.ledger.counts()
        result["tasks"] = counts
        result["no_task_lost"] = counts["open"] == 0
        result["converged"] = all(
            sh.last_hb.get("roster", {}).get("nodes_up") == expected_nodes
            and sh.last_hb.get("roster", {}).get("agents_up")
            == len(configs)
            for sh in sup.shards.values()
        )
        result["restarts"] = {
            sid: sh.restarts for sid, sh in sup.shards.items()
        }

        text = sup.metrics_text()
        result["metrics_ok"] = (
            "repro_supervisor_shard_up" in text
            and "repro_shard_nodes_joined" in text
        )
        if sup.httpd is not None:
            result["metrics_url"] = sup.httpd.url

        if cfg.observe_dir:
            # Force one correlated bundle so every soak produces the
            # artifact even when no anomaly fired on its own.
            bundle_dir = sup.request_snapshot("soak_checkpoint")
            if bundle_dir is not None and cfg.record_dir:
                live = sum(
                    1 for sh in sup.shards.values()
                    if sh.proc is not None and sh.proc.is_alive()
                )
                deadline = loop.time() + 10.0
                while loop.time() < deadline:
                    bundle = sup.coordinator.bundles[-1]
                    if len(bundle["shards"]) >= live:
                        break
                    await asyncio.sleep(0.1)

        if cfg.drain:
            rm_sid = sup.rm_shard_id()
            targets = [
                sid for sid in sup.shards
                if sid != rm_sid and sid != result["killed"]
            ] or [
                sid for sid in sup.shards if sid != rm_sid
            ]
            if targets:
                target = targets[-1]
                ok = await sup.drain_shard(
                    target, timeout=cfg.settle_grace
                )
                result["drain"] = {"shard": target, "ok": ok}
    finally:
        await sup.stop()

    if cfg.observe_dir:
        result["observe"] = sup.write_cluster_artifacts()

    checks = [
        result["converged"], result["no_task_lost"], result["metrics_ok"],
    ]
    if cfg.kill:
        checks.append(bool(result["respawned"]))
    if cfg.drain:
        checks.append(bool(result["drain"] and result["drain"]["ok"]))
    if cfg.observe_dir:
        obs = result.get("observe") or {}
        result["observe_ok"] = bool(
            obs.get("trace")
            and os.path.exists(obs["trace"])
            and obs.get("orphan_spans", 1) == 0
        )
        checks.append(result["observe_ok"])
    result["ok"] = all(checks)
    return result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-live-soak",
        description="multi-process live soak with fault injection",
    )
    parser.add_argument("--peers", type=int, default=1000)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--duration", type=float, default=45.0)
    parser.add_argument("--rate", type=float, default=4.0,
                        help="cluster-wide tasks/s")
    parser.add_argument("--no-kill", action="store_true",
                        help="skip the mid-run shard kill")
    parser.add_argument("--no-drain", action="store_true",
                        help="skip the graceful-drain check")
    parser.add_argument("--metrics-port", type=int, default=0)
    parser.add_argument("--record-dir", default=None,
                        help="flight-recorder bundle directory")
    parser.add_argument("--observe", dest="observe_dir", default=None,
                        help="cluster observability artifact directory "
                             "(per-shard traces, merged trace/.folded, "
                             "correlated bundles)")
    parser.add_argument("--profiler-period", type=float, default=5.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--json", dest="json_out", default=None,
                        help="also write the result document here")
    args = parser.parse_args(argv)

    cfg = SoakConfig(
        peers=args.peers, shards=args.shards, duration=args.duration,
        task_rate=args.rate, kill=not args.no_kill,
        drain=not args.no_drain, metrics_port=args.metrics_port,
        record_dir=args.record_dir, observe_dir=args.observe_dir,
        profiler_update_period=args.profiler_period, seed=args.seed,
    )
    result = asyncio.run(run_soak(cfg))
    doc = json.dumps(result, indent=2, sort_keys=True)
    print(doc)
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            fh.write(doc + "\n")
    return 0 if result["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())

"""One shard of the multi-process live cluster.

A :class:`ShardHost` is the child-process side of the sharded runtime:
it runs its own asyncio loop pumping the sim environments of the
:class:`~repro.runtime.node.LiveNode`\\ s it hosts, one
:class:`~repro.runtime.agent.RosterAgent` as the shard's membership
endpoint, a per-shard ``/metrics`` + ``/healthz`` endpoint, and an
optional flight recorder.  The parent
(:class:`~repro.runtime.supervisor.ClusterSupervisor`) talks to it over
a :mod:`multiprocessing` pipe:

child → parent
    ``ready`` (agent + metrics ports), ``hb`` (periodic health),
    ``submitted`` / ``submit_failed`` (origin-side task ledger),
    ``task`` (RM-side lifecycle events — only the RM-hosting shard
    emits these), ``drained``, ``fatal``.

parent → child
    ``seeds`` (the other agents' addresses), ``submit`` (inject tasks),
    ``pause_tasks`` / ``resume_tasks``, ``task_done`` (terminal-event
    relay for tasks this shard originated), ``drain``.

``SIGTERM`` (or a ``drain`` message) triggers the graceful path: the
agent stops admitting joins, the task generator stops, in-flight
locally-originated tasks are awaited, every hosted peer runs the
ordinary ``PEER_LEAVE`` departure (so the RM reassigns its sessions via
the §4.5 repair path), the agent tombstones itself, and the process
exits 0.  ``SIGKILL`` is the crash the supervisor's respawn exercises.
"""

from __future__ import annotations

import asyncio
import os
import random
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro import telemetry
from repro.core.manager import RMConfig
from repro.media.fig1 import build_fig1_graph
from repro.runtime.agent import RosterAgent
from repro.runtime.node import LiveNode, NodeSpec
from repro.runtime.transport import PeerDirectory
from repro.tasks.task import ApplicationTask
from repro.telemetry.export import TRACE_FORMAT_VERSION
from repro.telemetry.flight_recorder import FlightRecorder
from repro.telemetry.httpd import TelemetryHTTPServer
from repro.telemetry.logs import get_logger
from repro.telemetry.ship import TraceShipper

#: Tracer history kept per shard (a soak must not grow without bound;
#: the flight recorder keeps its own ring on top of the live stream).
_TRACE_KEEP = 2000
_TRACE_HIGH = 2 * _TRACE_KEEP


@dataclass
class ShardConfig:
    """Everything a shard child process needs (must stay picklable)."""

    shard_id: str
    specs: List[NodeSpec]
    #: Cluster-wide population the §4.1 election waits for.
    expected_nodes: int
    domain_id: str = "d0"
    host: str = "127.0.0.1"
    rm_config: Optional[RMConfig] = None
    join_timeout: float = 30.0
    gossip_period: float = 1.0
    heartbeat_period: float = 1.0
    #: Serve per-shard /metrics + /healthz (port 0 = ephemeral).
    telemetry: bool = True
    metrics_port: int = 0
    #: Directory for flight-recorder bundles (None = no recorder).
    record_dir: Optional[str] = None
    #: Join the cluster observability plane: ship spans/events up the
    #: supervisor pipe, attach the wall profiler (with the GIL cost
    #: model) + overhead budgeter, report health payloads in the
    #: heartbeat, and answer correlated snapshot requests.
    observe: bool = False
    #: Wall profiler sampling period when ``observe`` is on.
    profiler_period: float = 0.05
    #: Tasks/s this shard originates (0 = driven by ``submit`` messages).
    task_rate: float = 0.0
    task_deadline: float = 20.0
    task_timeout: float = 15.0
    drain_grace: float = 15.0
    #: True when the supervisor respawned this shard after a crash: the
    #: agent pulls the roster from its seeds before nodes re-join under
    #: their old ids.
    respawn: bool = False
    seed: Optional[int] = None
    transport_kwargs: Dict[str, Any] = field(default_factory=dict)


class ShardHost:
    """The child-process runtime for one shard."""

    def __init__(self, cfg: ShardConfig, conn: Any) -> None:
        self.cfg = cfg
        self.conn = conn
        self.directory = PeerDirectory()
        self.agent: Optional[RosterAgent] = None
        self.nodes: Dict[str, LiveNode] = {}
        self.tel: Optional[telemetry.Telemetry] = None
        self.httpd: Optional[TelemetryHTTPServer] = None
        self.recorder: Optional[FlightRecorder] = None
        self.shipper: Optional[TraceShipper] = None
        self.profile: Optional[Any] = None
        self._epoch_unix: Optional[float] = None
        self.draining = False
        self._paused = False
        self._ready = asyncio.Event()
        self._drain_requested = asyncio.Event()
        self._seeds: Optional[Dict[str, Any]] = None
        self._seeds_event = asyncio.Event()
        #: task_ids this shard originated that are not terminal yet
        #: (cleared by the supervisor's ``task_done`` relays).
        self._inflight: Set[str] = set()
        self.submitted = 0
        self.accepted = 0
        self._tasks: List[asyncio.Task] = []
        self._rng = random.Random(cfg.seed)
        self._goal = build_fig1_graph().v_sol
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.log = get_logger("runtime.shard", cfg.shard_id)

    # -- top level ---------------------------------------------------------
    async def run(self) -> None:
        self._loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(sig, self.request_drain)
            except (NotImplementedError, RuntimeError):
                pass
        try:
            await self._startup()
        except Exception as exc:  # startup failure = crash, not drain
            self._send({
                "type": "fatal", "shard": self.cfg.shard_id,
                "error": repr(exc),
            })
            await self._teardown(crash=True)
            raise
        await self._drain_requested.wait()
        clean = await self._drain()
        self._final_flush()
        self._send({
            "type": "drained", "shard": self.cfg.shard_id,
            "ok": clean, "inflight": len(self._inflight),
        })
        await self._teardown(crash=False)

    def request_drain(self) -> None:
        """Signal-safe entry to the graceful path (idempotent)."""
        self._drain_requested.set()

    # -- startup -----------------------------------------------------------
    async def _startup(self) -> None:
        cfg = self.cfg
        if cfg.telemetry:
            self.tel = telemetry.activate(telemetry.Telemetry.wall())
            # Unix time of the wall clock's zero point: the cluster
            # merge aligns per-shard timestamps with this.
            self._epoch_unix = time.time()
            self.httpd = TelemetryHTTPServer(
                self._metrics_text, health_fn=self._health,
                host=cfg.host, port=cfg.metrics_port,
            )
            self.httpd.start()
            if cfg.record_dir:
                self.recorder = FlightRecorder(
                    self.tel, out_dir=cfg.record_dir,
                )
            if cfg.observe:
                self.shipper = TraceShipper(
                    self.tel.tracer, shard=cfg.shard_id
                )
                if self.recorder is not None:
                    self.recorder.on_dump = self._on_flight_dump
                # Deferred import: profiling is opt-in; the default
                # shard path must not even load it.
                from repro.profiling.attach import profile_wall

                self.profile = profile_wall(
                    tel=self.tel, recorder=self.recorder,
                    period=cfg.profiler_period, start=True,
                )
        self.agent = RosterAgent(
            cfg.shard_id, self.directory,
            domain_id=cfg.domain_id,
            expected_nodes=cfg.expected_nodes,
            host=cfg.host,
            gossip_period=cfg.gossip_period,
            on_rm_state=self._on_rm_state,
            rng=self._rng,
            **cfg.transport_kwargs,
        )
        await self.agent.start()
        self._tasks.append(self._loop.create_task(
            self._pipe_loop(), name=f"pipe:{cfg.shard_id}"
        ))
        self._send({
            "type": "ready", "shard": cfg.shard_id, "pid": os.getpid(),
            "agent_port": self.agent.transport.port,
            "metrics_port": self.httpd.port if self.httpd else None,
            "nodes": [s.node_id for s in cfg.specs],
        })
        # Heartbeats flow from the moment the agent is up — the
        # supervisor watches join progress, not just the end state.
        self._tasks.append(self._loop.create_task(
            self._heartbeat_loop(), name=f"hb:{cfg.shard_id}"
        ))
        await asyncio.wait_for(
            self._seeds_event.wait(), cfg.join_timeout
        )
        assert self._seeds is not None
        self.agent.add_seed_agents({
            aid: (host, int(port))
            for aid, (host, port) in self._seeds.items()
        })
        if cfg.respawn:
            pulled = await self.agent.pull_roster(timeout=cfg.join_timeout)
            self.log.info("respawn roster pull: ok=%s", pulled)
        for spec in cfg.specs:
            self.agent.register_local(spec.node_id)
            self.nodes[spec.node_id] = LiveNode(
                spec, self.directory,
                bootstrap_id=self.agent.node_id,
                host=cfg.host,
                rm_config=cfg.rm_config,
                on_task_event=self._on_task_event,
                join_timeout=cfg.join_timeout,
                join_extra={"shard": cfg.shard_id},
                **cfg.transport_kwargs,
            )
        await asyncio.gather(*(n.start() for n in self.nodes.values()))
        self.log.info(
            "all %d nodes joined (rm=%s)", len(self.nodes), self.agent.rm_id
        )
        self._ready.set()
        if cfg.task_rate > 0:
            self._tasks.append(self._loop.create_task(
                self._task_loop(), name=f"tasks:{cfg.shard_id}"
            ))
        if self.tel is not None:
            self._tasks.append(self._loop.create_task(
                self._trim_loop(), name=f"trim:{cfg.shard_id}"
            ))
        if self.shipper is not None:
            self._tasks.append(self._loop.create_task(
                self._ship_loop(), name=f"ship:{cfg.shard_id}"
            ))

    # -- RM watch ----------------------------------------------------------
    def _on_rm_state(self, rm_id: str, ready: bool, epoch: int) -> None:
        """Agent callback: if this shard hosts the elected RM, announce
        rm_ready once the local node has actually assumed the role."""
        if ready or rm_id not in self.nodes or self._loop is None:
            return
        self._loop.create_task(
            self._watch_rm(rm_id, epoch), name=f"rmwatch:{self.cfg.shard_id}"
        )

    async def _watch_rm(self, rm_id: str, epoch: int) -> None:
        node = self.nodes[rm_id]
        while node.role != "rm" or node.node is None:
            await asyncio.sleep(0.05)
        assert self.agent is not None
        if not self.agent.rm_ready:
            self.agent.announce_rm_ready()
            self.log.info("rm %s ready (epoch %d)", rm_id, epoch + 1)

    # -- control pipe ------------------------------------------------------
    async def _pipe_loop(self) -> None:
        while True:
            try:
                while self.conn.poll(0):
                    self._on_ctrl(self.conn.recv())
            except (EOFError, OSError):
                # Parent gone: drain rather than orphan the shard.
                self.request_drain()
                return
            await asyncio.sleep(0.02)

    def _on_ctrl(self, msg: Dict[str, Any]) -> None:
        kind = msg.get("type")
        if kind == "seeds":
            self._seeds = msg["agents"]
            self._seeds_event.set()
        elif kind == "drain":
            self.request_drain()
        elif kind == "pause_tasks":
            self._paused = True
        elif kind == "resume_tasks":
            self._paused = False
        elif kind == "task_done":
            self._inflight.discard(msg.get("tid"))
        elif kind == "submit":
            assert self._loop is not None
            for _ in range(int(msg.get("n", 1))):
                self._loop.create_task(self._submit_one())
        elif kind == "snapshot":
            self._on_snapshot(msg)

    def _send(self, msg: Dict[str, Any]) -> None:
        try:
            self.conn.send(msg)
        except (BrokenPipeError, OSError):
            self.request_drain()

    # -- task generation ---------------------------------------------------
    async def _task_loop(self) -> None:
        await self._ready.wait()
        interval = 1.0 / self.cfg.task_rate
        while not self.draining:
            await asyncio.sleep(self._rng.uniform(0.5, 1.5) * interval)
            if self._paused or self.draining:
                continue
            asyncio.ensure_future(self._submit_one())

    async def _submit_one(self) -> None:
        origins = [n for n in self.nodes.values() if n.role == "peer"]
        if not origins or self.draining:
            return
        node = self._rng.choice(origins)
        self.submitted += 1
        try:
            ack = await asyncio.wait_for(
                node.submit_task(
                    "movie", self._goal, self.cfg.task_deadline,
                    timeout=self.cfg.task_timeout,
                ),
                self.cfg.task_timeout + 2.0,
            )
        except Exception:
            self._send({
                "type": "submit_failed", "shard": self.cfg.shard_id,
                "origin": node.node_id,
            })
            return
        payload = ack.payload
        tid = payload.get("task_id")
        disposition = payload.get("disposition")
        if disposition == "accepted" and tid:
            self.accepted += 1
            self._inflight.add(tid)
        self._send({
            "type": "submitted", "shard": self.cfg.shard_id,
            "tid": tid, "disposition": disposition,
            "origin": node.node_id,
        })

    def _on_task_event(self, task: ApplicationTask, event: str) -> None:
        """RM-side lifecycle stream (only fires on the RM's shard)."""
        self._send({
            "type": "task", "shard": self.cfg.shard_id,
            "ev": event, "tid": task.task_id,
            "origin": task.origin_peer,
            "outcome": task.outcome.value if task.outcome else None,
        })

    # -- correlated snapshots ----------------------------------------------
    def _on_flight_dump(self, reason: str, path: str) -> None:
        """Recorder callback: tell the supervisor so it can correlate
        this shard's dump with snapshots from its peers."""
        self._send({
            "type": "flight", "shard": self.cfg.shard_id,
            "reason": reason, "path": path,
        })

    def _on_snapshot(self, msg: Dict[str, Any]) -> None:
        """Supervisor-requested dump for a correlated bundle.  Bypasses
        the recorder's cooldown (the coordinator owns coalescing) and
        suppresses on_dump — reporting this dump as a fresh local
        trigger would bounce the fan-out forever."""
        reason = str(msg.get("reason", "snapshot"))
        path = None
        if self.recorder is not None:
            cb = self.recorder.on_dump
            self.recorder.on_dump = None
            try:
                path = self.recorder.dump(reason)
            finally:
                self.recorder.on_dump = cb
        self._send({
            "type": "snapshot_done", "shard": self.cfg.shard_id,
            "reason": reason, "bundle": msg.get("bundle"), "path": path,
        })

    # -- periodic loops ----------------------------------------------------
    async def _heartbeat_loop(self) -> None:
        assert self.agent is not None
        while True:
            await asyncio.sleep(self.cfg.heartbeat_period)
            msg = {
                "type": "hb", "shard": self.cfg.shard_id,
                "joined": self._joined(),
                "nodes": len(self.nodes),
                "rm_id": self.agent.rm_id,
                "rm_ready": self.agent.rm_ready,
                "roster": self.agent.counts(),
                "inflight": len(self._inflight),
                "submitted": self.submitted,
                "accepted": self.accepted,
                "draining": self.draining,
            }
            if self.cfg.observe:
                msg["health"] = self._health_payload()
            self._send(msg)

    def _health_payload(self) -> Dict[str, Any]:
        """The heartbeat's cluster-health contribution: compact
        aggregates the supervisor can merge exactly (sums and maxima,
        not shard-level means)."""
        loads: List[float] = []
        finished: Dict[str, int] = {}
        missed: Dict[str, int] = {}
        rm = {"admitted": 0.0, "rejected": 0.0, "redirected_out": 0.0}
        for live in self.nodes.values():
            sig = live.health_signal()
            if sig.get("load") is not None:
                loads.append(sig["load"])
            for cls, n in sig.get("finished_by_class", {}).items():
                finished[cls] = finished.get(cls, 0) + n
            for cls, n in sig.get("missed_by_class", {}).items():
                missed[cls] = missed.get(cls, 0) + n
            stats = getattr(live.node, "stats", None)
            if stats is not None:
                for key in rm:
                    rm[key] += stats.get(key, 0)
        return {
            "loads": {
                "n": len(loads),
                "sum": sum(loads),
                "max": max(loads) if loads else 0.0,
            },
            "finished": finished,
            "missed": missed,
            "rm": rm,
            "inflight": len(self._inflight),
        }

    def _trace_meta(self) -> Dict[str, Any]:
        assert self.tel is not None
        return {
            "version": TRACE_FORMAT_VERSION,
            "shard": self.cfg.shard_id,
            "clock": self.tel.clock.label,
            "epoch_unix": self._epoch_unix,
        }

    async def _ship_loop(self) -> None:
        """Flush new spans/events up the pipe (cluster trace stream)."""
        assert self.shipper is not None
        while True:
            await asyncio.sleep(1.0)
            records = self.shipper.collect(limit=4000)
            if records:
                self._send({
                    "type": "trace", "shard": self.cfg.shard_id,
                    "meta": self._trace_meta(), "records": records,
                })

    async def _trim_loop(self) -> None:
        """Bound tracer history: a soak would otherwise grow it forever
        (the flight recorder taps the stream, so trimming loses nothing
        it cares about).  With a shipper attached the trim goes through
        it — only records already flushed to the export stream are
        dropped, closing the burst-loss window the bare ``del`` had."""
        assert self.tel is not None
        tracer = self.tel.tracer
        while True:
            await asyncio.sleep(5.0)
            if self.shipper is not None:
                self.shipper.trim(_TRACE_KEEP, high=_TRACE_HIGH)
                continue
            if len(tracer.spans) > _TRACE_HIGH:
                del tracer.spans[:-_TRACE_KEEP]
            if len(tracer.events) > _TRACE_HIGH:
                del tracer.events[:-_TRACE_KEEP]

    def _joined(self) -> int:
        return sum(1 for n in self.nodes.values() if n.node is not None)

    # -- observability -----------------------------------------------------
    def _metrics_text(self) -> str:
        assert self.tel is not None
        m = self.tel.metrics
        agent = self.agent
        m.gauge(
            "repro_shard_nodes_joined",
            help="Nodes of this shard that have assumed a role",
        ).set(float(self._joined()))
        m.gauge(
            "repro_shard_tasks_inflight",
            help="Locally-originated tasks not yet terminal",
        ).set(float(len(self._inflight)))
        m.counter(
            "repro_shard_tasks_submitted_total",
            help="Tasks originated by this shard",
        ).value = float(self.submitted)
        if agent is not None:
            counts = agent.counts()
            m.gauge(
                "repro_shard_rm_ready",
                help="1 once the elected RM has assumed its role",
            ).set(1.0 if agent.rm_ready else 0.0)
            m.gauge(
                "repro_shard_roster_nodes_up",
                help="Live nodes in this shard's roster replica",
            ).set(float(counts["nodes_up"]))
            m.gauge(
                "repro_shard_roster_agents_up",
                help="Live agents in this shard's roster replica",
            ).set(float(counts["agents_up"]))
        if self.profile is not None:
            self.profile.budgeter.publish(m)
        return m.to_prometheus_text()

    def _health(self) -> Dict[str, Any]:
        agent = self.agent
        return {
            "status": "draining" if self.draining else "ok",
            "shard": self.cfg.shard_id,
            "joined": self._joined(),
            "nodes": len(self.nodes),
            "rm_id": agent.rm_id if agent else None,
            "rm_ready": bool(agent.rm_ready) if agent else False,
            "inflight": len(self._inflight),
        }

    # -- drain -------------------------------------------------------------
    async def _drain(self) -> bool:
        """The graceful path; returns True if no in-flight task was
        abandoned within the grace window."""
        assert self._loop is not None and self.agent is not None
        self.draining = True
        self.agent.begin_drain()
        self.log.info(
            "draining: %d in-flight tasks, %d nodes",
            len(self._inflight), len(self.nodes),
        )
        deadline = self._loop.time() + self.cfg.drain_grace
        while self._inflight and self._loop.time() < deadline:
            await asyncio.sleep(0.05)
        clean = not self._inflight
        # Peers leave through the ordinary departure protocol: the RM
        # reassigns their in-progress sessions (§4.5).  A hosted RM has
        # no graceful successor — it goes down with the shard.
        for node in self.nodes.values():
            if node.role == "rm":
                continue
            try:
                await asyncio.wait_for(node.leave(), 5.0)
            except Exception:
                clean = False
            self.agent.tombstone_local(node.node_id)
        return clean

    def _final_flush(self) -> None:
        """Ship the tail of the trace stream and the shard's profile
        before announcing ``drained`` (the supervisor consumes the pipe
        in order, so these land before it stops listening)."""
        if self.shipper is not None:
            records = self.shipper.collect()
            if records:
                self._send({
                    "type": "trace", "shard": self.cfg.shard_id,
                    "meta": self._trace_meta(), "records": records,
                })
        if self.profile is not None:
            self.profile.stop()
            agg = self.profile.profiler.agg
            if agg.n_samples:
                self._send({
                    "type": "folded", "shard": self.cfg.shard_id,
                    "text": agg.to_folded(),
                    "profile": self.profile.record(top_n=10),
                })

    async def _teardown(self, crash: bool) -> None:
        if self.profile is not None:
            self.profile.stop()
        for task in self._tasks:
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        await asyncio.gather(
            *(n.stop() for n in self.nodes.values()), return_exceptions=True
        )
        if self.agent is not None:
            try:
                await self.agent.close(graceful=not crash)
            except Exception:
                pass
        if self.recorder is not None:
            self.recorder.close()
        if self.httpd is not None:
            self.httpd.close()
        if self.tel is not None:
            telemetry.deactivate()
        try:
            self.conn.close()
        except OSError:
            pass


def _shard_entry(cfg: ShardConfig, conn: Any) -> None:
    """Spawn entry point (module-level so it pickles)."""
    from repro.net.message import reset_message_ids

    # Every incarnation gets a disjoint message-id range: peers keep
    # their node ids across a respawn, and the receivers' (src, msg_id)
    # dedup would otherwise discard the new process's messages as
    # duplicates of the dead one's.
    reset_message_ids(start=1 + int.from_bytes(os.urandom(6), "big"))
    if cfg.seed is not None:
        random.seed(cfg.seed)
    try:
        asyncio.run(ShardHost(cfg, conn).run())
    except Exception:
        # The fatal message already went up the pipe; exit nonzero so
        # the supervisor sees a crash.
        raise SystemExit(1)

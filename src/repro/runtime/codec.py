"""Versioned JSON wire format for :class:`~repro.net.message.Message`.

The live runtime ships protocol messages as UDP datagrams.  Two frame
types share one envelope::

    {"v": 1, "t": "msg", "msg": {...}}       a protocol message
    {"v": 1, "t": "ack", "src": ..., "id": ...}   transport-level receipt

The ``msg`` body carries every :class:`Message` field verbatim —
including ``size``, the *nominal* wire size from
:data:`repro.core.protocol.MESSAGE_SIZES` — so the byte accounting of a
live run matches the simulator's (the JSON encoding itself is an
implementation detail, not the accounted size).

Payload values are encoded recursively.  Plain JSON scalars, lists and
string-keyed dicts pass through; everything else is written as a tagged
object ``{"__t__": <tag>, ...}``: tuples, sets, and the protocol's
payload dataclasses (media formats/objects, QoS sets, compose orders,
service steps, load reports, application tasks).  Decoding reverses the
tags; any datagram that is not valid UTF-8 JSON, has the wrong version,
an unknown frame type/tag, or ill-typed message fields raises
:class:`WireFormatError` — the transport drops such datagrams.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Tuple, Type

from repro.core.session import ComposeOrder
from repro.graphs.service_graph import ServiceStep
from repro.media.formats import MediaFormat
from repro.media.objects import MediaObject
from repro.monitoring.profiler import LoadReport
from repro.net.message import Message
from repro.tasks.qos import QoSRequirements
from repro.tasks.task import ApplicationTask, TaskOutcome, TaskState

#: Wire-format version; bump on any incompatible envelope change.
WIRE_VERSION = 1

FRAME_MSG = "msg"
FRAME_ACK = "ack"

_TAG_KEY = "__t__"


class WireFormatError(ValueError):
    """A datagram that cannot be decoded (malformed, wrong version)."""


# --------------------------------------------------------------------------
# value encoding: tagged recursive JSON
# --------------------------------------------------------------------------

_encoders: Dict[Type, Tuple[str, Callable[[Any], Dict[str, Any]]]] = {}
_decoders: Dict[str, Callable[[Dict[str, Any]], Any]] = {}


def _register(
    cls: Type, tag: str,
    to_wire: Callable[[Any], Dict[str, Any]],
    from_wire: Callable[[Dict[str, Any]], Any],
) -> None:
    _encoders[cls] = (tag, to_wire)
    _decoders[tag] = from_wire


def _enc(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        items = [_enc(v) for v in value]
        if isinstance(value, tuple):
            return {_TAG_KEY: "tuple", "v": items}
        return items
    if isinstance(value, (set, frozenset)):
        return {_TAG_KEY: "set", "v": sorted((_enc(v) for v in value),
                                             key=repr)}
    if isinstance(value, dict):
        if all(isinstance(k, str) for k in value) and _TAG_KEY not in value:
            return {k: _enc(v) for k, v in value.items()}
        # Non-string keys (or a reserved key) need the pair form.
        return {
            _TAG_KEY: "dict",
            "v": [[_enc(k), _enc(v)] for k, v in value.items()],
        }
    entry = _encoders.get(type(value))
    if entry is not None:
        tag, to_wire = entry
        body = to_wire(value)
        body[_TAG_KEY] = tag
        return body
    raise WireFormatError(
        f"cannot encode {type(value).__name__!r} value for the wire"
    )


def _dec(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return [_dec(v) for v in value]
    if isinstance(value, dict):
        tag = value.get(_TAG_KEY)
        if tag is None:
            return {k: _dec(v) for k, v in value.items()}
        if tag == "tuple":
            return tuple(_dec(v) for v in value.get("v", []))
        if tag == "set":
            return set(_dec(v) for v in value.get("v", []))
        if tag == "dict":
            return {_dec(k): _dec(v) for k, v in value.get("v", [])}
        decoder = _decoders.get(tag)
        if decoder is None:
            raise WireFormatError(f"unknown wire tag {tag!r}")
        body = {k: v for k, v in value.items() if k != _TAG_KEY}
        try:
            return decoder(body)
        except WireFormatError:
            raise
        except Exception as exc:
            raise WireFormatError(f"bad {tag!r} body: {exc}") from exc
    raise WireFormatError(f"cannot decode wire value {value!r}")


# -- payload dataclasses ------------------------------------------------------

_register(
    MediaFormat, "fmt",
    lambda f: {"codec": f.codec, "width": f.width, "height": f.height,
               "bitrate_kbps": f.bitrate_kbps, "fps": f.fps},
    lambda d: MediaFormat(**d),
)

_register(
    MediaObject, "media",
    lambda o: {"name": o.name, "fmt": _enc(o.fmt),
               "duration_s": o.duration_s, "content_hash": o.content_hash},
    lambda d: MediaObject(
        name=d["name"], fmt=_dec(d["fmt"]), duration_s=d["duration_s"],
        content_hash=d["content_hash"],
    ),
)

_register(
    QoSRequirements, "qos",
    lambda q: {"deadline": q.deadline, "importance": q.importance,
               "constraints": _enc(dict(q.constraints))},
    lambda d: QoSRequirements(
        deadline=d["deadline"], importance=d["importance"],
        constraints=_dec(d["constraints"]),
    ),
)

_register(
    ServiceStep, "step",
    lambda s: {"index": s.index, "service_id": s.service_id,
               "peer_id": s.peer_id, "work": s.work,
               "out_bytes": s.out_bytes, "src_state": _enc(s.src_state),
               "dst_state": _enc(s.dst_state), "edge_id": s.edge_id},
    lambda d: ServiceStep(
        index=d["index"], service_id=d["service_id"], peer_id=d["peer_id"],
        work=d["work"], out_bytes=d["out_bytes"],
        src_state=_dec(d["src_state"]), dst_state=_dec(d["dst_state"]),
        edge_id=d["edge_id"],
    ),
)

_register(
    ComposeOrder, "order",
    lambda o: {"task_id": o.task_id, "rm_id": o.rm_id,
               "source_peer": o.source_peer, "sink_peer": o.sink_peer,
               "steps": [_enc(s) for s in o.steps],
               "abs_deadline": o.abs_deadline, "importance": o.importance,
               "in_bytes": o.in_bytes, "resume_from": o.resume_from,
               "epoch": o.epoch},
    lambda d: ComposeOrder(
        task_id=d["task_id"], rm_id=d["rm_id"],
        source_peer=d["source_peer"], sink_peer=d["sink_peer"],
        steps=[_dec(s) for s in d["steps"]],
        abs_deadline=d["abs_deadline"], importance=d["importance"],
        in_bytes=d["in_bytes"], resume_from=d["resume_from"],
        epoch=d["epoch"],
    ),
)

_register(
    LoadReport, "load_report",
    lambda r: _enc(r.as_payload()),
    lambda d: LoadReport.from_payload(_dec(d)),
)

_register(
    TaskState, "task_state",
    lambda s: {"v": s.value},
    lambda d: TaskState(d["v"]),
)

_register(
    TaskOutcome, "task_outcome",
    lambda o: {"v": o.value},
    lambda d: TaskOutcome(d["v"]),
)


def _task_to_wire(t: ApplicationTask) -> Dict[str, Any]:
    return {
        "name": t.name, "qos": _enc(t.qos),
        "initial_state": _enc(t.initial_state),
        "goal_state": _enc(t.goal_state), "origin_peer": t.origin_peer,
        "task_id": t.task_id, "submitted_at": t.submitted_at,
        "state": _enc(t.state), "allocation": _enc(t.allocation),
        "allocation_fairness": t.allocation_fairness,
        "admitted_domain": t.admitted_domain, "redirects": t.redirects,
        "repairs": t.repairs, "finished_at": t.finished_at,
        "outcome": _enc(t.outcome), "meta": _enc(t.meta),
    }


def _task_from_wire(d: Dict[str, Any]) -> ApplicationTask:
    return ApplicationTask(
        name=d["name"], qos=_dec(d["qos"]),
        initial_state=_dec(d["initial_state"]),
        goal_state=_dec(d["goal_state"]), origin_peer=d["origin_peer"],
        task_id=d["task_id"], submitted_at=d["submitted_at"],
        state=_dec(d["state"]), allocation=_dec(d["allocation"]),
        allocation_fairness=d["allocation_fairness"],
        admitted_domain=d["admitted_domain"], redirects=d["redirects"],
        repairs=d["repairs"], finished_at=d["finished_at"],
        outcome=_dec(d["outcome"]), meta=_dec(d["meta"]),
    )


_register(ApplicationTask, "task", _task_to_wire, _task_from_wire)


# --------------------------------------------------------------------------
# message <-> wire dict
# --------------------------------------------------------------------------

def message_to_wire(msg: Message) -> Dict[str, Any]:
    """The versionless ``msg`` body of a data frame."""
    return {
        "kind": msg.kind,
        "src": msg.src,
        "dst": msg.dst,
        "payload": _enc(msg.payload),
        "size": msg.size,
        "msg_id": msg.msg_id,
        "reply_to": msg.reply_to,
        "sent_at": msg.sent_at,
        "trace_id": msg.trace_id,
    }


def message_from_wire(body: Any) -> Message:
    """Rebuild a :class:`Message`, validating field presence and types."""
    if not isinstance(body, dict):
        raise WireFormatError(f"message body is not an object: {body!r}")
    try:
        kind = body["kind"]
        src = body["src"]
        dst = body["dst"]
        payload = body["payload"]
        size = body["size"]
        msg_id = body["msg_id"]
        reply_to = body["reply_to"]
        sent_at = body["sent_at"]
    except KeyError as exc:
        raise WireFormatError(f"message body missing field {exc}") from exc
    if not (isinstance(kind, str) and isinstance(src, str)
            and isinstance(dst, str)):
        raise WireFormatError("kind/src/dst must be strings")
    if not isinstance(msg_id, int) or isinstance(msg_id, bool):
        raise WireFormatError(f"msg_id must be an int, got {msg_id!r}")
    if reply_to is not None and (
        not isinstance(reply_to, int) or isinstance(reply_to, bool)
    ):
        raise WireFormatError(f"bad reply_to {reply_to!r}")
    if not isinstance(size, (int, float)) or isinstance(size, bool):
        raise WireFormatError(f"size must be a number, got {size!r}")
    if not isinstance(sent_at, (int, float)) or isinstance(sent_at, bool):
        raise WireFormatError(f"sent_at must be a number, got {sent_at!r}")
    # Optional, absent from frames produced by older encoders — the
    # envelope version stays at 1 because decoding tolerates both.
    trace_id = body.get("trace_id")
    if trace_id is not None and not isinstance(trace_id, str):
        raise WireFormatError(f"trace_id must be a string, got {trace_id!r}")
    decoded = _dec(payload)
    if not isinstance(decoded, dict):
        raise WireFormatError("payload must decode to a dict")
    try:
        return Message(
            kind=kind, src=src, dst=dst, payload=decoded, size=float(size),
            msg_id=msg_id, reply_to=reply_to, sent_at=float(sent_at),
            trace_id=trace_id,
        )
    except ValueError as exc:  # e.g. non-positive size
        raise WireFormatError(str(exc)) from exc


# --------------------------------------------------------------------------
# datagram framing
# --------------------------------------------------------------------------

def encode_message(msg: Message) -> bytes:
    """Frame *msg* as a data datagram."""
    frame = {"v": WIRE_VERSION, "t": FRAME_MSG, "msg": message_to_wire(msg)}
    return json.dumps(frame, separators=(",", ":")).encode("utf-8")


def encode_ack(src: str, msg_id: int) -> bytes:
    """Frame a transport-level receipt for ``(original dst, msg_id)``.

    ``src`` is the *acknowledging* node — the original message's
    destination; the retry loop keys its waiters on ``(dst, msg_id)``.
    """
    frame = {"v": WIRE_VERSION, "t": FRAME_ACK, "src": src, "id": msg_id}
    return json.dumps(frame, separators=(",", ":")).encode("utf-8")


def decode_frame(data: bytes) -> Dict[str, Any]:
    """Parse one datagram.

    Returns ``{"t": "msg", "msg": Message}`` or
    ``{"t": "ack", "src": str, "id": int}``.

    Raises
    ------
    WireFormatError
        On anything that is not a well-formed, current-version frame.
    """
    try:
        raw = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireFormatError(f"undecodable datagram: {exc}") from exc
    if not isinstance(raw, dict):
        raise WireFormatError(f"frame is not an object: {raw!r}")
    if raw.get("v") != WIRE_VERSION:
        raise WireFormatError(
            f"unsupported wire version {raw.get('v')!r} "
            f"(expected {WIRE_VERSION})"
        )
    ftype = raw.get("t")
    if ftype == FRAME_MSG:
        return {"t": FRAME_MSG, "msg": message_from_wire(raw.get("msg"))}
    if ftype == FRAME_ACK:
        src, msg_id = raw.get("src"), raw.get("id")
        if not isinstance(src, str):
            raise WireFormatError(f"ack src must be a string, got {src!r}")
        if not isinstance(msg_id, int) or isinstance(msg_id, bool):
            raise WireFormatError(f"ack id must be an int, got {msg_id!r}")
        return {"t": FRAME_ACK, "src": src, "id": msg_id}
    raise WireFormatError(f"unknown frame type {ftype!r}")
